"""Ablation: live bit-vector cache sizing (paper V-C design choice).

The paper states 32 direct-mapped entries were "empirically obtained" to be
sufficient because only a few static instructions cause stalls.  This
ablation sweeps the cache size and reports hit rate and performance -- the
experiment behind that sentence.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.experiments.common import ExperimentResult
from repro.experiments.parallel import RunRequest
from repro.experiments.report import geomean
from repro.experiments.runner import ExperimentRunner

SIZES = (1, 4, 16, 32, 64)
DEFAULT_APPS = ("KM", "CS", "LB", "SR")


def run(runner: ExperimentRunner,
        apps: Sequence[str] = DEFAULT_APPS,
        sizes: Sequence[int] = SIZES) -> ExperimentResult:
    rows = []
    summary = {}
    for size in sizes:
        config = dataclasses.replace(runner.base_config,
                                     bitvector_cache_entries=size)
        hit_rates = []
        speedups = []
        for app in apps:
            base = runner.run(app, "baseline")
            fine = runner.run(app, "finereg", config=config)
            speedups.append(fine.ipc / base.ipc)
            if fine.bitvector_hit_rate is not None:
                hit_rates.append(fine.bitvector_hit_rate)
        mean_hit = sum(hit_rates) / len(hit_rates) if hit_rates else 0.0
        speedup = geomean(speedups)
        rows.append([size, mean_hit, speedup])
        summary[f"hit_rate_{size}"] = mean_hit
        summary[f"speedup_{size}"] = speedup
    return ExperimentResult(
        experiment="ablation_bvcache",
        title="Live bit-vector cache size vs hit rate and FineReg speedup",
        headers=["entries", "hit_rate", "finereg_speedup"],
        rows=rows,
        summary=summary,
        notes=("Paper V-C: 32 entries suffice because only a few static "
               "instructions cause stalls; hit rate should saturate near "
               "that size."),
    )


def plan(runner: ExperimentRunner,
         apps: Sequence[str] = DEFAULT_APPS,
         sizes: Sequence[int] = SIZES):
    requests = [RunRequest.make(app, "baseline") for app in apps]
    for size in sizes:
        config = dataclasses.replace(runner.base_config,
                                     bitvector_cache_entries=size)
        requests += [RunRequest.make(app, "finereg", config=config)
                     for app in apps]
    return requests


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
