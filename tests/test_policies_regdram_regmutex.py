"""Tests for the Reg+DRAM (Zorua-like) and VT+RegMutex policies."""

import pytest

from repro.config import GPUConfig


class TestRegDRAM:
    def test_limit_zero_behaves_like_vt(self, tiny_runner):
        vt = tiny_runner.run("KM", "virtual_thread")
        rd = tiny_runner.run("KM", "reg_dram", dram_pending_limit=0)
        assert rd.dram_traffic_by_class.get("context_spill", 0) == 0
        assert rd.instructions == vt.instructions
        assert rd.ipc == pytest.approx(vt.ipc, rel=0.05)

    def test_context_traffic_when_parking_in_dram(self, tiny_runner):
        """Type-R app with DRAM parking must move whole register contexts."""
        rd = tiny_runner.run("LB", "reg_dram", dram_pending_limit=4)
        spill = rd.dram_traffic_by_class.get("context_spill", 0)
        restore = rd.dram_traffic_by_class.get("context_restore", 0)
        if rd.cta_switch_events:
            assert spill > 0
            # Contexts are whole static allocations: multiples of the CTA's
            # register footprint.
            instance = tiny_runner.workload("LB")
            footprint = instance.kernel.register_bytes_per_cta
            assert spill % footprint == 0
            assert restore % footprint == 0

    def test_more_residency_than_vt_for_type_r(self, tiny_runner):
        vt = tiny_runner.run("LB", "virtual_thread")
        rd = tiny_runner.run("LB", "reg_dram", dram_pending_limit=4)
        assert rd.max_resident_ctas >= vt.max_resident_ctas

    def test_completes_grid(self, tiny_runner):
        result = tiny_runner.run("LB", "reg_dram", dram_pending_limit=4)
        instance = tiny_runner.workload("LB")
        assert result.completed_ctas == instance.kernel.geometry.grid_ctas


class TestRegMutex:
    def test_bad_ratios_rejected(self, tiny_runner):
        with pytest.raises(ValueError):
            tiny_runner.run("KM", "vt_regmutex", srp_ratio=0.0)
        with pytest.raises(ValueError):
            tiny_runner.run("KM", "vt_regmutex", srp_ratio=1.0)

    def test_packs_more_ctas_for_type_r(self, tiny_runner):
        """BRS shrinks per-warp allocations: more CTAs fit (paper VI-B)."""
        base = tiny_runner.run("LB", "baseline")
        rm = tiny_runner.run("LB", "vt_regmutex", srp_ratio=0.28)
        assert rm.max_resident_ctas >= base.max_resident_ctas

    def test_srp_leases_are_acquired(self, tiny_runner):
        rm = tiny_runner.run("LB", "vt_regmutex", srp_ratio=0.28)
        # The extras dict is aggregated into the result indirectly; check
        # the policy saw leasing activity via srp stall accounting or
        # simply that the run completed with correct work.
        instance = tiny_runner.workload("LB")
        assert rm.completed_ctas == instance.kernel.geometry.grid_ctas

    def test_small_srp_causes_contention(self, tiny_runner):
        """A starved SRP should produce stall cycles (paper Fig 14)."""
        tight = tiny_runner.run("KM", "vt_regmutex", srp_ratio=0.05)
        roomy = tiny_runner.run("KM", "vt_regmutex", srp_ratio=0.45)
        assert tight.srp_stall_cycles >= roomy.srp_stall_cycles

    def test_work_is_policy_invariant(self, tiny_runner):
        base = tiny_runner.run("KM", "baseline")
        rm = tiny_runner.run("KM", "vt_regmutex", srp_ratio=0.28)
        assert rm.instructions == base.instructions
