"""The static kernel verifier passes.

Each pass is a pure function from a frozen CFG (plus, where relevant, the
declared resource envelope and a :class:`~repro.config.GPUConfig`) to a list
of :class:`~repro.validate.findings.Finding`.  Passes never raise on a bad
kernel — they *report*; the orchestration layer (:mod:`.verifier`) decides
whether errors abort workload construction or merely fail a CI gate.

Pass catalog (tags in parentheses; full descriptions in docs/ANALYZE.md):

* structure — single entry, no unreachable/dangling blocks, reducible
  loops (``cfg-entry``, ``cfg-unreachable``, ``cfg-dangling``,
  ``cfg-irreducible``, ``cfg-structure``)
* reconvergence — the structured reconvergence point every downstream
  layer assumes must equal the immediate post-dominator
  (``reconvergence``)
* barriers — no ``BAR`` reachable under a divergent predicate before
  reconvergence (``barrier-divergence``)
* register pressure — declared regs/thread must cover the liveness-derived
  live maximum and every named register; per-CTA live footprints are
  cross-checked against the ACRF/PCRF split (``register-pressure``,
  ``acrf-capacity``, ``pcrf-capacity``)
* occupancy — one CTA must fit every Table-I hardware limit
  (``occupancy``)
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import MAX_REGS_PER_THREAD, WARP_SIZE, GPUConfig
from repro.core.liveness import LivenessAnalysis, LivenessTable
from repro.isa.cfg import ControlFlowGraph, EdgeKind
from repro.isa.instructions import Opcode
from repro.validate.findings import Finding, Severity

from repro.analyze.graph import (
    back_edges,
    contains_opcode,
    dominators,
    entry_block,
    immediate_postdominator,
    postdominators,
    predecessors,
    reachable_from_entry,
    reaches_exit,
    region_between,
)


def _finding(tag: str, severity: Severity, message: str, source: str,
             block: Optional[int] = None,
             pc: Optional[int] = None) -> Finding:
    return Finding(tag=tag, severity=severity, message=message,
                   source=source, block=block, pc=pc)


# ----------------------------------------------------------------------
# Pass 1: CFG structure
# ----------------------------------------------------------------------
def check_structure(cfg: ControlFlowGraph, source: str = "") -> List[Finding]:
    """Well-formedness beyond what ``freeze()`` enforces.

    ``freeze()`` checks local properties (successor arity, one exit block,
    backward loop edges); this pass checks the global ones a malformed
    synthetic kernel can still violate.
    """
    findings: List[Finding] = []
    preds = predecessors(cfg)
    reachable = reachable_from_entry(cfg)
    can_exit = reaches_exit(cfg)

    # Single entry: nothing may jump to block 0 except a loop back edge
    # (an entry that doubles as a loop header is still a unique entry).
    for pred in preds[entry_block(cfg)]:
        if cfg.blocks[pred].edge_kind is not EdgeKind.LOOP_BACK:
            findings.append(_finding(
                "cfg-entry", Severity.ERROR,
                f"entry block B0 has forward predecessor B{pred}; the "
                f"kernel entry must be unique",
                source, block=pred))

    for block in cfg.blocks:
        if block.block_id not in reachable:
            findings.append(_finding(
                "cfg-unreachable", Severity.ERROR,
                f"block B{block.block_id} is unreachable from the entry "
                f"(dead code the trace generator would never emit)",
                source, block=block.block_id,
                pc=block.instructions[0].pc))
        elif block.block_id not in can_exit:
            findings.append(_finding(
                "cfg-dangling", Severity.ERROR,
                f"block B{block.block_id} cannot reach the exit; a warp "
                f"entering it would never retire",
                source, block=block.block_id,
                pc=block.instructions[0].pc))

    # Reducibility: every loop back edge must target a header that
    # dominates its source, otherwise the loop has a side entrance and the
    # single-header traversal of the liveness pass (paper Fig 9b) is wrong.
    dom = dominators(cfg)
    for src, header in back_edges(cfg):
        if src not in dom:
            continue  # unreachable; already reported above
        if header not in dom[src]:
            findings.append(_finding(
                "cfg-irreducible", Severity.ERROR,
                f"back edge B{src} -> B{header} is irreducible: B{header} "
                f"does not dominate B{src} (the loop has a second entry)",
                source, block=src))

    # Retreating edges not marked LOOP_BACK break the builder's contract
    # that only LOOP_BACK edges close cycles.
    for block in cfg.blocks:
        if block.edge_kind is EdgeKind.LOOP_BACK:
            continue
        if block.block_id not in dom:
            continue
        for succ in block.successors:
            if succ in dom[block.block_id] and succ != block.block_id:
                findings.append(_finding(
                    "cfg-structure", Severity.ERROR,
                    f"{block.edge_kind.value} edge B{block.block_id} -> "
                    f"B{succ} closes a cycle but is not marked LOOP_BACK",
                    source, block=block.block_id))
    return findings


# ----------------------------------------------------------------------
# Pass 2: reconvergence consistency
# ----------------------------------------------------------------------
def check_reconvergence(cfg: ControlFlowGraph,
                        source: str = "") -> List[Finding]:
    """Structured reconvergence must agree with the immediate post-dominator.

    ``ControlFlowGraph.reconvergence_block`` walks fallthrough chains — the
    structural assumption the per-warp trace serializer and the Fig-9
    liveness traversal both rely on.  If that walk disagrees with (or cannot
    find) the true PDOM reconvergence point, divergent execution would be
    serialized at the wrong program point.
    """
    findings: List[Finding] = []
    pdom = postdominators(cfg)
    reachable = reachable_from_entry(cfg)
    for block in cfg.blocks:
        if block.edge_kind is not EdgeKind.BRANCH:
            continue
        if block.block_id not in reachable:
            continue  # structural pass already reports it
        ipdom = immediate_postdominator(pdom, block.block_id)
        structured = cfg.reconvergence_block(block.block_id)
        if structured is None:
            findings.append(_finding(
                "reconvergence", Severity.ERROR,
                f"branch B{block.block_id} has no structured reconvergence "
                f"point (immediate post-dominator is "
                f"{'B%d' % ipdom if ipdom is not None else 'undefined'}); "
                f"the trace serializer assumes one",
                source, block=block.block_id,
                pc=block.instructions[-1].pc))
        elif structured != ipdom:
            findings.append(_finding(
                "reconvergence", Severity.ERROR,
                f"branch B{block.block_id} reconverges at B{structured} per "
                f"the structured walk but its immediate post-dominator is "
                f"{'B%d' % ipdom if ipdom is not None else 'undefined'}",
                source, block=block.block_id,
                pc=block.instructions[-1].pc))
    return findings


# ----------------------------------------------------------------------
# Pass 3: barrier-divergence legality
# ----------------------------------------------------------------------
def check_barriers(cfg: ControlFlowGraph, source: str = "") -> List[Finding]:
    """No ``BAR`` may execute under a divergent predicate.

    A barrier between a divergent branch and its reconvergence point
    deadlocks on real hardware: threads on the other path never arrive.
    The reconvergence block itself is legal — threads have re-joined by
    its first instruction.
    """
    findings: List[Finding] = []
    pdom = postdominators(cfg)
    reachable = reachable_from_entry(cfg)
    for block in cfg.blocks:
        if block.edge_kind is not EdgeKind.BRANCH:
            continue
        if block.block_id not in reachable or block.divergence_prob <= 0.0:
            continue
        rec = immediate_postdominator(pdom, block.block_id)
        region = set()
        for succ in block.successors:
            region |= region_between(cfg, succ, rec)
        region.discard(block.block_id)
        for region_block_id in sorted(region):
            region_block = cfg.blocks[region_block_id]
            bar_pc = contains_opcode(region_block, Opcode.BAR)
            if bar_pc is not None:
                findings.append(_finding(
                    "barrier-divergence", Severity.ERROR,
                    f"BAR in B{region_block_id} is reachable under the "
                    f"divergent branch B{block.block_id} (p="
                    f"{block.divergence_prob:.2f}) before reconvergence"
                    + (f" at B{rec}" if rec is not None else "")
                    + "; divergent threads would deadlock the CTA",
                    source, block=region_block_id, pc=bar_pc))
    return findings


# ----------------------------------------------------------------------
# Pass 4: static register pressure
# ----------------------------------------------------------------------
def check_register_pressure(cfg: ControlFlowGraph, regs_per_thread: int,
                            source: str = "",
                            config: Optional[GPUConfig] = None,
                            threads_per_cta: Optional[int] = None,
                            liveness: Optional[LivenessTable] = None
                            ) -> List[Finding]:
    """Declared regs/thread must bound both naming and liveness.

    With ``config`` and ``threads_per_cta`` the per-CTA footprints are also
    cross-checked against the ACRF/PCRF split: a CTA whose full allocation
    exceeds the ACRF can never be *active* under FineReg, and one whose
    live set exceeds the PCRF can never be *parked* — either way the
    mechanism silently degenerates, which is worth a warning up front.
    """
    findings: List[Finding] = []
    if regs_per_thread <= 0:
        findings.append(_finding(
            "register-pressure", Severity.ERROR,
            f"declared regs/thread must be positive, got {regs_per_thread}",
            source))
        return findings
    if regs_per_thread > MAX_REGS_PER_THREAD:
        findings.append(_finding(
            "register-pressure", Severity.ERROR,
            f"declared {regs_per_thread} regs/thread exceeds the "
            f"{MAX_REGS_PER_THREAD}-register architectural limit (the live "
            f"bit vectors are {MAX_REGS_PER_THREAD} bits)",
            source))

    used = cfg.registers_used()
    max_index = max(used) if used else -1
    if liveness is None:
        liveness = LivenessAnalysis(cfg).run(regs_per_thread)
    live_max = 0
    live_max_index = 0
    for index in range(liveness.num_instructions):
        count = liveness.live_count_at_index(index)
        if count > live_max:
            live_max, live_max_index = count, index
    live_max_pc = live_max_index * 4

    if max_index >= regs_per_thread:
        findings.append(_finding(
            "register-pressure", Severity.ERROR,
            f"kernel names R{max_index} but declares only "
            f"{regs_per_thread} regs/thread (live maximum is {live_max} at "
            f"0x{live_max_pc:04x}); raise the declaration to at least "
            f"{max_index + 1}",
            source, block=cfg.block_of(live_max_index), pc=live_max_pc))
    elif live_max > regs_per_thread:
        # Unreachable while the index rule holds, but the dataflow bound is
        # the property FineReg actually depends on — keep it checked.
        findings.append(_finding(
            "register-pressure", Severity.ERROR,
            f"liveness-derived live maximum {live_max} (at "
            f"0x{live_max_pc:04x}) exceeds the declared "
            f"{regs_per_thread} regs/thread",
            source, block=cfg.block_of(live_max_index), pc=live_max_pc))

    if config is not None and threads_per_cta:
        warps = threads_per_cta // WARP_SIZE
        full_cta = warps * regs_per_thread
        live_cta = warps * live_max
        if full_cta > config.acrf_entries:
            findings.append(_finding(
                "acrf-capacity", Severity.WARNING,
                f"one CTA's full allocation ({full_cta} warp-registers) "
                f"exceeds the ACRF ({config.acrf_entries}); no CTA can be "
                f"active under FineReg's default split",
                source))
        if live_cta > config.pcrf_entries:
            findings.append(_finding(
                "pcrf-capacity", Severity.WARNING,
                f"one CTA's live set ({live_cta} warp-registers) exceeds "
                f"the PCRF ({config.pcrf_entries}); no CTA can ever be "
                f"parked and FineReg degenerates to the baseline",
                source))
    return findings


# ----------------------------------------------------------------------
# Pass 5: occupancy feasibility
# ----------------------------------------------------------------------
def check_occupancy(regs_per_thread: int, threads_per_cta: int,
                    shmem_per_cta: int, config: GPUConfig,
                    source: str = "") -> List[Finding]:
    """A single CTA must fit every Table-I hardware limit.

    ``baseline_resident_ctas`` clamps its answer to ``max(1, ...)``, so an
    infeasible kernel silently "fits" one CTA and fails cycles into the
    run (or never); this pass rejects it before simulation.
    """
    findings: List[Finding] = []

    def err(message: str) -> None:
        findings.append(_finding("occupancy", Severity.ERROR, message,
                                 source))

    if threads_per_cta <= 0 or threads_per_cta % WARP_SIZE:
        err(f"threads/CTA must be a positive multiple of {WARP_SIZE}, "
            f"got {threads_per_cta}")
        return findings
    warps = threads_per_cta // WARP_SIZE
    if warps > config.max_warps_per_sm:
        err(f"one CTA needs {warps} warps but the SM schedules at most "
            f"{config.max_warps_per_sm}")
    if threads_per_cta > config.max_threads_per_sm:
        err(f"one CTA needs {threads_per_cta} threads but the SM hosts at "
            f"most {config.max_threads_per_sm}")
    warp_registers = warps * regs_per_thread
    if warp_registers > config.rf_warp_registers:
        err(f"one CTA needs {warp_registers} warp-registers but the "
            f"register file holds {config.rf_warp_registers}")
    if shmem_per_cta > config.shared_memory_bytes:
        err(f"one CTA needs {shmem_per_cta} B of shared memory but the SM "
            f"has {config.shared_memory_bytes} B")
    return findings
