"""Bench: regenerate paper Fig 12 (concurrent CTAs per configuration)."""

from conftest import regenerate
from repro.experiments import fig12_concurrent_ctas


def test_fig12_concurrent_ctas(benchmark, runner):
    result = regenerate(benchmark, fig12_concurrent_ctas.run, runner)
    s = result.summary
    # Shape: FineReg runs more CTAs than the baseline and than Virtual
    # Thread; Type-S apps gain more residency than Type-R (paper VI-B).
    assert s["finereg_cta_ratio"] > 1.2
    assert s["finereg_cta_ratio"] > s["virtual_thread_cta_ratio"]
    assert s["finereg_type_s_ratio"] > s["finereg_type_r_ratio"]
    # Reg+DRAM residency sits at or above plain Virtual Thread.
    assert s["reg_dram_cta_ratio"] >= s["virtual_thread_cta_ratio"] - 0.05
