"""Suite-wide workload-profile regression tests.

These pin the calibration: every benchmark's generated envelope must keep
matching the character its spec (and the paper's Table II / Fig 5) assigns
to it.  If a future generator change drifts the suite, these tests point at
the exact app and property that moved.
"""

import pytest

from repro.config import GPUConfig, TINY
from repro.workloads.characterize import characterize
from repro.workloads.generator import build_workload
from repro.workloads.suite import ALL_SPECS


@pytest.fixture(scope="module")
def profiles():
    config = GPUConfig().with_num_sms(1)
    out = {}
    for spec in ALL_SPECS:
        instance = build_workload(spec, config, TINY)
        out[spec.abbrev] = (spec, characterize(instance))
    return out


class TestSuiteProfiles:
    def test_every_app_profiles(self, profiles):
        assert len(profiles) == 18

    def test_memory_fraction_in_sane_band(self, profiles):
        for abbrev, (spec, profile) in profiles.items():
            assert 0.03 <= profile.global_memory_fraction <= 0.6, abbrev

    def test_liveness_follows_spec_ordering(self, profiles):
        """Apps with lower live_fraction targets must produce lower mean
        live fractions (the property Fig 5 and the PCRF depend on)."""
        pairs = sorted(
            ((spec.live_fraction, profile.mean_live_fraction, abbrev)
             for abbrev, (spec, profile) in profiles.items()))
        lowest = pairs[:4]
        highest = pairs[-4:]
        mean = lambda rows: sum(r[1] for r in rows) / len(rows)
        assert mean(lowest) < mean(highest)

    def test_divergent_apps_show_overhead(self, profiles):
        divergent = [p for a, (s, p) in profiles.items()
                     if s.divergence_prob > 0]
        uniform = [p for a, (s, p) in profiles.items()
                   if s.divergence_prob == 0]
        mean = lambda ps: sum(p.divergence_overhead for p in ps) / len(ps)
        assert mean(divergent) > mean(uniform)

    def test_barrier_apps_have_barriers(self, profiles):
        for abbrev, (spec, profile) in profiles.items():
            if spec.has_barrier:
                assert profile.barrier_count >= 1, abbrev
            else:
                assert profile.barrier_count == 0, abbrev

    def test_single_main_loop(self, profiles):
        for abbrev, (spec, profile) in profiles.items():
            assert profile.loop_blocks == 1, abbrev

    def test_static_size_within_paper_bound(self, profiles):
        for abbrev, (spec, profile) in profiles.items():
            assert profile.static_instructions <= 600, abbrev

    def test_max_live_fits_allocation(self, profiles):
        for abbrev, (spec, profile) in profiles.items():
            assert profile.max_live_count <= spec.regs_per_thread, abbrev

    def test_compute_heavy_apps_have_longer_iterations(self, profiles):
        """SG/MC/LI (high compute_per_mem) must run more instructions per
        memory access than BF/KM (memory-intensive)."""
        ratio = lambda a: 1.0 / max(
            profiles[a][1].global_memory_fraction, 1e-9)
        assert min(ratio("SG"), ratio("MC"), ratio("LI")) \
            > max(ratio("BF"), ratio("KM"))
