"""Synthetic workload suite reproducing the paper's 18 benchmarks."""

from repro.workloads.spec import WorkloadSpec, WorkloadType
from repro.workloads.generator import WorkloadInstance, build_workload
from repro.workloads.traces import AddressModel, TraceProvider
from repro.workloads.suite import (
    ALL_SPECS,
    SPEC_BY_ABBREV,
    TYPE_R_SPECS,
    TYPE_S_SPECS,
    get_spec,
)

__all__ = [
    "ALL_SPECS",
    "AddressModel",
    "SPEC_BY_ABBREV",
    "TYPE_R_SPECS",
    "TYPE_S_SPECS",
    "TraceProvider",
    "WorkloadInstance",
    "WorkloadSpec",
    "WorkloadType",
    "build_workload",
    "get_spec",
]
