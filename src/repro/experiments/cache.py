"""Persistent, content-addressed simulation-result cache.

Simulations are deterministic functions of (scale, reference config, run
config, workload spec, policy, policy kwargs, flags), so their results can
be stored on disk and shared across processes and sessions: warm reruns of
any figure become near-free.  Entries live under ``results/cache/`` (override
with ``REPRO_CACHE_DIR``), one JSON file per result, named by the SHA-256 of
the *complete* canonicalized key material plus a schema/code version tag.

Invalidation is by construction: any change to a simulation-relevant knob
changes the hash, and behavioral changes to the simulator itself must bump
:data:`CACHE_CODE_VERSION` (reviewed per PR).  ``REPRO_CACHE=off`` disables
the cache entirely; ``python -m repro cache clear`` wipes it.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional

from repro.config import GPUConfig, Scale
from repro.sim.stats import RESULT_SCHEMA_VERSION, SimResult
from repro.workloads.spec import WorkloadSpec

#: Bump on any simulator change that alters observable results.  Combined
#: with RESULT_SCHEMA_VERSION into every cache key.
CACHE_CODE_VERSION = "1"

#: Default on-disk location, relative to the working directory (the repo
#: convention keeps all generated artifacts under ``results/``).
DEFAULT_CACHE_DIR = Path("results") / "cache"

_DISABLED_VALUES = {"off", "0", "false", "no", "disabled"}


def cache_enabled() -> bool:
    """Honor the ``REPRO_CACHE`` environment switch (default: on)."""
    return os.environ.get("REPRO_CACHE", "on").lower() not in _DISABLED_VALUES


def cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", str(DEFAULT_CACHE_DIR)))


def _canonical(value):
    """Recursively convert key material into JSON-stable primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"uncacheable key material of type {type(value)!r}")


def run_key(scale: Scale, reference: GPUConfig, config: GPUConfig,
            spec: WorkloadSpec, policy: str,
            policy_kwargs: Dict, sample_usage: bool,
            unified_memory: bool) -> str:
    """Content hash over everything that determines a simulation's result.

    ``reference`` is the runner's base configuration at the run's SM count:
    it sizes the workload grid (see ``ExperimentRunner.workload``), so two
    runners with different base configs must not alias.
    """
    material = {
        "code_version": CACHE_CODE_VERSION,
        "result_schema": RESULT_SCHEMA_VERSION,
        "scale": _canonical(scale),
        "reference": _canonical(reference),
        "config": _canonical(config),
        "spec": _canonical(spec),
        "policy": policy,
        "policy_kwargs": _canonical(dict(sorted(policy_kwargs.items()))),
        "sample_usage": bool(sample_usage),
        "unified_memory": bool(unified_memory),
    }
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """On-disk SimResult store; all failures degrade to cache misses."""

    def __init__(self, root: Optional[Path] = None,
                 enabled: Optional[bool] = None) -> None:
        self.root = Path(root) if root is not None else cache_dir()
        self.enabled = cache_enabled() if enabled is None else enabled
        self.hits = 0
        self.misses = 0
        #: Optional :class:`repro.obs.session.ObsSession`.  When set, reads
        #: and writes are timed and logged by the session; the off path
        #: costs exactly this one ``is not None`` test.
        self.obs = None

    @classmethod
    def from_env(cls) -> "ResultCache":
        return cls()

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[SimResult]:
        if not self.enabled:
            return None
        if self.obs is not None:
            return self.obs.timed_cache_get(self, key)
        return self._get(key)

    def _get(self, key: str) -> Optional[SimResult]:
        """The untimed lookup; observability wraps this, never alters it."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            result = SimResult.from_json(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimResult) -> None:
        if not self.enabled:
            return
        if self.obs is not None:
            self.obs.timed_cache_put(self, key, result)
            return
        self._put(key, result)

    def _put(self, key: str, result: SimResult) -> int:
        """The untimed store; returns the bytes written (0 on failure)."""
        path = self._path(key)
        blob = json.dumps({"key": key, "result": result.to_json()})
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(blob)
            os.replace(tmp, path)  # atomic: concurrent writers race safely
        except OSError:
            return 0
        return len(blob.encode("utf-8"))

    # ------------------------------------------------------------------
    def entries(self):
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict:
        """Inventory for ``repro cache stats``: counts, bytes, schemas.

        Walks every entry, so this is a CLI/diagnostic call, not a hot
        path.  Unreadable entries are counted under ``"unreadable"``
        rather than raised -- consistent with get()'s miss-on-damage.
        """
        entries = self.entries()
        total = 0
        schemas: Dict[str, int] = {}
        for path in entries:
            version = "unreadable"
            try:
                total += path.stat().st_size
                payload = json.loads(path.read_text())
                version = str(payload["result"].get("_schema", "?"))
            except (OSError, ValueError, KeyError, TypeError):
                pass
            schemas[version] = schemas.get(version, 0) + 1
        return {
            "root": str(self.root),
            "enabled": self.enabled,
            "entries": len(entries),
            "total_bytes": total,
            "schema_versions": {k: schemas[k] for k in sorted(schemas)},
            "hits": self.hits,
            "misses": self.misses,
        }

    def __len__(self) -> int:
        return len(self.entries())
