"""Energy-model integration tests over real simulation results."""

import pytest

from repro.energy.model import EnergyConstants, EnergyModel


class TestBreakdownShape:
    def test_leakage_is_material(self, tiny_runner):
        """Fig 16's savings come largely from leakage: it must be a
        first-order component of the baseline breakdown."""
        model = EnergyModel()
        base = tiny_runner.run("KM", "baseline")
        breakdown = model.evaluate(base)
        assert breakdown.leakage / breakdown.total > 0.10

    def test_finereg_components_only_for_finereg(self, tiny_runner):
        model = EnergyModel()
        base = model.evaluate(tiny_runner.run("KM", "baseline"))
        fine = model.evaluate(tiny_runner.run("KM", "finereg"))
        assert base.finereg == 0.0
        assert base.cta_switching == 0.0
        assert fine.finereg > 0.0
        assert fine.cta_switching > 0.0

    def test_vt_has_switching_but_no_pcrf_energy(self, tiny_runner):
        model = EnergyModel()
        vt = model.evaluate(tiny_runner.run("KM", "virtual_thread"))
        assert vt.finereg == 0.0        # no PCRF accesses
        assert vt.cta_switching > 0.0   # but it does switch

    def test_speedup_translates_to_energy_saving(self, tiny_runner):
        """When FineReg is materially faster, it must also use less energy
        (leakage dominates the delta) -- the Fig 16 causal chain."""
        model = EnergyModel()
        base = tiny_runner.run("KM", "baseline")
        fine = tiny_runner.run("KM", "finereg")
        speedup = fine.ipc / base.ipc
        if speedup > 1.1:
            assert model.energy_ratio(fine, base) < 1.0

    def test_dram_energy_tracks_traffic(self, tiny_runner):
        model = EnergyModel()
        rd = tiny_runner.run("LB", "reg_dram", dram_pending_limit=4)
        vt = tiny_runner.run("LB", "virtual_thread")
        if rd.dram_traffic_bytes > vt.dram_traffic_bytes:
            assert model.evaluate(rd).dram_dyn > model.evaluate(vt).dram_dyn


class TestCustomConstants:
    def test_scaling_a_constant_scales_the_component(self, tiny_runner):
        base = tiny_runner.run("KM", "baseline")
        cheap = EnergyModel(EnergyConstants(dram_pj_per_byte=1.0))
        pricey = EnergyModel(EnergyConstants(dram_pj_per_byte=100.0))
        assert pricey.evaluate(base).dram_dyn \
            == pytest.approx(100 * cheap.evaluate(base).dram_dyn)

    def test_zero_leakage_allowed(self, tiny_runner):
        base = tiny_runner.run("KM", "baseline")
        model = EnergyModel(EnergyConstants(leakage_pj_per_cycle_per_sm=0.0))
        assert model.evaluate(base).leakage == 0.0
