"""GPU hardware configuration (paper Table I) and scale presets.

The paper simulates a GTX 980-like GPU on GPGPU-Sim.  ``GPUConfig`` captures
every Table I parameter plus the knobs the evaluation section varies
(scheduling-resource scaling for Fig 2, register-file split for Fig 17, SM
count for Fig 18, unified on-chip memory for Fig 19).

All register-file capacities are expressed both in bytes and in
*warp-registers*: one warp-register is one architectural register for all 32
threads of a warp, i.e. 32 threads x 4 bytes = 128 bytes.  This is the unit of
ACRF/PCRF allocation (a PCRF entry holds exactly one warp-register, matching
the paper's "21 bits per tag times 1,024 registers" for the 128 KB PCRF).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

KB = 1024
WARP_SIZE = 32
BYTES_PER_REGISTER = 4
WARP_REGISTER_BYTES = WARP_SIZE * BYTES_PER_REGISTER  # 128 B
MAX_REGS_PER_THREAD = 64  # live bit vectors are 64 bits long (paper V-A)


@dataclass(frozen=True)
class GPUConfig:
    """Hardware parameters of the simulated GPU (defaults = paper Table I)."""

    num_sms: int = 16
    clock_mhz: int = 1126
    simd_width: int = WARP_SIZE
    max_warps_per_sm: int = 64
    max_threads_per_sm: int = 2048
    max_ctas_per_sm: int = 32
    num_warp_schedulers: int = 4
    warp_scheduling: str = "gto"   # greedy-then-oldest (Table I) or "lrr"
    register_file_bytes: int = 256 * KB
    shared_memory_bytes: int = 96 * KB
    l1_size_bytes: int = 48 * KB
    l1_assoc: int = 8
    l2_size_bytes: int = 2048 * KB
    l2_assoc: int = 8
    dram_bandwidth_gbps: float = 352.5
    cache_line_bytes: int = 128

    # Pipeline latencies (cycles).  Representative GPGPU-Sim-era values.
    alu_latency: int = 6
    sfu_latency: int = 16
    shared_mem_latency: int = 24
    l1_hit_latency: int = 28
    l2_hit_latency: int = 340          # incl. interconnect round trip
    dram_latency: int = 600            # incl. controller queueing

    # Register-file banking (operand-collector conflicts). Off by default:
    # the paper's evaluation does not model bank conflicts, but the knob
    # lets sensitivity studies include them.
    model_rf_banks: bool = False
    rf_banks: int = 8

    # FineReg-specific structure sizes (paper IV/V).
    pcrf_bytes: int = 128 * KB          # half of the baseline RF by default
    max_resident_ctas: int = 128        # FineReg supports up to 128 CTAs
    max_resident_warps: int = 512       # ... or 512 warps
    bitvector_cache_entries: int = 32   # direct-mapped, 64-bit blocks
    pcrf_access_latency: int = 4        # cycles to reach a tag + register
    cta_switch_threshold: int = 48      # min remaining stall to trigger a switch
    min_park_cycles: int = 160          # min remaining stall worth parking for

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError("num_sms must be positive")
        if self.register_file_bytes % WARP_REGISTER_BYTES:
            raise ValueError("register file size must be a multiple of 128 B")
        if self.pcrf_bytes >= self.register_file_bytes:
            raise ValueError("PCRF must be smaller than the total register file")
        if self.max_warps_per_sm * self.simd_width > self.max_threads_per_sm:
            raise ValueError("warp limit exceeds thread limit")
        if self.warp_scheduling not in ("gto", "lrr"):
            raise ValueError(
                f"unknown warp scheduling {self.warp_scheduling!r}")

    # ------------------------------------------------------------------
    # Derived capacities
    # ------------------------------------------------------------------
    @property
    def rf_warp_registers(self) -> int:
        """Total register file capacity in warp-registers (2048 for 256 KB)."""
        return self.register_file_bytes // WARP_REGISTER_BYTES

    @property
    def pcrf_entries(self) -> int:
        """PCRF capacity in warp-registers (1024 for 128 KB)."""
        return self.pcrf_bytes // WARP_REGISTER_BYTES

    @property
    def acrf_entries(self) -> int:
        """ACRF capacity in warp-registers (RF minus the PCRF region)."""
        return self.rf_warp_registers - self.pcrf_entries

    @property
    def dram_bytes_per_cycle(self) -> float:
        """Off-chip bandwidth expressed in bytes per core clock."""
        return self.dram_bandwidth_gbps * 1e9 / (self.clock_mhz * 1e6)

    # ------------------------------------------------------------------
    # Evaluation-section variants
    # ------------------------------------------------------------------
    def with_scheduling_scale(self, factor: float) -> "GPUConfig":
        """Scale scheduling resources (Fig 2 'Sched'): CTA/warp/thread limits."""
        return dataclasses.replace(
            self,
            max_ctas_per_sm=int(self.max_ctas_per_sm * factor),
            max_warps_per_sm=int(self.max_warps_per_sm * factor),
            max_threads_per_sm=int(self.max_threads_per_sm * factor),
        )

    def with_memory_scale(self, factor: float) -> "GPUConfig":
        """Scale on-chip memory (Fig 2 'Mem'): register file + shared memory."""
        new_rf = int(self.register_file_bytes * factor)
        new_rf -= new_rf % WARP_REGISTER_BYTES
        return dataclasses.replace(
            self,
            register_file_bytes=new_rf,
            shared_memory_bytes=int(self.shared_memory_bytes * factor),
        )

    def with_rf_split(self, acrf_kb: int, pcrf_kb: int) -> "GPUConfig":
        """Fig 17: repartition the fixed-size RF into ACRF/PCRF regions."""
        if (acrf_kb + pcrf_kb) * KB != self.register_file_bytes:
            raise ValueError(
                f"ACRF {acrf_kb}KB + PCRF {pcrf_kb}KB must equal the "
                f"{self.register_file_bytes // KB}KB register file"
            )
        return dataclasses.replace(self, pcrf_bytes=pcrf_kb * KB)

    def with_num_sms(self, num_sms: int) -> "GPUConfig":
        """Fig 18: vary SM count (DRAM bandwidth scales with it)."""
        bw = self.dram_bandwidth_gbps * num_sms / self.num_sms
        return dataclasses.replace(self, num_sms=num_sms, dram_bandwidth_gbps=bw)


@dataclass(frozen=True)
class Scale:
    """Workload scale preset.

    Paper-scale simulation of 16 SMs is impractical in pure Python, so the
    suite ships three presets that shrink grids and dynamic trace lengths
    while preserving per-SM resource ratios (DRAM bandwidth follows SM count
    via :meth:`GPUConfig.with_num_sms`).
    """

    name: str
    num_sms: int
    grid_ctas_per_sm: int     # CTAs in the grid per simulated SM
    trace_scale: float        # multiplier on dynamic trace length
    max_cycles: int           # simulation safety cap

    def grid_size(self, num_sms: int) -> int:
        return max(1, self.grid_ctas_per_sm * num_sms)


TINY = Scale(name="tiny", num_sms=1, grid_ctas_per_sm=12, trace_scale=0.25,
             max_cycles=400_000)
SMALL = Scale(name="small", num_sms=2, grid_ctas_per_sm=24, trace_scale=0.5,
              max_cycles=2_000_000)
PAPER = Scale(name="paper", num_sms=4, grid_ctas_per_sm=48, trace_scale=1.0,
              max_cycles=8_000_000)

SCALES = {scale.name: scale for scale in (TINY, SMALL, PAPER)}


def default_config(scale: Scale = SMALL) -> GPUConfig:
    """Table I configuration shrunk to ``scale.num_sms`` SMs."""
    return GPUConfig().with_num_sms(scale.num_sms)
