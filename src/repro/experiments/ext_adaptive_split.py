"""Extension experiment: adaptive vs. static ACRF/PCRF splits.

Fig 17 fixes the split statically; the adaptive policy moves the boundary
at runtime toward whichever region is under pressure.  The interesting
comparison is per workload class: register-hungry Type-R apps should pull
the boundary toward the ACRF, low-live apps toward the PCRF, and the
adaptive scheme should approach each app's best *static* split without
knowing it in advance.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ALL_APPS, ExperimentResult
from repro.experiments.parallel import RunRequest
from repro.experiments.report import geomean
from repro.experiments.runner import ExperimentRunner

STATIC_SPLITS = ((96, 160), (128, 128), (160, 96))
DEFAULT_APPS = ("KM", "CS", "LI", "LB", "SG", "SR")


def run(runner: ExperimentRunner,
        apps: Sequence[str] = DEFAULT_APPS) -> ExperimentResult:
    rows = []
    adaptive_speedups = []
    best_static_speedups = []
    default_speedups = []
    for app in apps:
        base = runner.run(app, "baseline")
        per_split = {}
        for acrf_kb, pcrf_kb in STATIC_SPLITS:
            config = runner.base_config.with_rf_split(acrf_kb, pcrf_kb)
            result = runner.run(app, "finereg", config=config)
            per_split[f"{acrf_kb}/{pcrf_kb}"] = result.ipc / base.ipc
        adaptive = runner.run(app, "finereg_adaptive")
        adaptive_ratio = adaptive.ipc / base.ipc
        best_key = max(per_split, key=per_split.get)
        adaptive_speedups.append(adaptive_ratio)
        best_static_speedups.append(per_split[best_key])
        default_speedups.append(per_split["128/128"])
        rows.append([
            app,
            per_split["96/160"],
            per_split["128/128"],
            per_split["160/96"],
            adaptive_ratio,
            best_key,
        ])

    summary = {
        "adaptive_speedup": geomean(adaptive_speedups),
        "static_128_128_speedup": geomean(default_speedups),
        "best_static_speedup": geomean(best_static_speedups),
    }
    summary["adaptive_vs_default"] = (summary["adaptive_speedup"]
                                      / summary["static_128_128_speedup"])
    return ExperimentResult(
        experiment="ext_adaptive_split",
        title="Adaptive ACRF/PCRF boundary vs static splits",
        headers=["app", "96/160", "128/128", "160/96", "adaptive",
                 "best_static"],
        rows=rows,
        summary=summary,
        notes=("Extension beyond the paper: the adaptive boundary should "
               "track each app's best static split (oracle) from the "
               "paper's default without per-app tuning."),
    )


def plan(runner: ExperimentRunner,
         apps: Sequence[str] = DEFAULT_APPS):
    requests = []
    for app in apps:
        requests += [RunRequest.make(app, "baseline"),
                     RunRequest.make(app, "finereg_adaptive")]
        for acrf_kb, pcrf_kb in STATIC_SPLITS:
            config = runner.base_config.with_rf_split(acrf_kb, pcrf_kb)
            requests.append(RunRequest.make(app, "finereg", config=config))
    return requests


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
