"""Shared experiment runner.

Builds (workload, config, policy) simulations and memoizes their results so
figures that share runs (12/13/16 all use the same five configurations, for
instance) never recompute.  All experiment modules go through this class.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.config import GPUConfig, SMALL, Scale, default_config
from repro.policies.baseline import BaselinePolicy
from repro.policies.finereg import FineRegPolicy
from repro.policies.finereg_adaptive import AdaptiveFineRegPolicy
from repro.policies.reg_dram import RegDRAMPolicy
from repro.policies.regmutex import RegMutexPolicy
from repro.policies.unified_memory import apply_unified_memory
from repro.policies.virtual_thread import VirtualThreadPolicy
from repro.sim.gpu import GPU
from repro.sim.stats import SimResult
from repro.workloads.generator import WorkloadInstance, build_workload
from repro.workloads.suite import get_spec

#: Name -> policy factory-factory.  Each entry returns a per-SM factory.
POLICIES: Dict[str, Callable] = {
    "baseline": lambda **kw: BaselinePolicy,
    "virtual_thread": lambda **kw: VirtualThreadPolicy,
    "reg_dram": lambda **kw: (
        lambda sm: RegDRAMPolicy(
            sm, dram_pending_limit=kw.get("dram_pending_limit", 8))
    ),
    "vt_regmutex": lambda **kw: (
        lambda sm: RegMutexPolicy(sm, srp_ratio=kw.get("srp_ratio", 0.28))
    ),
    "finereg": lambda **kw: FineRegPolicy,
    "finereg_adaptive": lambda **kw: AdaptiveFineRegPolicy,
}

#: The four configurations of Figs 12/13/16 plus the baseline.
MAIN_POLICIES = ("baseline", "virtual_thread", "reg_dram", "vt_regmutex",
                 "finereg")


class ExperimentRunner:
    """Memoized simulation driver for the experiment modules."""

    def __init__(self, scale: Scale = SMALL,
                 config: Optional[GPUConfig] = None) -> None:
        self.scale = scale
        self.base_config = config if config is not None \
            else default_config(scale)
        self._results: Dict[Tuple, SimResult] = {}
        self._workloads: Dict[Tuple, WorkloadInstance] = {}

    # ------------------------------------------------------------------
    def workload(self, abbrev: str,
                 config: Optional[GPUConfig] = None) -> WorkloadInstance:
        """The workload instance for a benchmark.

        The grid is sized from the *unscaled* Table-I configuration (at the
        requested SM count) so that resource-scaling experiments (Figs 2, 4,
        17, 18) compare identical launches across configurations.
        """
        num_sms = (config if config is not None else self.base_config).num_sms
        reference = self.base_config.with_num_sms(num_sms)
        key = (abbrev, num_sms, self.scale.name)
        instance = self._workloads.get(key)
        if instance is None:
            instance = build_workload(get_spec(abbrev), reference, self.scale)
            self._workloads[key] = instance
        return instance

    # ------------------------------------------------------------------
    def run(self, abbrev: str, policy: str,
            config: Optional[GPUConfig] = None,
            sample_usage: bool = False,
            unified_memory: bool = False,
            **policy_kwargs) -> SimResult:
        """Simulate one benchmark under one policy (memoized)."""
        config = config if config is not None else self.base_config
        key = (abbrev, policy, self._config_key(config), sample_usage,
               unified_memory, tuple(sorted(policy_kwargs.items())))
        cached = self._results.get(key)
        if cached is not None:
            return cached

        instance = self.workload(abbrev, config)
        try:
            factory = POLICIES[policy](**policy_kwargs)
        except KeyError:
            known = ", ".join(sorted(POLICIES))
            raise KeyError(f"unknown policy {policy!r}; known: {known}")
        gpu = GPU(
            config,
            instance.kernel,
            factory,
            instance.trace_provider,
            instance.address_model,
            liveness=instance.liveness,
            sample_usage=sample_usage,
        )
        if unified_memory:
            apply_unified_memory(gpu, reserve_pcrf=(policy == "finereg"))
        result = gpu.run(max_cycles=self.scale.max_cycles)
        self._results[key] = result
        return result

    def run_main_configs(self, abbrev: str) -> Dict[str, SimResult]:
        """All five Fig-12/13 configurations for one benchmark."""
        return {policy: self.run(abbrev, policy) for policy in MAIN_POLICIES}

    # ------------------------------------------------------------------
    @staticmethod
    def _config_key(config: GPUConfig) -> Tuple:
        return (
            config.num_sms,
            config.max_ctas_per_sm,
            config.max_warps_per_sm,
            config.max_threads_per_sm,
            config.register_file_bytes,
            config.pcrf_bytes,
            config.shared_memory_bytes,
            config.l1_size_bytes,
            round(config.dram_bandwidth_gbps, 3),
        )
