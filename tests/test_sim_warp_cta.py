"""Tests for warp and CTA simulation state."""

import pytest

from repro.sim.cta import CTASim, CTAState
from repro.sim.warp import FOREVER, WarpSim, WarpState


def make_cta(num_warps=2, trace=(0, 1, 2)):
    warps = [WarpSim(i, 100 + i, 7, list(trace)) for i in range(num_warps)]
    cta = CTASim(7, warps)
    for warp in warps:
        warp.cta = cta
    return cta


class TestWarpState:
    def test_initially_runnable(self):
        cta = make_cta()
        warp = cta.warps[0]
        assert warp.is_runnable(0)
        assert not warp.is_blocked(0)

    def test_blocked_until(self):
        warp = make_cta().warps[0]
        warp.blocked_until = 50
        assert not warp.is_runnable(10)
        assert warp.is_blocked(10)
        assert warp.remaining_block(10) == 40
        assert warp.is_runnable(50)

    def test_finish(self):
        warp = make_cta().warps[0]
        warp.finish()
        assert warp.finished
        assert not warp.is_runnable(0)
        assert warp.remaining_block(0) == FOREVER

    def test_operands_ready_at(self):
        warp = make_cta().warps[0]
        warp.ready_at[3] = 120
        warp.ready_at[4] = 80
        assert warp.operands_ready_at((3, 4)) == 120
        assert warp.operands_ready_at((4,)) == 80
        assert warp.operands_ready_at((9,)) == 0

    def test_barrier_wait_and_release(self):
        warp = make_cta().warps[0]
        warp.wait_at_barrier()
        assert warp.state is WarpState.AT_BARRIER
        assert warp.blocked_until == FOREVER
        warp.release_barrier(10)
        assert warp.state is WarpState.RUNNABLE
        assert warp.is_runnable(10)

    def test_release_ignores_non_barrier_warps(self):
        warp = make_cta().warps[0]
        warp.blocked_until = 99
        warp.release_barrier(10)
        assert warp.blocked_until == 99

    def test_unique_address_bases(self):
        cta = make_cta()
        bases = {warp.stream_base for warp in cta.warps}
        assert len(bases) == len(cta.warps)


class TestCTAStall:
    def test_not_stalled_with_runnable_warp(self):
        cta = make_cta()
        cta.warps[0].blocked_until = 100
        assert not cta.fully_stalled(0)

    def test_fully_stalled(self):
        cta = make_cta()
        for warp in cta.warps:
            warp.blocked_until = 500
        assert cta.fully_stalled(0)
        assert cta.fully_stalled(0, min_remaining=400)
        assert not cta.fully_stalled(0, min_remaining=600)

    def test_finished_warps_do_not_block_stall(self):
        cta = make_cta()
        cta.warps[0].finish()
        cta.warps[1].blocked_until = 500
        assert cta.fully_stalled(0)

    def test_all_finished_is_not_stalled(self):
        cta = make_cta()
        for warp in cta.warps:
            warp.finish()
        assert not cta.fully_stalled(0)
        assert cta.finished

    def test_earliest_resume(self):
        cta = make_cta()
        cta.warps[0].blocked_until = 300
        cta.warps[1].blocked_until = 200
        assert cta.earliest_resume(0) == 200
        assert cta.earliest_resume(250) == 250

    def test_is_ready(self):
        cta = make_cta()
        for warp in cta.warps:
            warp.blocked_until = 100
        assert not cta.is_ready(50)
        assert cta.is_ready(100)


class TestBarrierBookkeeping:
    def test_release_when_all_arrive(self):
        cta = make_cta(num_warps=3)
        assert not cta.arrive_at_barrier(cta.warps[0], 0)
        assert not cta.arrive_at_barrier(cta.warps[1], 0)
        assert cta.arrive_at_barrier(cta.warps[2], 0)
        assert all(w.is_runnable(0) for w in cta.warps)
        assert cta.barrier_arrived == 0

    def test_finished_warp_lowers_quorum(self):
        cta = make_cta(num_warps=3)
        cta.arrive_at_barrier(cta.warps[0], 0)
        cta.arrive_at_barrier(cta.warps[1], 0)
        cta.warps[2].finish()
        assert cta.maybe_release_barrier(5)
        assert cta.warps[0].is_runnable(5)


class TestTransit:
    def test_transit_settles_at_deadline(self):
        cta = make_cta()
        cta.begin_transit(until=100, target=CTAState.PENDING)
        assert cta.state is CTAState.TRANSIT
        assert not cta.settle_transit(99)
        assert cta.settle_transit(100)
        assert cta.state is CTAState.PENDING
        assert cta.pending_since == 100

    def test_transit_to_active(self):
        cta = make_cta()
        cta.begin_transit(until=10, target=CTAState.ACTIVE)
        cta.settle_transit(20)
        assert cta.state is CTAState.ACTIVE
