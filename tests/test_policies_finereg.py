"""Tests for the FineReg policy: ACRF/PCRF management end to end."""

import pytest

from repro.config import GPUConfig, TINY


class TestResidency:
    def test_exceeds_baseline_residency(self, tiny_runner):
        base = tiny_runner.run("KM", "baseline")
        fine = tiny_runner.run("KM", "finereg")
        assert fine.avg_resident_ctas_per_sm > base.avg_resident_ctas_per_sm

    def test_gains_residency_even_for_type_r(self, tiny_runner):
        """Unlike VT, FineReg adds CTAs to register-bound apps (Fig 12)."""
        vt = tiny_runner.run("LB", "virtual_thread")
        fine = tiny_runner.run("LB", "finereg")
        assert fine.max_resident_ctas > vt.max_resident_ctas

    def test_pcrf_traffic_stays_on_chip(self, tiny_runner):
        """FineReg's only off-chip extra is the 12-byte bit vectors."""
        fine = tiny_runner.run("KM", "finereg")
        extra = fine.dram_traffic_by_class.get("bitvector", 0)
        assert "context_spill" not in fine.dram_traffic_by_class
        if fine.cta_switch_events:
            assert extra % 12 == 0

    def test_bitvector_cache_mostly_hits(self, tiny_runner):
        """Paper V-C: few static PCs cause stalls, so 32 entries suffice."""
        fine = tiny_runner.run("KM", "finereg")
        if fine.bitvector_hit_rate is not None:
            assert fine.bitvector_hit_rate > 0.8

    def test_pcrf_reads_and_writes_balance(self, tiny_runner):
        """Everything spilled must eventually be restored (grid completes)."""
        fine = tiny_runner.run("KM", "finereg")
        assert fine.pcrf_reads == fine.pcrf_writes

    def test_completes_grid(self, tiny_runner):
        fine = tiny_runner.run("KM", "finereg")
        instance = tiny_runner.workload("KM")
        assert fine.completed_ctas == instance.kernel.geometry.grid_ctas

    def test_work_is_policy_invariant(self, tiny_runner):
        base = tiny_runner.run("KM", "baseline")
        fine = tiny_runner.run("KM", "finereg")
        assert fine.instructions == base.instructions


class TestRFSplit:
    def test_small_acrf_limits_actives(self, tiny_runner):
        """Fig 17: a 64 KB ACRF halves the active complement vs 128 KB."""
        small = tiny_runner.base_config.with_rf_split(64, 192)
        fine_small = tiny_runner.run("LB", "finereg", config=small)
        fine_default = tiny_runner.run("LB", "finereg")
        assert fine_small.avg_active_ctas_per_sm \
            <= fine_default.avg_active_ctas_per_sm + 1e-9

    def test_extreme_splits_still_complete(self, tiny_runner):
        """Both Fig 17 extremes must be functionally correct."""
        instance = tiny_runner.workload("LI")
        for split in ((64, 192), (192, 64)):
            config = tiny_runner.base_config.with_rf_split(*split)
            result = tiny_runner.run("LI", "finereg", config=config)
            assert result.completed_ctas \
                == instance.kernel.geometry.grid_ctas
            assert not result.timed_out


class TestUnifiedMemory:
    def test_um_grows_l1(self, tiny_runner):
        """Fig 19: the UM pool turns unused capacity into L1."""
        base = tiny_runner.run("KM", "baseline")
        um = tiny_runner.run("KM", "baseline", unified_memory=True)
        # KM has no shared memory: the whole 272 KB pool becomes L1, so
        # hit rates cannot get worse.
        assert um.l1_hit_rate >= base.l1_hit_rate - 0.01

    def test_finereg_um_reserves_pcrf(self, tiny_runner):
        fr_um = tiny_runner.run("KM", "finereg", unified_memory=True)
        instance = tiny_runner.workload("KM")
        assert fr_um.completed_ctas == instance.kernel.geometry.grid_ctas

    def test_um_l1_sizing(self):
        from repro.policies.unified_memory import (
            MIN_L1_BYTES,
            UM_POOL_BYTES,
            unified_l1_bytes,
        )
        from repro.isa.kernel import Kernel, LaunchGeometry
        from conftest import build_linear_cfg
        config = GPUConfig()
        kernel = Kernel("k", build_linear_cfg(),
                        LaunchGeometry(64, 4), regs_per_thread=8)
        # No shmem, no PCRF reservation: the full pool becomes L1.
        assert unified_l1_bytes(config, kernel, reserve_pcrf=False) \
            == UM_POOL_BYTES
        # Reserving the PCRF carves 128 KB out.
        reserved = unified_l1_bytes(config, kernel, reserve_pcrf=True)
        assert reserved == UM_POOL_BYTES - config.pcrf_bytes

    def test_um_respects_minimum_l1(self):
        from repro.policies.unified_memory import (
            MIN_L1_BYTES,
            unified_l1_bytes,
        )
        from repro.isa.kernel import Kernel, LaunchGeometry
        from conftest import build_linear_cfg
        config = GPUConfig()
        kernel = Kernel("k", build_linear_cfg(),
                        LaunchGeometry(256, 4), regs_per_thread=8,
                        shmem_per_cta=32 * 1024)
        l1 = unified_l1_bytes(config, kernel, reserve_pcrf=True)
        assert l1 >= MIN_L1_BYTES
        granule = config.l1_assoc * config.cache_line_bytes
        assert l1 % granule == 0
