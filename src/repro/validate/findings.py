"""Shared finding/report types for the static and dynamic checkers.

Both validation layers speak the same vocabulary: a :class:`Finding` is one
diagnosed problem with a stable machine-readable ``tag``, a
:class:`Severity`, a human-readable message, and an optional source location
(CFG block / instruction PC for kernel findings, file / line for lint
findings).  :class:`FindingReport` aggregates findings and answers the only
question a gate cares about: *are there errors?*

The runtime sanitizer (:mod:`repro.validate.sanitizer`) predates this module
and keeps its own ``InvariantViolation`` type; the static verifier and the
determinism lint (:mod:`repro.analyze`) are built on these types, and the
golden-corpus schema check reports through them as well.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Severity(enum.Enum):
    """How bad a finding is.

    ERROR findings fail gates (CI, ``build_workload`` verification);
    WARNING findings are surfaced but only fail under ``--strict``;
    INFO findings are purely advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One diagnosed problem.

    ``tag`` is the stable identifier gates and suppressions key on (e.g.
    ``cfg-unreachable``, ``barrier-divergence``, ``unseeded-random``).
    Exactly one location family is populated: kernel findings carry
    ``block``/``pc``, lint findings carry ``path``/``line``.
    """

    tag: str
    severity: Severity
    message: str
    source: str = ""                 # kernel name or lint pass name
    block: Optional[int] = None      # CFG basic-block id
    pc: Optional[int] = None         # instruction PC within the kernel
    path: Optional[str] = None       # file path (lint findings)
    line: Optional[int] = None       # 1-based line number (lint findings)

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    @property
    def location(self) -> str:
        """Short human-readable location string."""
        if self.path is not None:
            where = self.path
            if self.line is not None:
                where += f":{self.line}"
            return where
        parts = []
        if self.source:
            parts.append(self.source)
        if self.block is not None:
            parts.append(f"B{self.block}")
        if self.pc is not None and self.pc >= 0:
            parts.append(f"0x{self.pc:04x}")
        return "/".join(parts) if parts else "<unknown>"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view (``--json`` CLI output)."""
        payload: Dict[str, object] = {
            "tag": self.tag,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.source:
            payload["source"] = self.source
        for key in ("block", "pc", "path", "line"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return payload

    def format(self) -> str:
        return (f"{self.severity.value.upper():7} {self.tag:22} "
                f"{self.location}: {self.message}")


@dataclass
class FindingReport:
    """An ordered collection of findings with gate helpers."""

    findings: List[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    @property
    def errors(self) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings
                     if f.severity is Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return any(f.severity is Severity.ERROR for f in self.findings)

    def by_tag(self, tag: str) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.tag == tag)

    @property
    def tags(self) -> Tuple[str, ...]:
        return tuple(sorted({f.tag for f in self.findings}))

    def to_dicts(self) -> List[Dict[str, object]]:
        return [f.to_dict() for f in self.findings]

    def format(self, header: Optional[str] = None) -> str:
        lines = [] if header is None else [header]
        lines.extend(f.format() for f in self.findings)
        return "\n".join(lines)
