"""Bench: the ablation studies and the adaptive-split extension."""

from conftest import regenerate
from repro.experiments import (
    ablation_bitvector_cache,
    ablation_pcrf_latency,
    ablation_switch_policy,
    ext_adaptive_split,
)


def test_ablation_bitvector_cache(benchmark, runner):
    result = regenerate(benchmark, ablation_bitvector_cache.run, runner)
    s = result.summary
    # Paper V-C: 32 entries suffice; hit rate saturates there.
    assert s["hit_rate_32"] >= s["hit_rate_1"]
    assert s["hit_rate_64"] - s["hit_rate_32"] < 0.05
    assert s["hit_rate_32"] > 0.80


def test_ablation_switch_policy(benchmark, runner):
    result = regenerate(benchmark, ablation_switch_policy.run, runner)
    s = result.summary
    # An absurdly high park threshold forfeits most of the benefit.
    assert s["speedup_park_160"] >= s["speedup_park_640"] - 0.05
    assert s["speedup_gto"] > 0.9


def test_ablation_pcrf_latency(benchmark, runner):
    result = regenerate(benchmark, ablation_pcrf_latency.run, runner)
    s = result.summary
    # Paper V-E: switching latency is hidden -- degrade gracefully.
    assert s["speedup_lat_128"] > 0.7 * s["speedup_lat_4"]


def test_ext_adaptive_split(benchmark, runner):
    result = regenerate(benchmark, ext_adaptive_split.run, runner)
    s = result.summary
    # The adaptive boundary must not lose to the fixed default, and the
    # per-app oracle bounds it from above.
    assert s["adaptive_vs_default"] > 0.95
    assert s["adaptive_speedup"] <= s["best_static_speedup"] + 0.05
