"""Schema validation for the campaign JSONL event log.

Same philosophy as ``repro.telemetry.schema`` and the golden-file checks:
the log is consumed by other tools (``repro obs summarize``, the Perfetto
exporter, CI step summaries), so a malformed line must fail with a message
naming the broken field, not crash a reader three layers downstream.

Every event shares the envelope ``{"v": <schema>, "t": <monotonic s>,
"ev": <type>}`` plus per-type payload fields.  Field specs below use
``float`` to mean "int or float", and booleans are checked strictly
(``True`` must not satisfy an ``int`` field and vice versa).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Bump when the event-log layout changes.
OBS_SCHEMA_VERSION = 1

#: Span kinds the log may carry (mirrors ``repro.obs.spans.SPAN_KINDS``
#: without importing it: the validator must stand alone for log readers).
_KINDS = ("campaign", "request", "phase")

#: type spec -> checker.  ``"float"`` accepts ints; ``"int"`` rejects bools.
_CHECKS = {
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "str": lambda v: isinstance(v, str),
    "bool": lambda v: isinstance(v, bool),
    "int|null": lambda v: v is None
    or (isinstance(v, int) and not isinstance(v, bool)),
    "float|null": lambda v: v is None
    or (isinstance(v, (int, float)) and not isinstance(v, bool)),
    "kind": lambda v: v in _KINDS,
}

#: Per-event required and optional payload fields (beyond the envelope).
EVENT_FIELDS: Dict[str, Tuple[Dict[str, str], Dict[str, str]]] = {
    "campaign_start": ({"label": "str", "total": "int", "jobs": "int"}, {}),
    "campaign_end": ({"completed": "int"}, {}),
    "span_open": ({"span": "int", "name": "str", "kind": "kind"},
                  {"parent": "int|null", "worker": "int"}),
    "span_close": ({"span": "int", "name": "str", "kind": "kind",
                    "t_start": "float", "dur_s": "float"},
                   {"parent": "int|null", "worker": "int"}),
    "cache_lookup": ({"key": "str", "hit": "bool", "latency_s": "float"},
                     {}),
    "cache_store": ({"key": "str", "bytes": "int", "latency_s": "float"},
                    {}),
    "worker_start": ({"worker": "int"}, {}),
    "worker_stop": ({"worker": "int", "runs": "int"}, {}),
    "heartbeat": ({"worker": "int", "completed": "int"}, {}),
    "stall": ({"worker": "int", "idle_s": "float"}, {}),
    "run_complete": ({"index": "int", "abbrev": "str", "policy": "str",
                      "dur_s": "float"},
                     {"worker": "int", "cached": "bool"}),
    "progress": ({"completed": "int", "total": "int"},
                 {"eta_s": "float|null"}),
}

_MAX_PROBLEMS = 10


def check_obs_event(event: object) -> List[str]:
    """Schema problems in one event object (empty list = valid)."""
    if not isinstance(event, dict):
        return [f"event must be a JSON object, got {type(event).__name__}"]
    problems: List[str] = []
    version = event.get("v")
    if version != OBS_SCHEMA_VERSION:
        problems.append(f"schema version {version!r} != "
                        f"{OBS_SCHEMA_VERSION}")
    if not _CHECKS["float"](event.get("t")):
        problems.append("missing or mistyped envelope field 't' (seconds)")
    ev = event.get("ev")
    if ev not in EVENT_FIELDS:
        problems.append(f"unknown event type {ev!r}")
        return problems
    required, optional = EVENT_FIELDS[ev]
    for field, spec in required.items():
        if field not in event:
            problems.append(f"{ev}: missing required field {field!r}")
        elif not _CHECKS[spec](event[field]):
            problems.append(f"{ev}: field {field!r} must be {spec}, got "
                            f"{event[field]!r}")
    for field, spec in optional.items():
        if field in event and not _CHECKS[spec](event[field]):
            problems.append(f"{ev}: optional field {field!r} must be "
                            f"{spec}, got {event[field]!r}")
    return problems


def check_obs_log_text(text: str) -> List[str]:
    """Schema problems across a whole JSONL log document."""
    import json

    problems: List[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if len(problems) >= _MAX_PROBLEMS:
            problems.append("... further problems suppressed")
            break
        try:
            event = json.loads(line)
        except ValueError as exc:
            problems.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        for problem in check_obs_event(event):
            problems.append(f"line {lineno}: {problem}")
    return problems
