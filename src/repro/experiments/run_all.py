"""Full evaluation campaign: regenerate every table and figure in one pass.

Writes a markdown report (default ``results/REPORT.md``) with every
experiment's rendered table plus the headline summary numbers, reusing one
memoizing runner so shared simulations (Figs 12/13/16) only run once.

Each module's ``plan()`` (its full request set) is collected up front and
prefetched over a process pool (``--jobs``, default ``os.cpu_count()``),
so the serial ``run()`` loop afterwards is pure memo/report work.

Run::

    python -m repro.experiments.run_all [--scale small] [--out results]
                                        [--jobs N]
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
from contextlib import nullcontext
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.config import SCALES
from repro.experiments.runner import ExperimentRunner
from repro.obs import OBS_LOG_ENV, ObsSession, obs_enabled
from repro.obs import clock
from repro.obs.spans import phase_rows
from repro.telemetry.rollup import render_rollup, rollup_results
from repro.telemetry.selfprof import SelfProfiler

#: (module, headline summary keys) in paper order.
CAMPAIGN = (
    ("fig02_resources", ("type_s_sched_x2", "type_r_mem_x2")),
    ("fig03_cta_overhead", ("register_share",)),
    ("fig04_case_study", ("full_rf_speedup", "ideal_speedup")),
    ("fig05_register_usage", ("mean_usage",)),
    ("table03_stall_time", ("min_cycles", "max_cycles")),
    ("fig12_concurrent_ctas", ("finereg_cta_ratio",)),
    ("fig12_concurrent_kernels", ("finereg_concurrent_cta_ratio",
                                  "finereg_concurrent_speedup")),
    ("fig13_performance", ("finereg_speedup", "virtual_thread_speedup",
                           "reg_dram_speedup", "vt_regmutex_speedup")),
    ("fig14_rf_stalls", ("regmutex_stall_fraction",
                         "finereg_stall_fraction")),
    ("fig15_memory_traffic", ("reg_dram_traffic_ratio",
                              "finereg_traffic_ratio")),
    ("fig16_energy", ("finereg_energy_ratio",)),
    ("fig17_rf_sensitivity", ("speedup_128_128", "speedup_64_192")),
    ("fig18_sm_scaling", ("finereg_speedup_16sm",)),
    ("fig19_unified_memory", ("um_speedup", "finereg_um_speedup")),
    ("ablation_bitvector_cache", ("hit_rate_32",)),
    ("ablation_switch_policy", ("speedup_gto",)),
    ("ablation_pcrf_latency", ("speedup_lat_4",)),
    ("ext_adaptive_split", ("adaptive_vs_default",)),
)


def campaign_plan(runner: ExperimentRunner,
                  modules: Optional[Sequence[str]] = None) -> List:
    """Every plannable request in the selected campaign, in module order.

    Duplicates across modules (Figs 12/13/16 share all their runs) are
    fine: ``run_many`` dedupes before dispatch.
    """
    requests = []
    for name, __ in CAMPAIGN:
        if modules is not None and name not in modules:
            continue
        module = importlib.import_module(f"repro.experiments.{name}")
        plan = getattr(module, "plan", None)
        if plan is not None:
            requests.extend(plan(runner))
    return requests


def run_campaign(runner: ExperimentRunner,
                 modules: Optional[Sequence[str]] = None,
                 jobs: Optional[int] = None,
                 profiler: Optional[SelfProfiler] = None) -> List:
    """Run every experiment; returns the ExperimentResult list.

    With ``jobs != 1`` the combined module plans are prefetched over a
    process pool first; the per-module ``run()`` calls below then hit the
    runner's memo for everything except result-dependent follow-ups
    (e.g. Fig 18's resource-scaled baseline).

    ``profiler`` (a :class:`~repro.telemetry.selfprof.SelfProfiler`)
    records the campaign's own wall-clock phases and simulated
    cycles-per-second throughput.
    """
    if profiler is None:
        profiler = SelfProfiler()
    obs = getattr(runner, "obs", None)

    def obs_phase(name: str):
        return obs.phase(name) if obs is not None else nullcontext()

    if jobs is None or jobs > 1:
        with profiler.phase("plan+prefetch") as timer, \
                obs_phase("plan+prefetch"):
            runner.run_many(campaign_plan(runner, modules), jobs=jobs)
            timer.sim_cycles = sum(
                r.cycles for __, r in runner.memoized_results())
    results = []
    with profiler.phase("render"), obs_phase("render"):
        for name, __ in CAMPAIGN:
            if modules is not None and name not in modules:
                continue
            module = importlib.import_module(f"repro.experiments.{name}")
            started = clock.monotonic()
            with obs_phase(f"render:{name}"):
                result = module.run(runner)
            result.summary["_elapsed_s"] = clock.monotonic() - started
            results.append(result)
    return results


def write_report(results, path: Path, scale_name: str,
                 rollup_text: Optional[str] = None,
                 phase_breakdown: Optional[
                     Sequence[Tuple[str, str, float]]] = None) -> None:
    lines = [
        "# FineReg reproduction — full evaluation campaign",
        "",
        f"Scale preset: `{scale_name}`. One row per paper table/figure; "
        "see EXPERIMENTS.md for paper-vs-measured commentary.",
        "",
    ]
    for result in results:
        lines.append(f"## {result.experiment}: {result.title}")
        lines.append("")
        lines.append("```")
        lines.append(result.to_text())
        lines.append("```")
        lines.append("")
    if rollup_text:
        lines.append("## Telemetry roll-up")
        lines.append("")
        lines.append("Stall attribution and CTA-switch overhead budgets "
                     "across every run of the campaign (docs/TELEMETRY.md).")
        lines.append("")
        lines.append("```")
        lines.append(rollup_text)
        lines.append("```")
        lines.append("")
    if phase_breakdown:
        lines.append("## Campaign phase breakdown")
        lines.append("")
        lines.append("Wall-clock spans of the orchestration tier "
                     "(docs/TELEMETRY.md, \"Orchestration observability\"); "
                     "child phases sum to at most their parent.")
        lines.append("")
        lines.append("```")
        for within, name, dur_s in phase_breakdown:
            lines.append(f"{within:>14} / {name:<24} {dur_s:10.3f}s")
        lines.append("```")
        lines.append("")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(lines))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=sorted(SCALES))
    parser.add_argument("--out", default="results")
    parser.add_argument("--only", default=None,
                        help="comma-separated module subset")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the campaign pool "
                             "(default: all CPUs; 1 = serial)")
    parser.add_argument("--progress", action="store_true",
                        help="live completed/total + ETA on stderr "
                             "(stall warnings land in the obs log)")
    parser.add_argument("--obs-log", default=None, metavar="PATH",
                        help="write the campaign JSONL event log here "
                             "(default with REPRO_OBS=1: <out>/obs.jsonl; "
                             "inspect with `repro obs`)")
    args = parser.parse_args(argv)

    runner = ExperimentRunner(scale=SCALES[args.scale])
    modules = args.only.split(",") if args.only else None
    profiler = SelfProfiler()

    # The observability session always runs in-memory (spans feed the
    # REPORT.md breakdown); the JSONL log is written only when asked for.
    log_path = args.obs_log
    if log_path is None and obs_enabled():
        log_path = os.environ.get(OBS_LOG_ENV) \
            or str(Path(args.out) / "obs.jsonl")
    session = ObsSession(log_path=log_path, progress=args.progress)
    runner.attach_obs(session)
    from repro.experiments.parallel import default_jobs
    planned = len(set(campaign_plan(runner, modules)))
    session.campaign_begin(
        total=planned,
        jobs=args.jobs if args.jobs is not None else default_jobs(),
        label=f"run_all:{args.scale}")

    results = run_campaign(runner, modules, jobs=args.jobs,
                           profiler=profiler)
    rollup = rollup_results(runner.memoized_results())
    report = Path(args.out) / "REPORT.md"
    with profiler.phase("report"), session.phase("report"):
        write_report(results, report, args.scale,
                     rollup_text=render_rollup(rollup),
                     phase_breakdown=phase_rows(session.recorder.spans))
    session.campaign_end()
    session.close()
    bench = Path(args.out) / "BENCH_campaign.json"
    payload = profiler.as_payload()
    payload["rollup"] = rollup
    payload["obs"] = session.summary()
    bench.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {report} ({len(results)} experiments)")
    print(f"wrote {bench} (self-profile, {profiler.total_wall_s:.1f}s)")
    if log_path:
        rate = session.metrics.hit_rate()
        rate_text = f"{rate:.1%}" if rate is not None else "n/a"
        print(f"wrote {log_path} (obs log; cache hit rate {rate_text})")
    for result in results:
        keys = [k for k in result.summary if not k.startswith("_")][:3]
        brief = ", ".join(f"{k}={result.summary[k]:.3g}" for k in keys)
        print(f"  {result.experiment:22} {brief}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys
    sys.exit(main())
