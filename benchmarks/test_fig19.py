"""Bench: regenerate paper Fig 19 (unified on-chip memory combinations)."""

from conftest import regenerate
from repro.experiments import fig19_unified_memory


def test_fig19_unified_memory(benchmark, runner):
    result = regenerate(benchmark, fig19_unified_memory.run, runner)
    s = result.summary
    # Shape: the UM pool alone helps; adding FineReg on top helps more
    # (paper: UM +17.6%, FineReg+UM +35.6% over UM-only).
    assert s["um_speedup"] >= 1.0
    assert s["finereg_um_speedup"] > s["um_speedup"]
    assert s["finereg_um_vs_um"] > 1.0
    assert s["vt_um_vs_um"] > 0.99
