"""Top-level GPU: SMs + shared memory hierarchy + the simulation loop.

The loop steps all SMs one cycle at a time but skips ahead over dead time:
when no SM issues anything, the clock jumps to the earliest future event
(warp wake-up, switch completion, pending-CTA readiness).  This keeps pure
Python simulation tractable without changing any observable timing.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

from repro.config import GPUConfig
from repro.core.liveness import LivenessAnalysis, LivenessTable
from repro.isa.kernel import Kernel
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.stats import SimResult
from repro.sim.warp import FOREVER

#: A policy factory builds one policy instance for a given SM.
PolicyFactory = Callable[[StreamingMultiprocessor], "object"]


class GPU:
    """A simulated GPU executing one kernel launch."""

    def __init__(self, config: GPUConfig, kernel: Kernel,
                 policy_factory: PolicyFactory,
                 trace_provider, address_model,
                 liveness: Optional[LivenessTable] = None,
                 sample_usage: bool = False) -> None:
        self.config = config
        self.kernel = kernel
        self.trace_provider = trace_provider
        self.address_model = address_model
        self.liveness = liveness if liveness is not None else \
            LivenessAnalysis(kernel.cfg).run(kernel.regs_per_thread)
        self.hierarchy = MemoryHierarchy(config)
        self.tracer = None  # set by sim.tracing.attach_tracer
        self.warp_tracer = None  # set by attach_tracer(level="warp")
        self.sanitizer = None  # set by validate.sanitizer.attach_sanitizer
        self.telemetry = None  # set by telemetry.session.attach_telemetry
        if hasattr(address_model, "warm_l2"):
            address_model.warm_l2(self.hierarchy.l2)
        self._grid = deque(range(kernel.geometry.grid_ctas))
        self.completed_ctas = 0
        self.sms: List[StreamingMultiprocessor] = []
        for sm_id in range(config.num_sms):
            sm = StreamingMultiprocessor(sm_id, config, kernel, self,
                                         sample_usage=sample_usage)
            sm.policy = policy_factory(sm)
            self.sms.append(sm)

    # ------------------------------------------------------------------
    # Grid dispatch
    # ------------------------------------------------------------------
    def next_cta(self) -> Optional[int]:
        if not self._grid:
            return None
        return self._grid.popleft()

    @property
    def ctas_remaining(self) -> int:
        return len(self._grid)

    # ------------------------------------------------------------------
    def run(self, max_cycles: int = 10_000_000) -> SimResult:
        """Simulate until the grid drains; returns the aggregate result."""
        now = 0
        # Initial fill.
        for sm in self.sms:
            sm.policy.fill(now)
        timed_out = False
        sms = self.sms
        sanitizer = self.sanitizer
        telemetry = self.telemetry
        while True:
            if not self._grid and all(not sm.busy for sm in sms):
                break
            if now >= max_cycles:
                timed_out = True
                break
            issued = 0
            for sm in sms:
                sm_issued = sm.step(now)
                if not sm_issued and sm.busy:
                    # This SM starves: let its policy switch CTAs.
                    sm.policy.on_idle(now)
                issued += sm_issued
            if sanitizer is not None:
                sanitizer.on_cycle(now)
            if issued:
                dt = 1
                idle = False
            else:
                nxt = self._next_event(now)
                if nxt >= FOREVER:
                    self._raise_deadlock(now)
                dt = max(1, nxt - now)
                idle = True
            for sm in sms:
                sm.accumulate(dt, idle)
            if telemetry is not None:
                # Sample the same post-step levels accumulate() just
                # integrated over [now, now + dt).
                telemetry.on_advance(now, dt)
            now += dt
        if sanitizer is not None:
            sanitizer.on_run_end(now, timed_out)
        if telemetry is not None:
            telemetry.on_run_end(now)
        return self._build_result(now, timed_out)

    def _next_event(self, now: int) -> int:
        earliest = FOREVER
        for sm in self.sms:
            t = sm.next_event(now)
            if t < earliest:
                earliest = t
        return earliest

    def _raise_deadlock(self, now: int) -> None:
        detail = []
        for sm in self.sms:
            detail.append(
                f"SM{sm.sm_id}: active={len(sm.active_ctas)} "
                f"pending={len(sm.pending_ctas)} transit={len(sm.transit_ctas)}"
            )
        raise RuntimeError(
            f"simulation deadlock at cycle {now} "
            f"(grid remaining={len(self._grid)}): " + "; ".join(detail)
        )

    # ------------------------------------------------------------------
    def _build_result(self, cycles: int, timed_out: bool) -> SimResult:
        cycles = max(1, cycles)
        num_sms = len(self.sms)
        instructions = sum(sm.stats.instructions for sm in self.sms)
        active_cta = sum(sm.stats.active_cta_cycles for sm in self.sms)
        pending_cta = sum(sm.stats.pending_cta_cycles for sm in self.sms)
        warp_cycles = sum(sm.stats.active_warp_cycles for sm in self.sms)
        l1_acc = sum(l1.stats.accesses for l1 in self.hierarchy.l1s)
        l1_hits = sum(l1.stats.read_hits + l1.stats.write_hits
                      for l1 in self.hierarchy.l1s)
        l2 = self.hierarchy.l2.stats
        stall_latencies = [lat for sm in self.sms
                           for lat in sm.stats.stall_latencies]
        window = [u for sm in self.sms for u in sm.stats.window_usage]
        extras: Dict[str, float] = {}
        for sm in self.sms:
            for key, value in sm.policy.extras().items():
                extras[key] = extras.get(key, 0) + value
        bv_hits = extras.get("bitvector_hits")
        bv_misses = extras.get("bitvector_misses")
        bv_rate = None
        if bv_hits is not None and (bv_hits + bv_misses):
            bv_rate = bv_hits / (bv_hits + bv_misses)
        completed = sum(sm.stats.cta_launches for sm in self.sms) \
            - sum(sm.resident_ctas for sm in self.sms)
        return SimResult(
            policy=self.sms[0].policy.name,
            workload=self.kernel.name,
            cycles=cycles,
            instructions=instructions,
            num_sms=num_sms,
            avg_active_ctas_per_sm=active_cta / cycles / num_sms,
            avg_pending_ctas_per_sm=pending_cta / cycles / num_sms,
            max_resident_ctas=max(sm.stats.max_resident_ctas
                                  for sm in self.sms),
            avg_active_threads_per_sm=warp_cycles * 32 / cycles / num_sms,
            dram_traffic_bytes=self.hierarchy.dram_traffic_bytes,
            dram_traffic_by_class=self.hierarchy.traffic_by_class(),
            l1_hit_rate=l1_hits / l1_acc if l1_acc else 0.0,
            l2_hit_rate=l2.hit_rate,
            idle_cycles=sum(sm.stats.idle_cycles for sm in self.sms),
            rf_depletion_cycles=sum(sm.stats.rf_depletion_cycles
                                    for sm in self.sms),
            srp_stall_cycles=sum(sm.stats.srp_stall_cycles
                                 for sm in self.sms),
            cta_switch_events=sum(sm.stats.cta_switch_events
                                  for sm in self.sms),
            rf_reads=sum(sm.stats.rf_reads for sm in self.sms),
            rf_writes=sum(sm.stats.rf_writes for sm in self.sms),
            pcrf_reads=sum(sm.stats.pcrf_reads for sm in self.sms),
            pcrf_writes=sum(sm.stats.pcrf_writes for sm in self.sms),
            shmem_accesses=sum(sm.stats.shmem_accesses for sm in self.sms),
            l1_accesses=l1_acc,
            l2_accesses=l2.accesses,
            mean_stall_latency=(sum(stall_latencies) / len(stall_latencies)
                                if stall_latencies else None),
            window_usage_bounds=((min(window), sum(window) / len(window),
                                  max(window)) if window else None),
            bitvector_hit_rate=bv_rate,
            completed_ctas=completed,
            timed_out=timed_out,
            switch_out_overhead_cycles=sum(
                sm.stats.switch_out_overhead_cycles for sm in self.sms),
            switch_in_overhead_cycles=sum(
                sm.stats.switch_in_overhead_cycles for sm in self.sms),
        )


def run_kernel(config: GPUConfig, kernel: Kernel,
               policy_factory: PolicyFactory, trace_provider, address_model,
               liveness: Optional[LivenessTable] = None,
               sample_usage: bool = False,
               max_cycles: int = 10_000_000,
               post_setup: Optional[Callable[[GPU], None]] = None
               ) -> SimResult:
    """Convenience wrapper: build a GPU, optionally tweak it, and run."""
    gpu = GPU(config, kernel, policy_factory, trace_provider, address_model,
              liveness=liveness, sample_usage=sample_usage)
    if post_setup is not None:
        post_setup(gpu)
    return gpu.run(max_cycles=max_cycles)
