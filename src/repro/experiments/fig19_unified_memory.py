"""Fig 19: unified on-chip local memory (UM) combinations.

UM coalesces PCRF + shared memory + L1 into one 272 KB pool.  The paper
finds UM alone gains 17.6% (mostly apps that turn the pool into a big L1:
AT, BI, KM, SY2), VT+UM adds 6.7% more, and FineReg+UM reaches +35.6% over
the UM-only configuration -- showing FineReg composes with other register
file organizations.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ALL_APPS, ExperimentResult
from repro.experiments.parallel import RunRequest
from repro.experiments.report import geomean
from repro.experiments.runner import ExperimentRunner

CONFIGS = (
    ("UM", "baseline"),
    ("VT+UM", "virtual_thread"),
    ("FineReg+UM", "finereg"),
)


def run(runner: ExperimentRunner,
        apps: Sequence[str] = ALL_APPS) -> ExperimentResult:
    rows = []
    speedups = {label: [] for label, __ in CONFIGS}
    for app in apps:
        base = runner.run(app, "baseline")
        row = [app]
        for label, policy in CONFIGS:
            result = runner.run(app, policy, unified_memory=True)
            ratio = result.ipc / base.ipc
            speedups[label].append(ratio)
            row.append(ratio)
        rows.append(row)

    summary = {f"{label.lower().replace('+', '_')}_speedup":
               geomean(values) for label, values in speedups.items()}
    summary["finereg_um_vs_um"] = (summary["finereg_um_speedup"]
                                   / summary["um_speedup"])
    summary["vt_um_vs_um"] = (summary["vt_um_speedup"]
                              / summary["um_speedup"])
    return ExperimentResult(
        experiment="fig19",
        title="Unified on-chip memory (272 KB pool) combinations vs baseline",
        headers=["app", "UM", "VT+UM", "FineReg+UM"],
        rows=rows,
        summary=summary,
        notes=("Paper: UM alone +17.6%; VT+UM +6.7% over UM; FineReg+UM "
               "+35.6% over UM. Apps with small register/shmem footprints "
               "(AT, BI, KM, SY2) benefit most from the enlarged L1."),
    )


def plan(runner: ExperimentRunner,
         apps: Sequence[str] = ALL_APPS):
    requests = []
    for app in apps:
        requests.append(RunRequest.make(app, "baseline"))
        requests += [RunRequest.make(app, policy, unified_memory=True)
                     for __, policy in CONFIGS]
    return requests


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
