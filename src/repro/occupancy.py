"""Analytical occupancy calculator.

Computes, without simulation, how many CTAs each register-file management
scheme can keep resident on an SM for a given kernel footprint -- the
closed-form counterpart of Fig 12, and a practical planning tool (the
CUDA-occupancy-calculator analogue for this architecture family).

All functions return CTA counts per SM.  The binding-constraint report tells
you *why* the count is what it is (which Table-I limit binds), which is
exactly the Type-S/Type-R classification of Table II.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import GPUConfig


class Limit(enum.Enum):
    """Which hardware resource binds the CTA count."""

    CTA_SLOTS = "cta_slots"
    WARP_SLOTS = "warp_slots"
    THREAD_SLOTS = "thread_slots"
    REGISTERS = "registers"
    SHARED_MEMORY = "shared_memory"
    RESIDENCY = "residency"        # FineReg's 128-CTA monitor cap
    GRID = "grid"


@dataclass(frozen=True)
class KernelFootprint:
    """The resource envelope occupancy depends on."""

    threads_per_cta: int
    regs_per_thread: int
    shmem_per_cta: int = 0
    live_fraction: float = 0.5     # live / allocated registers at stalls

    def __post_init__(self) -> None:
        if self.threads_per_cta <= 0 or self.threads_per_cta % 32:
            raise ValueError("threads_per_cta must be a positive x32")
        if self.regs_per_thread <= 0:
            raise ValueError("regs_per_thread must be positive")
        if not 0.0 < self.live_fraction <= 1.0:
            raise ValueError("live_fraction must be in (0, 1]")

    @property
    def warps_per_cta(self) -> int:
        return self.threads_per_cta // 32

    @property
    def warp_registers_per_cta(self) -> int:
        return self.warps_per_cta * self.regs_per_thread

    @property
    def live_warp_registers_per_cta(self) -> int:
        return max(1, math.ceil(self.warp_registers_per_cta
                                * self.live_fraction))


@dataclass(frozen=True)
class Occupancy:
    """CTA counts and the constraint that produced them."""

    active: int
    resident: int
    binding: Limit

    @property
    def pending(self) -> int:
        return self.resident - self.active


def _scheduler_limits(fp: KernelFootprint, config: GPUConfig
                      ) -> Dict[Limit, int]:
    return {
        Limit.CTA_SLOTS: config.max_ctas_per_sm,
        Limit.WARP_SLOTS: config.max_warps_per_sm // fp.warps_per_cta,
        Limit.THREAD_SLOTS: config.max_threads_per_sm // fp.threads_per_cta,
    }


def _tightest(limits: Dict[Limit, int]) -> tuple:
    binding = min(limits, key=lambda k: limits[k])
    return limits[binding], binding


def baseline_occupancy(fp: KernelFootprint, config: GPUConfig) -> Occupancy:
    """Conventional GPU: full register allocations, no pending CTAs."""
    limits = _scheduler_limits(fp, config)
    limits[Limit.REGISTERS] = (config.rf_warp_registers
                               // fp.warp_registers_per_cta)
    if fp.shmem_per_cta:
        limits[Limit.SHARED_MEMORY] = (config.shared_memory_bytes
                                       // fp.shmem_per_cta)
    count, binding = _tightest(limits)
    count = max(1, count)
    return Occupancy(active=count, resident=count, binding=binding)


def virtual_thread_occupancy(fp: KernelFootprint,
                             config: GPUConfig) -> Occupancy:
    """Virtual Thread: residency bounded by RF/shmem, activity by slots."""
    base = baseline_occupancy(fp, config)
    resident_limits = {
        Limit.REGISTERS: config.rf_warp_registers
        // fp.warp_registers_per_cta,
    }
    if fp.shmem_per_cta:
        resident_limits[Limit.SHARED_MEMORY] = (
            config.shared_memory_bytes // fp.shmem_per_cta)
    resident, binding = _tightest(resident_limits)
    active, __ = _tightest(_scheduler_limits(fp, config))
    active = min(active, resident)
    if resident <= base.resident:
        binding = base.binding
    return Occupancy(active=max(1, active), resident=max(1, resident),
                     binding=binding)


def finereg_occupancy(fp: KernelFootprint, config: GPUConfig) -> Occupancy:
    """FineReg: actives in the ACRF, pendings as live sets in the PCRF."""
    sched, __ = _tightest(_scheduler_limits(fp, config))
    acrf_ctas = config.acrf_entries // fp.warp_registers_per_cta
    active = min(sched, acrf_ctas)
    if fp.shmem_per_cta:
        active = min(active,
                     config.shared_memory_bytes // fp.shmem_per_cta)
    active = max(1, active)
    pcrf_ctas = config.pcrf_entries // fp.live_warp_registers_per_cta
    resident = active + pcrf_ctas
    binding = Limit.REGISTERS
    if fp.shmem_per_cta:
        shmem_ctas = config.shared_memory_bytes // fp.shmem_per_cta
        if shmem_ctas < resident:
            resident = shmem_ctas
            binding = Limit.SHARED_MEMORY
    if resident > config.max_resident_ctas:
        resident = config.max_resident_ctas
        binding = Limit.RESIDENCY
    warp_cap = config.max_resident_warps // fp.warps_per_cta
    if resident > warp_cap:
        resident = warp_cap
        binding = Limit.RESIDENCY
    return Occupancy(active=active, resident=max(active, resident),
                     binding=binding)


def occupancy_report(fp: KernelFootprint,
                     config: Optional[GPUConfig] = None) -> str:
    """Human-readable comparison of the three schemes."""
    config = config if config is not None else GPUConfig()
    rows = [
        ("baseline", baseline_occupancy(fp, config)),
        ("virtual_thread", virtual_thread_occupancy(fp, config)),
        ("finereg", finereg_occupancy(fp, config)),
    ]
    lines = [
        f"kernel: {fp.threads_per_cta} threads/CTA, "
        f"{fp.regs_per_thread} regs/thread "
        f"({fp.warp_registers_per_cta * 128 // 1024} KB/CTA), "
        f"shmem {fp.shmem_per_cta // 1024} KB, "
        f"live ~{fp.live_fraction:.0%}",
    ]
    for name, occ in rows:
        lines.append(
            f"  {name:16} active={occ.active:<3} pending={occ.pending:<3} "
            f"resident={occ.resident:<3} bound by {occ.binding.value}")
    return "\n".join(lines)
