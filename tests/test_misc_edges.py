"""Remaining edge cases: trace-provider cache bounds, tracker staleness,
report precision, and config immutability guarantees."""

import pytest

from repro.config import GPUConfig
from repro.policies.base import PendingTracker
from repro.sim.cta import CTASim, CTAState
from repro.sim.warp import WarpSim
from repro.workloads.traces import TraceProvider


class TestTraceProviderCache:
    def test_trip_cache_bounded(self, loop_cfg):
        provider = TraceProvider(loop_cfg, seed=1)
        for cta in range(4200):
            provider.trips_for_cta(cta)
        # The cache clears itself rather than growing without bound.
        assert len(provider._trip_cache) <= 4097

    def test_trips_survive_cache_clear(self, loop_cfg):
        provider = TraceProvider(loop_cfg, seed=1)
        first = dict(provider.trips_for_cta(7))
        provider._trip_cache.clear()
        assert provider.trips_for_cta(7) == first  # seeded, not cached state

    def test_requires_frozen_cfg(self):
        from repro.isa.cfg import ControlFlowGraph, EdgeKind
        from repro.isa.instructions import Instruction, Opcode
        cfg = ControlFlowGraph()
        cfg.add_block([Instruction(Opcode.EXIT)], EdgeKind.EXIT)
        with pytest.raises(ValueError):
            TraceProvider(cfg, seed=1)


class TestPendingTrackerStaleness:
    def _pending_cta(self, cta_id):
        warps = [WarpSim(0, cta_id, cta_id, [0])]
        cta = CTASim(cta_id, warps)
        warps[0].cta = cta
        cta.state = CTAState.PENDING
        return cta

    def test_stale_ready_entries_filtered(self):
        tracker = PendingTracker()
        cta = self._pending_cta(1)
        tracker.add(cta, ready_time=0)
        tracker.drain_ready(10)          # now in the ready list
        cta.state = CTAState.FINISHED    # retired behind the tracker's back
        assert tracker.pop_ready(10) is None

    def test_duplicate_adds_do_not_double_pop(self):
        tracker = PendingTracker()
        cta = self._pending_cta(2)
        tracker.add(cta, ready_time=0)
        tracker.add(cta, ready_time=5)
        first = tracker.pop_ready(10)
        assert first is cta
        cta.state = CTAState.ACTIVE      # it was restored
        assert tracker.pop_ready(10) is None


class TestReportPrecision:
    def test_integer_cells_not_mangled(self):
        from repro.experiments.report import format_table
        text = format_table(["a", "b"], [["x", 42]], precision=3)
        assert " 42" in text
        assert "42.000" not in text

    def test_zero_precision(self):
        from repro.experiments.report import format_table
        text = format_table(["a", "b"], [["x", 3.7]], precision=0)
        assert "4" in text


class TestConfigImmutability:
    def test_frozen_dataclass(self):
        config = GPUConfig()
        with pytest.raises(Exception):
            config.num_sms = 4

    def test_variant_chains_compose(self):
        config = (GPUConfig().with_num_sms(2)
                  .with_scheduling_scale(2.0)
                  .with_memory_scale(1.5))
        assert config.num_sms == 2
        assert config.max_ctas_per_sm == 64
        assert config.shared_memory_bytes == 144 * 1024
        # Bandwidth scaling from with_num_sms is preserved.
        assert config.dram_bandwidth_gbps == pytest.approx(352.5 / 8)
