"""Bench: regenerate paper Fig 16 (energy breakdown)."""

from conftest import regenerate
from repro.experiments import fig16_energy


def test_fig16_energy(benchmark, runner):
    result = regenerate(benchmark, fig16_energy.run, runner)
    s = result.summary
    # Shape: performance gains turn into energy reductions; FineReg uses
    # the least energy among the switching configurations.
    assert s["finereg_energy_ratio"] < 1.0
    assert s["finereg_energy_ratio"] <= s["virtual_thread_energy_ratio"] \
        + 0.02
    # Leakage is a first-order component of the baseline breakdown.
    assert s["baseline_leakage"] > 0.15
