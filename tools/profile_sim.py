#!/usr/bin/env python
"""Profile one simulation end to end and record the timings.

Runs a single (app, policy) simulation at the chosen scale with the disk
cache bypassed, separates the per-stage costs (workload construction vs.
the simulation proper), repeats the simulation a few times for a stable
best-of wall clock, and takes one cProfile pass for the hot-function
table.  Results land in ``BENCH_sim.json`` (override with ``--out``),
including the speedup against the recorded pre-optimization reference.

Usage::

    PYTHONPATH=src python tools/profile_sim.py [--app KM] [--policy baseline]
        [--scale small] [--repeats 3] [--out BENCH_sim.json] [--top 15]
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import SCALES, default_config  # noqa: E402
from repro.experiments.parallel import RunRequest, simulate_request  # noqa: E402
from repro.workloads.generator import build_workload  # noqa: E402
from repro.workloads.suite import get_spec  # noqa: E402

#: Best-of-three wall clock of the default benchmark (small-scale KM under
#: the baseline policy) measured on the pre-optimization simulator, i.e.
#: the tree just before the scheduler sleep-cache landed.  The recorded
#: speedup is only meaningful for that default benchmark.
SEED_REFERENCE = {"app": "KM", "policy": "baseline", "scale": "small",
                  "wall_s": 0.657}


def profile_run(app: str, policy: str, scale_name: str, repeats: int,
                top: int) -> dict:
    scale = SCALES[scale_name]
    config = default_config(scale)
    request = RunRequest.make(app, policy)

    t0 = time.perf_counter()
    instance = build_workload(get_spec(app), config, scale)
    build_s = time.perf_counter() - t0

    walls = []
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = simulate_request(scale, config, request, instance=instance)
        walls.append(time.perf_counter() - t0)
    best = min(walls)

    profiler = cProfile.Profile()
    profiler.enable()
    simulate_request(scale, config, request, instance=instance)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("tottime")
    hot = []
    for func, (cc, nc, tt, ct, __) in sorted(
            stats.stats.items(), key=lambda kv: kv[1][2], reverse=True)[:top]:
        filename, line, name = func
        hot.append({
            "function": f"{Path(filename).name}:{line}:{name}",
            "calls": nc,
            "tottime_s": round(tt, 4),
            "cumtime_s": round(ct, 4),
        })

    report = {
        "app": app,
        "policy": policy,
        "scale": scale_name,
        "stages": {
            "workload_build_s": round(build_s, 4),
            "simulate_walls_s": [round(w, 4) for w in walls],
            "simulate_best_s": round(best, 4),
        },
        "cycles": result.cycles,
        "instructions": result.instructions,
        "sim_cycles_per_s": round(result.cycles / best),
        "hot_functions": hot,
        "seed_reference": SEED_REFERENCE,
    }
    if (app, policy, scale_name) == (SEED_REFERENCE["app"],
                                     SEED_REFERENCE["policy"],
                                     SEED_REFERENCE["scale"]):
        report["speedup_vs_seed"] = round(SEED_REFERENCE["wall_s"] / best, 2)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="KM")
    parser.add_argument("--policy", default="baseline")
    parser.add_argument("--scale", default="small", choices=sorted(SCALES))
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--top", type=int, default=15,
                        help="hot functions to record")
    parser.add_argument("--out", default="BENCH_sim.json")
    args = parser.parse_args(argv)

    report = profile_run(args.app.upper(), args.policy, args.scale,
                         args.repeats, args.top)
    Path(args.out).write_text(json.dumps(report, indent=1) + "\n")

    stages = report["stages"]
    print(f"{report['app']} / {report['policy']} / {report['scale']}: "
          f"build {stages['workload_build_s']:.3f}s, "
          f"simulate best {stages['simulate_best_s']:.3f}s "
          f"({report['sim_cycles_per_s']:,} cycles/s)")
    if "speedup_vs_seed" in report:
        print(f"speedup vs pre-optimization reference "
              f"({SEED_REFERENCE['wall_s']}s): "
              f"{report['speedup_vs_seed']:.2f}x")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
