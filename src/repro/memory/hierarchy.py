"""The L1 -> L2 -> DRAM hierarchy shared by all SMs of a simulated GPU.

Each SM owns an L1; the L2 and DRAM channel are shared.  ``load``/``store``
return the absolute completion cycle of the access, charging L1/L2 hit
latencies or the DRAM round trip (including bandwidth queueing).  A small
per-SM merge table approximates MSHR behaviour: accesses from the same SM to
the same line within the lifetime of an outstanding miss complete with the
original miss rather than issuing new DRAM traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.config import GPUConfig
from repro.memory.cache import Cache
from repro.memory.dram import DRAM


@dataclass
class HierarchyStats:
    """Aggregated access counts (per-level stats live on the caches)."""

    loads: int = 0
    stores: int = 0
    merged_misses: int = 0


class MemoryHierarchy:
    """Timing model for global-memory accesses of every SM."""

    def __init__(self, config: GPUConfig) -> None:
        self._config = config
        line = config.cache_line_bytes
        self.l1s: List[Cache] = [
            Cache(f"L1[{sm}]", config.l1_size_bytes, config.l1_assoc, line)
            for sm in range(config.num_sms)
        ]
        self.l2 = Cache("L2", config.l2_size_bytes, config.l2_assoc, line,
                        allocate_on_write=True)
        self.dram = DRAM(config.dram_bytes_per_cycle, config.dram_latency)
        self.stats = HierarchyStats()
        #: MetricsRegistry installed by repro.telemetry (None = off).
        self.telemetry = None
        # Per-SM outstanding-miss table: line address -> completion cycle.
        self._outstanding: List[Dict[int, int]] = [
            {} for _ in range(config.num_sms)
        ]

    # ------------------------------------------------------------------
    def load(self, sm_id: int, address: int, now: int) -> int:
        """A warp-level coalesced load; returns the data-ready cycle."""
        self.stats.loads += 1
        done = self._access(sm_id, address, now, is_write=False)
        if self.telemetry is not None:
            self.telemetry.inc("mem.loads")
            self.telemetry.observe("mem.load_cycles", done - now)
        return done

    def store(self, sm_id: int, address: int, now: int) -> int:
        """A warp-level coalesced store; returns the retire cycle.

        Stores are write-through at L1; they complete from the warp's view
        quickly but still consume DRAM bandwidth on an L2 miss.
        """
        self.stats.stores += 1
        if self.telemetry is not None:
            self.telemetry.inc("mem.stores")
        self._access(sm_id, address, now, is_write=True)
        # Stores retire once handed to the memory pipeline.
        return now + self._config.l1_hit_latency

    # ------------------------------------------------------------------
    def _access(self, sm_id: int, address: int, now: int,
                is_write: bool) -> int:
        config = self._config
        line_addr = address - address % config.cache_line_bytes

        # A miss to this line may still be in flight: later accesses (from
        # this SM) complete with it instead of hitting the freshly-allocated
        # tag before the data has actually arrived.
        outstanding = self._outstanding[sm_id]
        pending = outstanding.get(line_addr)
        if pending is not None:
            if pending > now:
                self.stats.merged_misses += 1
                self.l1s[sm_id].access(address, is_write)  # keep LRU honest
                return pending
            del outstanding[line_addr]

        if self.l1s[sm_id].access(address, is_write):
            return now + config.l1_hit_latency

        if self.l2.access(address, is_write):
            done = now + config.l2_hit_latency
        else:
            if is_write:
                # Write-back L2: the store allocates on-chip; DRAM is only
                # charged when a dirty line is eventually evicted (below).
                done = now + config.l2_hit_latency
            else:
                done = self.dram.request(now, config.cache_line_bytes,
                                         "demand_read")
                done += config.l2_hit_latency - config.l1_hit_latency
        if self.l2.last_evicted_dirty:
            self.dram.request(now, config.cache_line_bytes, "demand_write")
        if not is_write:
            outstanding[line_addr] = done
            if len(outstanding) > 256:  # bound the merge-table size
                expired = [a for a, t in outstanding.items() if t <= now]
                for addr in expired:
                    del outstanding[addr]
        return done

    # ------------------------------------------------------------------
    # Bulk transfers (context switching to DRAM, bit-vector fetches)
    # ------------------------------------------------------------------
    def bulk_transfer(self, now: int, nbytes: int, traffic_class: str) -> int:
        """Move ``nbytes`` to/from DRAM (Zorua-style context, bit vectors)."""
        return self.dram.request(now, nbytes, traffic_class)

    @property
    def dram_traffic_bytes(self) -> int:
        return self.dram.stats.total_bytes

    def traffic_by_class(self) -> Dict[str, int]:
        return dict(self.dram.stats.bytes_by_class)
