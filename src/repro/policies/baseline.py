"""Conventional GPU register-file management (the paper's Baseline).

CTAs get their full static register allocation from the monolithic 256 KB
register file and keep it until retirement.  No CTA ever goes pending; a
fully stalled CTA simply waits for its memory operations.
"""

from __future__ import annotations

from repro.policies.base import RegisterFilePolicy


class BaselinePolicy(RegisterFilePolicy):
    """Table-I limits, monolithic register file, no CTA switching."""

    name = "baseline"
