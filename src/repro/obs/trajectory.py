"""Performance trajectory: BENCH_sim.json history across commits.

``tools/profile_sim.py`` appends one line per benchmark run to
``BENCH_history.jsonl`` (commit, backend, workload, throughput).  This
module owns that file's schema and the regression analytics behind
``repro obs perf-trajectory``: group the history by benchmark identity
(app, policy, scale, backend) and flag any entry whose throughput drops
more than the CI smoke threshold (20%) below its predecessor.

Entries carry no timestamps on purpose -- the commit hash is the
ordering, and the file stays byte-reproducible for a given sequence of
runs.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: Bump when the history-entry layout changes.
HISTORY_SCHEMA_VERSION = 1

#: Default history file, next to BENCH_sim.json at the repo root.
DEFAULT_HISTORY = "BENCH_history.jsonl"

#: Fractional throughput drop vs the previous entry that counts as a
#: regression -- the same slack the CI perf-smoke gate applies.
DEFAULT_THRESHOLD = 0.20

_REQUIRED = {"v": int, "commit": str, "app": str, "policy": str,
             "scale": str, "backend": str, "sim_cycles_per_s": (int, float)}


def git_commit(cwd: Optional[str] = None) -> str:
    """Short commit hash of HEAD, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             cwd=cwd, capture_output=True, text=True,
                             timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def entry_from_bench(bench: Dict, commit: Optional[str] = None) -> Dict:
    """One history line from a BENCH_sim.json payload."""
    entry = {
        "v": HISTORY_SCHEMA_VERSION,
        "commit": commit if commit is not None else git_commit(),
        "app": bench["app"],
        "policy": bench["policy"],
        "scale": bench["scale"],
        "backend": bench.get("backend", "auto"),
        "sim_cycles_per_s": bench["sim_cycles_per_s"],
    }
    best = bench.get("stages", {}).get("simulate_best_s")
    if best is not None:
        entry["best_s"] = best
    return entry


def entries_from_bench(bench: Dict, commit: Optional[str] = None) -> List[Dict]:
    """All history lines one BENCH payload yields: headline + backends.

    The headline entry carries the *resolved* backend of the run (so an
    ``auto`` resolution flip — e.g. vectorized -> compiled once the C
    extension exists — starts a new series rather than showing up as a
    spurious jump inside an old one), and every completed ``backends``
    sweep cell becomes its own per-backend entry.  ``detect_regressions``
    keys series on (app, policy, scale, backend), so the per-backend
    trajectories never cross-trigger the 20% gate.  Skipped sweep cells
    and the cell duplicating the headline backend are omitted.
    """
    resolved = commit if commit is not None else git_commit()
    entries = [entry_from_bench(bench, resolved)]
    headline_backend = bench.get("backend", "auto")
    for name in sorted(bench.get("backends", {})):
        cell = bench["backends"][name]
        if "skipped" in cell or name == headline_backend:
            continue
        entry = {
            "v": HISTORY_SCHEMA_VERSION,
            "commit": resolved,
            "app": bench["app"],
            "policy": bench["policy"],
            "scale": bench["scale"],
            "backend": name,
            "sim_cycles_per_s": cell["sim_cycles_per_s"],
        }
        if cell.get("best_s") is not None:
            entry["best_s"] = cell["best_s"]
        entries.append(entry)
    return entries


def check_history_entry(entry: object) -> List[str]:
    """Schema problems in one history line (empty list = valid)."""
    if not isinstance(entry, dict):
        return [f"entry must be a JSON object, got {type(entry).__name__}"]
    problems: List[str] = []
    if entry.get("v") != HISTORY_SCHEMA_VERSION:
        problems.append(f"history schema {entry.get('v')!r} != "
                        f"{HISTORY_SCHEMA_VERSION}")
    for field, expected in _REQUIRED.items():
        if field == "v":
            continue
        value = entry.get(field)
        if not isinstance(value, expected) or isinstance(value, bool):
            problems.append(f"field {field!r} missing or mistyped "
                            f"({value!r})")
    return problems


def load_history(path: str) -> List[Dict]:
    """Parse and validate a history file; raises ``ValueError`` on damage."""
    entries: List[Dict] = []
    problems: List[str] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except ValueError as exc:
            problems.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        for problem in check_history_entry(entry):
            problems.append(f"line {lineno}: {problem}")
        entries.append(entry)
    if problems:
        raise ValueError(f"{path}: invalid history "
                         f"({'; '.join(problems[:5])})")
    return entries


def append_history(path: str, entry: Dict) -> None:
    """Validate and append one entry as a JSON line."""
    problems = check_history_entry(entry)
    if problems:
        raise ValueError(f"refusing to append invalid history entry: "
                         f"{'; '.join(problems)}")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True,
                            separators=(",", ":")) + "\n")


# ----------------------------------------------------------------------
def _key(entry: Dict) -> Tuple[str, str, str, str]:
    return (entry["app"], entry["policy"], entry["scale"],
            entry["backend"])


def detect_regressions(entries: Sequence[Dict],
                       threshold: float = DEFAULT_THRESHOLD) -> List[Dict]:
    """Consecutive-entry throughput drops beyond ``threshold``, per series.

    The history is grouped by benchmark identity (app, policy, scale,
    backend); within each series, entry *i* regresses when its
    ``sim_cycles_per_s`` falls below ``previous * (1 - threshold)``.
    """
    last: Dict[Tuple[str, str, str, str], Dict] = {}
    regressions: List[Dict] = []
    for entry in entries:
        key = _key(entry)
        prev = last.get(key)
        if prev is not None:
            floor = prev["sim_cycles_per_s"] * (1.0 - threshold)
            if entry["sim_cycles_per_s"] < floor:
                drop = 1.0 - (entry["sim_cycles_per_s"]
                              / prev["sim_cycles_per_s"])
                regressions.append({
                    "series": "/".join(key),
                    "prev_commit": prev["commit"],
                    "commit": entry["commit"],
                    "prev_cycles_per_s": prev["sim_cycles_per_s"],
                    "cycles_per_s": entry["sim_cycles_per_s"],
                    "drop": round(drop, 4),
                })
        last[key] = entry
    return regressions


def trajectory_report(entries: Sequence[Dict],
                      threshold: float = DEFAULT_THRESHOLD) -> List[str]:
    """Human-readable trajectory lines: one per series, plus regressions."""
    series: Dict[Tuple[str, str, str, str], List[Dict]] = {}
    for entry in entries:
        series.setdefault(_key(entry), []).append(entry)
    lines: List[str] = []
    for key in sorted(series):
        chain = series[key]
        first, latest = chain[0], chain[-1]
        delta = ""
        if first is not latest and first["sim_cycles_per_s"]:
            change = (latest["sim_cycles_per_s"]
                      / first["sim_cycles_per_s"] - 1.0)
            delta = f" ({change:+.1%} over {len(chain)} entries)"
        lines.append(f"{'/'.join(key)}: "
                     f"{latest['sim_cycles_per_s']:,.0f} cycles/s "
                     f"@ {latest['commit']}{delta}")
    for reg in detect_regressions(entries, threshold):
        lines.append(f"REGRESSION {reg['series']}: "
                     f"{reg['prev_cycles_per_s']:,.0f} -> "
                     f"{reg['cycles_per_s']:,.0f} cycles/s "
                     f"(-{reg['drop']:.1%}, {reg['prev_commit']} -> "
                     f"{reg['commit']})")
    return lines
