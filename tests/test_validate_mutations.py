"""Mutation self-test: every deliberate corruption must be detected.

This is the sanity check on the sanitizer itself -- a checker that passes
clean runs but misses known-bad ones proves nothing.  Each registered
mutation corrupts exactly one invariant class; the sanitizer must report a
violation carrying that class's tag.
"""

import pytest

from repro.validate.mutations import MUTATIONS, run_mutation


def test_registry_covers_the_major_invariant_classes():
    tags = {m.invariant for m in MUTATIONS}
    assert {"register-conservation", "pcrf-occupancy", "pointer-table",
            "shmem-conservation", "warp-accounting", "sleep-soundness",
            "scoreboard", "lifecycle", "monotonic-stats"} <= tags


def test_mutation_names_unique():
    names = [m.name for m in MUTATIONS]
    assert len(names) == len(set(names))


@pytest.mark.parametrize("mutation", MUTATIONS, ids=lambda m: m.name)
def test_mutation_is_detected(mutation):
    report = run_mutation(mutation)
    assert report.detected, (
        f"sanitizer missed {mutation.name} ({mutation.description}); "
        f"tags={report.tags} error={report.error}")
    assert mutation.invariant in report.tags
