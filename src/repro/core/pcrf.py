"""Pending-CTA register file (PCRF) with chained tags (paper V-D/V-E).

Each PCRF entry holds one 128-byte warp-register plus a 21-bit tag:

    valid (1) | end (1) | next register pointer (10) | warp ID (5) |
    register index (6)  ... minus one shared bit of encoding slack

The live registers of a pending CTA form a singly linked chain through the
``next`` pointers; the PCRF pointer table in the RMU holds the head index per
CTA.  Restores traverse the chain until the ``end`` bit; spills claim free
slots in ascending index order (what the free-space monitor bitmap yields).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.registry import MetricsRegistry

NEXT_POINTER_BITS = 10
WARP_ID_BITS = 5
REGISTER_INDEX_BITS = 6
TAG_BITS = 1 + 1 + NEXT_POINTER_BITS + WARP_ID_BITS + REGISTER_INDEX_BITS  # 23
# The paper quotes 21 bits/tag; it packs valid+end with the pointer encoding.
PAPER_TAG_BITS = 21


@dataclass
class PCRFEntryTag:
    """Tag fields of one occupied PCRF entry."""

    valid: bool
    end: bool
    next_index: int
    warp_id: int
    register_index: int

    def __post_init__(self) -> None:
        if not 0 <= self.next_index < (1 << NEXT_POINTER_BITS):
            raise ValueError("next pointer exceeds 10 bits")
        if not 0 <= self.warp_id < (1 << WARP_ID_BITS):
            raise ValueError("warp ID exceeds 5 bits")
        if not 0 <= self.register_index < (1 << REGISTER_INDEX_BITS):
            raise ValueError("register index exceeds 6 bits")


@dataclass(frozen=True)
class SpillResult:
    """Outcome of spilling one CTA's live registers into the PCRF."""

    head_index: int
    entries_used: int
    slots: Tuple[int, ...]


class PCRF:
    """The pending-CTA register region."""

    def __init__(self, capacity_entries: int) -> None:
        if capacity_entries <= 0:
            raise ValueError("PCRF capacity must be positive")
        if capacity_entries > (1 << NEXT_POINTER_BITS):
            raise ValueError(
                f"PCRF capacity {capacity_entries} not addressable by a "
                f"{NEXT_POINTER_BITS}-bit next pointer"
            )
        self._capacity = capacity_entries
        self._tags: List[Optional[PCRFEntryTag]] = [None] * capacity_entries
        # Free-space monitor: 1-bit occupancy flags (paper V-C).
        self._occupied = [False] * capacity_entries
        self._free_count = capacity_entries
        self._head_of_cta: Dict[int, int] = {}
        self._count_of_cta: Dict[int, int] = {}
        #: MetricsRegistry installed by repro.telemetry (None = off).
        self.telemetry: Optional["MetricsRegistry"] = None
        #: Test-only fault injection (mutation self-test): when True, each
        #: restore under-credits the free-space monitor by one slot.
        self.fault_leak_on_restore = False

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def free_entries(self) -> int:
        return self._free_count

    @property
    def used_entries(self) -> int:
        return self._capacity - self._free_count

    @property
    def resident_ctas(self) -> int:
        return len(self._head_of_cta)

    def holds(self, cta_id: int) -> bool:
        return cta_id in self._head_of_cta

    def live_count_of(self, cta_id: int) -> int:
        return self._count_of_cta[cta_id]

    def occupancy_flags(self) -> Tuple[bool, ...]:
        """Free-space monitor contents (True = occupied)."""
        return tuple(self._occupied)

    def occupied_count(self) -> int:
        """Ground-truth occupied-slot count (recount, not the monitor)."""
        return sum(1 for flag in self._occupied if flag)

    def resident_cta_ids(self) -> set:
        """IDs of all CTAs currently holding PCRF chains."""
        return set(self._head_of_cta)

    def free_entries_with_eviction_of(self, cta_id: Optional[int]) -> int:
        """Free slots available if ``cta_id`` were restored out first.

        This is the paper's V-E rule: the RMU adds the count of readily empty
        slots to the ones that would become available if the selected pending
        CTA moves out.
        """
        extra = self._count_of_cta.get(cta_id, 0) if cta_id is not None else 0
        return self._free_count + extra

    # ------------------------------------------------------------------
    def spill(self, cta_id: int,
              live_registers: Sequence[Tuple[int, int]]) -> SpillResult:
        """Store a stalled CTA's live registers.

        ``live_registers`` is a sequence of (warp_id, register_index) pairs,
        one per live warp-register.  Slots are claimed in ascending order and
        linked through the next pointers, last entry carrying the end bit.
        """
        if cta_id in self._head_of_cta:
            raise KeyError(f"CTA {cta_id} already resides in the PCRF")
        if not live_registers:
            raise ValueError("cannot spill an empty live set")
        needed = len(live_registers)
        if needed > self._free_count:
            raise MemoryError(
                f"PCRF overflow: need {needed}, have {self._free_count} free"
            )
        slots = self._claim_slots(needed)
        for position, (slot, (warp_id, reg_index)) in enumerate(
                zip(slots, live_registers)):
            is_last = position == needed - 1
            next_index = slots[position + 1] if not is_last else slot
            self._tags[slot] = PCRFEntryTag(
                valid=True,
                end=is_last,
                next_index=next_index,
                warp_id=warp_id,
                register_index=reg_index,
            )
        self._head_of_cta[cta_id] = slots[0]
        self._count_of_cta[cta_id] = needed
        if self.telemetry is not None:
            self.telemetry.inc("pcrf.spills")
            self.telemetry.observe("pcrf.spill_registers", needed)
            self.telemetry.gauge_set("pcrf.free_entries", self._free_count)
        return SpillResult(head_index=slots[0], entries_used=needed,
                           slots=tuple(slots))

    def restore(self, cta_id: int) -> Tuple[Tuple[int, int], ...]:
        """Read back a pending CTA's live registers and free its entries.

        Returns the (warp_id, register_index) pairs in chain order, obtained
        by traversing the next pointers from the head entry to the end bit.
        """
        if cta_id not in self._head_of_cta:
            raise KeyError(f"CTA {cta_id} does not reside in the PCRF")
        index = self._head_of_cta.pop(cta_id)
        expected = self._count_of_cta.pop(cta_id)
        registers: List[Tuple[int, int]] = []
        for _ in range(expected):
            tag = self._tags[index]
            if tag is None or not tag.valid:
                raise RuntimeError(f"broken PCRF chain at slot {index}")
            registers.append((tag.warp_id, tag.register_index))
            self._tags[index] = None
            self._occupied[index] = False
            self._free_count += 1
            if tag.end:
                break
            index = tag.next_index
        if len(registers) != expected:
            raise RuntimeError(
                f"PCRF chain for CTA {cta_id} yielded {len(registers)} "
                f"entries, expected {expected}"
            )
        if self.fault_leak_on_restore and registers:
            self._free_count -= 1
        if self.telemetry is not None:
            self.telemetry.inc("pcrf.restores")
            self.telemetry.observe("pcrf.restore_registers", len(registers))
            self.telemetry.gauge_set("pcrf.free_entries", self._free_count)
        return tuple(registers)

    def peek_chain(self, cta_id: int) -> Tuple[int, ...]:
        """Slot indices of a pending CTA's chain, without freeing it."""
        if cta_id not in self._head_of_cta:
            raise KeyError(f"CTA {cta_id} does not reside in the PCRF")
        index = self._head_of_cta[cta_id]
        slots: List[int] = []
        for _ in range(self._count_of_cta[cta_id]):
            slots.append(index)
            tag = self._tags[index]
            if tag is None:
                raise RuntimeError(f"broken PCRF chain at slot {index}")
            if tag.end:
                break
            index = tag.next_index
        return tuple(slots)

    def tag_at(self, slot: int) -> Optional[PCRFEntryTag]:
        return self._tags[slot]

    def resize(self, new_capacity: int) -> None:
        """Repartition support: grow or shrink the pending region.

        Shrinking requires the slots being surrendered (the top of the
        array) to be empty; spills always claim the lowest free slots, so
        the top drains first under normal operation.
        """
        if new_capacity <= 0:
            raise ValueError("PCRF capacity must stay positive")
        if new_capacity > (1 << NEXT_POINTER_BITS):
            raise ValueError(
                f"PCRF capacity {new_capacity} not addressable by a "
                f"{NEXT_POINTER_BITS}-bit next pointer"
            )
        if new_capacity < self._capacity:
            if any(self._occupied[new_capacity:]):
                raise MemoryError(
                    "cannot shrink PCRF: surrendered slots are occupied"
                )
            self._tags = self._tags[:new_capacity]
            self._occupied = self._occupied[:new_capacity]
        else:
            grow = new_capacity - self._capacity
            self._tags.extend([None] * grow)
            self._occupied.extend([False] * grow)
        self._free_count = new_capacity - sum(self._occupied)
        self._capacity = new_capacity

    # ------------------------------------------------------------------
    def _claim_slots(self, count: int) -> List[int]:
        slots: List[int] = []
        for index, occupied in enumerate(self._occupied):
            if not occupied:
                slots.append(index)
                if len(slots) == count:
                    break
        for slot in slots:
            self._occupied[slot] = True
        self._free_count -= count
        return slots
