"""Reg+DRAM: a Zorua-like configuration (paper VI-A).

Extends Virtual Thread with CTA context switching *through off-chip DRAM*:
when the register file is full and an active CTA stalls, its entire register
allocation is written out to a reserved DRAM region, making room either for a
fresh CTA or for a DRAM-pending CTA that has become ready.  Every such switch
moves the CTA's full static register footprint over the memory bus, which is
exactly the traffic the paper blames for Reg+DRAM's weak returns (Fig 15).

The number of DRAM-pending CTAs is capped (``dram_pending_limit``); the
experiment harness sweeps this cap per application, mirroring the paper's
"best-performance setup for every application".
"""

from __future__ import annotations

from typing import Optional

from repro.policies.base import PendingTracker
from repro.policies.virtual_thread import VirtualThreadPolicy
from repro.sim.cta import CTASim, CTAState

#: Default cap on CTAs parked in DRAM (per SM).
DEFAULT_DRAM_PENDING_LIMIT = 8


class RegDRAMPolicy(VirtualThreadPolicy):
    """Virtual Thread + full-context CTA parking in off-chip DRAM."""

    name = "reg_dram"

    def __init__(self, sm, dram_pending_limit: int = DEFAULT_DRAM_PENDING_LIMIT
                 ) -> None:
        super().__init__(sm)
        self.dram_pending_limit = dram_pending_limit
        self.dram_pending = PendingTracker()
        self._dram_count = 0
        # Register entries of DRAM-parked CTAs (equals _dram_count *
        # _cta_regs single-kernel; tracked directly for mixed footprints).
        self._dram_regs = 0
        self.context_spills = 0
        self.context_restores = 0

    # ------------------------------------------------------------------
    def _act_on_idle(self, now: int) -> bool:
        acted = False
        for cta in self.stalled_active_ctas(now):
            # On-chip options first (plain Virtual Thread behaviour).  Any
            # swap must keep the active region within the Table-I limits:
            # a partially-retired CTA frees fewer slots than a full
            # incoming one needs.
            candidate = self._pop_ready_swap(self.pending, cta, now)
            if candidate is not None:
                self._park(cta, now)
                self.sm.activate_cta(candidate, now, self.switch_latency)
                acted = True
                continue
            if self._new_cta_feasible():
                self._park(cta, now)
                self.fill(now)
                acted = True
                continue
            # RF is full: consider the DRAM path.
            dram_candidate = self._pop_dram_swap(cta, now)
            if dram_candidate is not None:
                self._swap_via_dram(cta, dram_candidate, now)
                acted = True
                continue
            if self._dram_count < self.dram_pending_limit and \
                    self._grid_remaining():
                self._spill_to_dram(cta, now)
                self.fill(now)
                acted = True
                continue
            break
        return acted

    # ------------------------------------------------------------------
    def _spill_to_dram(self, cta: CTASim, now: int) -> None:
        """Write the CTA's full register context out to DRAM."""
        nbytes = cta.launch.kernel.register_bytes_per_cta
        done = self.sm.gpu.hierarchy.bulk_transfer(now, nbytes,
                                                   "context_spill")
        self.sm.deactivate_cta(cta, now, done - now)
        self.dram_pending.add(cta, max(done, cta.earliest_resume(now)))
        self._dram_count += 1
        regs = self._launch_regs(cta.launch)
        self._dram_regs += regs
        self.rf_used_entries -= regs
        self.context_spills += 1

    def _restore_from_dram(self, cta: CTASim, now: int) -> int:
        """Read a parked CTA's register context back; returns ready cycle."""
        nbytes = cta.launch.kernel.register_bytes_per_cta
        done = self.sm.gpu.hierarchy.bulk_transfer(now, nbytes,
                                                   "context_restore")
        self._dram_count -= 1
        regs = self._launch_regs(cta.launch)
        self._dram_regs -= regs
        self.rf_used_entries += regs
        self.context_restores += 1
        return done

    def _swap_via_dram(self, stalled: CTASim, incoming: CTASim,
                       now: int) -> None:
        spill_bytes = stalled.launch.kernel.register_bytes_per_cta
        spill_done = self.sm.gpu.hierarchy.bulk_transfer(
            now, spill_bytes, "context_spill")
        self.sm.deactivate_cta(stalled, now, spill_done - now)
        self.dram_pending.add(
            stalled, max(spill_done, stalled.earliest_resume(now)))
        self.context_spills += 1
        restore_done = self._restore_from_dram(incoming, now)
        self._dram_count += 1  # net zero with the spill above
        regs = self._launch_regs(stalled.launch)
        self._dram_regs += regs
        self.rf_used_entries -= regs  # net zero with restore (single-kernel)
        self.sm.activate_cta(incoming, now, restore_done - now)

    def _pop_dram_swap(self, outgoing: CTASim, now: int) -> Optional[CTASim]:
        """A ready DRAM-parked CTA that may replace ``outgoing``.

        Unlike an on-chip swap (register delta zero by construction), a
        DRAM swap exchanges the two footprints in the RF, so with mixed
        kernels the incoming allocation must fit what the outgoing one
        frees plus the current headroom.
        """
        if self.sm.gpu.arbiter is None:
            if not self.sm.swap_slots_free(outgoing):
                return None
            return self.dram_pending.pop_ready(now)
        headroom = self.rf_capacity_entries - self.rf_used_entries \
            + self._launch_regs(outgoing.launch)
        ready = self.dram_pending.ready_ctas(now)
        for cand in sorted(ready, key=lambda c: c.cta_id):
            if self.sm.swap_slots_free(outgoing, cand.launch) \
                    and self._launch_regs(cand.launch) <= headroom:
                return self.dram_pending.pop_ready(now, cand)
        return None

    def _pop_dram_fitting(self, now: int) -> Optional[CTASim]:
        """A ready DRAM-parked CTA whose slots AND registers both fit."""
        if self.sm.gpu.arbiter is None:
            if not (self.sm.scheduler_slots_free()
                    and self.register_space_for_launch()):
                return None
            return self.dram_pending.pop_ready(now)
        ready = self.dram_pending.ready_ctas(now)
        for cand in sorted(ready, key=lambda c: c.cta_id):
            if self.sm.scheduler_slots_free(cand.launch) \
                    and self.register_space_for(
                        self._launch_regs(cand.launch)):
                return self.dram_pending.pop_ready(now, cand)
        return None

    # ------------------------------------------------------------------
    def on_cta_finished(self, cta: CTASim, now: int) -> None:
        self.rf_used_entries -= self._launch_regs(cta.launch)
        candidate = self._pop_ready_fitting(self.pending, now)
        if candidate is not None:
            self.sm.activate_cta(candidate, now, self.switch_latency)
        else:
            dram_candidate = self._pop_dram_fitting(now)
            if dram_candidate is not None:
                done = self._restore_from_dram(dram_candidate, now)
                self.sm.activate_cta(dram_candidate, now, done - now)
        self.fill(now)

    def on_tick(self, now: int) -> None:
        super().on_tick(now)
        if not self.dram_pending.has_ready(now):
            return
        while True:
            candidate = self._pop_dram_fitting(now)
            if candidate is None:
                break
            done = self._restore_from_dram(candidate, now)
            self.sm.activate_cta(candidate, now, done - now)

    def next_event(self, now: int) -> int:
        return min(self.pending.next_ready_time(),
                   self.dram_pending.next_ready_time())

    def wake_time(self, now: int) -> int:
        if (self.pending.has_ready(now)
                or self.dram_pending.has_ready(now)):
            return now + 1
        return min(self.pending.next_ready_time(),
                   self.dram_pending.next_ready_time())

    def extras(self) -> dict:
        return {
            "context_spills": self.context_spills,
            "context_restores": self.context_restores,
        }
