"""Bench: regenerate paper Fig 13 (normalized IPC -- the headline result)."""

from conftest import regenerate
from repro.experiments import fig13_performance


def test_fig13_performance(benchmark, runner):
    result = regenerate(benchmark, fig13_performance.run, runner)
    s = result.summary
    # Headline shape: FineReg wins overall and beats every comparison point
    # (the sweeps make Reg+DRAM/VT+RegMutex per-app optimistic, so FineReg
    # is required to be at least comparable there, clearly ahead of VT).
    assert s["finereg_speedup"] > 1.05
    assert s["finereg_vs_vt"] > 1.0
    assert s["finereg_vs_reg_dram"] > 0.95
    assert s["finereg_vs_regmutex"] > 0.95
    # Every configuration improves on the baseline on average.
    assert s["virtual_thread_speedup"] > 1.0
    assert s["reg_dram_speedup"] >= s["virtual_thread_speedup"] - 1e-9
