"""Campaign metrics on the PR-4 :class:`~repro.telemetry.registry.MetricsRegistry`.

The simulator publishes per-run metrics through the registry; the campaign
tier reuses the exact same primitives one level up: cache hit/miss
counters with lookup/store latency histograms, per-phase duration
histograms, run-duration histograms, and worker-pool gauges (utilization,
queue depth, stall count).  ``snapshot()`` is JSON-ready and deterministic
in key order, like every registry snapshot.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry.registry import MetricsRegistry


class CampaignMetrics:
    """One registry per campaign, fed by the :class:`~repro.obs.session.ObsSession`."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()

    # -- cache ----------------------------------------------------------
    def cache_lookup(self, hit: bool, latency_s: float) -> None:
        registry = self.registry
        registry.inc("cache.lookups")
        registry.inc("cache.hits" if hit else "cache.misses")
        registry.observe("cache.lookup_s", latency_s)

    def cache_store(self, nbytes: int, latency_s: float) -> None:
        registry = self.registry
        registry.inc("cache.stores")
        registry.inc("cache.stored_bytes", nbytes)
        registry.observe("cache.store_s", latency_s)

    def hit_rate(self) -> Optional[float]:
        lookups = self.registry.counters.get("cache.lookups", 0)
        if not lookups:
            return None
        return self.registry.counters.get("cache.hits", 0) / lookups

    # -- phases / runs --------------------------------------------------
    def phase(self, name: str, dur_s: float) -> None:
        self.registry.observe(f"phase.{name}_s", dur_s)

    def run_complete(self, dur_s: float, pooled: bool) -> None:
        registry = self.registry
        registry.inc("runs.completed")
        registry.inc("runs.pooled" if pooled else "runs.serial")
        registry.observe("run.duration_s", dur_s)

    # -- worker pool ----------------------------------------------------
    def worker_gauges(self, jobs: int, workers_seen: int, busy_s: float,
                      wall_s: float, stalls: int) -> None:
        registry = self.registry
        registry.gauge_set("workers.jobs", jobs)
        registry.gauge_set("workers.seen", workers_seen)
        registry.gauge_set("workers.stall_events", stalls)
        if wall_s > 0 and jobs > 0:
            registry.gauge_set("workers.utilization",
                               round(busy_s / (jobs * wall_s), 6))

    def queue_depth(self, remaining: int) -> None:
        self.registry.gauge_set("queue.depth", remaining)

    # ------------------------------------------------------------------
    def reconcile(self) -> List[str]:
        """Counter-level invariants (empty list = consistent).

        The acceptance bar from the ISSUE: every cache request is either a
        hit or a miss, and every lookup latency was observed.
        """
        counters = self.registry.counters
        problems: List[str] = []
        lookups = counters.get("cache.lookups", 0)
        hits = counters.get("cache.hits", 0)
        misses = counters.get("cache.misses", 0)
        if hits + misses != lookups:
            problems.append(f"cache hits ({hits}) + misses ({misses}) != "
                            f"lookups ({lookups})")
        observed = self.registry.histogram("cache.lookup_s").count
        if observed != lookups:
            problems.append(f"cache.lookup_s observed {observed} latencies "
                            f"for {lookups} lookups")
        runs = counters.get("runs.completed", 0)
        split = counters.get("runs.pooled", 0) + counters.get("runs.serial",
                                                             0)
        if split != runs:
            problems.append(f"runs pooled+serial ({split}) != completed "
                            f"({runs})")
        return problems

    def snapshot(self) -> Dict:
        payload = self.registry.snapshot()
        rate = self.hit_rate()
        payload["derived"] = {
            "cache_hit_rate": round(rate, 6) if rate is not None else None,
        }
        return payload
