"""Kernel: a frozen CFG plus launch geometry and resource footprint."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import WARP_REGISTER_BYTES, WARP_SIZE
from repro.isa.cfg import ControlFlowGraph


@dataclass(frozen=True)
class LaunchGeometry:
    """Grid/CTA shape of a kernel launch."""

    threads_per_cta: int
    grid_ctas: int

    def __post_init__(self) -> None:
        if self.threads_per_cta <= 0 or self.threads_per_cta % WARP_SIZE:
            raise ValueError("threads_per_cta must be a positive multiple of 32")
        if self.threads_per_cta > 1024:
            raise ValueError("threads_per_cta exceeds the 1024-thread limit")
        if self.grid_ctas <= 0:
            raise ValueError("grid must contain at least one CTA")

    @property
    def warps_per_cta(self) -> int:
        return self.threads_per_cta // WARP_SIZE


@dataclass(frozen=True)
class Kernel:
    """A compiled kernel ready for launch.

    ``regs_per_thread`` is the static allocation the baseline register file
    charges per thread (what ``nvcc --ptxas-options=-v`` would report);
    it must cover every register the CFG names.
    """

    name: str
    cfg: ControlFlowGraph
    geometry: LaunchGeometry
    regs_per_thread: int
    shmem_per_cta: int = 0

    def __post_init__(self) -> None:
        if not self.cfg.frozen:
            raise ValueError("kernel CFG must be frozen")
        used = self.cfg.registers_used()
        if used and self.regs_per_thread <= max(used):
            raise ValueError(
                f"kernel names R{max(used)} but allocates only "
                f"{self.regs_per_thread} registers per thread"
            )
        if self.regs_per_thread <= 0:
            raise ValueError("regs_per_thread must be positive")
        if self.shmem_per_cta < 0:
            raise ValueError("shared memory cannot be negative")

    # ------------------------------------------------------------------
    # Resource footprint (drives scheduling limits and paper Fig 3)
    # ------------------------------------------------------------------
    @property
    def warps_per_cta(self) -> int:
        return self.geometry.warps_per_cta

    @property
    def warp_registers_per_cta(self) -> int:
        """Warp-registers one CTA occupies in a conventional register file."""
        return self.warps_per_cta * self.regs_per_thread

    @property
    def register_bytes_per_cta(self) -> int:
        return self.warp_registers_per_cta * WARP_REGISTER_BYTES

    @property
    def cta_overhead_bytes(self) -> int:
        """On-chip bytes one extra CTA costs (registers + shared memory)."""
        return self.register_bytes_per_cta + self.shmem_per_cta

    @property
    def num_static_instructions(self) -> int:
        return self.cfg.num_instructions
