"""FineReg reproduction: fine-grained GPU register file management.

A from-scratch Python reproduction of "FineReg: Fine-Grained Register File
Management for Augmenting GPU Throughput" (MICRO 2018): a cycle-level GPU SM
simulator, the FineReg ACRF/PCRF microarchitecture with compiler liveness
support, the compared policies (Virtual Thread, Reg+DRAM/Zorua-like,
VT+RegMutex), a synthetic 18-benchmark suite, and an experiment harness
regenerating every table and figure of the paper's evaluation.

Quickstart::

    from repro import quick_run
    result = quick_run("KM", policy="finereg")
    print(result.ipc, result.avg_resident_ctas_per_sm)
"""

from repro.config import (
    GPUConfig,
    PAPER,
    SMALL,
    Scale,
    TINY,
    default_config,
)
from repro.sim.stats import SimResult

__version__ = "1.0.0"

__all__ = [
    "GPUConfig",
    "PAPER",
    "SMALL",
    "Scale",
    "SimResult",
    "TINY",
    "default_config",
    "quick_run",
]


def quick_run(abbrev: str, policy: str = "finereg",
              scale: Scale = SMALL) -> SimResult:
    """Run one benchmark under one policy at the given scale.

    ``policy`` is one of ``baseline``, ``virtual_thread``, ``reg_dram``,
    ``vt_regmutex``, or ``finereg``.
    """
    from repro.experiments.runner import ExperimentRunner

    runner = ExperimentRunner(scale=scale)
    return runner.run(abbrev, policy)
