"""Live-register bit-vector cache (paper V-C, Fig 10).

A 32-entry direct-mapped cache inside the RMU that holds the per-PC live
bit vectors.  It is indexed by hashing 5 bits of the PC and tagged with the
full PC.  Misses fetch the 12-byte entry from the reserved off-chip area,
which costs one DRAM round trip and 12 bytes of traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.bitvector import BITVECTOR_STORAGE_BYTES, LiveBitVector


@dataclass
class _CacheLine:
    pc: int
    vector: LiveBitVector


@dataclass
class BitVectorCacheStats:
    """Hit/miss counters for the bit-vector cache."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_traffic_bytes(self) -> int:
        """Off-chip bytes fetched on misses (12 B per vector)."""
        return self.misses * BITVECTOR_STORAGE_BYTES


class BitVectorCache:
    """Direct-mapped cache of live bit vectors, indexed by hashed PC bits."""

    def __init__(self, num_entries: int = 32) -> None:
        if num_entries <= 0 or num_entries & (num_entries - 1):
            raise ValueError("cache size must be a positive power of two")
        self._num_entries = num_entries
        self._lines: List[Optional[_CacheLine]] = [None] * num_entries
        self.stats = BitVectorCacheStats()

    @property
    def num_entries(self) -> int:
        return self._num_entries

    def _index_of(self, pc: int) -> int:
        # Hash 5 bits of the PC: fold the word-address bits down to the
        # index width (instructions are 4-byte spaced, so drop 2 low bits).
        word = pc >> 2
        return (word ^ (word >> 5)) % self._num_entries

    def lookup(self, pc: int) -> Optional[LiveBitVector]:
        """Probe the cache; returns the vector on hit, None on miss."""
        line = self._lines[self._index_of(pc)]
        if line is not None and line.pc == pc:
            self.stats.hits += 1
            return line.vector
        self.stats.misses += 1
        return None

    def fill(self, pc: int, vector: LiveBitVector) -> None:
        """Install a vector fetched from off-chip memory."""
        self._lines[self._index_of(pc)] = _CacheLine(pc=pc, vector=vector)

    def contains(self, pc: int) -> bool:
        """Non-counting probe (used by tests and the free-space monitor)."""
        line = self._lines[self._index_of(pc)]
        return line is not None and line.pc == pc

    def flush(self) -> None:
        """Invalidate all lines (new kernel launch)."""
        self._lines = [None] * self._num_entries

    @property
    def storage_bytes(self) -> int:
        """SRAM footprint: 12-byte entries (4 B PC + 8 B vector), paper V-F."""
        return self._num_entries * BITVECTOR_STORAGE_BYTES
