"""Shared experiment-result structure and sweep helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.parallel import RunRequest
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentRunner
from repro.sim.stats import SimResult
from repro.workloads.suite import ALL_SPECS, TYPE_R_SPECS, TYPE_S_SPECS

ALL_APPS = tuple(spec.abbrev for spec in ALL_SPECS)
TYPE_S_APPS = tuple(spec.abbrev for spec in TYPE_S_SPECS)
TYPE_R_APPS = tuple(spec.abbrev for spec in TYPE_R_SPECS)

#: The paper's memory-intensive trio (VI-C/VI-D).
MEMORY_INTENSIVE_APPS = ("KM", "SY2", "BF")

#: Fig 15's traffic-sensitive trio.
TRAFFIC_APPS = ("FD", "NW", "ST")

#: Per-app sweeps mirroring the paper's methodology (VI-A): Reg+DRAM's
#: pending-CTA count and RegMutex's SRP ratio are tuned per application.
REG_DRAM_LIMITS = (0, 4)
SRP_RATIOS = (0.2, 0.28, 0.35)


@dataclass
class ExperimentResult:
    """One regenerated table or figure."""

    experiment: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence]
    summary: Dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def to_text(self, precision: int = 3) -> str:
        text = format_table(self.headers, self.rows,
                            title=f"{self.experiment}: {self.title}",
                            precision=precision)
        if self.summary:
            lines = [f"  {key} = {value:.4g}"
                     for key, value in self.summary.items()]
            text += "\n\nSummary:\n" + "\n".join(lines)
        if self.notes:
            text += f"\n\nNotes: {self.notes}"
        return text


def main_config_requests(app: str) -> List[RunRequest]:
    """Every simulation behind :func:`main_config_results` for one app,
    including the Reg+DRAM and RegMutex per-app sweep points."""
    requests = [RunRequest.make(app, "baseline"),
                RunRequest.make(app, "virtual_thread"),
                RunRequest.make(app, "finereg")]
    requests += [RunRequest.make(app, "reg_dram", dram_pending_limit=limit)
                 for limit in REG_DRAM_LIMITS]
    requests += [RunRequest.make(app, "vt_regmutex", srp_ratio=ratio)
                 for ratio in SRP_RATIOS]
    return requests


def plan_main_configs(runner: ExperimentRunner,
                      apps: Sequence[str] = ALL_APPS) -> List[RunRequest]:
    """Shared ``plan()`` for figures built on the five main configurations
    (12/13/16): their full run-set, submitted up front for pool dispatch."""
    return [request for app in apps for request in main_config_requests(app)]


def best_reg_dram(runner: ExperimentRunner, app: str,
                  limits: Tuple[int, ...] = REG_DRAM_LIMITS) -> SimResult:
    """Reg+DRAM at its best per-app pending-CTA budget (paper VI-A)."""
    results = [runner.run(app, "reg_dram", dram_pending_limit=limit)
               for limit in limits]
    return max(results, key=lambda r: r.ipc)


def best_regmutex(runner: ExperimentRunner, app: str,
                  ratios: Tuple[float, ...] = SRP_RATIOS
                  ) -> Tuple[SimResult, float]:
    """VT+RegMutex at its best per-app SRP/BRS split (paper VI-A/Fig 14a)."""
    best: Optional[SimResult] = None
    best_ratio = ratios[0]
    for ratio in ratios:
        result = runner.run(app, "vt_regmutex", srp_ratio=ratio)
        if best is None or result.ipc > best.ipc:
            best = result
            best_ratio = ratio
    assert best is not None
    return best, best_ratio


def main_config_results(runner: ExperimentRunner, app: str
                        ) -> Dict[str, SimResult]:
    """The five configurations of Figs 12/13/16 with per-app sweeps."""
    return {
        "baseline": runner.run(app, "baseline"),
        "virtual_thread": runner.run(app, "virtual_thread"),
        "reg_dram": best_reg_dram(runner, app),
        "vt_regmutex": best_regmutex(runner, app)[0],
        "finereg": runner.run(app, "finereg"),
    }
