"""Unit tests for the multi-kernel application layer (repro.workloads.apps).

Pins the coverage-weight normalization, grid rescaling, stream/priority
plumbing into LaunchSpecs, address-model sharing, and the canned pool
registry the concurrent experiments draw from.
"""

from __future__ import annotations

import pytest

from repro.config import TINY, default_config
from repro.workloads.apps import (
    APP_POOLS,
    AppPool,
    StreamSpec,
    build_app,
    get_app,
)
from repro.workloads.generator import build_workload
from repro.workloads.suite import get_spec

CONFIG = default_config(TINY)


class TestStreamSpec:
    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            StreamSpec("KM", weight=0.0)
        with pytest.raises(ValueError, match="weight"):
            StreamSpec("KM", weight=-1.0)

    def test_defaults(self):
        spec = StreamSpec("KM")
        assert spec.weight == 1.0
        assert spec.priority == 0
        assert spec.label is None


class TestAppPool:
    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError, match="at least one stream"):
            AppPool("empty", ())

    def test_coverage_normalizes_to_mean_one(self):
        pool = AppPool("p", (StreamSpec("KM", weight=1.0),
                             StreamSpec("LB", weight=3.0)))
        cover = pool.coverage()
        assert sum(cover) == pytest.approx(len(pool.streams))
        assert cover == (pytest.approx(0.5), pytest.approx(1.5))

    def test_equal_weights_cover_one_each(self):
        pool = AppPool("p", (StreamSpec("KM"), StreamSpec("LB"),
                             StreamSpec("HS")))
        assert pool.coverage() == (1.0, 1.0, 1.0)


class TestCannedPools:
    def test_registry_well_formed(self):
        assert APP_POOLS, "no canned pools registered"
        for name, pool in APP_POOLS.items():
            assert pool.name == name
            assert len(pool.streams) >= 2, (
                f"{name}: concurrent pools need at least two streams")

    def test_get_app_returns_registered_pool(self):
        for name in APP_POOLS:
            assert get_app(name) is APP_POOLS[name]

    def test_get_app_unknown_lists_alternatives(self):
        with pytest.raises(KeyError) as exc:
            get_app("nonsense")
        message = str(exc.value)
        for name in APP_POOLS:
            assert name in message


class TestBuildApp:
    def test_one_spec_per_stream_with_stream_ids(self):
        pool = APP_POOLS["st+km"]
        specs = build_app(pool, CONFIG, TINY)
        assert len(specs) == len(pool.streams)
        assert [s.stream for s in specs] == list(range(len(specs)))

    def test_equal_weights_keep_standalone_grids(self):
        specs = build_app(APP_POOLS["st+km"], CONFIG, TINY)
        for stream, spec in zip(APP_POOLS["st+km"].streams, specs):
            standalone = build_workload(get_spec(stream.abbrev),
                                        CONFIG, TINY)
            assert spec.kernel.geometry.grid_ctas \
                == standalone.kernel.geometry.grid_ctas

    def test_weights_rescale_grids(self):
        km = build_workload(get_spec("KM"), CONFIG, TINY)
        lb = build_workload(get_spec("LB"), CONFIG, TINY)
        pool = AppPool("skew", (StreamSpec("KM", weight=3.0),
                                StreamSpec("LB", weight=1.0)))
        heavy, light = build_app(pool, CONFIG, TINY)
        assert heavy.kernel.geometry.grid_ctas == max(
            1, round(km.kernel.geometry.grid_ctas * 1.5))
        assert light.kernel.geometry.grid_ctas == max(
            1, round(lb.kernel.geometry.grid_ctas * 0.5))

    def test_tiny_weight_clamps_grid_to_one(self):
        pool = AppPool("starved", (StreamSpec("KM", weight=1000.0),
                                   StreamSpec("LB", weight=0.001)))
        __, starved = build_app(pool, CONFIG, TINY)
        assert starved.kernel.geometry.grid_ctas == 1

    def test_streams_share_one_address_model(self):
        specs = build_app(APP_POOLS["hs+lb"], CONFIG, TINY)
        first = specs[0].address_model
        assert all(s.address_model is first for s in specs)

    def test_priority_and_label_plumbed_through(self):
        pool = AppPool("prio", (StreamSpec("KM", priority=2, label="hot"),
                                StreamSpec("LB")))
        hot, cold = build_app(pool, CONFIG, TINY)
        assert hot.priority == 2
        assert hot.label == "hot"
        assert cold.priority == 0
        assert cold.label is None
