"""Synthetic kernel generator.

``build_workload`` turns a :class:`WorkloadSpec` into a runnable
:class:`WorkloadInstance`: a structured CFG whose register def/use structure
hits the spec's liveness/usage targets, plus the trace and address providers
the simulator consumes.

Register layout (``R`` = regs_per_thread):

* a small set of *long-lived* registers defined in the prologue and consumed
  in the epilogue (live through the whole kernel -- these set the liveness
  floor at stall points);
* a rotating pool of *short-lived* registers the loop body cycles through
  (defined by a load or ALU op, consumed shortly after, then dead) -- the
  pool width sets the per-window usage fraction;
* register indices for the body pool are spread across ``[n_long, R)`` so
  RegMutex-style high-register pressure occurs naturally.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analyze.verifier import KernelVerificationError, verify_cfg
from repro.config import GPUConfig, Scale
from repro.core.liveness import LivenessAnalysis, LivenessTable
from repro.isa.cfg import ControlFlowGraph, EdgeKind
from repro.isa.instructions import AccessPattern, Instruction, Opcode
from repro.isa.kernel import Kernel, LaunchGeometry
from repro.workloads.spec import WorkloadSpec
from repro.workloads.traces import AddressModel, TraceProvider


@dataclass
class WorkloadInstance:
    """Everything the simulator needs to run one synthetic benchmark."""

    spec: WorkloadSpec
    kernel: Kernel
    trace_provider: TraceProvider
    address_model: AddressModel
    _liveness: Optional[LivenessTable] = field(default=None, repr=False)

    @property
    def liveness(self) -> LivenessTable:
        if self._liveness is None:
            analysis = LivenessAnalysis(self.kernel.cfg)
            self._liveness = analysis.run(self.kernel.regs_per_thread)
        return self._liveness


def baseline_resident_ctas(spec: WorkloadSpec, config: GPUConfig) -> int:
    """CTAs per SM a conventional GPU can host (Table-I limits)."""
    limits = [
        config.max_ctas_per_sm,
        config.max_warps_per_sm // spec.warps_per_cta,
        config.max_threads_per_sm // spec.threads_per_cta,
        config.rf_warp_registers // spec.warp_registers_per_cta,
    ]
    if spec.shmem_per_cta:
        limits.append(config.shared_memory_bytes // spec.shmem_per_cta)
    return max(1, min(limits))


def build_workload(spec: WorkloadSpec, config: GPUConfig,
                   scale: Scale, verify: bool = True) -> WorkloadInstance:
    """Generate the kernel, grid, traces, and address streams for a spec.

    With ``verify`` (the default) the static verifier runs over the
    generated CFG *before* the kernel is constructed; any error-severity
    finding — an under-declared register allocation, a barrier under a
    divergent branch, a CTA that cannot fit one Table-I limit — raises
    :class:`~repro.analyze.verifier.KernelVerificationError` with block/PC
    diagnostics instead of letting the spec fail cycles into a simulation.
    """
    cfg = _build_cfg(spec)
    liveness: Optional[LivenessTable] = None
    if verify:
        report = verify_cfg(
            cfg, spec.regs_per_thread, source=spec.abbrev, config=config,
            threads_per_cta=spec.threads_per_cta,
            shmem_per_cta=spec.shmem_per_cta)
        if report.has_errors:
            raise KernelVerificationError(report)
        liveness = report.liveness  # reuse the solved dataflow
    occupancy = baseline_resident_ctas(spec, config)
    grid_per_sm = max(2, math.ceil(occupancy * spec.grid_multiplier
                                   * _grid_factor(scale)))
    geometry = LaunchGeometry(
        threads_per_cta=spec.threads_per_cta,
        grid_ctas=grid_per_sm * config.num_sms,
    )
    kernel = Kernel(
        name=spec.abbrev,
        cfg=cfg,
        geometry=geometry,
        regs_per_thread=spec.regs_per_thread,
        shmem_per_cta=spec.shmem_per_cta,
    )
    stable = zlib.crc32(spec.abbrev.encode()) & 0xFFFF
    provider = TraceProvider(cfg, seed=spec.seed ^ stable,
                             trace_scale=scale.trace_scale)
    addresses = AddressModel()
    return WorkloadInstance(spec=spec, kernel=kernel,
                            trace_provider=provider, address_model=addresses,
                            _liveness=liveness)


def _grid_factor(scale: Scale) -> float:
    """Shrink grids for the smaller presets (tests / quick benches)."""
    return {"tiny": 0.45, "small": 1.0, "paper": 1.6}.get(scale.name, 1.0)


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------
def _build_cfg(spec: WorkloadSpec) -> ControlFlowGraph:
    layout = _RegisterLayout(spec)
    cfg = ControlFlowGraph()
    rng = random.Random(spec.seed * 7919 + 13)

    prologue = _prologue_instructions(spec, layout)
    body_blocks = _body_blocks(spec, layout, rng)
    epilogue = _epilogue_instructions(spec, layout)

    # Block ids: 0 = prologue, 1..k = body chain, k+1(,k+2) = branch arms if
    # any, last = epilogue.  We must know ids up front for successor wiring,
    # so lay out the chain first.
    num_body = len(body_blocks)
    first_body = 1
    epilogue_id = first_body + num_body

    cfg.add_block(prologue, EdgeKind.FALLTHROUGH, successors=(first_body,))
    for offset, (instrs, kind, div_prob) in enumerate(body_blocks):
        block_id = first_body + offset
        if kind == "branch":
            # successors: the two arm blocks are the next two ids.
            cfg.add_block(instrs, EdgeKind.BRANCH,
                          successors=(block_id + 1, block_id + 2),
                          divergence_prob=div_prob)
        elif kind == "loopback":
            cfg.add_block(instrs, EdgeKind.LOOP_BACK,
                          successors=(first_body, epilogue_id),
                          mean_trip_count=spec.loop_trips)
        elif kind.startswith("arm:"):
            tail_offset = int(kind.split(":", 1)[1])
            cfg.add_block(instrs, EdgeKind.FALLTHROUGH,
                          successors=(first_body + tail_offset,))
        else:
            cfg.add_block(instrs, EdgeKind.FALLTHROUGH,
                          successors=(block_id + 1,))
    cfg.add_block(epilogue, EdgeKind.EXIT)
    return cfg.freeze()


class _RegisterLayout:
    """Partition of the architectural registers per the module docstring."""

    def __init__(self, spec: WorkloadSpec) -> None:
        regs = spec.regs_per_thread
        # Long-lived registers anchor the live fraction at stall points;
        # in-flight load destinations add roughly mem_burst on top.
        want_live = max(1, round(spec.live_fraction * regs))
        self.n_long = max(1, min(regs - 2, want_live - spec.mem_burst))
        pool_size = max(2, round(spec.usage_fraction * regs) - self.n_long)
        # Spread the short-lived pool across the whole allocation [n_long,
        # regs): real allocators use the full index range, which is what
        # gives RegMutex's BRS/SRP boundary (a register-index split) its
        # meaning.  Long-lived values keep the low indices.
        span = regs - self.n_long
        step = max(1, span // pool_size)
        self.pool = list(range(self.n_long, regs, step))[:pool_size]
        if not self.pool:
            self.pool = [regs - 1]
        self._next = 0
        # A couple of dedicated roles.
        self.addr_reg = 0                    # address base (long-lived)
        self.acc_reg = self.n_long - 1 if self.n_long > 1 else 0

    def long_regs(self) -> List[int]:
        return list(range(self.n_long))

    def next_short(self) -> int:
        reg = self.pool[self._next % len(self.pool)]
        self._next += 1
        return reg

    def recent_short(self, back: int = 1) -> int:
        index = (self._next - back) % len(self.pool)
        return self.pool[index]


def _pattern_cycle(spec: WorkloadSpec, rng: random.Random):
    """Yield access patterns following the spec's locality mix."""
    def draw() -> AccessPattern:
        roll = rng.random()
        if roll < spec.stream_frac:
            return AccessPattern.STREAM
        if roll < spec.stream_frac + spec.reuse_frac:
            return AccessPattern.REUSE
        return AccessPattern.SHARED_WS
    return draw


def _prologue_instructions(spec: WorkloadSpec,
                           layout: _RegisterLayout) -> List[Instruction]:
    """Define every long-lived register (parameter loads + setup ALU)."""
    out: List[Instruction] = []
    longs = layout.long_regs()
    # The first long registers are kernel parameters: constant-cache-class
    # accesses (low latency, on-chip) -- a cold DRAM miss here would stall
    # every warp at launch, which real kernels do not do.
    for index, reg in enumerate(longs):
        if index < 2:
            out.append(Instruction(Opcode.LDS, reg, (layout.addr_reg,)))
        else:
            src = longs[index - 1]
            out.append(Instruction(Opcode.IALU, reg, (src,)))
    if not longs:
        out.append(Instruction(Opcode.IALU, layout.addr_reg, ()))
    return out


def _body_iteration(spec: WorkloadSpec, layout: _RegisterLayout,
                    rng: random.Random) -> List[Instruction]:
    """One loop iteration: load burst, compute phase, stores, extras."""
    out: List[Instruction] = []
    draw_pattern = _pattern_cycle(spec, rng)
    loaded: List[int] = []
    for _ in range(spec.mem_burst):
        dest = layout.next_short()
        out.append(Instruction(Opcode.LDG, dest, (layout.addr_reg,),
                               draw_pattern()))
        loaded.append(dest)
    for _ in range(spec.shmem_ops_per_iter):
        dest = layout.next_short()
        out.append(Instruction(Opcode.LDS, dest, (layout.addr_reg,)))
        loaded.append(dest)
    # Compute phase: consume the loads (creating the stall point), chain
    # through short registers, and occasionally touch long-lived state.
    total_compute = spec.mem_burst * spec.compute_per_mem
    for i in range(total_compute):
        dest = layout.next_short()
        if i < len(loaded):
            srcs = (loaded[i], layout.acc_reg)
        elif rng.random() < 0.25:
            srcs = (layout.recent_short(1),
                    layout.long_regs()[i % max(1, layout.n_long)])
        else:
            srcs = (layout.recent_short(1), layout.recent_short(2))
        out.append(Instruction(Opcode.FALU, dest, srcs))
    for _ in range(spec.sfu_per_iter):
        dest = layout.next_short()
        out.append(Instruction(Opcode.SFU, dest, (layout.recent_short(2),)))
    for _ in range(spec.stores_per_iter):
        # Output writes mostly land in the CTA's resident output tile;
        # only a damped fraction streams fresh lines (write-once outputs
        # coalesce far better than the read streams).
        if rng.random() < 0.4 * spec.stream_frac:
            pattern = AccessPattern.STREAM
        else:
            pattern = AccessPattern.REUSE
        out.append(Instruction(Opcode.STG, None,
                               (layout.recent_short(1), layout.addr_reg),
                               pattern))
    return out


def _body_blocks(spec: WorkloadSpec, layout: _RegisterLayout,
                 rng: random.Random):
    """The loop body as (instructions, kind, divergence) block descriptors."""
    blocks = []
    iteration = _body_iteration(spec, layout, rng)
    if spec.branch_region:
        # Split: head (loads) | branch | arm A | arm B | tail w/ loop-back.
        split = max(1, spec.mem_burst)
        head = iteration[:split]
        head.append(Instruction(Opcode.BRA, None,
                                (layout.recent_short(1),)))
        rest = iteration[split:]
        half = max(1, len(rest) // 2)
        arm_a = rest[:half] or [Instruction(Opcode.IALU, layout.next_short(),
                                            (layout.acc_reg,))]
        arm_b = _arm_b_instructions(spec, layout, rng, len(arm_a))
        tail = rest[half:] or [Instruction(Opcode.IALU, layout.next_short(),
                                           (layout.acc_reg,))]
        if spec.has_barrier:
            tail.append(Instruction(Opcode.BAR))
        tail.append(Instruction(Opcode.BRA, None, (layout.acc_reg,)))
        blocks.append((head, "branch", spec.divergence_prob))
        blocks.append((arm_a, "fallthrough_to_tail", 0.0))
        blocks.append((arm_b, "fallthrough_to_tail", 0.0))
        blocks.append((tail, "loopback", 0.0))
    else:
        if spec.has_barrier:
            iteration.append(Instruction(Opcode.BAR))
        iteration.append(Instruction(Opcode.BRA, None, (layout.acc_reg,)))
        blocks.append((iteration, "loopback", 0.0))
    return _wire_branch_arms(blocks)


def _arm_b_instructions(spec: WorkloadSpec, layout: _RegisterLayout,
                        rng: random.Random, length: int) -> List[Instruction]:
    """The not-taken arm: similar compute, slightly different registers."""
    out: List[Instruction] = []
    for _ in range(max(1, length)):
        dest = layout.next_short()
        out.append(Instruction(Opcode.FALU, dest,
                               (layout.recent_short(2), layout.acc_reg)))
    return out


def _wire_branch_arms(blocks):
    """Fix up arm successors: arms fall through to the tail block.

    ``_build_cfg`` wires FALLTHROUGH blocks to ``block_id + 1``, which is
    wrong for arm A (it would fall into arm B).  Mark arms so the builder
    can instead target the tail.
    """
    wired = []
    for index, (instrs, kind, div) in enumerate(blocks):
        if kind == "fallthrough_to_tail":
            # Tail is the last block of the body chain.
            wired.append((instrs, f"arm:{len(blocks) - 1}", div))
        else:
            wired.append((instrs, kind, div))
    return wired


def _epilogue_instructions(spec: WorkloadSpec,
                           layout: _RegisterLayout) -> List[Instruction]:
    """Consume every long-lived register, store results, and exit."""
    out: List[Instruction] = []
    longs = layout.long_regs()
    for i in range(0, len(longs), 2):
        srcs = tuple(longs[i:i + 2])
        out.append(Instruction(Opcode.FALU, layout.next_short(), srcs))
    # One result store per CTA tile (REUSE region: the output tile's lines
    # are already resident, so the epilogue does not tax DRAM bandwidth).
    out.append(Instruction(Opcode.STG, None,
                           (layout.recent_short(1), layout.addr_reg),
                           AccessPattern.REUSE))
    out.append(Instruction(Opcode.EXIT))
    return out
