"""Property tests for the concurrent-kernel dispatch arbiter.

Hypothesis builds random application pools (kernel mix, coverage weights,
stream priorities) and drives them through every registered policy under
both arbitration modes, asserting the three invariants the shared-budget
design rests on:

* **Budgets never exceeded** — the cycle-level sanitizer (which checks the
  Table-I CTA/warp/thread/register/shmem budgets against the *sum* of all
  resident kernels' footprints) stays silent for the whole run.
* **CTAs retire exactly once** — every CTA id of every grid appears in the
  trace with exactly one retirement, and the completion counter equals the
  sum of the grids.
* **Attribution partitions the totals** — per-kernel instruction counts
  and occupancy integrals sum to the whole-GPU result fields.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TINY, default_config
from repro.experiments.runner import POLICIES
from repro.sim.gpu import GPU
from repro.sim.tracing import EventKind, attach_tracer
from repro.validate.sanitizer import attach_sanitizer
from repro.workloads.apps import AppPool, StreamSpec, build_app

CONFIG = default_config(TINY)
KERNELS = ("KM", "HS", "LB", "ST")
WEIGHTS = (0.5, 1.0, 2.0)


@st.composite
def app_pools(draw) -> AppPool:
    """A random 2-3 stream pool over the Table-II kernels."""
    count = draw(st.integers(min_value=2, max_value=3), label="streams")
    abbrevs = draw(st.permutations(KERNELS), label="kernels")[:count]
    streams = tuple(
        StreamSpec(abbrev,
                   weight=draw(st.sampled_from(WEIGHTS),
                               label=f"weight[{abbrev}]"),
                   priority=draw(st.integers(min_value=0, max_value=2),
                                 label=f"priority[{abbrev}]"))
        for abbrev in abbrevs)
    return AppPool("random", streams)


arbitrations = st.sampled_from(("priority", "round_robin"))


def build_gpu(pool: AppPool, policy: str, arbitration: str) -> GPU:
    specs = build_app(pool, CONFIG, TINY)
    return GPU.concurrent(CONFIG, specs, POLICIES[policy](),
                          arbitration=arbitration)


@pytest.mark.parametrize("policy", sorted(POLICIES))
@settings(max_examples=2, deadline=None, derandomize=True, database=None)
@given(pool=app_pools(), arbitration=arbitrations)
def test_shared_budgets_never_exceeded(policy, pool, arbitration):
    """The sanitizer's per-cycle budget checks (cta-slots, warp slots,
    registers, shmem — summed across resident kernels) must hold for the
    whole run: a SanitizerError here is a budget overshoot."""
    gpu = build_gpu(pool, policy, arbitration)
    attach_sanitizer(gpu)
    result = gpu.run(max_cycles=TINY.max_cycles)
    assert not result.timed_out


@pytest.mark.parametrize("policy", sorted(POLICIES))
@settings(max_examples=2, deadline=None, derandomize=True, database=None)
@given(pool=app_pools(), arbitration=arbitrations)
def test_every_cta_retires_exactly_once(policy, pool, arbitration):
    gpu = build_gpu(pool, policy, arbitration)
    tracer = attach_tracer(gpu)
    result = gpu.run(max_cycles=TINY.max_cycles)
    assert tracer.dropped == 0, "trace window overflowed; raise capacity"
    retired = [e.cta_id for e in tracer.events
               if e.kind is EventKind.RETIRE]
    grid_ids = {cta for launch in gpu.launches
                for cta in range(launch.cta_base,
                                 launch.cta_base + launch.grid_ctas)}
    assert sorted(retired) == sorted(grid_ids), (
        "every dispatched CTA must retire exactly once")
    assert result.completed_ctas == len(grid_ids)


@pytest.mark.parametrize("policy", sorted(POLICIES))
@settings(max_examples=2, deadline=None, derandomize=True, database=None)
@given(pool=app_pools(), arbitration=arbitrations)
def test_attribution_partitions_whole_gpu_totals(policy, pool, arbitration):
    gpu = build_gpu(pool, policy, arbitration)
    result = gpu.run(max_cycles=TINY.max_cycles)
    per_kernel = result.per_kernel
    assert per_kernel is not None
    assert len(per_kernel) == len(gpu.launches)
    assert sum(e["instructions"] for e in per_kernel.values()) \
        == result.instructions
    assert sum(e["completed_ctas"] for e in per_kernel.values()) \
        == result.completed_ctas
    assert sum(e["cta_switch_events"] for e in per_kernel.values()) \
        == result.cta_switch_events
    assert math.isclose(
        sum(e["avg_active_ctas_per_sm"] for e in per_kernel.values()),
        result.avg_active_ctas_per_sm, rel_tol=1e-9, abs_tol=1e-12)
    assert math.isclose(
        sum(e["avg_active_warps_per_sm"] for e in per_kernel.values()) * 32,
        result.avg_active_threads_per_sm, rel_tol=1e-9, abs_tol=1e-12)
