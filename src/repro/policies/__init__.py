"""Register-file management policies: the paper's baseline and all four
compared schemes (Virtual Thread, Reg+DRAM/Zorua-like, RegMutex, FineReg)
plus the unified on-chip memory variants of Fig 19."""

from repro.policies.base import PendingTracker, RegisterFilePolicy
from repro.policies.baseline import BaselinePolicy
from repro.policies.virtual_thread import VirtualThreadPolicy
from repro.policies.reg_dram import RegDRAMPolicy
from repro.policies.regmutex import RegMutexPolicy
from repro.policies.finereg import FineRegPolicy
from repro.policies.finereg_adaptive import AdaptiveFineRegPolicy
from repro.policies.unified_memory import apply_unified_memory

__all__ = [
    "AdaptiveFineRegPolicy",
    "BaselinePolicy",
    "FineRegPolicy",
    "PendingTracker",
    "RegDRAMPolicy",
    "RegMutexPolicy",
    "RegisterFilePolicy",
    "VirtualThreadPolicy",
    "apply_unified_memory",
]
