"""Shared fixtures for the test suite.

Everything runs at TINY scale with a single SM so the whole suite stays
fast; integration tests that need more override locally.
"""

from __future__ import annotations

import os

import pytest

# Tests must exercise the simulator, not yesterday's disk cache; individual
# cache tests construct an explicit ResultCache on a tmp_path instead.
os.environ.setdefault("REPRO_CACHE", "off")

from repro.config import GPUConfig, TINY, default_config
from repro.core.liveness import LivenessAnalysis
from repro.experiments.runner import ExperimentRunner
from repro.isa.cfg import ControlFlowGraph, EdgeKind
from repro.isa.instructions import AccessPattern, Instruction, Opcode
from repro.isa.kernel import Kernel, LaunchGeometry
from repro.workloads.generator import build_workload
from repro.workloads.suite import get_spec


@pytest.fixture
def config() -> GPUConfig:
    return default_config(TINY)


@pytest.fixture(scope="session")
def tiny_runner() -> ExperimentRunner:
    """A session-wide memoizing runner (results shared across tests)."""
    return ExperimentRunner(scale=TINY)


def build_linear_cfg(instructions=None) -> ControlFlowGraph:
    """A minimal two-block CFG: a compute block falling into an exit."""
    if instructions is None:
        instructions = [
            Instruction(Opcode.LDG, 1, (0,), AccessPattern.STREAM),
            Instruction(Opcode.IALU, 2, (1,)),
            Instruction(Opcode.FALU, 3, (2, 1)),
        ]
    cfg = ControlFlowGraph()
    cfg.add_block(instructions, EdgeKind.FALLTHROUGH, successors=(1,))
    cfg.add_block([
        Instruction(Opcode.STG, None, (3, 0), AccessPattern.STREAM),
        Instruction(Opcode.EXIT),
    ], EdgeKind.EXIT)
    return cfg.freeze()


def build_loop_cfg(trips: float = 3.0) -> ControlFlowGraph:
    """Prologue -> loop body (back edge) -> exit."""
    cfg = ControlFlowGraph()
    cfg.add_block([
        Instruction(Opcode.LDG, 0, (1,), AccessPattern.REUSE),
    ], EdgeKind.FALLTHROUGH, successors=(1,))
    cfg.add_block([
        Instruction(Opcode.LDG, 2, (0,), AccessPattern.STREAM),
        Instruction(Opcode.FALU, 3, (2, 0)),
        Instruction(Opcode.BRA, None, (3,)),
    ], EdgeKind.LOOP_BACK, successors=(1, 2), mean_trip_count=trips)
    cfg.add_block([
        Instruction(Opcode.STG, None, (3, 0), AccessPattern.STREAM),
        Instruction(Opcode.EXIT),
    ], EdgeKind.EXIT)
    return cfg.freeze()


def build_branch_cfg(divergence: float = 0.5) -> ControlFlowGraph:
    """Branch block with two arms reconverging before the exit (Fig 9a)."""
    cfg = ControlFlowGraph()
    cfg.add_block([
        Instruction(Opcode.IALU, 0, ()),
        Instruction(Opcode.BRA, None, (0,)),
    ], EdgeKind.BRANCH, successors=(1, 2), divergence_prob=divergence)
    cfg.add_block([
        Instruction(Opcode.IALU, 1, (0,)),
    ], EdgeKind.FALLTHROUGH, successors=(3,))
    cfg.add_block([
        Instruction(Opcode.IALU, 2, (0,)),
    ], EdgeKind.FALLTHROUGH, successors=(3,))
    cfg.add_block([
        Instruction(Opcode.FALU, 3, (0,)),
        Instruction(Opcode.EXIT),
    ], EdgeKind.EXIT)
    return cfg.freeze()


@pytest.fixture
def linear_cfg() -> ControlFlowGraph:
    return build_linear_cfg()


@pytest.fixture
def loop_cfg() -> ControlFlowGraph:
    return build_loop_cfg()


@pytest.fixture
def branch_cfg() -> ControlFlowGraph:
    return build_branch_cfg()


@pytest.fixture
def small_kernel(linear_cfg) -> Kernel:
    return Kernel(
        name="unit",
        cfg=linear_cfg,
        geometry=LaunchGeometry(threads_per_cta=64, grid_ctas=4),
        regs_per_thread=8,
    )


@pytest.fixture
def km_workload(config):
    return build_workload(get_spec("KM"), config, TINY)


def liveness_for(cfg, regs: int = 8):
    return LivenessAnalysis(cfg).run(regs)
