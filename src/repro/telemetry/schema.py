"""Shape validation for telemetry artifacts (trace-event + timeline JSON).

Same philosophy as ``repro.validate.golden.check_golden_payload``: these
files are consumed by external tools (Perfetto, notebooks) and checked in
CI, so a malformed export should fail with a message naming the broken
field, not crash a viewer somewhere downstream.
"""

from __future__ import annotations

from typing import Dict, List

from repro.telemetry.timeline import TIMELINE_SCHEMA_VERSION

#: Trace-event phases this exporter is allowed to emit.
_ALLOWED_PHASES = frozenset({"M", "X", "i", "C", "B", "E"})

#: Required fields per phase (beyond the common ph/pid/name).
_PHASE_FIELDS: Dict[str, Dict[str, type]] = {
    "M": {"tid": int, "args": dict},
    "X": {"tid": int, "ts": int, "dur": int},
    "i": {"tid": int, "ts": int, "s": str},
    "C": {"ts": int, "args": dict},
    "B": {"tid": int, "ts": int},
    "E": {"tid": int, "ts": int},
}

_MAX_PROBLEMS = 10


def check_trace_payload(payload: object) -> List[str]:
    """Schema problems in a trace-event document (empty list = valid)."""
    if not isinstance(payload, dict):
        return [f"payload must be a JSON object, got "
                f"{type(payload).__name__}"]
    problems: List[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or mistyped 'traceEvents' (must be a list)"]
    for index, event in enumerate(events):
        if len(problems) >= _MAX_PROBLEMS:
            problems.append("... further event problems suppressed")
            break
        if not isinstance(event, dict):
            problems.append(f"traceEvents[{index}] must be an object")
            continue
        phase = event.get("ph")
        if phase not in _ALLOWED_PHASES:
            problems.append(f"traceEvents[{index}] has unknown ph "
                            f"{phase!r}")
            continue
        if not isinstance(event.get("pid"), int):
            problems.append(f"traceEvents[{index}] missing int 'pid'")
        if not isinstance(event.get("name"), str):
            problems.append(f"traceEvents[{index}] missing str 'name'")
        for field, expected in _PHASE_FIELDS[phase].items():
            if not isinstance(event.get(field), expected):
                problems.append(
                    f"traceEvents[{index}] ({phase}) field {field!r} must "
                    f"be {expected.__name__}, got "
                    f"{type(event.get(field)).__name__}")
        if phase == "X" and event.get("dur", 0) < 0:
            problems.append(f"traceEvents[{index}] has negative dur")
    return problems


def switch_phase_durations(payload: Dict) -> List[int]:
    """Overhead-cycle durations of all CTA switch phases in a trace.

    CI asserts this is non-empty with nonzero entries for a traced FineReg
    run -- the acceptance check that Table-IV overhead actually reaches the
    exported trace.
    """
    return [event["dur"] for event in payload.get("traceEvents", [])
            if event.get("ph") == "X"
            and event.get("name") in ("switch-out", "switch-in")]


#: Shape of the timeline artifact's top level.
_TIMELINE_SHAPE: Dict[str, type] = {
    "schema": int,
    "interval": int,
    "num_sms": int,
    "truncated": bool,
    "cycles": list,
    "sms": list,
}


def check_timeline_payload(payload: object) -> List[str]:
    """Schema problems in a timeline artifact (empty list = valid)."""
    if not isinstance(payload, dict):
        return [f"payload must be a JSON object, got "
                f"{type(payload).__name__}"]
    problems: List[str] = []
    for key, expected in _TIMELINE_SHAPE.items():
        if key not in payload:
            problems.append(f"missing required key {key!r}")
        elif not isinstance(payload[key], expected):
            problems.append(f"key {key!r} must be {expected.__name__}, got "
                            f"{type(payload[key]).__name__}")
    if problems:
        return problems
    if payload["schema"] != TIMELINE_SCHEMA_VERSION:
        problems.append(f"timeline schema {payload['schema']} != "
                        f"{TIMELINE_SCHEMA_VERSION}")
    n = len(payload["cycles"])
    for entry in payload["sms"]:
        if not isinstance(entry, dict) or "series" not in entry:
            problems.append("sms entries must be objects with 'series'")
            break
        for name, column in entry["series"].items():
            if len(column) != n:
                problems.append(
                    f"series {name!r} of SM {entry.get('sm')} has "
                    f"{len(column)} samples, cycles axis has {n}")
        if len(problems) >= _MAX_PROBLEMS:
            break
    return problems
