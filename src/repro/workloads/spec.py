"""Workload specification: the per-benchmark resource/behaviour envelope.

Each of the paper's 18 benchmarks (Table II) is described by a
:class:`WorkloadSpec` capturing the properties FineReg's behaviour actually
depends on: the CTA resource footprint (registers, threads, shared memory),
the memory/compute mix and locality of its inner loop, its control-flow
character (divergence, barriers, loop trip counts), and liveness/usage
targets matching the paper's Fig 5 characterization.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.config import MAX_REGS_PER_THREAD, WARP_SIZE


class WorkloadType(enum.Enum):
    """Paper Table II classification of the scheduling limit."""

    TYPE_S = "S"    # bounded by CTA/warp scheduler resources
    TYPE_R = "R"    # bounded by register file or shared memory size


@dataclass(frozen=True)
class WorkloadSpec:
    """Envelope of one synthetic benchmark."""

    name: str
    abbrev: str
    wtype: WorkloadType
    # Resource footprint.
    threads_per_cta: int
    regs_per_thread: int
    shmem_per_cta: int = 0
    # Inner-loop composition.
    mem_burst: int = 2            # global loads per iteration
    compute_per_mem: int = 4      # ALU ops per load
    stores_per_iter: int = 1
    shmem_ops_per_iter: int = 0
    sfu_per_iter: int = 0
    loop_trips: int = 16
    # Memory locality mix over the global loads (fractions sum to <= 1;
    # remainder uses the L2-resident shared working set).
    stream_frac: float = 0.6
    reuse_frac: float = 0.3
    # Control flow.
    divergence_prob: float = 0.0
    branch_region: bool = False
    has_barrier: bool = False
    # Register-usage character (paper Fig 5 / PCRF demand).
    live_fraction: float = 0.4    # live registers at stall points / allocated
    usage_fraction: float = 0.55  # registers touched per window / allocated
    # Grid sizing: resident-CTA multiples of the baseline occupancy.
    grid_multiplier: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.threads_per_cta % WARP_SIZE or self.threads_per_cta <= 0:
            raise ValueError(f"{self.abbrev}: bad threads_per_cta")
        if not 0 < self.regs_per_thread <= MAX_REGS_PER_THREAD:
            raise ValueError(f"{self.abbrev}: bad regs_per_thread")
        if self.mem_burst < 1 or self.loop_trips < 1:
            raise ValueError(f"{self.abbrev}: loop must do work")
        if self.stream_frac < 0 or self.reuse_frac < 0 or \
                self.stream_frac + self.reuse_frac > 1.0 + 1e-9:
            raise ValueError(f"{self.abbrev}: bad locality mix")
        if not 0.0 <= self.divergence_prob <= 1.0:
            raise ValueError(f"{self.abbrev}: bad divergence probability")
        if not 0.0 < self.live_fraction <= 1.0:
            raise ValueError(f"{self.abbrev}: bad live fraction")
        if not 0.0 < self.usage_fraction <= 1.0:
            raise ValueError(f"{self.abbrev}: bad usage fraction")
        if self.branch_region is False and self.divergence_prob > 0:
            raise ValueError(f"{self.abbrev}: divergence needs a branch region")

    @property
    def warps_per_cta(self) -> int:
        return self.threads_per_cta // WARP_SIZE

    @property
    def warp_registers_per_cta(self) -> int:
        return self.warps_per_cta * self.regs_per_thread

    @property
    def register_bytes_per_cta(self) -> int:
        return self.warp_registers_per_cta * 128

    @property
    def cta_overhead_bytes(self) -> int:
        """On-chip cost of one extra CTA (paper Fig 3)."""
        return self.register_bytes_per_cta + self.shmem_per_cta

    @property
    def is_type_s(self) -> bool:
        return self.wtype is WorkloadType.TYPE_S
