"""Tests for live progress (ETA) and heartbeat-based stall detection,
including the session-level straggler scenario with a slow fake worker."""

import io

from repro.experiments.parallel import RunRequest
from repro.obs.events import events_of
from repro.obs.progress import POOL, ProgressTracker, StallDetector
from repro.obs.session import ObsSession, WorkerObs


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> float:
        self.t += dt
        return self.t


class TestProgressTracker:
    def test_eta_unknown_before_first_completion(self):
        tracker = ProgressTracker(total=10, jobs=2)
        assert tracker.eta_s() is None
        assert "eta ?" in tracker.render()

    def test_eta_divides_remaining_work_by_pool_width(self):
        tracker = ProgressTracker(total=10, jobs=2)
        tracker.on_complete(2.0)
        tracker.on_complete(4.0)
        # mean 3s, 8 remaining, 2 workers -> 12s.
        assert tracker.eta_s() == 12.0
        assert tracker.mean_duration_s == 3.0

    def test_render_shows_counts_percent_and_eta(self):
        tracker = ProgressTracker(total=4)
        tracker.on_complete(1.0)
        text = tracker.render()
        assert text.startswith("1/4 runs (25%)")
        assert "eta ~3.0s" in text

    def test_zero_total_renders_without_dividing(self):
        tracker = ProgressTracker(total=0)
        assert "100%" in tracker.render()
        tracker.on_complete(1.0)
        assert tracker.render().startswith("1/1")

    def test_eta_never_negative_past_total(self):
        tracker = ProgressTracker(total=1)
        tracker.on_complete(1.0)
        tracker.on_complete(1.0)
        assert tracker.eta_s() == 0.0


class TestStallDetector:
    def test_threshold_floors_at_minimum_then_adapts(self):
        detector = StallDetector(min_threshold_s=5.0, factor=8.0)
        assert detector.threshold_s == 5.0
        detector.observe_duration(0.1)
        assert detector.threshold_s == 5.0, "8 x 0.1s stays floored"
        detector.observe_duration(1.9)  # mean 1.0s -> 8s threshold
        assert detector.threshold_s == 8.0

    def test_silent_worker_flagged_once_per_silence(self):
        detector = StallDetector(min_threshold_s=1.0)
        detector.beat(7, now=0.0)
        assert detector.stalled(0.5) == []
        assert detector.stalled(2.0) == [(7, 2.0)]
        assert detector.stalled(3.0) == [], "no spam while still silent"
        detector.beat(7, now=3.5)  # recovery re-arms the flag
        assert detector.stalled(6.0) == [(7, 2.5)]

    def test_pool_pseudo_worker_catches_total_silence(self):
        """POOL is beaten by any completion, so an all-workers hang still
        surfaces even if no individual worker ever registered."""
        detector = StallDetector(min_threshold_s=1.0)
        detector.beat(POOL, now=0.0)
        stalls = detector.stalled(10.0)
        assert stalls == [(POOL, 10.0)]

    def test_forget_drops_worker_from_watch(self):
        detector = StallDetector(min_threshold_s=1.0)
        detector.beat(3, now=0.0)
        detector.forget(3)
        assert detector.stalled(99.0) == []


class TestSessionStallScenario:
    """End-to-end straggler detection: a deliberately slow fake worker
    goes silent past the adaptive threshold and the session logs a stall
    event -- exactly once -- then recovers on the next completion."""

    def _request(self):
        return RunRequest.make("KM", "baseline")

    def _fake_report(self, clock, worker, dur_s):
        """What a pool worker ships back, built against the shared clock."""
        obs = WorkerObs(now=clock)
        with obs.phase("engine-run"):
            clock.advance(dur_s)
        return obs.report() | {"worker": worker}

    def test_slow_worker_raises_one_stall_then_recovers(self):
        clock = FakeClock()
        session = ObsSession(progress=True, stream=io.StringIO(),
                             now=clock, stall_min_s=1.0)
        session.campaign_begin(total=3, jobs=2, label="stall-test")
        session.pool_begin(jobs=2, outstanding=3)

        # Worker 1 completes quickly; worker 2 is the straggler.
        span1 = session.open_request(self._request())
        session.pool_run_complete(0, self._request(), span1,
                                  self._fake_report(clock, worker=1,
                                                    dur_s=0.1))
        span2 = session.open_request(self._request())

        # Quiet ticks until well past the threshold: worker 1 and the
        # pool pseudo-worker both go silent.
        for __ in range(8):
            clock.advance(0.5)
            session.idle_tick()
        stalls = events_of(session.log.events, "stall")
        stalled_ids = {e["worker"] for e in stalls}
        assert 1 in stalled_ids, "silent worker 1 must be flagged"
        assert POOL in stalled_ids, "pool-level liveness must be flagged"
        assert len(stalls) == len(stalled_ids), "one stall per silence"

        # The straggler finally reports: heartbeats resume, no new stalls.
        session.pool_run_complete(1, self._request(), span2,
                                  self._fake_report(clock, worker=2,
                                                    dur_s=0.1))
        before = len(events_of(session.log.events, "stall"))
        clock.advance(0.2)
        session.idle_tick()
        assert len(events_of(session.log.events, "stall")) == before
        assert session.summary()["stall_events"] == before
        session.close()

    def test_healthy_pool_logs_no_stalls(self):
        clock = FakeClock()
        session = ObsSession(now=clock, stall_min_s=1.0)
        session.campaign_begin(total=2, jobs=2)
        session.pool_begin(jobs=2, outstanding=2)
        for index in range(2):
            span = session.open_request(self._request())
            clock.advance(0.2)
            session.idle_tick()
            session.pool_run_complete(
                index, self._request(), span,
                self._fake_report(clock, worker=index + 1, dur_s=0.1))
        session.campaign_end()
        assert events_of(session.log.events, "stall") == []
        summary = session.summary()
        assert summary["stall_events"] == 0
        assert summary["reconcile"]["spans"] == []
        assert summary["reconcile"]["metrics"] == []
        session.close()

    def test_progress_renders_to_stream_with_eta(self):
        clock = FakeClock()
        stream = io.StringIO()  # not a tty -> newline-terminated lines
        session = ObsSession(progress=True, stream=stream, now=clock)
        session.campaign_begin(total=2, jobs=1, label="p")
        with session.run_scope(self._request(), index=0):
            clock.advance(1.0)
        out = stream.getvalue()
        assert "[obs] 1/2 runs (50%)" in out
        assert "eta ~1.0s" in out
        progress = events_of(session.log.events, "progress")
        assert progress and progress[-1]["eta_s"] == 1.0
        session.close()
