"""Unified on-chip local memory (UM) variants for Fig 19.

UM [10] coalesces the PCRF, shared memory, and L1 data cache into one 272 KB
(= 128 + 96 + 48) pool per SM.  Whatever the kernel's resident CTAs do not
claim as shared memory (and, under FineReg+UM, as PCRF) becomes extra L1
capacity.  We partition the pool statically at launch time -- the paper's
benefit ("indulge in large L1 cache if a kernel uses small numbers of
registers and shared memory") is a per-kernel property, so a static split
captures it.
"""

from __future__ import annotations

from repro.config import KB, GPUConfig
from repro.isa.kernel import Kernel

#: Total unified pool per SM: PCRF + shared memory + L1 (Fig 19).
UM_POOL_BYTES = (128 + 96 + 48) * KB

#: Minimum L1 capacity retained regardless of pool pressure.
MIN_L1_BYTES = 16 * KB


def unified_l1_bytes(config: GPUConfig, kernel: Kernel,
                     reserve_pcrf: bool) -> int:
    """L1 capacity under the UM partition for a given kernel.

    ``reserve_pcrf`` is True for FineReg+UM (the PCRF region stays carved
    out); UM-only and VT+UM give the would-be PCRF share back to the pool.
    """
    pool = UM_POOL_BYTES
    if reserve_pcrf:
        pool -= config.pcrf_bytes
    # Shared-memory demand: what a full active complement would allocate.
    if kernel.shmem_per_cta:
        max_ctas = min(
            config.max_ctas_per_sm,
            config.max_warps_per_sm // kernel.warps_per_cta,
            config.shared_memory_bytes // kernel.shmem_per_cta,
        )
        pool -= max_ctas * kernel.shmem_per_cta
    l1 = max(MIN_L1_BYTES, pool)
    # Round down to a valid capacity (multiple of assoc * line size).
    granule = config.l1_assoc * config.cache_line_bytes
    return l1 - l1 % granule


def apply_unified_memory(gpu, reserve_pcrf: bool) -> int:
    """Resize every SM's L1 to the UM partition; returns the L1 size."""
    l1_bytes = unified_l1_bytes(gpu.config, gpu.kernel, reserve_pcrf)
    for l1 in gpu.hierarchy.l1s:
        l1.resize(l1_bytes)
    return l1_bytes
