"""Greedy-then-oldest (GTO) warp scheduler.

Each SM has four schedulers (Table I); warps of active CTAs are distributed
round-robin across them.  A scheduler keeps issuing from its current warp
("greedy") until that warp blocks, then falls back to the oldest runnable
warp it owns.

Hot-loop notes:

* Warps live in two buckets: a ``_ready`` list (sorted by the stable
  attach-order key ``warp.sched_seq``, which is exactly the launch-order
  scan position the dense implementation used, so GTO priority is
  unchanged) and a ``_blocked`` min-heap keyed by ``blocked_until``.  A
  failed scan touches only warps that could actually issue; blocked warps
  are promoted off the heap when their wake cycle arrives.  Any structural
  change (attach, remove, barrier wake) marks the buckets dirty and they
  are rebuilt from the authoritative ``warps`` list on the next issue.
* The sleep cache (``_sleep_until``) is folded into the scan itself: a scan
  in which every warp failed already knows the earliest wake, so no
  separate per-cycle ``_set_sleep`` walk is needed.  The cache stays
  conservative — any event that could make a warp runnable earlier resets
  it via :meth:`wake` — so sleeping is observably identical to rescanning.
* Both the fused fast step (``sm._step_fast``) and the vectorized
  backend's per-SM runners (``repro.sim.vectorized``) inline the bucket
  maintenance and the sleep fold directly; the invariants above (stable
  ``sched_seq`` order, conservative ``_sleep_until``, dirty-rebuild from
  ``warps``) are their correctness contract.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Callable, List, Optional, Tuple

from repro.sim.warp import FOREVER, WarpSim, WarpState

#: The issue callback: (warp, now) -> True if the warp issued an instruction.
IssueFn = Callable[[WarpSim, int], bool]


class GTOScheduler:
    """One of the SM's warp schedulers."""

    __slots__ = ("scheduler_id", "warps", "_current", "_sleep_until",
                 "telemetry", "_ready", "_blocked", "_dirty", "_seq")

    def __init__(self, scheduler_id: int) -> None:
        self.scheduler_id = scheduler_id
        self.warps: List[WarpSim] = []
        self._current: Optional[WarpSim] = None
        self._sleep_until = 0
        # MetricsRegistry installed by repro.telemetry (None = off).
        self.telemetry = None
        # Incremental issue buckets (derived from ``warps``; rebuilt lazily).
        self._ready: List[Tuple[int, WarpSim]] = []
        self._blocked: List[Tuple[int, int, WarpSim]] = []
        self._dirty = True
        self._seq = 0

    # ------------------------------------------------------------------
    def add_warp(self, warp: WarpSim) -> None:
        warp.sched_seq = self._seq
        self._seq += 1
        self.warps.append(warp)
        self._sleep_until = 0
        self._dirty = True

    def remove_warp(self, warp: WarpSim) -> None:
        self.warps.remove(warp)
        if self._current is warp:
            self._current = None
        self._dirty = True
        self._resleep()

    def remove_cta(self, cta_id: int) -> None:
        """Drop all warps belonging to a CTA (it went pending or finished)."""
        self.warps = [w for w in self.warps if w.cta.cta_id != cta_id]
        if self._current is not None and self._current.cta.cta_id == cta_id:
            self._current = None
        self._dirty = True
        self._resleep()

    def _resleep(self) -> None:
        """Refresh the sleep cache to the exact earliest wake after a
        removal.  The removed warps may have been pinning the cache low (or
        been the pending wake it pointed at); the recomputed value obeys the
        same contract the failed-scan fold establishes — never past the
        earliest cycle a remaining warp could issue — so behaviour is
        observably unchanged, and the event engine's ``next_event_fast``
        can equate the cache with the active-warp minimum."""
        earliest = FOREVER
        for warp in self.warps:
            b = warp.blocked_until
            if b < earliest:
                earliest = b
        self._sleep_until = earliest

    def wake(self) -> None:
        """Invalidate the sleep cache (a warp may be runnable earlier)."""
        self._sleep_until = 0
        self._dirty = True

    def sleeping(self, now: int) -> bool:
        """Would :meth:`issue` refuse instantly at ``now``?"""
        return now < self._sleep_until

    @property
    def occupancy(self) -> int:
        return len(self.warps)

    # ------------------------------------------------------------------
    def _rebuild(self, now: int) -> None:
        """Recompute both buckets from the authoritative warp list."""
        ready: List[Tuple[int, WarpSim]] = []
        blocked: List[Tuple[int, int, WarpSim]] = []
        for warp in self.warps:
            b = warp.blocked_until
            if b <= now:
                ready.append((warp.sched_seq, warp))
            else:
                blocked.append((b, warp.sched_seq, warp))
        ready.sort()
        heapify(blocked)
        self._ready = ready
        self._blocked = blocked
        self._dirty = False

    def issue(self, now: int, try_issue: IssueFn) -> bool:
        """Attempt to issue one instruction this cycle.

        Greedy: retry the current warp first.  Then oldest-first over the
        ready bucket.  ``try_issue`` may refuse (dependency not ready), in
        which case it must have set the warp's ``blocked_until`` so the warp
        is demoted to the heap for the rest of the stall.
        """
        if now < self._sleep_until:
            return False
        runnable = WarpState.RUNNABLE
        current = self._current
        if current is not None:
            if current.state is WarpState.FINISHED:
                self._current = None
                current = None
            elif (current.state is runnable and current.blocked_until <= now
                  and try_issue(current, now)):
                return True
        if self._dirty:
            self._rebuild(now)
            ready = self._ready
        else:
            ready = self._ready
            blocked = self._blocked
            if blocked and blocked[0][0] <= now:
                # Promote newly-unblocked warps in stable priority order.
                while blocked and blocked[0][0] <= now:
                    entry = heappop(blocked)
                    ready.append((entry[1], entry[2]))
                ready.sort()
        blocked = self._blocked
        i = 0
        while i < len(ready):
            entry = ready[i]
            warp = entry[1]
            if warp is current:
                i += 1
                continue
            b = warp.blocked_until
            if b > now:
                # Went to a barrier / finished / direct blocked_until write
                # since it was last scanned: demote.
                heappush(blocked, (b, entry[0], warp))
                del ready[i]
                continue
            if warp.state is not runnable:
                # Alive-but-unschedulable with blocked_until in the past:
                # the dense scan kept rescanning (and never slept); match it.
                i += 1
                continue
            if try_issue(warp, now):
                self._current = warp
                return True
            b = warp.blocked_until
            if b > now:
                heappush(blocked, (b, entry[0], warp))
                del ready[i]
            else:
                i += 1
        # Nothing issued: every leftover either pins the scheduler awake
        # (blocked_until still <= now) or bounds the earliest wake.
        earliest = blocked[0][0] if blocked else FOREVER
        for entry in ready:
            b = entry[1].blocked_until
            if b <= now:
                return False
            if b < earliest:
                earliest = b
        self._note_sleep(now, earliest)
        return False

    def _note_sleep(self, now: int, earliest: int) -> None:
        """All warps just failed to issue: sleep until the earliest wake.

        Barrier waits (``FOREVER``) are woken by the SM explicitly.
        """
        self._sleep_until = earliest
        if self.telemetry is not None:
            self.telemetry.inc("scheduler.sleep_entries")
            if earliest < FOREVER:
                self.telemetry.observe("scheduler.sleep_cycles",
                                       earliest - now)

    def has_runnable(self, now: int) -> bool:
        return any(warp.is_runnable(now) for warp in self.warps)


class LRRScheduler(GTOScheduler):
    """Loose round-robin: rotate through warps instead of running one
    greedily.  Included for the scheduler ablation (Table I uses GTO)."""

    __slots__ = ("_next",)

    def __init__(self, scheduler_id: int) -> None:
        super().__init__(scheduler_id)
        self._next = 0

    def issue(self, now: int, try_issue: IssueFn) -> bool:
        if now < self._sleep_until:
            return False
        runnable = WarpState.RUNNABLE
        warps = self.warps
        count = len(warps)
        for offset in range(count):
            warp = warps[(self._next + offset) % count]
            if (warp.state is runnable and warp.blocked_until <= now
                    and try_issue(warp, now)):
                self._next = (self._next + offset + 1) % count
                self._current = warp
                return True
        # Sleep folded into the failed scan (the dense `_set_sleep` walk).
        earliest = FOREVER
        for warp in warps:
            blocked = warp.blocked_until
            if blocked <= now:
                return False
            if blocked < earliest:
                earliest = blocked
        self._note_sleep(now, earliest)
        return False


SCHEDULER_KINDS = {
    "gto": GTOScheduler,
    "lrr": LRRScheduler,
}
