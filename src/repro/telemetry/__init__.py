"""Observability layer: metrics, timelines, trace export, self-profiling.

The package is strictly *observation-only*: attaching any of its pieces to a
simulation must never change a single simulated cycle, and every disabled
hot-path hook costs exactly one ``is not None`` attribute test (enforced by
the perf guard in ``tests/test_perf_guard.py``).

Pieces (see docs/TELEMETRY.md for the full catalog):

* :mod:`repro.telemetry.registry`  -- counters / gauges / histograms.
* :mod:`repro.telemetry.timeline`  -- per-cycle occupancy series.
* :mod:`repro.telemetry.session`   -- one-call attach + artifact assembly.
* :mod:`repro.telemetry.perfetto`  -- Chrome trace-event / Perfetto export.
* :mod:`repro.telemetry.schema`    -- payload shape validation (CI).
* :mod:`repro.telemetry.rollup`    -- campaign-level p50/p95 aggregation.
* :mod:`repro.telemetry.selfprof`  -- wall-clock self-profiling (the only
  module allowed to read the host clock; see the determinism lint).
"""

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.session import (
    TelemetryConfig,
    TelemetrySession,
    attach_telemetry,
)
from repro.telemetry.timeline import TimelineSampler

__all__ = [
    "MetricsRegistry",
    "TelemetryConfig",
    "TelemetrySession",
    "TimelineSampler",
    "attach_telemetry",
]
