"""Off-chip DRAM model: fixed access latency plus bandwidth queueing.

The channel services bytes at ``bytes_per_cycle``; requests arriving faster
than that accumulate queueing delay.  The model keeps a single "channel free
at" timestamp: a request arriving at cycle ``t`` starts service at
``max(t, channel_free)`` and completes one access latency after its service
slot ends.  Traffic is counted per request class so the Fig 15 breakdown
(demand vs. context-switch vs. bit-vector traffic) falls out directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class DRAMStats:
    """Traffic and timing counters for the DRAM channel."""

    requests: int = 0
    total_bytes: int = 0
    bytes_by_class: Dict[str, int] = field(default_factory=dict)
    total_queue_cycles: int = 0

    def add(self, nbytes: int, traffic_class: str, queue_cycles: int) -> None:
        self.requests += 1
        self.total_bytes += nbytes
        self.bytes_by_class[traffic_class] = (
            self.bytes_by_class.get(traffic_class, 0) + nbytes)
        self.total_queue_cycles += queue_cycles

    @property
    def mean_queue_delay(self) -> float:
        return self.total_queue_cycles / self.requests if self.requests else 0.0


class DRAM:
    """A single bandwidth-limited off-chip channel."""

    def __init__(self, bytes_per_cycle: float, access_latency: int) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")
        if access_latency <= 0:
            raise ValueError("latency must be positive")
        self.bytes_per_cycle = bytes_per_cycle
        self.access_latency = access_latency
        self._channel_free = 0.0
        self.stats = DRAMStats()

    def request(self, now: int, nbytes: int,
                traffic_class: str = "demand") -> int:
        """Issue a request; returns the absolute completion cycle."""
        if nbytes <= 0:
            raise ValueError("request must move at least one byte")
        free = self._channel_free
        start = free if free > now else float(now)
        free = start + nbytes / self.bytes_per_cycle
        self._channel_free = free
        # Stats bookkeeping open-coded (DRAMStats.add) for the hot path.
        stats = self.stats
        stats.requests += 1
        stats.total_bytes += nbytes
        by_class = stats.bytes_by_class
        by_class[traffic_class] = by_class.get(traffic_class, 0) + nbytes
        stats.total_queue_cycles += int(start - now)
        return int(free) + self.access_latency

    def busy_until(self) -> float:
        return self._channel_free

    def backlog(self, now: int) -> float:
        """Cycles of queued service the channel still owes at ``now``.

        A large backlog means the bus is saturated: adding thread-level
        parallelism cannot raise throughput, only queueing delay.
        """
        return max(0.0, self._channel_free - now)
