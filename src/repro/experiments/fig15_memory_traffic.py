"""Fig 15: off-chip memory traffic of the four configurations.

Measured on FD, NW, and ST (apps where Reg+DRAM deploys more CTAs but gains
nothing): the paper shows Reg+DRAM generating 7.2-9.9% extra traffic from
CTA context switching, while Virtual Thread, RegMutex, and FineReg stay
within ~1% of the baseline (FineReg's increase is the live-register bit
vectors).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    SRP_RATIOS,
    TRAFFIC_APPS,
    ExperimentResult,
    best_regmutex,
)
from repro.experiments.parallel import RunRequest
from repro.experiments.runner import ExperimentRunner


def run(runner: ExperimentRunner,
        apps: Sequence[str] = TRAFFIC_APPS) -> ExperimentResult:
    rows = []
    ratios = {"virtual_thread": [], "reg_dram": [], "vt_regmutex": [],
              "finereg": []}
    for app in apps:
        base = runner.run(app, "baseline")
        vt = runner.run(app, "virtual_thread")
        # Force a context-switching Reg+DRAM configuration (the sweep may
        # pick limit 0 for these apps, which would hide the traffic effect
        # the figure demonstrates).
        rd = runner.run(app, "reg_dram", dram_pending_limit=4)
        rm, __ = best_regmutex(runner, app)
        fr = runner.run(app, "finereg")
        row = [app]
        for key, result in (("virtual_thread", vt), ("reg_dram", rd),
                            ("vt_regmutex", rm), ("finereg", fr)):
            ratio = result.traffic_ratio_over(base)
            ratios[key].append(ratio)
            row.append(ratio)
        context_bytes = (rd.dram_traffic_by_class.get("context_spill", 0)
                         + rd.dram_traffic_by_class.get("context_restore", 0))
        bitvector_bytes = fr.dram_traffic_by_class.get("bitvector", 0)
        row.extend([context_bytes / 1024.0, bitvector_bytes / 1024.0])
        rows.append(row)

    mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
    summary = {f"{key}_traffic_ratio": mean(values)
               for key, values in ratios.items()}
    return ExperimentResult(
        experiment="fig15",
        title="Normalized off-chip traffic (and switching-traffic breakdown)",
        headers=["app", "virtual_thread", "reg_dram", "vt_regmutex",
                 "finereg", "rd_context_kb", "fr_bitvector_kb"],
        rows=rows,
        summary=summary,
        notes=("Paper: Reg+DRAM adds 7.2-9.9% traffic (context switching); "
               "VT/RegMutex/FineReg add <1% (FineReg's is bit vectors)."),
    )


def plan(runner: ExperimentRunner,
         apps: Sequence[str] = TRAFFIC_APPS):
    requests = []
    for app in apps:
        requests += [RunRequest.make(app, "baseline"),
                     RunRequest.make(app, "virtual_thread"),
                     RunRequest.make(app, "reg_dram", dram_pending_limit=4)]
        requests += [RunRequest.make(app, "vt_regmutex", srp_ratio=ratio)
                     for ratio in SRP_RATIOS]
        requests.append(RunRequest.make(app, "finereg"))
    return requests


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
