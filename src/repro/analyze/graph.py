"""Graph analyses over a frozen :class:`~repro.isa.cfg.ControlFlowGraph`.

The verifier passes need classic CFG facts the structured builder never had
to compute: forward/backward reachability, dominators (for the reducibility
check), and post-dominators (ground truth for reconvergence points, per the
PDOM model the trace generator and liveness pass assume).

Graphs here are tiny (a handful of blocks), so the dominator solver is the
simple iterative set-intersection algorithm rather than Lengauer-Tarjan.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.isa.cfg import BasicBlock, ControlFlowGraph, EdgeKind
from repro.isa.instructions import Opcode


def predecessors(cfg: ControlFlowGraph) -> Dict[int, List[int]]:
    """Predecessor lists for every block (in block-id order)."""
    preds: Dict[int, List[int]] = {b.block_id: [] for b in cfg.blocks}
    for block in cfg.blocks:
        for succ in block.successors:
            preds[succ].append(block.block_id)
    return preds


def entry_block(cfg: ControlFlowGraph) -> int:
    """The kernel entry: block 0 by construction."""
    return cfg.blocks[0].block_id


def exit_blocks(cfg: ControlFlowGraph) -> Tuple[int, ...]:
    return tuple(b.block_id for b in cfg.blocks
                 if b.edge_kind is EdgeKind.EXIT)


def reachable_from_entry(cfg: ControlFlowGraph) -> Set[int]:
    """Blocks reachable by following successor edges from the entry."""
    seen: Set[int] = set()
    stack = [entry_block(cfg)]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(cfg.blocks[current].successors)
    return seen


def reaches_exit(cfg: ControlFlowGraph) -> Set[int]:
    """Blocks from which some exit block is reachable."""
    preds = predecessors(cfg)
    seen: Set[int] = set()
    stack = list(exit_blocks(cfg))
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(preds[current])
    return seen


def _iterative_dominators(nodes: List[int], root: int,
                          edges_in: Dict[int, List[int]]
                          ) -> Dict[int, Set[int]]:
    """Dominators over ``nodes`` with ``root`` as the start node.

    ``edges_in[n]`` lists the nodes whose facts flow into ``n`` (CFG
    predecessors for dominators, successors for post-dominators).  Nodes
    not in ``nodes`` (unreachable ones) are ignored.
    """
    universe = set(nodes)
    dom: Dict[int, Set[int]] = {n: set(universe) for n in nodes}
    dom[root] = {root}
    changed = True
    while changed:
        changed = False
        for node in nodes:
            if node == root:
                continue
            incoming = [dom[p] for p in edges_in[node] if p in universe]
            new = set.intersection(*incoming) if incoming else set()
            new.add(node)
            if new != dom[node]:
                dom[node] = new
                changed = True
    return dom


def dominators(cfg: ControlFlowGraph) -> Dict[int, Set[int]]:
    """``dominators(b)``: blocks on every entry-to-``b`` path.

    Computed over the entry-reachable subgraph only; unreachable blocks do
    not appear in the result (the structural pass reports them separately).
    """
    reachable = reachable_from_entry(cfg)
    nodes = [b.block_id for b in cfg.blocks if b.block_id in reachable]
    preds = predecessors(cfg)
    return _iterative_dominators(nodes, entry_block(cfg), preds)


def postdominators(cfg: ControlFlowGraph) -> Dict[int, Set[int]]:
    """``postdominators(b)``: blocks on every ``b``-to-exit path.

    Computed over blocks that can reach the exit; blocks that cannot
    (dangling regions) do not appear in the result.
    """
    exits = exit_blocks(cfg)
    if len(exits) != 1:
        # freeze() enforces exactly one exit; degrade gracefully anyway.
        return {}
    can_exit = reaches_exit(cfg)
    nodes = [b.block_id for b in cfg.blocks if b.block_id in can_exit]
    succs = {b.block_id: list(b.successors) for b in cfg.blocks}
    return _iterative_dominators(nodes, exits[0], succs)


def immediate_postdominator(pdom: Dict[int, Set[int]],
                            block_id: int) -> Optional[int]:
    """Nearest strict post-dominator of ``block_id`` (PDOM reconvergence).

    The strict post-dominators of a node form a chain, so the nearest one
    is the member with the largest post-dominator set of its own.
    """
    if block_id not in pdom:
        return None
    strict = [p for p in pdom[block_id] if p != block_id]
    if not strict:
        return None
    return max(strict, key=lambda p: (len(pdom.get(p, ())), -p))


def back_edges(cfg: ControlFlowGraph) -> List[Tuple[int, int]]:
    """All ``LOOP_BACK``-kind edges as (source, header) pairs."""
    edges = []
    for block in cfg.blocks:
        if block.edge_kind is EdgeKind.LOOP_BACK:
            edges.append((block.block_id, block.successors[0]))
    return edges


def region_between(cfg: ControlFlowGraph, start: int,
                   stop: Optional[int]) -> Set[int]:
    """Blocks reachable from ``start`` without passing through ``stop``.

    Used to enumerate a branch region: everything on a path from one branch
    arm up to (but excluding) the reconvergence point.  ``stop=None`` means
    no boundary — the full forward cone of ``start``.
    """
    seen: Set[int] = set()
    stack = [start]
    while stack:
        current = stack.pop()
        if current in seen or current == stop:
            continue
        seen.add(current)
        stack.extend(cfg.blocks[current].successors)
    return seen


def contains_opcode(block: BasicBlock, opcode: Opcode) -> Optional[int]:
    """PC of the first instruction in ``block`` with ``opcode``, if any."""
    for instr in block.instructions:
        if instr.opcode is opcode:
            return instr.pc
    return None
