"""Dynamic trace and address generation for synthetic kernels.

``TraceProvider`` turns a kernel CFG into per-warp dynamic instruction
traces: loops are unrolled with CTA-uniform trip counts and diverging
branches are resolved per warp (a diverged warp executes both paths
serially, matching PDOM reconvergence; a uniform warp takes one side).

``AddressModel`` produces the synthetic address streams attached to global
memory instructions: STREAM walks fresh cache lines per warp, REUSE cycles a
small per-CTA working set (L1-resident), and SHARED_WS cycles a large
working set shared by all CTAs (L2-resident, L1-hostile).
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.isa.cfg import ControlFlowGraph, EdgeKind
from repro.isa.instructions import AccessPattern, Instruction

LINE = 128


class TraceProvider:
    """Deterministic per-warp dynamic traces from a structured CFG."""

    def __init__(self, cfg: ControlFlowGraph, seed: int,
                 trace_scale: float = 1.0) -> None:
        if not cfg.frozen:
            raise ValueError("trace generation requires a frozen CFG")
        self._cfg = cfg
        self._seed = seed
        self._trace_scale = trace_scale
        self._trip_cache: Dict[int, Dict[int, int]] = {}
        # Traces are pure functions of (seed, cta_id, warp_id); memoizing
        # them makes repeated runs of one provider (experiment campaigns,
        # best-of-N benchmarking) skip regeneration.  Consumers treat the
        # list as read-only (the warp only advances an index into it).
        self._trace_cache: Dict[tuple, List[int]] = {}

    # ------------------------------------------------------------------
    def trips_for_cta(self, cta_id: int) -> Dict[int, int]:
        """CTA-uniform trip count per loop (keyed by loop-back block id)."""
        cached = self._trip_cache.get(cta_id)
        if cached is not None:
            return cached
        rng = random.Random((self._seed << 20) ^ cta_id)
        trips: Dict[int, int] = {}
        for block in self._cfg.blocks:
            if block.edge_kind is EdgeKind.LOOP_BACK:
                mean = block.mean_trip_count * self._trace_scale
                jitter = rng.uniform(0.85, 1.15)
                trips[block.block_id] = max(1, round(mean * jitter))
        self._trip_cache[cta_id] = trips
        if len(self._trip_cache) > 4096:
            self._trip_cache.clear()
        return trips

    def trace_for(self, cta_id: int, warp_id: int) -> List[int]:
        """The dynamic trace (static instruction indices) of one warp."""
        key = (cta_id, warp_id)
        cached = self._trace_cache.get(key)
        if cached is not None:
            return cached
        out = self._generate_trace(cta_id, warp_id)
        if len(self._trace_cache) > 8192:
            self._trace_cache.clear()
        self._trace_cache[key] = out
        return out

    def _generate_trace(self, cta_id: int, warp_id: int) -> List[int]:
        cfg = self._cfg
        rng = random.Random((self._seed << 40) ^ (cta_id << 10) ^ warp_id)
        trips = self.trips_for_cta(cta_id)
        remaining = dict(trips)
        out: List[int] = []
        block_id = 0
        while True:
            block = cfg.blocks[block_id]
            first = cfg.first_index(block_id)
            out.extend(range(first, first + len(block.instructions)))
            kind = block.edge_kind
            if kind is EdgeKind.EXIT:
                return out
            if kind is EdgeKind.FALLTHROUGH:
                block_id = block.successors[0]
            elif kind is EdgeKind.LOOP_BACK:
                if remaining[block_id] > 1:
                    remaining[block_id] -= 1
                    block_id = block.successors[0]
                else:
                    remaining[block_id] = trips[block_id]  # rearm (outer reuse)
                    block_id = block.successors[1]
            else:  # BRANCH
                taken, not_taken = block.successors
                if rng.random() < block.divergence_prob:
                    # Diverged: serialize both paths up to reconvergence.
                    reconv = cfg.reconvergence_block(block_id)
                    self._emit_path(out, taken, reconv)
                    self._emit_path(out, not_taken, reconv)
                    block_id = reconv
                elif rng.random() < block.taken_prob:
                    block_id = taken
                else:
                    block_id = not_taken

    def _emit_path(self, out: List[int], start: int, stop: int) -> None:
        cfg = self._cfg
        block_id = start
        while block_id != stop:
            block = cfg.blocks[block_id]
            first = cfg.first_index(block_id)
            out.extend(range(first, first + len(block.instructions)))
            if block.edge_kind is not EdgeKind.FALLTHROUGH:
                raise RuntimeError(
                    f"branch path through B{block_id} is not linear"
                )
            block_id = block.successors[0]


class AddressModel:
    """Synthetic address streams for the three locality classes.

    REUSE models spatial locality: ``reuse_spatial`` consecutive accesses
    fall in the same 128-byte line before the stream advances (a float4-wide
    coalesced walk), so roughly (spatial-1)/spatial of REUSE touches hit the
    L1 regardless of trace length.  SHARED_WS walks a region sized to be
    L2-resident but L1-hostile: first touches warm the L2, later ones hit
    there and stall the warp for the L2 round trip without spending any
    off-chip bandwidth.
    """

    #: Region bases far enough apart that streams never alias.
    SHARED_BASE = 1 << 46

    def __init__(self, reuse_kb: float = 1.0,
                 shared_ws_kb: float = 128.0,
                 reuse_spatial: int = 4) -> None:
        self.reuse_lines = max(1, int(reuse_kb * 1024 / LINE))
        self.shared_lines = max(1, int(shared_ws_kb * 1024 / LINE))
        self.reuse_spatial = max(1, reuse_spatial)

    def warm_l2(self, l2) -> None:
        """Pre-install the shared working set's lines in the L2.

        Models steady state: the shared structure (lookup tables, matrix
        panels) is L2-resident for the whole kernel in the paper's long
        simulations; short scaled-down runs would otherwise measure nothing
        but its compulsory misses.  Stats are reset afterwards so warming
        doesn't count as traffic.
        """
        for index in range(self.shared_lines):
            l2.access(self.SHARED_BASE + index * LINE)
        l2.stats.read_hits = 0
        l2.stats.read_misses = 0

    def address_for(self, warp, instr: Instruction) -> int:
        pattern = instr.pattern
        if pattern is AccessPattern.STREAM:
            warp.stream_counter += 1
            return warp.stream_base + warp.stream_counter * LINE
        if pattern is AccessPattern.REUSE:
            index = (warp.reuse_counter // self.reuse_spatial) \
                % self.reuse_lines
            warp.reuse_counter += 1
            return warp.reuse_base + index * LINE
        # SHARED_WS: stride through an L2-resident region, per-warp phase.
        warp.shared_counter += 1
        index = (warp.shared_counter * 7 + warp.global_warp_id * 13) \
            % self.shared_lines
        return self.SHARED_BASE + index * LINE
