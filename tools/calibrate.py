"""Calibration sweep used while tuning the workload suite (not shipped API)."""
import math
import sys
import time

from repro.config import SCALES
from repro.experiments.runner import ExperimentRunner

scale = SCALES[sys.argv[1] if len(sys.argv) > 1 else "tiny"]
apps = sys.argv[2].split(",") if len(sys.argv) > 2 else [
    "BF", "BI", "CS", "FD", "KM", "MC", "NW", "ST", "SY2",
    "AT", "CF", "HS", "LI", "LB", "SG", "SR", "TA", "TR",
]
t0 = time.time()  # lint: allow[wall-clock] (harness elapsed-time report)
runner = ExperimentRunner(scale=scale)
print(f"{'app':4} {'util':>5} {'dbusy':>5} {'stall':>6} | VT   RM   FR  | res: base vt fr")
sp = {"vt": [], "rm": [], "fr": []}
cta = {"vt": [], "fr": []}
for app in apps:
    b = runner.run(app, "baseline")
    v = runner.run(app, "virtual_thread")
    m = runner.run(app, "vt_regmutex")
    f = runner.run(app, "finereg")
    dbusy = b.dram_traffic_bytes / (b.cycles * runner.base_config.dram_bytes_per_cycle)
    st = b.mean_stall_latency or 0
    sp["vt"].append(v.ipc / b.ipc)
    sp["rm"].append(m.ipc / b.ipc)
    sp["fr"].append(f.ipc / b.ipc)
    cta["vt"].append(v.avg_resident_ctas_per_sm / b.avg_resident_ctas_per_sm)
    cta["fr"].append(f.avg_resident_ctas_per_sm / b.avg_resident_ctas_per_sm)
    print(f"{app:4} {b.ipc/4:5.2f} {dbusy:5.2f} {st:6.0f} | "
          f"{v.ipc/b.ipc:.2f} {m.ipc/b.ipc:.2f} {f.ipc/b.ipc:.2f} | "
          f"{b.avg_resident_ctas_per_sm:4.1f} {v.avg_resident_ctas_per_sm:4.1f} "
          f"{f.avg_resident_ctas_per_sm:4.1f}")
geo = lambda xs: math.exp(sum(math.log(x) for x in xs) / len(xs))
print(f"geomean speedup: VT {geo(sp['vt']):.3f}  RM {geo(sp['rm']):.3f}  "
      f"FR {geo(sp['fr']):.3f}")
print(f"mean CTA ratio:  VT {sum(cta['vt'])/len(cta['vt']):.2f}  "
      f"FR {sum(cta['fr'])/len(cta['fr']):.2f}")
print("elapsed", round(time.time() - t0, 1), "s")  # lint: allow[wall-clock] (harness elapsed-time report)
