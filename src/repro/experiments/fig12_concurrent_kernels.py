"""Concurrent kernels: co-resident occupancy under shared SM budgets.

Companion to Fig 12 for multi-kernel contention: two grids co-resident on
every SM share one Table-I budget (CTA/warp/thread slots, registers, shared
memory).  The baseline holds each stalled CTA's full allocation, so one
register- or shmem-hungry kernel starves its partner's dispatch; FineReg
reclaims stalled live sets into the PCRF, hosting more CTAs of *both*
kernels on the same shared budget.

Runs go through :meth:`~repro.sim.gpu.GPU.concurrent` directly (the
persistent cache is keyed by single-kernel specs), memoized per runner.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.experiments.common import ExperimentResult
from repro.experiments.runner import POLICIES, ExperimentRunner
from repro.sim.gpu import GPU
from repro.sim.stats import SimResult
from repro.workloads.apps import APP_POOLS, build_app

#: Contended pairs (see :data:`repro.workloads.apps.APP_POOLS`).
POOLS: Tuple[str, ...] = ("st+km", "hs+lb", "lb+km", "hs+st")

CONFIGS = ("baseline", "finereg")


def run_concurrent(runner: ExperimentRunner, pool_name: str, policy: str,
                   arbitration: str = "round_robin") -> SimResult:
    """One concurrent simulation, memoized on the runner instance."""
    memo: Dict[Tuple, SimResult] = getattr(runner, "_concurrent_memo", None)
    if memo is None:
        memo = {}
        runner._concurrent_memo = memo
    key = (pool_name, policy, arbitration)
    result = memo.get(key)
    if result is None:
        specs = build_app(APP_POOLS[pool_name], runner.base_config,
                          runner.scale)
        gpu = GPU.concurrent(runner.base_config, specs, POLICIES[policy](),
                             arbitration=arbitration)
        result = gpu.run(max_cycles=runner.scale.max_cycles)
        memo[key] = result
    return result


def run(runner: ExperimentRunner,
        pools: Sequence[str] = POOLS) -> ExperimentResult:
    rows = []
    ratios = []
    speedups = []
    for pool_name in pools:
        base = run_concurrent(runner, pool_name, "baseline")
        fine = run_concurrent(runner, pool_name, "finereg")
        ratio = fine.avg_resident_ctas_per_sm / base.avg_resident_ctas_per_sm
        speedup = base.cycles / fine.cycles
        ratios.append(ratio)
        speedups.append(speedup)
        rows.append([pool_name,
                     base.avg_resident_ctas_per_sm,
                     fine.avg_resident_ctas_per_sm,
                     ratio, speedup])

    mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
    summary = {
        "finereg_concurrent_cta_ratio": mean(ratios),
        "finereg_concurrent_speedup": mean(speedups),
        "max_concurrent_cta_ratio": max(ratios) if ratios else 0.0,
    }
    return ExperimentResult(
        experiment="fig12ck",
        title="Co-resident CTAs per SM with concurrent kernels",
        headers=["pool", "baseline", "finereg", "cta_ratio", "speedup"],
        rows=rows,
        summary=summary,
        notes=("Two grids share each SM's Table-I budget; FineReg's "
               "stalled-live-set reclamation hosts more CTAs of both "
               "kernels than the baseline's full static allocations."),
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner()).to_text(precision=2))


if __name__ == "__main__":  # pragma: no cover
    main()
