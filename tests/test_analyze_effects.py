"""Engine-equivalence effects audit: gates, deletions, seeded faults.

The acceptance contract of the auditor (docs/ANALYZE.md):

* the current tree passes ``--effects --strict`` clean;
* deleting *any* entry of ``_BYPASSED_SM_ATTRS``, ``_INERT_POLICY_ATTRS``
  or ``_COMPILED_BYPASSED_SM_ATTRS`` produces the corresponding HIGH
  finding (the tuples are load-bearing, entry by entry);
* stale entries (naming nothing engine-reachable) are flagged so the
  gates cannot silently rot into allowlists of dead names;
* every seeded fault of the self-test is detected at its severity;
* every shipped policy subclass overrides at least one checked attr, so
  ``policy_inert`` can never misclassify it as the base no-op policy.
"""

from dataclasses import replace

import pytest

from repro.analyze.effects import (
    audit_effects,
    default_effects_config,
)
from repro.analyze.effects_selftest import SEEDED_FAULTS, run_seeded_fault
from repro.analyze.lint import default_lint_paths, default_lint_root
from repro.policies.base import RegisterFilePolicy
from repro.policies.baseline import BaselinePolicy
from repro.sim.compiled import _COMPILED_BYPASSED_SM_ATTRS
from repro.sim.vectorized import (
    _BYPASSED_SM_ATTRS,
    _INERT_POLICY_ATTRS,
    instance_overrides,
)
from repro.validate.findings import Severity


def _tags_at(report, severity):
    return {f.tag for f in report.findings if f.severity == severity}


def _all_policy_subclasses():
    # Import every policy module so __subclasses__ sees the full family.
    import repro.policies.baseline  # noqa: F401
    import repro.policies.finereg  # noqa: F401
    import repro.policies.finereg_adaptive  # noqa: F401
    import repro.policies.reg_dram  # noqa: F401
    import repro.policies.regmutex  # noqa: F401
    import repro.policies.virtual_thread  # noqa: F401

    seen = []
    frontier = list(RegisterFilePolicy.__subclasses__())
    while frontier:
        cls = frontier.pop()
        if cls in seen:
            continue
        seen.append(cls)
        frontier.extend(cls.__subclasses__())
    return seen


class TestCleanTree:
    def test_audit_is_strict_clean(self):
        report = audit_effects()
        assert not report.errors, report.format("effects-audit errors")
        assert not report.warnings, report.format("effects-audit warnings")

    def test_advisories_only_name_known_tags(self):
        report = audit_effects()
        infos = _tags_at(report, Severity.INFO)
        assert infos <= {"inert-gate-candidate", "bypass-gate-candidate",
                         "compiled-gate-candidate",
                         "inert-policy-passthrough"}


class TestGateDeletions:
    """Every single tuple entry must be provably load-bearing."""

    @pytest.mark.parametrize("entry", _BYPASSED_SM_ATTRS)
    def test_deleting_bypass_entry_is_high(self, entry):
        config = default_effects_config()
        config = replace(config, bypassed_sm_attrs=tuple(
            name for name in config.bypassed_sm_attrs if name != entry))
        report = audit_effects(config)
        hits = [f for f in report.by_tag("bypass-gate-missing")
                if f.severity == Severity.ERROR and entry in f.message]
        assert hits, report.format(f"no HIGH for dropped {entry!r}")

    @pytest.mark.parametrize("entry", _COMPILED_BYPASSED_SM_ATTRS)
    def test_deleting_compiled_entry_is_high(self, entry):
        config = default_effects_config()
        config = replace(config, compiled_bypassed_sm_attrs=tuple(
            name for name in config.compiled_bypassed_sm_attrs
            if name != entry))
        report = audit_effects(config)
        hits = [f for f in report.by_tag("compiled-gate-missing")
                if f.severity == Severity.ERROR and entry in f.message]
        assert hits, report.format(f"no HIGH for dropped {entry!r}")

    @pytest.mark.parametrize("entry", _INERT_POLICY_ATTRS)
    def test_deleting_inert_entry_is_high(self, entry):
        config = default_effects_config()
        config = replace(config, inert_policy_attrs=tuple(
            name for name in config.inert_policy_attrs if name != entry))
        report = audit_effects(config)
        hits = [f for f in report.by_tag("inert-gate-missing")
                if f.severity == Severity.ERROR and entry in f.message]
        assert hits, report.format(f"no HIGH for dropped {entry!r}")


class TestStaleEntries:
    """Entries naming nothing engine-reachable must be reported."""

    def test_bogus_bypass_entry_is_stale(self):
        config = default_effects_config()
        config = replace(config, bypassed_sm_attrs=(
            config.bypassed_sm_attrs + ("definitely_not_an_sm_method",)))
        report = audit_effects(config)
        hits = [f for f in report.by_tag("bypass-gate-stale")
                if "definitely_not_an_sm_method" in f.message]
        assert hits, report.format("stale bypass entry not reported")

    def test_bogus_compiled_entry_is_stale(self):
        config = default_effects_config()
        config = replace(config, compiled_bypassed_sm_attrs=(
            config.compiled_bypassed_sm_attrs
            + ("definitely_not_an_sm_method",)))
        report = audit_effects(config)
        hits = [f for f in report.by_tag("compiled-gate-stale")
                if "definitely_not_an_sm_method" in f.message]
        assert hits, report.format("stale compiled entry not reported")

    def test_bogus_inert_entry_is_stale(self):
        config = default_effects_config()
        config = replace(config, inert_policy_attrs=(
            config.inert_policy_attrs + ("definitely_not_a_policy_hook",)))
        report = audit_effects(config)
        hits = [f for f in report.by_tag("inert-gate-stale")
                if "definitely_not_a_policy_hook" in f.message]
        assert hits, report.format("stale inert entry not reported")


class TestSeededFaults:
    @pytest.mark.parametrize(
        "case", SEEDED_FAULTS, ids=[c.name for c in SEEDED_FAULTS])
    def test_fault_is_detected(self, case):
        result = run_seeded_fault(case)
        assert result.detected, (
            result.error
            or f"expected {case.tag!r}, got tags {result.tags}")


class TestPolicyFamily:
    """Runtime cross-check of the audit's inertness derivation."""

    def test_every_subclass_overrides_a_checked_attr(self):
        base_surface = set(vars(RegisterFilePolicy))
        for cls in _all_policy_subclasses():
            overridden = set()
            for klass in cls.__mro__:
                if klass is RegisterFilePolicy:
                    break
                overridden.update(vars(klass))
            surface = overridden & base_surface - {
                "name", "__doc__", "__module__", "__qualname__"}
            if not surface:
                # BaselinePolicy: a pure passthrough is inert by
                # construction and needs no gate entry.
                assert cls is BaselinePolicy
                continue
            checked = surface & set(_INERT_POLICY_ATTRS)
            assert checked, (
                f"{cls.__name__} overrides only unchecked base surface "
                f"{sorted(surface)}; policy_inert would misclassify it")

    def test_family_matches_audit_expectations(self):
        names = {cls.__name__ for cls in _all_policy_subclasses()}
        assert names == {"BaselinePolicy", "VirtualThreadPolicy",
                         "FineRegPolicy", "AdaptiveFineRegPolicy",
                         "RegDRAMPolicy", "RegMutexPolicy"}


class TestInstanceOverrides:
    def test_reports_shadowed_names_in_order(self):
        class Probe:
            def accumulate(self):
                return None

        probe = Probe()
        probe.accumulate = lambda: None
        probe.step = lambda: None
        assert instance_overrides(
            probe, ("step", "accumulate", "next_event")) == (
                "step", "accumulate")

    def test_clean_instance_is_empty(self):
        class Probe:
            pass

        assert instance_overrides(Probe(), ("step",)) == ()

    def test_slotted_object_without_dict_is_empty(self):
        class Slotted:
            __slots__ = ("step",)

        assert instance_overrides(Slotted(), ("step",)) == ()


class TestLintRoots:
    def test_default_paths_cover_src_and_tools(self):
        paths = default_lint_paths()
        assert paths[0] == default_lint_root()
        tools = default_lint_root().parents[1] / "tools"
        if tools.is_dir():
            assert tools in paths
