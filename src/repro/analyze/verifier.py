"""Orchestration of the static kernel verifier.

Entry points, from narrow to broad:

* :func:`verify_cfg` — run the CFG-level passes over one frozen graph plus
  a declared register count (no :class:`~repro.isa.kernel.Kernel` needed,
  so deliberately broken graphs can be verified without tripping the
  ``Kernel`` constructor's own checks).
* :func:`verify_kernel` — a built kernel against a hardware config.
* :func:`verify_spec` — generate a Table-II workload and verify it.
* :func:`verify_suite` — every spec in the shipped suite.
* :func:`verify_requests` — the distinct kernels referenced by a campaign
  plan (a sequence of :class:`~repro.experiments.parallel.RunRequest`).

:func:`verify_cfg` is also what :func:`repro.workloads.generator
.build_workload` calls at construction time; an error-severity finding
there raises :class:`KernelVerificationError` with the full report, so a
bad synthetic kernel fails at build time with block/PC diagnostics rather
than cycles into a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.config import GPUConfig, Scale
from repro.core.liveness import LivenessTable
from repro.isa.cfg import ControlFlowGraph
from repro.isa.kernel import Kernel
from repro.validate.findings import Finding, FindingReport

from repro.analyze.passes import (
    check_barriers,
    check_occupancy,
    check_reconvergence,
    check_register_pressure,
    check_structure,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (workloads)
    from repro.workloads.spec import WorkloadSpec


@dataclass
class AnalysisReport(FindingReport):
    """A finding report plus the artifacts the verifier computed anyway.

    ``liveness`` is the table the register-pressure pass solved; callers
    that need liveness afterwards (the workload generator) reuse it instead
    of running the dataflow twice.
    """

    source: str = ""
    liveness: Optional[LivenessTable] = field(default=None, repr=False)

    def format(self, header: Optional[str] = None) -> str:
        if header is None and self.source:
            header = (f"{self.source}: {len(self.errors)} error(s), "
                      f"{len(self.warnings)} warning(s)")
        return super().format(header)


class KernelVerificationError(ValueError):
    """A kernel failed static verification at construction time."""

    def __init__(self, report: AnalysisReport) -> None:
        self.report = report
        errors = report.errors
        lines = [f"kernel {report.source or '<anonymous>'} failed static "
                 f"verification with {len(errors)} error(s):"]
        lines.extend(f"  {finding.format()}" for finding in errors)
        super().__init__("\n".join(lines))


def verify_cfg(cfg: ControlFlowGraph, regs_per_thread: int,
               source: str = "",
               config: Optional[GPUConfig] = None,
               threads_per_cta: Optional[int] = None,
               shmem_per_cta: int = 0) -> AnalysisReport:
    """Run every CFG-level pass; hardware passes only when ``config`` given."""
    from repro.core.liveness import LivenessAnalysis

    report = AnalysisReport(source=source)
    report.extend(check_structure(cfg, source))
    report.extend(check_reconvergence(cfg, source))
    report.extend(check_barriers(cfg, source))
    liveness = (LivenessAnalysis(cfg).run(regs_per_thread)
                if regs_per_thread > 0 else None)
    pressure = check_register_pressure(
        cfg, regs_per_thread, source, config=config,
        threads_per_cta=threads_per_cta, liveness=liveness)
    report.extend(pressure)
    # Only hand the solved table onward when the declaration is sound; an
    # under-declared table would carry a wrong num_registers.
    if not any(f.tag == "register-pressure" for f in pressure):
        report.liveness = liveness
    if config is not None and threads_per_cta is not None:
        report.extend(check_occupancy(
            regs_per_thread, threads_per_cta, shmem_per_cta, config,
            source))
    return report


def verify_kernel(kernel: Kernel,
                  config: Optional[GPUConfig] = None) -> AnalysisReport:
    """Verify a built kernel (hardware checks against ``config`` or Table I)."""
    config = GPUConfig() if config is None else config
    return verify_cfg(
        kernel.cfg, kernel.regs_per_thread, source=kernel.name,
        config=config, threads_per_cta=kernel.geometry.threads_per_cta,
        shmem_per_cta=kernel.shmem_per_cta)


def verify_spec(spec: "WorkloadSpec", config: Optional[GPUConfig] = None,
                scale: Optional[Scale] = None) -> AnalysisReport:
    """Generate one Table-II workload and verify the result.

    ``build_workload`` already verifies internally (and would raise); this
    wrapper instead *returns* the report, so the CLI can present findings
    for broken and healthy specs uniformly.
    """
    # Imported lazily: the generator imports this module for its gate.
    from repro.config import TINY, default_config
    from repro.workloads.generator import build_workload

    scale = TINY if scale is None else scale
    config = default_config(scale) if config is None else config
    try:
        instance = build_workload(spec, config, scale)
    except KernelVerificationError as exc:
        return exc.report
    return verify_kernel(instance.kernel, config)


def verify_suite(config: Optional[GPUConfig] = None,
                 scale: Optional[Scale] = None,
                 abbrevs: Optional[Sequence[str]] = None
                 ) -> List[AnalysisReport]:
    """Verify every shipped Table-II spec (or the named subset)."""
    from repro.workloads.suite import ALL_SPECS, get_spec

    specs = (ALL_SPECS if abbrevs is None
             else [get_spec(a) for a in abbrevs])
    return [verify_spec(spec, config, scale) for spec in specs]


def verify_requests(requests: Sequence[object],
                    base_config: Optional[GPUConfig] = None,
                    scale: Optional[Scale] = None) -> List[AnalysisReport]:
    """Verify the distinct kernels a campaign plan would simulate.

    Requests sharing an (abbrev, num_sms) pair rebuild the same workload
    (grids are sized from the reference config), so each distinct kernel
    is verified once against its request's effective config.
    """
    from repro.config import TINY, default_config

    scale = TINY if scale is None else scale
    base_config = default_config(scale) if base_config is None else base_config
    seen: Dict[Tuple[str, int], None] = {}
    reports: List[AnalysisReport] = []
    for request in requests:
        abbrev: str = request.abbrev  # type: ignore[attr-defined]
        config: Optional[GPUConfig] = request.config  # type: ignore[attr-defined]
        effective = config if config is not None else base_config
        key = (abbrev, effective.num_sms)
        if key in seen:
            continue
        seen[key] = None
        from repro.workloads.suite import get_spec
        reference = base_config.with_num_sms(effective.num_sms)
        reports.append(verify_spec(get_spec(abbrev), reference, scale))
    return reports
