"""Dense-vs-event engine differential tests.

The event-driven engine (``GPU._run_event``) is a pure performance
transformation: for every workload, policy and seed it must produce a
``SimResult`` that is *byte-identical* (as sorted JSON) to the dense
per-cycle oracle retained behind ``REPRO_DENSE_STEP=1``.  These tests pin
that contract over the full golden corpus and over hypothesis-chosen
(app, seed) micro-workloads for every registered policy, so any divergence
introduced in the fused fast step, the wakeup computation, or the
closed-form idle-span accounting fails loudly with a payload diff instead
of silently drifting the science.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SCALES, GPUConfig
from repro.experiments.runner import POLICIES
from repro.sim.gpu import GPU
from repro.validate.golden import CORPUS, run_case
from repro.workloads.generator import build_workload
from repro.workloads.suite import get_spec

TINY = SCALES["tiny"]
#: Two SMs keep the micro-workloads fast while still exercising the
#: cross-SM parts of the engine (shared L2/DRAM, global cycle advance).
MICRO_CONFIG = GPUConfig(num_sms=2)
APPS = ("KM", "HS", "LB")


@contextmanager
def dense_engine():
    """Route ``GPU.run`` to the dense per-cycle oracle for the block."""
    os.environ["REPRO_DENSE_STEP"] = "1"
    try:
        yield
    finally:
        os.environ.pop("REPRO_DENSE_STEP", None)


def result_bytes(result) -> str:
    return json.dumps(result.to_json(), sort_keys=True)


def simulate_micro(policy: str, app: str, seed: int):
    """One tiny 2-SM simulation with the workload spec reseeded."""
    spec = replace(get_spec(app), seed=seed)
    instance = build_workload(spec, MICRO_CONFIG, TINY)
    gpu = GPU(MICRO_CONFIG, instance.kernel, POLICIES[policy](),
              instance.trace_provider, instance.address_model,
              liveness=instance.liveness)
    return gpu.run(max_cycles=TINY.max_cycles)


# ----------------------------------------------------------------------
# Oracle plumbing
# ----------------------------------------------------------------------
def test_env_switch_selects_dense_engine():
    """``REPRO_DENSE_STEP=1`` must actually reach ``_run_dense``."""
    instance = build_workload(get_spec("KM"), MICRO_CONFIG, TINY)
    gpu = GPU(MICRO_CONFIG, instance.kernel, POLICIES["baseline"](),
              instance.trace_provider, instance.address_model,
              liveness=instance.liveness)
    sentinel = object()
    gpu._run_dense = lambda max_cycles: sentinel
    with dense_engine():
        assert gpu.run(max_cycles=10) is sentinel
    gpu._run_event = lambda max_cycles: sentinel
    assert gpu.run(max_cycles=10) is sentinel


def test_uninstrumented_run_binds_the_fast_path():
    """Hook-free SMs must take the fused step (guards eligibility drift)."""
    instance = build_workload(get_spec("KM"), MICRO_CONFIG, TINY)
    gpu = GPU(MICRO_CONFIG, instance.kernel, POLICIES["baseline"](),
              instance.trace_provider, instance.address_model,
              liveness=instance.liveness)
    gpu.run(max_cycles=TINY.max_cycles)
    assert all(sm._fast_consts is not None for sm in gpu.sms), (
        "fast_step_eligible() stopped admitting a plain uninstrumented run")


# ----------------------------------------------------------------------
# Golden corpus, both engines
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case", CORPUS, ids=lambda c: c.name)
def test_golden_case_bit_identical_across_engines(case):
    with dense_engine():
        dense, _, _ = run_case(case, sanitize=False)
    event, _, _ = run_case(case, sanitize=False)
    assert result_bytes(dense) == result_bytes(event), (
        f"event engine diverged from the dense oracle on {case.name}")


# ----------------------------------------------------------------------
# Random micro-workloads, every policy
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", sorted(POLICIES))
@settings(max_examples=3, deadline=None, derandomize=True, database=None)
@given(data=st.data())
def test_random_micro_workloads_bit_identical(policy, data):
    seed = data.draw(st.integers(min_value=0, max_value=2 ** 16 - 1),
                     label="spec seed")
    app = data.draw(st.sampled_from(APPS), label="app")
    with dense_engine():
        dense = simulate_micro(policy, app, seed)
    event = simulate_micro(policy, app, seed)
    assert result_bytes(dense) == result_bytes(event), (
        f"event engine diverged from the dense oracle "
        f"({policy}, {app}, seed={seed})")
