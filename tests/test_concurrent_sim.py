"""End-to-end concurrent-kernel simulation tests.

Runs real two-kernel apps through ``GPU.concurrent`` under every policy and
pins the result-surface contract: per-kernel attribution sums to the
whole-GPU totals, every CTA of every grid completes, the telemetry session
exposes the same attribution, and the fig12ck experiment module produces
its summary keys with FineReg ahead of the baseline.
"""

from __future__ import annotations

import math

import pytest

from repro.config import TINY, default_config
from repro.experiments import fig12_concurrent_kernels
from repro.experiments.runner import POLICIES
from repro.sim.gpu import GPU
from repro.telemetry.session import attach_telemetry
from repro.workloads.apps import APP_POOLS, AppPool, StreamSpec, build_app
from repro.workloads.generator import build_workload
from repro.workloads.suite import get_spec

CONFIG = default_config(TINY)

#: Attribution fields that must sum exactly across launches.
EXACT_SUM_FIELDS = ("instructions", "cta_switch_events", "completed_ctas")


def run_pool(pool_name: str, policy: str, arbitration: str = "priority",
             pool: AppPool = None):
    chosen = pool if pool is not None else APP_POOLS[pool_name]
    specs = build_app(chosen, CONFIG, TINY)
    gpu = GPU.concurrent(CONFIG, specs, POLICIES[policy](),
                         arbitration=arbitration)
    result = gpu.run(max_cycles=TINY.max_cycles)
    return result, gpu


# ----------------------------------------------------------------------
# Completion and attribution, every policy
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", sorted(POLICIES))
class TestEveryPolicy:
    def test_all_grids_complete(self, policy):
        result, gpu = run_pool("st+km", policy)
        assert not result.timed_out
        assert result.completed_ctas == sum(
            launch.grid_ctas for launch in gpu.launches)
        assert all(launch.remaining == 0 for launch in gpu.launches)

    def test_per_kernel_attribution_sums_to_totals(self, policy):
        result, gpu = run_pool("st+km", policy)
        per_kernel = result.per_kernel
        assert per_kernel is not None
        assert set(per_kernel) == {l.label for l in gpu.launches}
        for field in EXACT_SUM_FIELDS:
            total = getattr(result, field)
            assert sum(e[field] for e in per_kernel.values()) == total, field
        # Time-weighted integrals: per-kernel occupancies partition the
        # whole-GPU averages (float accumulation, so isclose not ==).
        assert math.isclose(
            sum(e["avg_active_ctas_per_sm"] for e in per_kernel.values()),
            result.avg_active_ctas_per_sm, rel_tol=1e-9, abs_tol=1e-12)
        assert math.isclose(
            sum(e["avg_active_warps_per_sm"] for e in per_kernel.values())
            * 32,
            result.avg_active_threads_per_sm, rel_tol=1e-9, abs_tol=1e-12)


# ----------------------------------------------------------------------
# Result surface
# ----------------------------------------------------------------------
class TestResultSurface:
    def test_workload_name_joins_kernels(self):
        result, gpu = run_pool("hs+lb", "baseline")
        assert result.workload == "+".join(
            l.kernel.name for l in gpu.launches)

    def test_per_kernel_entries_carry_grid_metadata(self):
        result, gpu = run_pool("hs+lb", "baseline")
        for launch in gpu.launches:
            entry = result.per_kernel[launch.label]
            assert entry["grid_ctas"] == launch.grid_ctas
            assert entry["completed_ctas"] == launch.grid_ctas
            assert entry["instructions"] > 0

    def test_single_kernel_runs_have_no_per_kernel(self):
        instance = build_workload(get_spec("KM"), CONFIG, TINY)
        gpu = GPU(CONFIG, instance.kernel, POLICIES["baseline"](),
                  instance.trace_provider, instance.address_model,
                  liveness=instance.liveness)
        result = gpu.run(max_cycles=TINY.max_cycles)
        assert result.per_kernel is None

    def test_priority_skew_shifts_attribution(self):
        # Give ST strict priority over KM: under priority arbitration the
        # prioritized stream must not finish with less issue share than it
        # gets under round-robin with equal priorities.
        pool = AppPool("skew", (StreamSpec("ST", priority=2),
                                StreamSpec("KM")))
        result, gpu = run_pool(None, "baseline", pool=pool)
        prio_label = gpu.launches[0].label
        assert result.per_kernel[prio_label]["instructions"] > 0
        assert result.per_kernel[prio_label]["completed_ctas"] \
            == gpu.launches[0].grid_ctas


# ----------------------------------------------------------------------
# Dispatch bookkeeping
# ----------------------------------------------------------------------
class TestDispatchBookkeeping:
    def test_launch_for_cta_maps_whole_id_space(self):
        specs = build_app(APP_POOLS["st+km"], CONFIG, TINY)
        gpu = GPU.concurrent(CONFIG, specs, POLICIES["baseline"]())
        total = sum(l.grid_ctas for l in gpu.launches)
        for cta_id in range(total):
            assert gpu.launch_for_cta(cta_id).owns_cta(cta_id)
        with pytest.raises(ValueError, match="outside"):
            gpu.launch_for_cta(total)

    def test_concurrent_requires_shared_address_model_type(self):
        km = build_workload(get_spec("KM"), CONFIG, TINY)
        from repro.sim.launch import LaunchSpec

        alien = LaunchSpec(kernel=km.kernel,
                           trace_provider=km.trace_provider,
                           address_model=object())
        good = LaunchSpec.from_workload(km)
        with pytest.raises(ValueError, match="address-model type"):
            GPU.concurrent(CONFIG, [good, alien], POLICIES["baseline"]())

    def test_unknown_arbitration_rejected(self):
        specs = build_app(APP_POOLS["st+km"], CONFIG, TINY)
        with pytest.raises(ValueError, match="arbitration"):
            GPU.concurrent(CONFIG, specs, POLICIES["baseline"](),
                           arbitration="fifo")


# ----------------------------------------------------------------------
# Telemetry attribution
# ----------------------------------------------------------------------
class TestTelemetryKernels:
    def test_concurrent_payload_carries_kernel_summary(self):
        specs = build_app(APP_POOLS["st+km"], CONFIG, TINY)
        gpu = GPU.concurrent(CONFIG, specs, POLICIES["finereg"]())
        session = attach_telemetry(gpu)
        result = gpu.run(max_cycles=TINY.max_cycles)
        kernels = session.as_payload()["kernels"]
        assert set(kernels) == {l.label for l in gpu.launches}
        for launch in gpu.launches:
            entry = kernels[launch.label]
            assert entry["stream"] == launch.stream
            assert entry["priority"] == launch.priority
            assert entry["kernel"] == launch.kernel.name
            assert entry["grid_ctas"] == launch.grid_ctas
        # Same accounting as the SimResult attribution.
        assert sum(e["instructions"] for e in kernels.values()) \
            == result.instructions

    def test_single_kernel_payload_has_none(self):
        instance = build_workload(get_spec("KM"), CONFIG, TINY)
        gpu = GPU(CONFIG, instance.kernel, POLICIES["baseline"](),
                  instance.trace_provider, instance.address_model,
                  liveness=instance.liveness)
        session = attach_telemetry(gpu)
        gpu.run(max_cycles=TINY.max_cycles)
        assert session.as_payload()["kernels"] is None


# ----------------------------------------------------------------------
# fig12ck experiment module
# ----------------------------------------------------------------------
class TestFig12ConcurrentKernels:
    def test_runs_and_produces_summary(self, tiny_runner):
        res = fig12_concurrent_kernels.run(tiny_runner,
                                           pools=("st+km", "hs+lb"))
        assert len(res.rows) == 2
        for key in ("finereg_concurrent_cta_ratio",
                    "finereg_concurrent_speedup",
                    "max_concurrent_cta_ratio"):
            assert key in res.summary
        # Acceptance: FineReg hosts more co-resident CTAs than the
        # baseline in at least one contended pool.
        assert res.summary["max_concurrent_cta_ratio"] > 1.0

    def test_runs_memoized_on_runner(self, tiny_runner):
        first = fig12_concurrent_kernels.run_concurrent(
            tiny_runner, "st+km", "baseline")
        second = fig12_concurrent_kernels.run_concurrent(
            tiny_runner, "st+km", "baseline")
        assert first is second
