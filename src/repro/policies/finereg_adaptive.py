"""Adaptive ACRF/PCRF repartitioning (an extension beyond the paper).

Fig 17 shows the best static split is workload-dependent: register-hungry
kernels want a bigger ACRF (more active CTAs), low-live kernels want a
bigger PCRF (deeper pending pool).  This extension starts at the paper's
128/128 split and moves the boundary at runtime:

* toward the ACRF when launches/restores are being refused for ACRF space
  while the PCRF sits underused, and
* toward the PCRF when spills are rejected for PCRF space while the ACRF
  has idle capacity.

The boundary moves in 8 KB (64 warp-register) steps, at most once per
epoch, and only when the surrendered region is free -- the PCRF gives up
its top slots, which drain naturally because spills claim the lowest free
slots first.
"""

from __future__ import annotations

from repro.policies.finereg import FineRegPolicy
from repro.sim.cta import CTASim

#: Boundary step in warp-registers (128 entries = 16 KB).
REPARTITION_STEP = 128

#: Minimum region size in warp-registers (64 KB, Fig 17's extreme).
MIN_REGION = 512

#: Cycles between repartition decisions.
EPOCH_CYCLES = 1024


class AdaptiveFineRegPolicy(FineRegPolicy):
    """FineReg with runtime ACRF/PCRF boundary movement."""

    name = "finereg_adaptive"

    def __init__(self, sm) -> None:
        super().__init__(sm)
        self._next_epoch = EPOCH_CYCLES
        self._epoch_failed_spills = 0
        self._epoch_acrf_blocked = 0
        self._seen_blocked_restores = 0
        self.repartitions_to_acrf = 0
        self.repartitions_to_pcrf = 0

    # ------------------------------------------------------------------
    # Pressure signals
    # ------------------------------------------------------------------
    def can_launch(self) -> bool:
        ok = super().can_launch()
        if not ok and self.sm.scheduler_slots_free() \
                and not self.acrf.can_allocate(self._cta_regs):
            self._epoch_acrf_blocked += 1
        return ok

    def can_launch_for(self, launch) -> bool:
        ok = super().can_launch_for(launch)
        if not ok and self.sm.scheduler_slots_free(launch) \
                and not self.acrf.can_allocate(self._launch_regs(launch)):
            self._epoch_acrf_blocked += 1
        return ok

    def _try_switch_out(self, cta: CTASim, now: int) -> bool:
        before = self.failed_spills
        acted = super()._try_switch_out(cta, now)
        if self.failed_spills > before:
            self._epoch_failed_spills += 1
        return acted

    # ------------------------------------------------------------------
    def on_tick(self, now: int) -> None:
        super().on_tick(now)
        if now >= self._next_epoch:
            self._maybe_repartition()
            self._next_epoch = now + EPOCH_CYCLES

    def wake_time(self, now: int) -> int:
        # The repartition epoch fires at the first executed cycle past
        # _next_epoch, exactly like the dense per-cycle check.
        wake = super().wake_time(now)
        if self._next_epoch < wake:
            wake = self._next_epoch
        return wake

    def _maybe_repartition(self) -> None:
        pcrf_pressure = self._epoch_failed_spills
        acrf_pressure = self._epoch_acrf_blocked \
            + (self.blocked_restores - self._seen_blocked_restores)
        self._seen_blocked_restores = self.blocked_restores
        self._epoch_failed_spills = 0
        self._epoch_acrf_blocked = 0
        if pcrf_pressure > acrf_pressure and pcrf_pressure > 0:
            self._grow_pcrf()
        elif acrf_pressure > pcrf_pressure and acrf_pressure > 0:
            self._grow_acrf()

    def _grow_pcrf(self) -> None:
        new_acrf = self.acrf.capacity - REPARTITION_STEP
        if new_acrf < MIN_REGION:
            return
        if self.acrf.capacity - self.acrf.used < REPARTITION_STEP:
            return  # the surrendered ACRF space is still allocated
        if self.pcrf.capacity + REPARTITION_STEP > 1024:
            return  # 10-bit next-pointer addressing limit
        self.acrf.resize(new_acrf)
        self.pcrf.resize(self.pcrf.capacity + REPARTITION_STEP)
        self.rf_capacity_entries = new_acrf
        self.repartitions_to_pcrf += 1

    def _grow_acrf(self) -> None:
        new_pcrf = self.pcrf.capacity - REPARTITION_STEP
        if new_pcrf < MIN_REGION:
            return
        if any(self.pcrf.occupancy_flags()[new_pcrf:]):
            return  # surrendered PCRF slots still hold live registers
        self.pcrf.resize(new_pcrf)
        self.acrf.resize(self.acrf.capacity + REPARTITION_STEP)
        self.rf_capacity_entries = self.acrf.capacity
        self.repartitions_to_acrf += 1

    # ------------------------------------------------------------------
    def extras(self) -> dict:
        extras = super().extras()
        extras["repartitions_to_acrf"] = self.repartitions_to_acrf
        extras["repartitions_to_pcrf"] = self.repartitions_to_pcrf
        return extras
