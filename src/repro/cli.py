"""Command-line interface.

Usage examples::

    python -m repro list                         # the Table II suite
    python -m repro run KM --policy finereg      # one simulation
    python -m repro trace KM --perfetto out.json # traced run + export
    python -m repro compare KM LB --scale tiny   # all five policies
    python -m repro figure fig13 --apps KM,LB    # regenerate a figure
    python -m repro figure all --jobs 8          # the whole evaluation
    python -m repro cache info                   # persistent result cache
    python -m repro cache clear
    python -m repro overhead                     # V-F hardware budget
    python -m repro analyze --suite              # static kernel verifier
    python -m repro analyze --lint               # determinism lint
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import List, Optional, Sequence

from repro.config import SCALES
from repro.core.overhead import finereg_overhead
from repro.experiments.cache import ResultCache, cache_enabled
from repro.experiments.common import main_config_results, plan_main_configs
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentRunner, POLICIES
from repro.workloads.suite import ALL_SPECS, get_spec

#: Figure/table modules addressable from the CLI.
EXPERIMENT_MODULES = {
    "fig02": "fig02_resources",
    "fig03": "fig03_cta_overhead",
    "fig04": "fig04_case_study",
    "fig05": "fig05_register_usage",
    "table03": "table03_stall_time",
    "fig12": "fig12_concurrent_ctas",
    "fig13": "fig13_performance",
    "fig14": "fig14_rf_stalls",
    "fig15": "fig15_memory_traffic",
    "fig16": "fig16_energy",
    "fig17": "fig17_rf_sensitivity",
    "fig18": "fig18_sm_scaling",
    "fig19": "fig19_unified_memory",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FineReg (MICRO 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list the benchmark suite")
    list_cmd.set_defaults(func=cmd_list)

    run_cmd = sub.add_parser("run", help="simulate one benchmark")
    run_cmd.add_argument("app", help="Table II abbreviation, e.g. KM")
    run_cmd.add_argument("--policy", default="finereg",
                         choices=sorted(POLICIES))
    run_cmd.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    run_cmd.add_argument("--sanitize", action="store_true",
                         help="run under the invariant sanitizer "
                              "(implies a cold, uncached simulation)")
    run_cmd.set_defaults(func=cmd_run)

    cmp_cmd = sub.add_parser("compare",
                             help="all five policies on given benchmarks")
    cmp_cmd.add_argument("apps", nargs="+")
    cmp_cmd.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    cmp_cmd.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: all CPUs)")
    cmp_cmd.set_defaults(func=cmd_compare)

    fig_cmd = sub.add_parser("figure", help="regenerate a paper figure")
    fig_cmd.add_argument("figure",
                         choices=sorted(EXPERIMENT_MODULES) + ["all"])
    fig_cmd.add_argument("--scale", default="small", choices=sorted(SCALES))
    fig_cmd.add_argument("--apps", default=None,
                         help="comma-separated subset, e.g. KM,LB")
    fig_cmd.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: all CPUs)")
    fig_cmd.set_defaults(func=cmd_figure)

    trace_cmd = sub.add_parser(
        "trace",
        help="traced simulation: Perfetto export + per-cycle timelines")
    trace_cmd.add_argument("app", help="Table II abbreviation, e.g. KM")
    trace_cmd.add_argument("--policy", default="finereg",
                           choices=sorted(POLICIES))
    trace_cmd.add_argument("--scale", default="tiny",
                           choices=sorted(SCALES))
    trace_cmd.add_argument("--perfetto", default=None, metavar="OUT",
                           help="write Chrome trace-event JSON here "
                                "(open in ui.perfetto.dev)")
    trace_cmd.add_argument("--timeline", default=None, metavar="OUT",
                           help="write the columnar per-cycle timeline "
                                "JSON here")
    trace_cmd.add_argument("--interval", type=int, default=1,
                           help="timeline sampling interval in cycles "
                                "(default 1)")
    trace_cmd.add_argument("--capacity", type=int, default=100_000,
                           help="event ring-buffer capacity "
                                "(oldest dropped beyond this)")
    trace_cmd.set_defaults(func=cmd_trace)

    cache_cmd = sub.add_parser(
        "cache", help="inspect or clear the persistent result cache")
    cache_cmd.add_argument("action", choices=("info", "stats", "clear"))
    cache_cmd.add_argument("--log", default=None, metavar="OBS_LOG",
                           help="campaign obs log to source hit/miss "
                                "counters from (stats only)")
    cache_cmd.add_argument("--json", action="store_true",
                           help="machine-readable stats on stdout")
    cache_cmd.set_defaults(func=cmd_cache)

    obs_cmd = sub.add_parser(
        "obs",
        help="inspect campaign observability logs + perf trajectory")
    obs_cmd.add_argument("action", choices=("summarize", "tail", "perfetto",
                                            "perf-trajectory"))
    obs_cmd.add_argument("log", nargs="?", default=None,
                         help="campaign JSONL event log "
                              "(run_all --obs-log / REPRO_OBS=1)")
    obs_cmd.add_argument("--out", default=None, metavar="PATH",
                         help="output path for the perfetto export")
    obs_cmd.add_argument("-n", "--last", type=int, default=20,
                         help="events to show for tail (default 20)")
    obs_cmd.add_argument("--history", default=None, metavar="PATH",
                         help="BENCH history file for perf-trajectory "
                              "(default BENCH_history.jsonl)")
    obs_cmd.add_argument("--threshold", type=float, default=0.20,
                         help="fractional throughput drop flagged as a "
                              "regression (default 0.20)")
    obs_cmd.add_argument("--strict", action="store_true",
                         help="exit non-zero on regressions or "
                              "reconciliation problems")
    obs_cmd.add_argument("--json", action="store_true",
                         help="machine-readable output on stdout")
    obs_cmd.set_defaults(func=cmd_obs)

    ovh_cmd = sub.add_parser("overhead", help="FineReg SRAM budget (V-F)")
    ovh_cmd.set_defaults(func=cmd_overhead)

    ana_cmd = sub.add_parser(
        "analyze",
        help="static kernel verifier + determinism lint (pre-simulation)")
    ana_cmd.add_argument("apps", nargs="*",
                         help="Table II abbreviations to verify, e.g. KM LB")
    ana_cmd.add_argument("--suite", action="store_true",
                         help="verify every Table II workload")
    ana_cmd.add_argument("--figure",
                         choices=sorted(EXPERIMENT_MODULES) + ["all"],
                         default=None,
                         help="verify the kernels of a campaign plan")
    ana_cmd.add_argument("--lint", action="store_true",
                         help="determinism lint over src/repro + tools/")
    ana_cmd.add_argument("--lint-path", action="append", default=None,
                         metavar="PATH",
                         help="lint these files/dirs instead of the default "
                              "roots")
    ana_cmd.add_argument("--effects", action="store_true",
                         help="engine-equivalence effects audit of the "
                              "fast-path gates (docs/ANALYZE.md)")
    ana_cmd.add_argument("--self-test", action="store_true",
                         help="run the broken-kernel and seeded-fault "
                              "self-tests")
    ana_cmd.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    ana_cmd.add_argument("--strict", action="store_true",
                         help="warnings fail the gate too")
    ana_cmd.add_argument("--json", action="store_true",
                         help="machine-readable report on stdout")
    ana_cmd.set_defaults(func=cmd_analyze)

    val_cmd = sub.add_parser(
        "validate",
        help="replay the golden corpus + mutation self-test (sanitized)")
    val_cmd.add_argument("--record", action="store_true",
                         help="regenerate the golden files instead of "
                              "validating against them")
    val_cmd.add_argument("--only", choices=("goldens", "mutations"),
                         default=None,
                         help="run just one half of the harness")
    val_cmd.add_argument("--goldens-dir", default=None,
                         help="golden corpus directory "
                              "(default: tests/goldens/)")
    val_cmd.set_defaults(func=cmd_validate)

    return parser


# ----------------------------------------------------------------------
def cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for spec in ALL_SPECS:
        rows.append([
            spec.abbrev,
            spec.name,
            spec.wtype.value,
            spec.threads_per_cta,
            spec.regs_per_thread,
            spec.shmem_per_cta // 1024,
            f"{spec.cta_overhead_bytes / 1024:.1f}",
        ])
    print(format_table(
        ["abbrev", "name", "type", "threads/CTA", "regs/thread",
         "shmem_kb", "overhead_kb"],
        rows, title="Benchmark suite (paper Table II)"))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if getattr(args, "sanitize", False):
        # A sanitized run must actually simulate: bypass both caches and
        # let simulate_request() attach the sanitizer from the env knob.
        import os
        os.environ["REPRO_SANITIZE"] = "1"
        os.environ["REPRO_CACHE"] = "off"
    runner = ExperimentRunner(scale=SCALES[args.scale])
    result = runner.run(args.app.upper(), args.policy)
    rows = [
        ["IPC", f"{result.ipc:.3f}"],
        ["cycles", result.cycles],
        ["instructions", result.instructions],
        ["resident CTAs/SM", f"{result.avg_resident_ctas_per_sm:.2f}"],
        ["active CTAs/SM", f"{result.avg_active_ctas_per_sm:.2f}"],
        ["active threads/SM", f"{result.avg_active_threads_per_sm:.0f}"],
        ["CTA switches", result.cta_switch_events],
        ["DRAM traffic (KB)", f"{result.dram_traffic_bytes / 1024:.1f}"],
        ["L1 hit rate", f"{result.l1_hit_rate:.2f}"],
        ["L2 hit rate", f"{result.l2_hit_rate:.2f}"],
        ["completed CTAs", result.completed_ctas],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.app.upper()} under {args.policy} "
                             f"({args.scale})"))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(scale=SCALES[args.scale])
    apps = tuple(app.upper() for app in args.apps)
    runner.run_many(plan_main_configs(runner, apps), jobs=args.jobs)
    headers = ["app", "baseline", "virtual_thread", "reg_dram",
               "vt_regmutex", "finereg"]
    rows = []
    for app in args.apps:
        results = main_config_results(runner, app.upper())
        base = results["baseline"].ipc
        rows.append([app.upper()]
                    + [results[c].ipc / base for c in headers[1:]])
    print(format_table(headers, rows,
                       title="Normalized IPC (baseline = 1.0)"))
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(scale=SCALES[args.scale])
    names = (sorted(EXPERIMENT_MODULES) if args.figure == "all"
             else [args.figure])
    plans = []
    for name in names:
        module = importlib.import_module(
            f"repro.experiments.{EXPERIMENT_MODULES[name]}")
        kwargs = {}
        if args.apps and name not in ("fig04",):
            kwargs["apps"] = tuple(a.upper() for a in args.apps.split(","))
        plan = getattr(module, "plan", None)
        if plan is not None:
            plans.append((module, kwargs, plan(runner, **kwargs)))
        else:
            plans.append((module, kwargs, []))
    # Prefetch every figure's request set over the pool before the serial
    # render loop; shared runs dedupe inside run_many.
    runner.run_many([r for __, __, reqs in plans for r in reqs],
                    jobs=args.jobs)
    for module, kwargs, __ in plans:
        result = module.run(runner, **kwargs)
        print(result.to_text())
        print()
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    # Lazy import: the telemetry exporters are only needed here.
    from repro.telemetry.cli import run_trace
    return run_trace(args.app, policy=args.policy, scale_name=args.scale,
                     perfetto_out=args.perfetto,
                     timeline_out=args.timeline,
                     interval=args.interval, capacity=args.capacity)


def cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache.from_env()
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
        return 0
    if args.action == "stats":
        import json as _json
        stats = cache.stats()
        if args.log:
            # A fresh CLI process has no live counters; a campaign obs log
            # carries the real lookup traffic.
            from repro.obs.events import events_of, load_log
            lookups = events_of(load_log(args.log), "cache_lookup")
            stats["hits"] = sum(1 for e in lookups if e["hit"])
            stats["misses"] = len(lookups) - stats["hits"]
            stats["counters_from"] = args.log
        if args.json:
            print(_json.dumps(stats, indent=1, sort_keys=True))
            return 0
        rows = [
            ["directory", stats["root"]],
            ["state", "enabled" if stats["enabled"]
             else "disabled (REPRO_CACHE=off)"],
            ["entries", stats["entries"]],
            ["size (KB)", f"{stats['total_bytes'] / 1024:.1f}"],
        ]
        for version, count in stats["schema_versions"].items():
            rows.append([f"schema v{version}", count])
        rows.append(["hits", stats["hits"]])
        rows.append(["misses", stats["misses"]])
        if "counters_from" in stats:
            rows.append(["counters from", stats["counters_from"]])
        print(format_table(["field", "value"], rows,
                           title="Persistent result cache — stats"))
        return 0
    entries = cache.entries()
    total = sum(path.stat().st_size for path in entries)
    state = "enabled" if cache_enabled() else "disabled (REPRO_CACHE=off)"
    rows = [
        ["directory", str(cache.root)],
        ["state", state],
        ["entries", len(entries)],
        ["size (KB)", f"{total / 1024:.1f}"],
    ]
    print(format_table(["field", "value"], rows,
                       title="Persistent result cache"))
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    # Lazy import: the observability readers are only needed here.
    from repro.obs.cli import run_obs
    return run_obs(args.action, log=args.log, out=args.out,
                   last=args.last, history=args.history,
                   threshold=args.threshold, strict=args.strict,
                   as_json=args.json)


def cmd_overhead(args: argparse.Namespace) -> int:
    overhead = finereg_overhead()
    rows = [
        ["CTA status monitor", f"{overhead.status_monitor_bytes:.0f} B"],
        ["bit-vector cache", f"{overhead.bitvector_cache_bytes} B"],
        ["PCRF pointer table", f"{overhead.pointer_table_bytes} B"],
        ["PCRF tags", f"{overhead.pcrf_tag_bytes:.0f} B"],
        ["CTA switching logic", f"{overhead.switch_logic_bytes} B"],
        ["total", f"{overhead.total_kb:.2f} KB"],
        ["SM area fraction", f"{overhead.sm_area_fraction:.2%}"],
    ]
    print(format_table(["structure", "cost"], rows,
                       title="FineReg hardware overhead (paper V-F)"))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    # Lazy import: the static-analysis layer is only needed here.
    from repro.analyze.cli import run_analyze
    return run_analyze(
        apps=args.apps, suite=args.suite, figure=args.figure,
        lint=args.lint, effects=args.effects, self_test=args.self_test,
        lint_roots=args.lint_path, scale_name=args.scale,
        strict=args.strict, as_json=args.json)


def cmd_validate(args: argparse.Namespace) -> int:
    # Lazy import: the validation harness pulls in the golden/mutation
    # machinery, which the other subcommands never need.
    from repro.validate.cli import run_validate
    return run_validate(record=args.record, only=args.only,
                        goldens_dir=args.goldens_dir)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
