"""The campaign observability session: spans + events + metrics + progress.

One :class:`ObsSession` instruments one campaign.  It owns the
:class:`~repro.obs.spans.SpanRecorder`, the JSONL
:class:`~repro.obs.events.EventLog`, the
:class:`~repro.obs.metrics.CampaignMetrics`, and the progress/stall
trackers, and exposes the narrow hooks the orchestration tier calls:

* ``ExperimentRunner`` wraps scheduling/pool/store phases in
  :meth:`phase` and serial runs in :meth:`run_scope`;
* ``ResultCache`` routes ``get``/``put`` through
  :meth:`timed_cache_get`/:meth:`timed_cache_put` when its ``obs``
  attribute is set (one ``is not None`` test on the off path);
* ``run_requests`` opens a ``request`` span per pooled payload
  (:meth:`open_request`), reports arrivals via :meth:`pool_run_complete`
  (which grafts the worker-recorded phase spans under the request span),
  and calls :meth:`idle_tick` while waiting so stalled workers surface.

Everything is observation-only: no hook returns data into a simulation,
and the session never touches simulator state.  The only clock is the
injected ``now`` (default: the audited :mod:`repro.obs.clock`).
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

from repro.obs import clock
from repro.obs.events import EventLog
from repro.obs.metrics import CampaignMetrics
from repro.obs.progress import POOL, ProgressTracker, StallDetector
from repro.obs.spans import Span, SpanRecorder, phase_rows, reconcile_spans

#: ``REPRO_OBS=1`` enables campaign observability in `run_all` (log +
#: metrics); any of on/1/true/yes counts.
OBS_ENV = "REPRO_OBS"
#: Overrides the default event-log path (``<out>/obs.jsonl``).
OBS_LOG_ENV = "REPRO_OBS_LOG"

_ENABLED_VALUES = {"1", "on", "true", "yes"}


def obs_enabled() -> bool:
    return os.environ.get(OBS_ENV, "").lower() in _ENABLED_VALUES


class WorkerObs:
    """Worker-process span collector, shipped back as picklable dicts.

    Presents the same ``phase(name)`` context manager as the session, so
    ``simulate_request`` instruments its phases identically in-process and
    in a pool worker.
    """

    def __init__(self, now: Optional[Callable[[], float]] = None) -> None:
        self._now = now if now is not None else clock.monotonic
        self.recorder = SpanRecorder(now=self._now)
        self._t0 = self._now()

    def phase(self, name: str) -> object:
        return self.recorder.span(name, "phase")

    def report(self) -> Dict:
        """Picklable run report: pid, the measured run window, and spans.

        ``t_start``/``dur_s`` come from the worker's own clock;
        ``CLOCK_MONOTONIC`` is system-wide on Linux, so the parent re-times
        the dispatch-side request span to this window (excluding queue
        wait) when the report arrives.
        """
        return {"worker": os.getpid(),
                "t_start": round(self._t0, 6),
                "dur_s": round(self._now() - self._t0, 6),
                "spans": self.recorder.as_dicts()}


class ObsSession:
    """All observability state of one campaign."""

    def __init__(self, log_path: Optional[str] = None,
                 progress: bool = False,
                 stream=None,
                 now: Optional[Callable[[], float]] = None,
                 tick_s: float = 0.5,
                 stall_min_s: float = 5.0) -> None:
        self._now = now if now is not None else clock.monotonic
        self.recorder = SpanRecorder(now=self._now)
        self.log = EventLog(log_path, now=self._now)
        self.metrics = CampaignMetrics()
        self.stalls = StallDetector(min_threshold_s=stall_min_s)
        self.progress: Optional[ProgressTracker] = None
        self.progress_enabled = progress
        self.tick_s = tick_s
        self.label = "campaign"
        self.jobs = 1
        self.total = 0
        self.completed = 0
        self._stream = stream
        self._campaign: Optional[Span] = None
        self._workers_seen: Dict[int, int] = {}
        self._busy_s = 0.0
        self._stall_events = 0
        self._outstanding = 0
        self._finalized = False

    # ------------------------------------------------------------------
    # Campaign lifecycle
    # ------------------------------------------------------------------
    def campaign_begin(self, total: int, jobs: int = 1,
                       label: str = "campaign") -> Span:
        self.label = label
        self.total = total
        self.jobs = max(1, jobs)
        self._campaign = self.recorder.start(label, kind="campaign")
        self.recorder.push(self._campaign)
        self._emit_span_open(self._campaign)
        self.log.emit("campaign_start", label=label, total=total,
                      jobs=self.jobs)
        if self.progress_enabled:
            self.progress = ProgressTracker(total, jobs=self.jobs)
        return self._campaign

    def campaign_end(self) -> None:
        if self._campaign is None or self._campaign.closed:
            return
        self._finalize_workers()
        self.recorder.pop(self._campaign)
        self.recorder.finish(self._campaign)
        self._emit_span_close(self._campaign)
        self.metrics.worker_gauges(
            jobs=self.jobs, workers_seen=len(self._workers_seen),
            busy_s=self._busy_s, wall_s=self._campaign.duration,
            stalls=self._stall_events)
        self.log.emit("campaign_end", completed=self.completed)
        if self.progress is not None:
            stream = self._stream if self._stream is not None \
                else sys.stderr
            if getattr(stream, "isatty", lambda: False)():
                print(file=stream)

    def close(self) -> None:
        self.campaign_end()
        self._finalize_workers()
        self.log.close()

    def _finalize_workers(self) -> None:
        if self._finalized:
            return
        self._finalized = True
        for worker in sorted(self._workers_seen):
            self.log.emit("worker_stop", worker=worker,
                          runs=self._workers_seen[worker])

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def _emit_span_open(self, span: Span) -> None:
        fields: Dict[str, object] = {"span": span.span_id,
                                     "name": span.name, "kind": span.kind,
                                     "parent": span.parent_id}
        if span.worker is not None:
            fields["worker"] = span.worker
        self.log.emit("span_open", **fields)

    def _emit_span_close(self, span: Span) -> None:
        fields: Dict[str, object] = {
            "span": span.span_id, "name": span.name, "kind": span.kind,
            "parent": span.parent_id,
            "t_start": round(span.t_start, 6),
            "dur_s": round(span.duration, 6),
        }
        if span.worker is not None:
            fields["worker"] = span.worker
        self.log.emit("span_close", **fields)

    @contextmanager
    def phase(self, name: str) -> Iterator[Span]:
        """A sequential orchestration phase under the current span."""
        span = self.recorder.start(name, "phase")
        self._emit_span_open(span)
        with self.recorder.scope(span):
            try:
                yield span
            finally:
                self.recorder.finish(span)
                self._emit_span_close(span)
                self.metrics.phase(name, span.duration)

    def open_request(self, request, worker: Optional[int] = None) -> Span:
        """Open a ``request`` span (pool dispatch side)."""
        name = f"req:{request.abbrev}/{request.policy}"
        parent = (self._campaign.span_id if self._campaign is not None
                  else self.recorder.current_id())
        span = self.recorder.start(name, "request", parent=parent,
                                   worker=worker)
        self._emit_span_open(span)
        return span

    @contextmanager
    def run_scope(self, request, index: Optional[int] = None
                  ) -> Iterator[Span]:
        """Serial (in-process) request execution scope."""
        span = self.open_request(request)
        with self.recorder.scope(span):
            try:
                yield span
            finally:
                self.recorder.finish(span)
                self._emit_span_close(span)
                self._record_run(index if index is not None else -1,
                                 request, span.duration, worker=None)

    # ------------------------------------------------------------------
    # Cache hooks (called by ResultCache when ``cache.obs`` is set)
    # ------------------------------------------------------------------
    def timed_cache_get(self, cache, key: str):
        t0 = self._now()
        result = cache._get(key)
        latency = self._now() - t0
        hit = result is not None
        self.metrics.cache_lookup(hit, latency)
        self.log.emit("cache_lookup", key=key[:12], hit=hit,
                      latency_s=round(latency, 9))
        return result

    def timed_cache_put(self, cache, key: str, result) -> None:
        t0 = self._now()
        nbytes = cache._put(key, result)
        latency = self._now() - t0
        self.metrics.cache_store(nbytes, latency)
        self.log.emit("cache_store", key=key[:12], bytes=nbytes,
                      latency_s=round(latency, 9))

    # ------------------------------------------------------------------
    # Pool callbacks (called by ``run_requests``)
    # ------------------------------------------------------------------
    def pool_begin(self, jobs: int, outstanding: int) -> None:
        self.jobs = max(self.jobs, jobs)
        self._outstanding += outstanding
        self.stalls.beat(POOL, self._now())
        self.metrics.queue_depth(self._outstanding)

    def pool_run_complete(self, index: int, request, span: Span,
                          report: Dict) -> None:
        """One pooled result arrived: graft worker spans, close, account."""
        worker = int(report.get("worker", 0))
        now = self._now()
        if worker not in self._workers_seen:
            self._workers_seen[worker] = 0
            self.log.emit("worker_start", worker=worker)
        self._workers_seen[worker] += 1
        merged = self.recorder.merge(report.get("spans", ()),
                                     parent_id=span.span_id, worker=worker)
        for child in merged:
            self._emit_span_open(child)
            if child.closed:
                self._emit_span_close(child)
        span.worker = worker
        # Re-time the dispatch-side span to the worker's measured window
        # (shared CLOCK_MONOTONIC): queue wait is excluded, so utilization
        # and the <=-parent phase reconciliation are exact.
        t_start = report.get("t_start")
        dur = report.get("dur_s")
        if t_start is not None and dur is not None:
            span.t_start = float(t_start)
            span.t_end = float(t_start) + float(dur)
        else:
            self.recorder.finish(span)
        self._emit_span_close(span)
        self._outstanding = max(0, self._outstanding - 1)
        self.metrics.queue_depth(self._outstanding)
        self.stalls.beat(worker, now)
        self.stalls.beat(POOL, now)
        self._busy_s += span.duration
        self._record_run(index, request, span.duration, worker=worker)
        self.log.emit("heartbeat", worker=worker, completed=self.completed)

    def idle_tick(self) -> None:
        """Called while the pool is quiet: surface stalled workers."""
        now = self._now()
        for worker, idle in self.stalls.stalled(now):
            self._stall_events += 1
            self.log.emit("stall", worker=worker, idle_s=round(idle, 6))
        self._render_progress()

    # ------------------------------------------------------------------
    def _record_run(self, index: int, request, dur_s: float,
                    worker: Optional[int]) -> None:
        self.completed += 1
        self.stalls.observe_duration(dur_s)
        self.metrics.run_complete(dur_s, pooled=worker is not None)
        fields: Dict[str, object] = {
            "index": index, "abbrev": request.abbrev,
            "policy": request.policy, "dur_s": round(dur_s, 6),
        }
        if worker is not None:
            fields["worker"] = worker
        self.log.emit("run_complete", **fields)
        if self.progress is not None:
            self.progress.on_complete(dur_s)
            eta = self.progress.eta_s()
            self.log.emit("progress", completed=self.progress.completed,
                          total=self.progress.total,
                          eta_s=round(eta, 3) if eta is not None else None)
        self._render_progress()

    def _render_progress(self) -> None:
        if self.progress is None:
            return
        stream = self._stream if self._stream is not None else sys.stderr
        end = "\r" if getattr(stream, "isatty", lambda: False)() else "\n"
        print(f"[obs] {self.progress.render()}", file=stream, end=end)

    # ------------------------------------------------------------------
    def summary(self) -> Dict:
        """JSON-ready in-process summary (the log-file twin lives in
        ``repro.obs.cli.summarize_events``)."""
        campaign = self._campaign
        wall = campaign.duration if campaign is not None and campaign.closed \
            else (self._now() - campaign.t_start
                  if campaign is not None else 0.0)
        rate = self.metrics.hit_rate()
        return {
            "campaign": {
                "label": self.label,
                "jobs": self.jobs,
                "total": self.total,
                "completed": self.completed,
                "wall_s": round(wall, 6),
            },
            "cache_hit_rate": round(rate, 6) if rate is not None else None,
            "metrics": self.metrics.snapshot(),
            "phases": [
                {"within": within, "phase": name, "wall_s": round(dur, 6)}
                for within, name, dur in phase_rows(self.recorder.spans)
            ],
            "workers": {str(w): self._workers_seen[w]
                        for w in sorted(self._workers_seen)},
            "stall_events": self._stall_events,
            "reconcile": {
                "spans": reconcile_spans(self.recorder.spans),
                "metrics": self.metrics.reconcile(),
            },
        }
