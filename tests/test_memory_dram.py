"""Tests for the DRAM bandwidth/latency model."""

import pytest

from repro.memory.dram import DRAM


class TestBasics:
    def test_unloaded_latency(self):
        dram = DRAM(bytes_per_cycle=16.0, access_latency=100)
        done = dram.request(now=0, nbytes=128)
        # 128 B at 16 B/cycle = 8 service cycles, then the access latency.
        assert done == 108

    def test_bandwidth_queueing(self):
        dram = DRAM(bytes_per_cycle=16.0, access_latency=100)
        first = dram.request(0, 128)
        second = dram.request(0, 128)
        assert second == first + 8   # serialized behind the first

    def test_idle_channel_resets(self):
        dram = DRAM(bytes_per_cycle=16.0, access_latency=100)
        dram.request(0, 128)
        done = dram.request(1000, 128)
        assert done == 1108          # no residual queueing

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            DRAM(0, 100)
        with pytest.raises(ValueError):
            DRAM(16, 0)
        dram = DRAM(16, 100)
        with pytest.raises(ValueError):
            dram.request(0, 0)


class TestStats:
    def test_traffic_by_class(self):
        dram = DRAM(16, 100)
        dram.request(0, 128, "demand_read")
        dram.request(0, 256, "context_spill")
        dram.request(0, 128, "demand_read")
        assert dram.stats.total_bytes == 512
        assert dram.stats.bytes_by_class == {
            "demand_read": 256, "context_spill": 256}

    def test_queue_delay_tracked(self):
        dram = DRAM(16, 100)
        dram.request(0, 160)
        dram.request(0, 160)
        assert dram.stats.total_queue_cycles == 10
        assert dram.stats.mean_queue_delay == pytest.approx(5.0)

    def test_busy_until(self):
        dram = DRAM(16, 100)
        dram.request(0, 160)
        assert dram.busy_until() == pytest.approx(10.0)
