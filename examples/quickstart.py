#!/usr/bin/env python
"""Quickstart: run one benchmark under the baseline GPU and under FineReg.

This is the smallest end-to-end use of the library: pick a workload from
the paper's Table II suite, simulate it under two register-file management
policies, and compare throughput and CTA residency.

Run:
    python examples/quickstart.py [APP] [SCALE]

where APP is a Table II abbreviation (default KM) and SCALE is
tiny/small/paper (default tiny, which finishes in a couple of seconds).
"""

import sys

from repro.config import SCALES
from repro.experiments.runner import ExperimentRunner


def main() -> None:
    app = sys.argv[1].upper() if len(sys.argv) > 1 else "KM"
    scale = SCALES[sys.argv[2]] if len(sys.argv) > 2 else SCALES["tiny"]

    runner = ExperimentRunner(scale=scale)
    baseline = runner.run(app, "baseline")
    finereg = runner.run(app, "finereg")

    print(f"Workload {app} at scale '{scale.name}' "
          f"({baseline.num_sms} SM(s), "
          f"{runner.workload(app).kernel.geometry.grid_ctas} CTAs)")
    print()
    header = f"{'metric':34} {'baseline':>12} {'finereg':>12}"
    print(header)
    print("-" * len(header))
    rows = [
        ("IPC (whole GPU)", baseline.ipc, finereg.ipc),
        ("cycles", baseline.cycles, finereg.cycles),
        ("avg resident CTAs / SM",
         baseline.avg_resident_ctas_per_sm,
         finereg.avg_resident_ctas_per_sm),
        ("avg active CTAs / SM",
         baseline.avg_active_ctas_per_sm,
         finereg.avg_active_ctas_per_sm),
        ("avg pending CTAs / SM",
         baseline.avg_pending_ctas_per_sm,
         finereg.avg_pending_ctas_per_sm),
        ("CTA switch events",
         baseline.cta_switch_events, finereg.cta_switch_events),
        ("DRAM traffic (KB)",
         baseline.dram_traffic_bytes / 1024,
         finereg.dram_traffic_bytes / 1024),
    ]
    for label, b, f in rows:
        print(f"{label:34} {b:12.2f} {f:12.2f}")
    print()
    speedup = finereg.ipc / baseline.ipc
    print(f"FineReg speedup over baseline: {speedup:.3f}x")
    if finereg.bitvector_hit_rate is not None:
        print(f"Live bit-vector cache hit rate: "
              f"{finereg.bitvector_hit_rate:.1%}")


if __name__ == "__main__":
    main()
