"""Campaign-level telemetry roll-up (p50/p95 stall fractions, switch
overhead budgets).

Aggregates the per-run numbers every :class:`~repro.sim.stats.SimResult`
now carries into a per-app / per-policy summary the campaign report embeds:
how much of each app's execution time is stalled (and on what), and how many
cycles its policy spent inside Table-IV switch phases.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.experiments.report import format_table, percentile
from repro.sim.stats import SimResult


def _fractions(result: SimResult) -> Dict[str, float]:
    span = max(1, result.cycles * result.num_sms)
    return {
        "stall_fraction": result.idle_cycles / span,
        "rf_depletion_fraction": result.rf_depletion_cycles / span,
        "srp_stall_fraction": result.srp_stall_cycles / span,
        "switch_overhead_fraction": result.switch_overhead_cycles / span,
    }


def rollup_results(results: Iterable[Tuple[str, SimResult]]) -> Dict:
    """Aggregate ``(app, result)`` pairs into the roll-up payload.

    Keys are grouped per (app, policy); each metric reports p50/p95 over
    the group's runs plus the total switch-overhead cycle budget.
    """
    grouped: Dict[Tuple[str, str], List[SimResult]] = {}
    for app, result in results:
        grouped.setdefault((app, result.policy), []).append(result)

    rows = []
    for (app, policy), group in sorted(grouped.items()):
        series = {name: [] for name in _fractions(group[0])}
        for result in group:
            for name, value in _fractions(result).items():
                series[name].append(value)
        rows.append({
            "app": app,
            "policy": policy,
            "runs": len(group),
            "stall_fraction_p50": percentile(series["stall_fraction"], 50),
            "stall_fraction_p95": percentile(series["stall_fraction"], 95),
            "rf_depletion_p50": percentile(
                series["rf_depletion_fraction"], 50),
            "rf_depletion_p95": percentile(
                series["rf_depletion_fraction"], 95),
            "srp_stall_p50": percentile(series["srp_stall_fraction"], 50),
            "switch_overhead_p50": percentile(
                series["switch_overhead_fraction"], 50),
            "switch_overhead_cycles": sum(
                r.switch_overhead_cycles for r in group),
            "cta_switch_events": sum(r.cta_switch_events for r in group),
        })
    return {"groups": rows}


def render_rollup(payload: Dict) -> str:
    """Text table for REPORT.md."""
    headers = ("app/policy", "runs", "stall p50", "stall p95", "rf p50",
               "rf p95", "switch cyc", "switches")
    rows = []
    for group in payload["groups"]:
        rows.append((
            f"{group['app']}/{group['policy']}",
            group["runs"],
            group["stall_fraction_p50"],
            group["stall_fraction_p95"],
            group["rf_depletion_p50"],
            group["rf_depletion_p95"],
            group["switch_overhead_cycles"],
            group["cta_switch_events"],
        ))
    return format_table(
        headers, rows,
        title="Telemetry roll-up (stall fractions, switch budgets)")
