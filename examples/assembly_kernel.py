#!/usr/bin/env python
"""Write a kernel in the textual assembly format and race the policies.

The assembler (repro.isa.assemble) turns a SASS-like text format into a
structured CFG: blocks with fallthrough/branch/loop edges, register
operands, and memory-locality annotations. This example defines a
reduction-style kernel with a divergent fixup branch, prints its liveness
profile, and runs it under every register-file management policy.

Run:
    python examples/assembly_kernel.py
"""

from repro.config import GPUConfig, TINY
from repro.core.liveness import LivenessAnalysis
from repro.experiments.runner import POLICIES
from repro.isa import Kernel, LaunchGeometry, assemble
from repro.sim.gpu import GPU
from repro.workloads.traces import AddressModel, TraceProvider

KERNEL_TEXT = """
# Tiled accumulation with a divergent fixup path.
.block entry
    lds   R0, R0            # tile base pointer (constant cache)
    ialu  R1, R0            # accumulator
    ialu  R2, R0            # loop-carried index
.endblock -> body

.block body loop=10
    ldg   R3, R0 @stream    # fresh element
    ldg   R4, R0 @shared    # lookup table (L2-resident)
    falu  R5, R3, R4
    falu  R1, R1, R5        # accumulate
    bra   R5
.endblock -> body, fixup

.block fixup branch=0.3
    ialu  R6, R1
    bra   R6
.endblock -> rescale, passthrough

.block rescale
    sfu   R7, R1            # slow path: renormalize
.endblock -> tail

.block passthrough
    ialu  R7, R1
.endblock -> tail

.block tail
    stg   R7, R0 @reuse
    exit
.endblock
"""


def main() -> None:
    cfg = assemble(KERNEL_TEXT)
    kernel = Kernel("asm_reduce", cfg, LaunchGeometry(128, 24),
                    regs_per_thread=10)
    print(f"Assembled '{kernel.name}': {len(cfg.blocks)} blocks, "
          f"{kernel.num_static_instructions} static instructions, "
          f"{kernel.register_bytes_per_cta // 1024} KB registers/CTA")

    liveness = LivenessAnalysis(cfg).run(kernel.regs_per_thread)
    print(f"Mean live fraction: {liveness.mean_live_fraction():.0%}  "
          f"(bit-vector storage: {liveness.storage_bytes} B off-chip)\n")

    config = GPUConfig().with_num_sms(1)
    base_ipc = None
    for name in ("baseline", "virtual_thread", "reg_dram", "vt_regmutex",
                 "finereg"):
        gpu = GPU(config, kernel, POLICIES[name](),
                  TraceProvider(cfg, seed=11), AddressModel(),
                  liveness=liveness)
        result = gpu.run(max_cycles=TINY.max_cycles)
        if base_ipc is None:
            base_ipc = result.ipc
        print(f"  {name:15} IPC={result.ipc:5.2f} "
              f"({result.ipc / base_ipc:4.2f}x)  "
              f"resident={result.avg_resident_ctas_per_sm:5.1f} CTAs/SM  "
              f"switches={result.cta_switch_events}")


if __name__ == "__main__":
    main()
