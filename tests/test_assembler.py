"""Tests for the textual kernel assembler."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.cfg import EdgeKind
from repro.isa.instructions import AccessPattern, Opcode

GOOD = """
# a tiny streaming kernel
.block entry
    lds   R0, R0
    ialu  R1, R0
.endblock -> body

.block body loop=8
    ldg   R2, R0 @stream
    falu  R3, R2, R1
    bra   R3
.endblock -> body, tail

.block tail
    stg   R3, R0 @reuse
    exit
.endblock
"""


class TestHappyPath:
    def test_assembles_three_blocks(self):
        cfg = assemble(GOOD)
        assert len(cfg.blocks) == 3
        assert cfg.frozen

    def test_edge_kinds_inferred(self):
        cfg = assemble(GOOD)
        kinds = [b.edge_kind for b in cfg.blocks]
        assert kinds == [EdgeKind.FALLTHROUGH, EdgeKind.LOOP_BACK,
                         EdgeKind.EXIT]
        assert cfg.blocks[1].mean_trip_count == 8.0

    def test_operands_and_patterns(self):
        cfg = assemble(GOOD)
        load = cfg.blocks[1].instructions[0]
        assert load.opcode is Opcode.LDG
        assert load.dest == 2
        assert load.srcs == (0,)
        assert load.pattern is AccessPattern.STREAM
        store = cfg.blocks[2].instructions[0]
        assert store.dest is None
        assert store.srcs == (3, 0)
        assert store.pattern is AccessPattern.REUSE

    def test_branch_block(self):
        cfg = assemble("""
.block head branch=0.5
    ialu R0
    bra  R0
.endblock -> left, right
.block left
    ialu R1, R0
.endblock -> tail
.block right
    ialu R2, R0
.endblock -> tail
.block tail
    exit
.endblock
""")
        assert cfg.blocks[0].edge_kind is EdgeKind.BRANCH
        assert cfg.blocks[0].divergence_prob == 0.5
        assert cfg.reconvergence_block(0) == 3

    def test_assembled_kernel_runs(self):
        from repro.config import GPUConfig, TINY
        from repro.isa.kernel import Kernel, LaunchGeometry
        from repro.policies.baseline import BaselinePolicy
        from repro.sim.gpu import GPU
        from repro.workloads.traces import AddressModel, TraceProvider
        cfg = assemble(GOOD)
        kernel = Kernel("asm", cfg, LaunchGeometry(64, 4),
                        regs_per_thread=8)
        gpu = GPU(GPUConfig().with_num_sms(1), kernel, BaselinePolicy,
                  TraceProvider(cfg, seed=1), AddressModel())
        result = gpu.run(max_cycles=TINY.max_cycles)
        assert result.completed_ctas == 4
        assert not result.timed_out


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(AssemblyError, match="unknown opcode"):
            assemble(".block a\n    frob R1\n.endblock")

    def test_bad_register(self):
        with pytest.raises(AssemblyError, match="register"):
            assemble(".block a\n    ialu R99\n.endblock")

    def test_unknown_pattern(self):
        with pytest.raises(AssemblyError, match="pattern"):
            assemble(".block a\n    ldg R1, R0 @magic\n.endblock")

    def test_missing_destination(self):
        with pytest.raises(AssemblyError, match="destination"):
            assemble(".block a\n    ldg\n.endblock")

    def test_instruction_outside_block(self):
        with pytest.raises(AssemblyError, match="outside"):
            assemble("ialu R1")

    def test_nested_block(self):
        with pytest.raises(AssemblyError, match="nested"):
            assemble(".block a\n.block b\n.endblock\n.endblock")

    def test_unclosed_block(self):
        with pytest.raises(AssemblyError, match="unclosed"):
            assemble(".block a\n    ialu R1")

    def test_unknown_successor(self):
        with pytest.raises(AssemblyError, match="unknown block"):
            assemble(".block a\n    ialu R1\n.endblock -> nowhere")

    def test_duplicate_block(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble(".block a\n    ialu R1\n.endblock -> a\n"
                     ".block a\n    exit\n.endblock")

    def test_structural_validation_bubbles_up(self):
        # Two exit blocks -> CFG validation failure at freeze time.
        with pytest.raises(AssemblyError, match="invalid CFG"):
            assemble(".block a\n    exit\n.endblock\n"
                     ".block b\n    exit\n.endblock")

    def test_empty_input(self):
        with pytest.raises(AssemblyError, match="no blocks"):
            assemble("   \n# only a comment\n")

    def test_pattern_on_alu_rejected(self):
        with pytest.raises(AssemblyError):
            assemble(".block a\n    ialu R1 @stream\n.endblock")
