"""Mutation self-test: prove the sanitizer detects what it claims to.

Each :class:`Mutation` deliberately corrupts exactly one invariant class in
a live GPU -- through the test-only fault hooks on the core structures
(``fault_leak_on_release`` and friends) or by wrapping an SM method -- and
the harness asserts the sanitizer reports a violation carrying that
mutation's invariant tag.  A sanitizer that passes the golden corpus but
fails this self-test is a checker that checks nothing.

Mutations are applied *before* :func:`attach_sanitizer` so the sanitizer's
issue wrapper sits outermost and observes pre-mutation state (this is what
lets the scoreboard bypass be caught).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.config import SCALES, default_config
from repro.sim.gpu import GPU
from repro.sim.scheduler import GTOScheduler
from repro.sim.tracing import EventKind
from repro.sim.warp import FOREVER
from repro.validate.sanitizer import SanitizerError, attach_sanitizer
from repro.workloads.generator import build_workload
from repro.workloads.suite import get_spec


@dataclass(frozen=True)
class Mutation:
    """One deliberate invariant corruption."""

    name: str
    invariant: str        # tag the sanitizer must report
    policy: str           # policy the corruption is meaningful under
    description: str
    apply: Callable[[GPU], None]
    abbrev: str = "KM"
    concurrent: bool = False   # corrupt a two-kernel run (st+km pool)


# ----------------------------------------------------------------------
# Corruptions
# ----------------------------------------------------------------------
def _acrf_leak(gpu: GPU) -> None:
    for sm in gpu.sms:
        sm.policy.acrf.fault_leak_on_release = 1


def _pcrf_free_count(gpu: GPU) -> None:
    for sm in gpu.sms:
        sm.policy.pcrf.fault_leak_on_restore = True


def _rmu_pointer_drop(gpu: GPU) -> None:
    for sm in gpu.sms:
        sm.policy.rmu.fault_drop_pointer = True


def _shmem_leak(gpu: GPU) -> None:
    for sm in gpu.sms:
        def leaky_retire(cta, now, _sm=sm, _inner=sm.retire_cta):
            _inner(cta, now)
            _sm.shmem_used += 128
        sm.retire_cta = leaky_retire


def _warp_leak(gpu: GPU) -> None:
    for sm in gpu.sms:
        def leaky_finish(warp, now, _sm=sm, _inner=sm._finish_warp):
            _inner(warp, now)
            _sm._active_warps += 1
        sm._finish_warp = leaky_finish


class _OversleepScheduler(GTOScheduler):
    """Sleeps 97 cycles past the earliest legal wake-up."""

    __slots__ = ()

    def _note_sleep(self, now: int, earliest: int) -> None:
        GTOScheduler._note_sleep(self, now, earliest)
        if now < self._sleep_until < FOREVER:
            self._sleep_until += 97


def _oversleep(gpu: GPU) -> None:
    for sm in gpu.sms:
        for scheduler in sm.schedulers:
            if type(scheduler) is GTOScheduler:
                scheduler.__class__ = _OversleepScheduler


def _scoreboard_bypass(gpu: GPU) -> None:
    for sm in gpu.sms:
        def bypass(warp, now, _sm=sm, _inner=sm._try_issue):
            srcs = _sm._instrs[warp.trace[warp.pos]].srcs
            for reg in srcs:
                warp.ready_at[reg] = 0
            return _inner(warp, now)
        sm._try_issue = bypass


def _double_retire(gpu: GPU) -> None:
    for sm in gpu.sms:
        def retire_twice(cta, now, _sm=sm, _inner=sm.retire_cta):
            _inner(cta, now)
            _sm.gpu.tracer.record(now, _sm.sm_id, EventKind.RETIRE,
                                  cta.cta_id)
        sm.retire_cta = retire_twice


def _budget_overshoot(gpu: GPU) -> None:
    """Per-SM shared budgets stop binding: every slot check passes."""
    for sm in gpu.sms:
        sm.scheduler_slots_free = lambda launch=None: True


def _double_dispatch(gpu: GPU) -> None:
    """The first CTA id of launch 0 is dispatched twice."""
    launch = gpu.launches[0]
    launch.grid.appendleft(launch.grid[0])


def _stat_rollback(gpu: GPU) -> None:
    for sm in gpu.sms:
        def rolled_step(now, _sm=sm, _inner=sm.step):
            issued = _inner(now)
            _sm.stats.instructions -= 5
            return issued
        sm.step = rolled_step


#: The registry: at least one mutation per major invariant class.
MUTATIONS: Tuple[Mutation, ...] = (
    Mutation("acrf_leak", "register-conservation", "finereg",
             "ACRF release leaks a phantom allocation", _acrf_leak),
    Mutation("pcrf_free_count", "pcrf-occupancy", "finereg",
             "PCRF restore under-credits the free-space monitor",
             _pcrf_free_count),
    Mutation("rmu_pointer_drop", "pointer-table", "finereg",
             "RMU spill skips its pointer-table row", _rmu_pointer_drop),
    Mutation("shmem_leak", "shmem-conservation", "virtual_thread",
             "CTA retirement leaks 128 B of shared memory", _shmem_leak),
    Mutation("warp_leak", "warp-accounting", "baseline",
             "finished warps stay in the active-warp counter", _warp_leak),
    Mutation("oversleep", "sleep-soundness", "baseline",
             "scheduler sleep cache overshoots by 97 cycles", _oversleep),
    Mutation("scoreboard_bypass", "scoreboard", "baseline",
             "operand ready times are zeroed before issue",
             _scoreboard_bypass),
    Mutation("double_retire", "lifecycle", "baseline",
             "every CTA retirement is traced twice", _double_retire),
    Mutation("stat_rollback", "monotonic-stats", "baseline",
             "the instruction counter rolls back 5 per step",
             _stat_rollback),
    Mutation("budget_overshoot", "cta-slots", "baseline",
             "scheduler slot checks always pass under concurrent fill",
             _budget_overshoot, concurrent=True),
    Mutation("double_dispatch", "lifecycle", "baseline",
             "one CTA id is dispatched twice from a concurrent grid",
             _double_dispatch, concurrent=True),
)


@dataclass(frozen=True)
class MutationReport:
    """Did the sanitizer catch one mutation?"""

    mutation: Mutation
    detected: bool
    tags: Tuple[str, ...] = ()
    error: Optional[str] = None


def run_mutation(mutation: Mutation, scale_name: str = "tiny"
                 ) -> MutationReport:
    """Build a tiny GPU, corrupt it, and expect a SanitizerError."""
    from repro.experiments.runner import POLICIES

    scale = SCALES[scale_name]
    config = default_config(scale)
    factory = POLICIES[mutation.policy]()
    if mutation.concurrent:
        from repro.workloads.apps import APP_POOLS, build_app

        specs = build_app(APP_POOLS["st+km"], config, scale)
        gpu = GPU.concurrent(config, specs, factory)
    else:
        instance = build_workload(get_spec(mutation.abbrev), config, scale)
        gpu = GPU(config, instance.kernel, factory, instance.trace_provider,
                  instance.address_model, liveness=instance.liveness)
    mutation.apply(gpu)
    attach_sanitizer(gpu)  # after the mutation: its wrappers sit outermost
    try:
        gpu.run(max_cycles=scale.max_cycles)
    except SanitizerError as exc:
        tags = tuple(sorted({v.invariant for v in exc.violations}))
        return MutationReport(mutation, detected=mutation.invariant in tags,
                              tags=tags)
    except Exception as exc:  # crash before detection = not detected
        return MutationReport(mutation, detected=False,
                              error=f"{type(exc).__name__}: {exc}")
    return MutationReport(mutation, detected=False,
                          error="run completed with no violation")


def run_all_mutations(scale_name: str = "tiny") -> List[MutationReport]:
    return [run_mutation(m, scale_name) for m in MUTATIONS]
