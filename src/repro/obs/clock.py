"""Orchestration-tier host clock -- the obs layer's ONE wall-clock module.

Every other `repro.obs` module measures time by calling :func:`monotonic`
from here; none touches ``time`` directly.  Together with
``telemetry/selfprof.py`` this is the complete set of modules allowed to
read the host clock inside ``src/repro``: the determinism lint's
wall-clock-allowance audit (see ``repro.analyze.lint``) fails any
``# lint: allow[wall-clock]`` suppression elsewhere, and a test strips the
tags below to prove they are load-bearing.

Only the *simulator* must be deterministic; the campaign tier measures
itself with these clocks without ever feeding a reading back into a
simulation.
"""

from __future__ import annotations

import time


def monotonic() -> float:
    """Monotonic seconds; on Linux (CLOCK_MONOTONIC) comparable across the
    fork-spawned worker processes of one campaign."""
    return time.monotonic()  # lint: allow[wall-clock] (campaign self-measurement)


def wall_time() -> float:
    """Unix epoch seconds, for log correlation with the outside world."""
    return time.time()  # lint: allow[wall-clock] (log correlation only)
