"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENT_MODULES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "KM"])
        assert args.policy == "finereg"
        assert args.scale == "tiny"

    def test_figure_choices_cover_the_evaluation(self):
        expected = {"fig02", "fig03", "fig04", "fig05", "table03", "fig12",
                    "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
                    "fig19"}
        assert set(EXPERIMENT_MODULES) == expected

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "KM", "--policy", "magic"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Breadth-First Search" in out
        assert "SGEMM" in out

    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "PCRF tags" in out
        assert "KB" in out

    def test_run(self, capsys):
        assert main(["run", "km", "--policy", "baseline",
                     "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "completed CTAs" in out

    def test_compare(self, capsys):
        assert main(["compare", "nw", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "finereg" in out
        assert "NW" in out

    def test_figure_with_app_subset(self, capsys):
        assert main(["figure", "fig03", "--scale", "tiny",
                     "--apps", "KM,LB"]) == 0
        out = capsys.readouterr().out
        assert "fig03" in out
