"""Engine backend selection, fallback routing and graceful degradation.

The ``EngineBackend`` seam (``repro.sim.backend``) decides which
observably-identical driver executes a run; these tests pin the selection
contract itself:

* ``REPRO_ENGINE`` / ``engine=`` parsing, precedence and loud failure on
  typos (a silently-wrong backend would invalidate a benchmark),
* ``auto`` resolution and graceful degradation down the chain (compiled
  -> vectorized -> fused) when the C extension or numpy is missing; an
  *explicit* request for an unavailable backend raises
  ``EngineUnavailableError``,
* run-level vectorized/compiled eligibility: instrumented runs
  (sanitizer, telemetry, tracers), non-GTO scheduling and non-inert
  policies must all degrade to the next backend down rather than take
  the decoupled runners or the C core — ``gpu.engine_used`` records what
  actually executed.

Bit-identity of the backends themselves is pinned separately by
tests/test_engine_differential.py.
"""

from __future__ import annotations

import pytest

from repro.config import SCALES, GPUConfig
from repro.experiments.runner import POLICIES
from repro.sim import backend
from repro.sim.backend import (EngineUnavailableError, parse_engine,
                               select_backend)
from repro.sim.gpu import GPU
from repro.sim.vectorized import policy_inert, run_eligible
from repro.workloads.generator import build_workload
from repro.workloads.suite import get_spec

TINY = SCALES["tiny"]
MICRO_CONFIG = GPUConfig(num_sms=2)


def build_gpu(policy: str = "baseline", config: GPUConfig = MICRO_CONFIG,
              **policy_kwargs) -> GPU:
    instance = build_workload(get_spec("KM"), config, TINY)
    return GPU(config, instance.kernel, POLICIES[policy](**policy_kwargs),
               instance.trace_provider, instance.address_model,
               liveness=instance.liveness)


# ----------------------------------------------------------------------
# parse_engine / select_backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("raw, expected", [
    (None, "auto"),
    ("", "auto"),
    ("auto", "auto"),
    ("fused", "fused"),
    ("  Vectorized \n", "vectorized"),
    ("REFERENCE", "reference"),
    ("Compiled", "compiled"),
])
def test_parse_engine_normalizes(raw, expected):
    assert parse_engine(raw) == expected


@pytest.mark.parametrize("raw", ["fast", "dense", "vector", "fused,"])
def test_parse_engine_rejects_unknown_names(raw):
    with pytest.raises(ValueError, match="unknown engine"):
        parse_engine(raw)


def test_select_backend_explicit_argument_beats_env(monkeypatch):
    monkeypatch.setenv(backend.ENGINE_ENV, "reference")
    assert select_backend("fused") == "fused"
    assert select_backend() == "reference"


def test_select_backend_env_typo_fails_loudly(monkeypatch):
    monkeypatch.setenv(backend.ENGINE_ENV, "vectorised")
    with pytest.raises(ValueError, match="unknown engine"):
        select_backend()


def test_select_backend_auto_prefers_compiled_when_built(monkeypatch):
    monkeypatch.setattr(backend, "_COMPILED_AVAILABLE", True)
    monkeypatch.setattr(backend, "_NUMPY_AVAILABLE", True)
    monkeypatch.delenv(backend.ENGINE_ENV, raising=False)
    assert select_backend() == "compiled"
    assert select_backend("auto") == "compiled"


def test_select_backend_auto_prefers_vectorized_without_extension(
        monkeypatch):
    monkeypatch.setattr(backend, "_COMPILED_AVAILABLE", False)
    monkeypatch.setattr(backend, "_NUMPY_AVAILABLE", True)
    monkeypatch.delenv(backend.ENGINE_ENV, raising=False)
    assert select_backend() == "vectorized"
    assert select_backend("auto") == "vectorized"


def test_select_backend_degrades_to_fused_without_numpy(monkeypatch):
    monkeypatch.setattr(backend, "_COMPILED_AVAILABLE", False)
    monkeypatch.setattr(backend, "_NUMPY_AVAILABLE", False)
    monkeypatch.delenv(backend.ENGINE_ENV, raising=False)
    assert select_backend() == "fused"


def test_explicit_vectorized_without_numpy_raises(monkeypatch):
    monkeypatch.setattr(backend, "_NUMPY_AVAILABLE", False)
    with pytest.raises(EngineUnavailableError, match="numpy"):
        select_backend("vectorized")
    monkeypatch.setenv(backend.ENGINE_ENV, "vectorized")
    with pytest.raises(EngineUnavailableError, match="numpy"):
        select_backend()


def test_explicit_compiled_without_extension_raises(monkeypatch):
    monkeypatch.setattr(backend, "_COMPILED_AVAILABLE", False)
    with pytest.raises(EngineUnavailableError, match="_ckernel"):
        select_backend("compiled")
    monkeypatch.setenv(backend.ENGINE_ENV, "compiled")
    with pytest.raises(EngineUnavailableError, match="_ckernel"):
        select_backend()


def test_run_consults_engine_env(monkeypatch):
    """``REPRO_ENGINE`` must reach a real ``GPU.run`` call end to end."""
    monkeypatch.setenv(backend.ENGINE_ENV, "reference")
    gpu = build_gpu()
    gpu.run(max_cycles=TINY.max_cycles)
    assert gpu.engine_used == "reference"
    assert all(sm._fast_consts is None for sm in gpu.sms), (
        "the reference backend must not bind the fused fast path")


# ----------------------------------------------------------------------
# Run-level vectorized eligibility / fallback routing
# ----------------------------------------------------------------------
def test_vectorized_falls_back_to_fused_with_sanitizer():
    from repro.validate.sanitizer import attach_sanitizer
    gpu = build_gpu()
    attach_sanitizer(gpu)
    assert not run_eligible(gpu)
    gpu.run(max_cycles=TINY.max_cycles, engine="vectorized")
    # Sanitizer wrappers also fail per-SM fast_step_eligible, so the
    # event engine runs the reference step.
    assert gpu.engine_used == "reference"


def test_vectorized_falls_back_with_cta_tracer():
    from repro.sim.tracing import attach_tracer
    gpu = build_gpu()
    attach_tracer(gpu, level="cta")
    assert not run_eligible(gpu)
    gpu.run(max_cycles=TINY.max_cycles, engine="vectorized")
    # A CTA-level tracer only observes launch/retire, so the fused step
    # stays eligible -- but the decoupled runners would scramble the
    # global order of its records, hence the run-level fallback.
    assert gpu.engine_used == "fused"


def test_vectorized_falls_back_with_telemetry():
    from repro.telemetry.session import attach_telemetry
    gpu = build_gpu()
    attach_telemetry(gpu)
    assert not run_eligible(gpu)
    gpu.run(max_cycles=TINY.max_cycles, engine="vectorized")
    assert gpu.engine_used == "reference"


def test_vectorized_falls_back_on_lrr_scheduling():
    gpu = build_gpu(config=GPUConfig(num_sms=2, warp_scheduling="lrr"))
    assert not run_eligible(gpu)
    gpu.run(max_cycles=TINY.max_cycles, engine="vectorized")
    # LRR schedulers fail fast_step_eligible (the fused step hard-codes
    # GTO's greedy-then-oldest scan), so the reference step runs.
    assert gpu.engine_used == "reference"


@pytest.mark.parametrize("policy", sorted(p for p in POLICIES
                                          if p != "baseline"))
def test_vectorized_falls_back_on_non_inert_policies(policy):
    """Every non-baseline policy overrides launch/finish/idle hooks the
    closed-form idle accounting bypasses, so none may take the runners."""
    gpu = build_gpu(policy)
    assert not policy_inert(gpu.sms[0]._policy)
    assert not run_eligible(gpu)
    gpu.run(max_cycles=TINY.max_cycles, engine="vectorized")
    # Hook-free policies still take the fused step; policies needing an
    # issue hook (vt_regmutex) drop all the way to the reference step.
    assert gpu.engine_used in ("fused", "reference")


def test_instance_policy_override_defeats_inertness():
    gpu = build_gpu()
    policy = gpu.sms[0]._policy
    assert policy_inert(policy)
    policy.on_tick = lambda now: None
    assert not policy_inert(policy)
    assert not run_eligible(gpu)


def test_instance_sm_override_defeats_run_eligibility():
    """Mutation-style instance wrappers on bypassed SM methods (the dense
    oracle would honor them; the runners would not) must disqualify."""
    gpu = build_gpu()
    assert run_eligible(gpu)
    sm = gpu.sms[0]
    sm.accumulate = lambda *a, **k: None
    assert not run_eligible(gpu)


# ----------------------------------------------------------------------
# Run-level compiled eligibility / fallback routing
# ----------------------------------------------------------------------
needs_extension = pytest.mark.skipif(
    not backend.compiled_available(),
    reason="repro.sim._ckernel extension not built")


@needs_extension
def test_compiled_runs_the_uninstrumented_baseline():
    gpu = build_gpu()
    from repro.sim.compiled import compiled_run_eligible
    assert compiled_run_eligible(gpu)
    gpu.run(max_cycles=TINY.max_cycles, engine="compiled")
    assert gpu.engine_used == "compiled"


@needs_extension
@pytest.mark.parametrize("reason, expect_used", [
    ("sanitizer", "reference"),   # fails fast_step_eligible per SM
    ("cta_tracer", "fused"),      # fused step eligible, run-level not
    ("telemetry", "reference"),
    ("lrr", "reference"),
])
def test_compiled_falls_back_per_run_eligibility_reason(reason, expect_used):
    """Every ``run_eligible`` failure must route compiled down the chain
    exactly where vectorized would land -- never error."""
    if reason == "lrr":
        gpu = build_gpu(config=GPUConfig(num_sms=2, warp_scheduling="lrr"))
    else:
        gpu = build_gpu()
        if reason == "sanitizer":
            from repro.validate.sanitizer import attach_sanitizer
            attach_sanitizer(gpu)
        elif reason == "cta_tracer":
            from repro.sim.tracing import attach_tracer
            attach_tracer(gpu, level="cta")
        else:
            from repro.telemetry.session import attach_telemetry
            attach_telemetry(gpu)
    from repro.sim.compiled import compiled_run_eligible
    assert not compiled_run_eligible(gpu)
    gpu.run(max_cycles=TINY.max_cycles, engine="compiled")
    assert gpu.engine_used == expect_used


@needs_extension
@pytest.mark.parametrize("policy", sorted(p for p in POLICIES
                                          if p != "baseline"))
def test_compiled_falls_back_on_non_inert_policies(policy):
    gpu = build_gpu(policy)
    from repro.sim.compiled import compiled_run_eligible
    assert not compiled_run_eligible(gpu)
    gpu.run(max_cycles=TINY.max_cycles, engine="compiled")
    assert gpu.engine_used in ("fused", "reference")


@needs_extension
@pytest.mark.parametrize("surface", ["sm", "wake", "stats"])
def test_compiled_only_overrides_fall_back_to_vectorized(surface):
    """Instance wrappers on the surface only the C core inlines (beyond
    the vectorized bypass list) must route to vectorized, which still
    honors them dynamically.  (The scheduler surface needs no instance
    gate: GTOScheduler declares __slots__, so wrapping e.g. ``wake`` on
    an instance is impossible -- pinned here -- and run_eligible already
    requires the exact type.)"""
    from repro.sim.compiled import compiled_run_eligible
    gpu = build_gpu()
    assert compiled_run_eligible(gpu)
    sm = gpu.sms[0]
    if surface == "wake":
        with pytest.raises(AttributeError):
            sm.schedulers[0].wake = lambda: None
        return
    if surface == "sm":
        original = sm._on_long_block
        sm._on_long_block = lambda warp, now: original(warp, now)
    else:
        original = sm.stats.accumulate
        sm.stats.accumulate = (
            lambda dt, active, pending, warps: original(dt, active,
                                                        pending, warps))
    assert not compiled_run_eligible(gpu)
    assert run_eligible(gpu)
    gpu.run(max_cycles=TINY.max_cycles, engine="compiled")
    assert gpu.engine_used == "vectorized"


@needs_extension
def test_compiled_ineligible_without_numpy_lands_on_fused(monkeypatch):
    """The fallback chain's last hop: compiled-ineligible run in a
    numpy-less environment must take the event engine."""
    gpu = build_gpu()
    gpu.sms[0]._on_long_block = lambda warp, now: None
    monkeypatch.setattr(backend, "_NUMPY_AVAILABLE", False)
    gpu.run(max_cycles=TINY.max_cycles, engine="compiled")
    assert gpu.engine_used == "fused"
