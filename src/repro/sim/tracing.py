"""Opt-in event tracing for simulation runs.

Attach an :class:`EventTracer` to a GPU before running to record the CTA
lifecycle (launches, switch-outs, switch-ins, retirements).  Useful for
debugging policies and for teaching -- the recorded timeline shows exactly
how a register-file management scheme rotates CTAs through the SM.

Two verbosity levels exist (``attach_tracer(gpu, level=...)``):

* ``"cta"`` (default) -- the four CTA-lifecycle kinds only.  This is the
  level the golden-trace corpus records, so its event streams stay stable
  across telemetry changes.
* ``"warp"`` -- additionally records warp-level events (barrier arrivals
  and releases, RF-depletion stall begin/end, PCRF spill/fill with their
  register counts) and annotates switch events with their overhead-cycle
  durations (the Table-IV switch phases).  This is the level
  ``repro trace`` and the Perfetto exporter consume.

Bounded-log semantics: the log is a **drop-oldest ring buffer**.  Once
``capacity`` events are held, each new event evicts the oldest one and
increments ``dropped``; the retained window is always the *most recent*
``capacity`` events.  :meth:`as_dicts` surfaces the loss explicitly with a
leading ``dropped_events`` marker record, so a consumer of a saturated log
can never mistake the window for the complete stream.

The hot path pays a single ``is not None`` check when tracing is off.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterator, List, Optional


class EventKind(enum.Enum):
    # CTA lifecycle (recorded at every level; the golden corpus pins these).
    LAUNCH = "launch"
    SWITCH_OUT = "switch_out"    # active -> pending
    SWITCH_IN = "switch_in"      # pending -> active
    RETIRE = "retire"
    # Warp-level kinds (recorded only by level="warp" tracers).
    BARRIER_ARRIVE = "barrier_arrive"    # one warp reached the CTA barrier
    BARRIER_RELEASE = "barrier_release"  # the barrier opened for the CTA
    DIVERGE_FORK = "diverge_fork"        # warp entered a divergent region
    DIVERGE_JOIN = "diverge_join"        # warp reached the reconvergence pt
    RF_STALL_BEGIN = "rf_stall_begin"    # policy blocked on RF depletion
    RF_STALL_END = "rf_stall_end"        # RF space freed; switching resumed
    PCRF_SPILL = "pcrf_spill"            # live registers chained into PCRF
    PCRF_FILL = "pcrf_fill"              # live registers restored to ACRF

#: Kinds delivered to :attr:`EventTracer.listener` -- the sanitizer's CTA
#: lifecycle machine consumes exactly this stream, so warp-level kinds are
#: recorded but never forwarded.
LIFECYCLE_KINDS = frozenset((EventKind.LAUNCH, EventKind.SWITCH_OUT,
                             EventKind.SWITCH_IN, EventKind.RETIRE))

#: ``sm`` field of the :meth:`EventTracer.as_dicts` loss marker.
DROPPED_MARKER_SM = -1


@dataclass(frozen=True)
class Event:
    """One timeline entry.

    ``warp`` is the in-CTA warp index for warp-level kinds (``None`` for
    CTA-scope events); ``dur`` is the overhead-cycle duration of switch
    phases (0 when not applicable), and ``value`` carries a kind-specific
    magnitude (spilled/filled register count).
    """

    cycle: int
    sm_id: int
    kind: EventKind
    cta_id: int
    warp: Optional[int] = None
    dur: int = 0
    value: int = 0

    def __str__(self) -> str:
        extra = ""
        if self.warp is not None:
            extra += f" warp {self.warp}"
        if self.dur:
            extra += f" (+{self.dur} cycles)"
        if self.value:
            extra += f" [{self.value} regs]"
        return (f"[{self.cycle:>8}] SM{self.sm_id} "
                f"{self.kind.value:<15} CTA {self.cta_id}{extra}")


class EventTracer:
    """Bounded in-memory event log (drop-oldest ring buffer)."""

    def __init__(self, capacity: int = 100_000, level: str = "cta") -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        if level not in ("cta", "warp"):
            raise ValueError(f"unknown tracer level {level!r}")
        self.capacity = capacity
        self.level = level
        self._events: Deque[Event] = deque(maxlen=capacity)
        self.dropped = 0
        #: Optional callback ``(cycle, sm_id, kind, cta_id)`` invoked for
        #: every *CTA-lifecycle* event, *including* ones dropped once the
        #: log is full -- the sanitizer's lifecycle checks must see the
        #: complete stream.  Warp-level kinds are never forwarded.
        self.listener: Optional[Callable[[int, int, EventKind, int],
                                         None]] = None

    @property
    def warp_level(self) -> bool:
        return self.level == "warp"

    @property
    def events(self) -> Deque[Event]:
        """The retained window (most recent ``capacity`` events)."""
        return self._events

    def record(self, cycle: int, sm_id: int, kind: EventKind,
               cta_id: int, warp: Optional[int] = None, dur: int = 0,
               value: int = 0) -> None:
        if self.listener is not None and kind in LIFECYCLE_KINDS:
            self.listener(cycle, sm_id, kind, cta_id)
        if len(self._events) >= self.capacity:
            # deque(maxlen=...) evicts the oldest entry on append.
            self.dropped += 1
        self._events.append(Event(cycle, sm_id, kind, cta_id,
                                  warp=warp, dur=dur, value=value))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, kind: EventKind) -> List[Event]:
        return [e for e in self._events if e.kind is kind]

    def events_for_sm(self, sm_id: int) -> List[Event]:
        """All recorded events of one SM, in record order."""
        return [e for e in self._events if e.sm_id == sm_id]

    def as_dicts(self) -> List[dict]:
        """JSON-ready view of the log (golden traces, external tooling).

        CTA-scope events keep the compact 4-key shape the golden corpus
        pins; warp-level fields are added only when set.  If the ring
        buffer dropped events, the first entry is a marker record
        (``kind="dropped_events"``, ``sm=-1``) whose ``cta`` field carries
        the drop count and whose ``cycle`` is the oldest retained cycle.
        """
        out: List[dict] = []
        if self.dropped:
            oldest = self._events[0].cycle if self._events else 0
            out.append({"cycle": oldest, "sm": DROPPED_MARKER_SM,
                        "kind": "dropped_events", "cta": self.dropped})
        for e in self._events:
            entry = {"cycle": e.cycle, "sm": e.sm_id, "kind": e.kind.value,
                     "cta": e.cta_id}
            if e.warp is not None:
                entry["warp"] = e.warp
            if e.dur:
                entry["dur"] = e.dur
            if e.value:
                entry["value"] = e.value
            out.append(entry)
        return out

    def counts_by_kind(self) -> dict:
        """Retained-event histogram keyed by kind value (summary output)."""
        counts: dict = {}
        for e in self._events:
            counts[e.kind.value] = counts.get(e.kind.value, 0) + 1
        return counts

    def for_cta(self, cta_id: int) -> List[Event]:
        return [e for e in self._events if e.cta_id == cta_id]

    def residency_of(self, cta_id: int) -> Optional[int]:
        """Cycles between a CTA's launch and retirement, if both recorded."""
        events = self.for_cta(cta_id)
        launch = next((e for e in events if e.kind is EventKind.LAUNCH),
                      None)
        retire = next((e for e in events if e.kind is EventKind.RETIRE),
                      None)
        if launch is None or retire is None:
            return None
        return retire.cycle - launch.cycle

    def switch_count(self, cta_id: int) -> int:
        """Round trips through the pending state for one CTA."""
        return len([e for e in self.for_cta(cta_id)
                    if e.kind is EventKind.SWITCH_OUT])

    def timeline(self, limit: int = 50) -> str:
        lines = []
        for index, event in enumerate(self._events):
            if index >= limit:
                break
            lines.append(str(event))
        if len(self._events) > limit:
            lines.append(f"... {len(self._events) - limit} more events")
        return "\n".join(lines)


def attach_tracer(gpu, capacity: int = 100_000,
                  level: str = "cta") -> EventTracer:
    """Create a tracer and hook it into every SM of a GPU.

    With ``level="warp"`` the same tracer is also installed as
    ``gpu.warp_tracer``, which is the handle the SM/policy warp-event
    emission sites test (one ``is not None`` check each).
    """
    tracer = EventTracer(capacity, level=level)
    gpu.tracer = tracer
    gpu.warp_tracer = tracer if tracer.warp_level else None
    if tracer.warp_level:
        for sm in getattr(gpu, "sms", ()):
            sm.enable_warp_events(tracer)
    return tracer
