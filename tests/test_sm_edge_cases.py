"""Edge-case tests for the SM issue loop and resource accounting."""

import pytest

from conftest import build_linear_cfg
from repro.config import GPUConfig, TINY
from repro.isa.cfg import ControlFlowGraph, EdgeKind
from repro.isa.instructions import AccessPattern, Instruction, Opcode
from repro.isa.kernel import Kernel, LaunchGeometry
from repro.policies.baseline import BaselinePolicy
from repro.policies.virtual_thread import VirtualThreadPolicy
from repro.sim.gpu import GPU
from repro.workloads.traces import AddressModel, TraceProvider


def gpu_for(cfg, grid=4, threads=64, regs=8, policy=BaselinePolicy,
            num_sms=1, shmem=0):
    config = GPUConfig().with_num_sms(num_sms)
    kernel = Kernel("edge", cfg, LaunchGeometry(threads, grid),
                    regs_per_thread=regs, shmem_per_cta=shmem)
    return GPU(config, kernel, policy, TraceProvider(cfg, seed=3),
               AddressModel())


class TestWarpAccounting:
    def test_warp_counters_zero_after_run(self, linear_cfg):
        gpu = gpu_for(linear_cfg, grid=6)
        gpu.run(max_cycles=100_000)
        sm = gpu.sms[0]
        assert sm._active_warps == 0
        assert sm._active_threads == 0
        assert sm._incoming_ctas == 0
        assert not sm.active_ctas
        assert not sm.pending_ctas
        assert not sm.transit_ctas

    def test_shmem_released_on_retire(self, linear_cfg):
        gpu = gpu_for(linear_cfg, grid=4, shmem=8192)
        gpu.run(max_cycles=100_000)
        assert gpu.sms[0].shmem_used == 0

    def test_warps_spread_over_schedulers(self, linear_cfg):
        gpu = gpu_for(linear_cfg, grid=8, threads=128)
        sm = gpu.sms[0]
        sm.policy.fill(0)
        occupancies = [s.occupancy for s in sm.schedulers]
        assert max(occupancies) - min(occupancies) <= 1


class TestIssueSemantics:
    def test_stores_do_not_block_warps(self):
        cfg = ControlFlowGraph()
        cfg.add_block([
            Instruction(Opcode.IALU, 1, ()),
            Instruction(Opcode.STG, None, (1,), AccessPattern.STREAM),
            Instruction(Opcode.IALU, 2, ()),  # independent of the store
        ], EdgeKind.FALLTHROUGH, successors=(1,))
        cfg.add_block([Instruction(Opcode.EXIT)], EdgeKind.EXIT)
        gpu = gpu_for(cfg.freeze(), grid=1, threads=32)
        result = gpu.run(max_cycles=10_000)
        # No dependence on the store: the run is ALU-latency bound, far
        # below a DRAM round trip.
        assert result.cycles < GPUConfig().dram_latency

    def test_sfu_latency_applied(self):
        cfg = ControlFlowGraph()
        cfg.add_block([
            Instruction(Opcode.IALU, 1, ()),
            Instruction(Opcode.SFU, 2, (1,)),
            Instruction(Opcode.FALU, 3, (2,)),  # waits on the SFU
        ], EdgeKind.FALLTHROUGH, successors=(1,))
        cfg.add_block([Instruction(Opcode.EXIT)], EdgeKind.EXIT)
        gpu = gpu_for(cfg.freeze(), grid=1, threads=32)
        result = gpu.run(max_cycles=10_000)
        config = GPUConfig()
        assert result.cycles >= config.alu_latency + config.sfu_latency

    def test_shared_memory_ops_counted(self):
        cfg = ControlFlowGraph()
        cfg.add_block([
            Instruction(Opcode.LDS, 1, (0,)),
            Instruction(Opcode.STS, None, (1,)),
        ], EdgeKind.FALLTHROUGH, successors=(1,))
        cfg.add_block([Instruction(Opcode.EXIT)], EdgeKind.EXIT)
        gpu = gpu_for(cfg.freeze(), grid=2, threads=64)
        result = gpu.run(max_cycles=10_000)
        # 2 CTAs x 2 warps x 2 shared ops.
        assert result.shmem_accesses == 8


class TestMultiSM:
    def test_sms_share_the_grid(self, linear_cfg):
        # Grid exceeds one SM's 32-CTA capacity, so both SMs must pull work.
        gpu = gpu_for(linear_cfg, grid=40, num_sms=2)
        gpu.run(max_cycles=100_000)
        launches = [sm.stats.cta_launches for sm in gpu.sms]
        assert sum(launches) == 40
        assert all(count > 0 for count in launches)

    def test_idle_attribution_is_per_sm(self, linear_cfg):
        gpu = gpu_for(linear_cfg, grid=1, num_sms=2)
        gpu.run(max_cycles=100_000)
        # Only one SM ever had work; the other must not log busy-idle time.
        idle_sm = next(sm for sm in gpu.sms if sm.stats.cta_launches == 0)
        assert idle_sm.stats.idle_cycles == 0


class TestVirtualThreadResidency:
    def test_pending_ctas_hold_shmem(self):
        cfg = ControlFlowGraph()
        cfg.add_block([
            Instruction(Opcode.LDG, 1, (0,), AccessPattern.STREAM),
            Instruction(Opcode.FALU, 2, (1,)),
        ], EdgeKind.FALLTHROUGH, successors=(1,))
        cfg.add_block([Instruction(Opcode.EXIT)], EdgeKind.EXIT)
        gpu = gpu_for(cfg.freeze(), grid=12, threads=64,
                      policy=VirtualThreadPolicy, shmem=16 * 1024)
        sm = gpu.sms[0]
        sm.policy.fill(0)
        # 96 KB / 16 KB = 6 resident CTAs maximum, ever.
        assert sm.shmem_used <= GPUConfig().shared_memory_bytes
        gpu.run(max_cycles=200_000)
        assert sm.stats.max_resident_ctas <= 6


class TestRFBankConflicts:
    def test_off_by_default(self, linear_cfg):
        gpu = gpu_for(linear_cfg, grid=2)
        gpu.run(max_cycles=100_000)
        assert gpu.sms[0].stats.rf_bank_conflicts == 0

    def test_same_bank_sources_conflict(self):
        import dataclasses
        cfg = ControlFlowGraph()
        cfg.add_block([
            Instruction(Opcode.IALU, 1, ()),
            Instruction(Opcode.IALU, 9, ()),
            # R1 and R9 share a bank with 8 banks (1 % 8 == 9 % 8).
            Instruction(Opcode.FALU, 2, (1, 9)),
        ], EdgeKind.FALLTHROUGH, successors=(1,))
        cfg.add_block([Instruction(Opcode.EXIT)], EdgeKind.EXIT)
        frozen = cfg.freeze()
        config = dataclasses.replace(
            GPUConfig().with_num_sms(1), model_rf_banks=True, rf_banks=8)
        kernel = Kernel("bank", frozen, LaunchGeometry(32, 1),
                        regs_per_thread=16)
        gpu = GPU(config, kernel, BaselinePolicy,
                  TraceProvider(frozen, seed=1), AddressModel())
        gpu.run(max_cycles=10_000)
        assert gpu.sms[0].stats.rf_bank_conflicts == 1

    def test_distinct_banks_no_conflict(self):
        import dataclasses
        cfg = ControlFlowGraph()
        cfg.add_block([
            Instruction(Opcode.IALU, 1, ()),
            Instruction(Opcode.IALU, 2, ()),
            Instruction(Opcode.FALU, 3, (1, 2)),
        ], EdgeKind.FALLTHROUGH, successors=(1,))
        cfg.add_block([Instruction(Opcode.EXIT)], EdgeKind.EXIT)
        frozen = cfg.freeze()
        config = dataclasses.replace(
            GPUConfig().with_num_sms(1), model_rf_banks=True, rf_banks=8)
        kernel = Kernel("bank", frozen, LaunchGeometry(32, 1),
                        regs_per_thread=8)
        gpu = GPU(config, kernel, BaselinePolicy,
                  TraceProvider(frozen, seed=1), AddressModel())
        gpu.run(max_cycles=10_000)
        assert gpu.sms[0].stats.rf_bank_conflicts == 0
