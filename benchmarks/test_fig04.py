"""Bench: regenerate paper Fig 4 (CS case study)."""

from conftest import regenerate
from repro.experiments import fig04_case_study


def test_fig04_cs_case_study(benchmark, runner):
    result = regenerate(benchmark, fig04_case_study.run, runner)
    # Shape: Full RF beats baseline; DRAM adds little; Ideal tops everything.
    assert result.summary["full_rf_speedup"] > 1.0
    assert result.summary["full_rf_dram_speedup"] \
        >= result.summary["full_rf_speedup"] - 0.03
    assert result.summary["ideal_speedup"] \
        >= result.summary["full_rf_dram_speedup"] - 0.03
