"""Setup shim for environments without the `wheel` package (offline).

Metadata (including the numpy dependency for the vectorized engine
backend) lives in pyproject.toml; see repro.sim.backend for the graceful
numpy-less degradation story.

The compiled engine backend's C extension (repro.sim._ckernel) is built
here *best-effort*: ``optional=True`` plus the failure-tolerant build_ext
below means a box without a working C toolchain still installs cleanly
and ``auto`` resolution degrades to vectorized/fused at run time.
"""
from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """Never fail the install over the optional C speedup.

    setuptools' ``optional=True`` already tolerates per-extension compile
    errors, but a missing compiler can abort earlier (at configure time);
    swallow that too and fall back to the pure-Python backends.
    """

    def run(self):
        try:
            super().run()
        except Exception as exc:  # pragma: no cover - toolchain-dependent
            self._skip(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # pragma: no cover - toolchain-dependent
            self._skip(exc)

    @staticmethod
    def _skip(exc):
        print(f"warning: skipping optional C extension "
              f"repro.sim._ckernel ({exc!r}); the compiled engine "
              f"backend will be unavailable (auto degrades to "
              f"vectorized/fused)")


setup(
    ext_modules=[
        Extension(
            "repro.sim._ckernel",
            sources=["src/repro/sim/_ckernel.c"],
            optional=True,
        ),
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)
