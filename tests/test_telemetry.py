"""The telemetry subsystem: registry, timelines, session, roll-up,
self-profiling, and the observation-only guarantee."""

from __future__ import annotations

import dataclasses
import json
import re

import pytest

from repro.config import GPUConfig, TINY
from repro.experiments.report import percentile
from repro.policies.baseline import BaselinePolicy
from repro.policies.finereg import FineRegPolicy
from repro.sim.gpu import GPU
from repro.sim.tracing import attach_tracer
from repro.telemetry.registry import RESERVOIR_CAP, MetricsRegistry
from repro.telemetry.rollup import render_rollup, rollup_results
from repro.telemetry.session import TelemetryConfig, attach_telemetry
from repro.workloads.generator import build_workload
from repro.workloads.suite import get_spec


def build_gpu(app="KM", policy=FineRegPolicy, num_sms=1):
    config = GPUConfig().with_num_sms(num_sms)
    instance = build_workload(get_spec(app), config, TINY)
    gpu = GPU(config, instance.kernel, policy,
              instance.trace_provider, instance.address_model,
              liveness=instance.liveness)
    return gpu


def telemetry_run(app="KM", policy=FineRegPolicy, num_sms=1, interval=1,
                  traced=False):
    gpu = build_gpu(app, policy, num_sms)
    if traced:
        attach_tracer(gpu, level="warp")
    session = attach_telemetry(
        gpu, TelemetryConfig(timeline_interval=interval))
    result = gpu.run(max_cycles=TINY.max_cycles)
    return gpu, session, result


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.gauge_set("g", 7.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 5}
        assert snap["gauges"] == {"g": 7.5}

    def test_histogram_moments_exact(self):
        reg = MetricsRegistry()
        for v in (1, 2, 3, 4):
            reg.observe("h", v)
        snap = reg.snapshot()["histograms"]["h"]
        assert snap["count"] == 4
        assert snap["sum"] == 10
        assert snap["mean"] == 2.5
        assert snap["min"] == 1
        assert snap["max"] == 4

    def test_histogram_reservoir_is_bounded_and_deterministic(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg in (a, b):
            for v in range(10 * RESERVOIR_CAP):
                reg.observe("h", v)
        hist = a.histogram("h")
        assert len(hist._reservoir) < RESERVOIR_CAP
        assert hist.count == 10 * RESERVOIR_CAP
        # Two identical observation streams -> identical snapshots.
        assert a.snapshot() == b.snapshot()

    def test_histogram_percentiles_ordered(self):
        reg = MetricsRegistry()
        for v in range(1000):
            reg.observe("h", v)
        snap = reg.snapshot()["histograms"]["h"]
        assert snap["min"] <= snap["p50"] <= snap["p95"] <= snap["max"]

    def test_empty_histogram_snapshot(self):
        reg = MetricsRegistry()
        assert reg.histogram("h").snapshot() == {"count": 0}

    def test_snapshot_key_order_stable(self):
        reg = MetricsRegistry()
        reg.inc("zeta")
        reg.inc("alpha")
        assert list(reg.snapshot()["counters"]) == ["alpha", "zeta"]


# ----------------------------------------------------------------------
# Session attach + publisher wiring
# ----------------------------------------------------------------------
class TestSessionWiring:
    def test_attach_installs_every_publisher(self):
        gpu = build_gpu(policy=FineRegPolicy)
        session = attach_telemetry(gpu)
        reg = session.registry
        assert gpu.telemetry is session
        assert gpu.hierarchy.telemetry is reg
        for sm in gpu.sms:
            assert sm.telemetry is reg
            for sched in sm.schedulers:
                assert sched.telemetry is reg
            assert sm.policy.acrf.telemetry is reg
            assert sm.policy.pcrf.telemetry is reg
            assert sm.policy.rmu.telemetry is reg

    def test_run_publishes_core_metrics(self):
        __, session, result = telemetry_run(policy=FineRegPolicy)
        snap = session.registry.snapshot()
        assert snap["counters"]["acrf.allocations"] > 0
        assert snap["counters"]["mem.loads"] > 0
        assert sum(snap["issue_counts"].values()) == result.instructions
        if result.cta_switch_events:
            assert snap["counters"]["pcrf.spills"] > 0
            assert snap["histograms"]["rmu.spill_cycles"]["count"] > 0

    def test_payload_shape(self):
        __, session, result = telemetry_run()
        payload = session.as_payload()
        assert payload["schema"] == 1
        assert payload["end_cycle"] == result.cycles
        assert set(payload) >= {"schema", "end_cycle", "metrics", "timeline"}
        json.dumps(payload)  # must be JSON-serializable

    def test_metrics_can_be_disabled(self):
        gpu = build_gpu()
        session = attach_telemetry(
            gpu, TelemetryConfig(metrics=False, timeline=True))
        gpu.run(max_cycles=TINY.max_cycles)
        assert session.registry is None
        assert session.timeline is not None


# ----------------------------------------------------------------------
# Timeline sampling: reconciliation against SMStats integrals
# ----------------------------------------------------------------------
class TestTimelineReconciliation:
    @pytest.mark.parametrize("policy", [BaselinePolicy, FineRegPolicy])
    def test_interval_1_sums_equal_time_weighted_integrals(self, policy):
        """At interval=1 the sampler sees the same post-step levels the
        accumulate loop integrates, over the same windows -- the sums must
        match the integrals *exactly*, not approximately."""
        gpu, session, __ = telemetry_run(policy=policy, interval=1)
        for sm in gpu.sms:
            series = session.timeline.series_for(sm.sm_id)
            assert sum(series["active_ctas"]) == sm.stats.active_cta_cycles
            assert sum(series["pending_ctas"]) == sm.stats.pending_cta_cycles
            assert sum(series["active_warps"]) == sm.stats.active_warp_cycles

    def test_coarser_interval_approximates_integral(self):
        gpu, session, __ = telemetry_run(interval=10)
        sm = gpu.sms[0]
        series = session.timeline.series_for(0)
        approx = sum(series["active_ctas"]) * 10
        exact = sm.stats.active_cta_cycles
        assert approx == pytest.approx(exact, rel=0.15, abs=200)

    def test_fig4_case_study_emits_acrf_pcrf_series(self):
        """The Fig-4 case-study app (CS) under FineReg must emit per-cycle
        ACRF/PCRF occupancy -- the series the paper's case study plots."""
        gpu, session, result = telemetry_run(app="CS",
                                             policy=FineRegPolicy)
        series = session.timeline.series_for(0)
        for name in ("acrf_free", "acrf_used", "pcrf_free", "pcrf_used"):
            assert name in series
            assert len(series[name]) == session.timeline.num_samples
        policy = gpu.sms[0].policy
        cap = policy.acrf.capacity
        assert all(0 <= free <= cap for free in series["acrf_free"])
        assert all(free + used == cap for free, used
                   in zip(series["acrf_free"], series["acrf_used"]))
        if result.cta_switch_events:
            assert max(series["pcrf_used"]) > 0

    def test_cumulative_stall_series_end_at_totals(self):
        gpu, session, __ = telemetry_run()
        sm = gpu.sms[0]
        series = session.timeline.series_for(0)
        assert series["idle_cycles"][-1] == sm.stats.idle_cycles
        assert series["rf_depletion_cycles"][-1] == \
            sm.stats.rf_depletion_cycles

    def test_max_samples_truncates_flagged(self):
        gpu = build_gpu()
        session = attach_telemetry(
            gpu, TelemetryConfig(timeline_interval=1, max_samples=16))
        gpu.run(max_cycles=TINY.max_cycles)
        assert session.timeline.truncated
        assert session.timeline.num_samples <= 16
        assert session.timeline.as_payload()["truncated"] is True


# ----------------------------------------------------------------------
# Observation-only guarantee
# ----------------------------------------------------------------------
class TestObservationOnly:
    @pytest.mark.parametrize("policy_name,policy", [
        ("baseline", BaselinePolicy), ("finereg", FineRegPolicy)])
    def test_traced_result_byte_identical_to_untraced(self, policy_name,
                                                      policy):
        untraced = build_gpu(policy=policy).run(max_cycles=TINY.max_cycles)
        gpu = build_gpu(policy=policy)
        attach_tracer(gpu, level="warp")
        attach_telemetry(gpu)
        traced = gpu.run(max_cycles=TINY.max_cycles)
        a = json.dumps(dataclasses.asdict(untraced), sort_keys=True)
        b = json.dumps(dataclasses.asdict(traced), sort_keys=True)
        assert a == b


# ----------------------------------------------------------------------
# Campaign roll-up
# ----------------------------------------------------------------------
class TestRollup:
    def test_groups_by_app_and_policy(self, tiny_runner):
        results = [
            ("KM", tiny_runner.run("KM", "baseline")),
            ("KM", tiny_runner.run("KM", "finereg")),
            ("LB", tiny_runner.run("LB", "baseline")),
        ]
        payload = rollup_results(results)
        keys = {(g["app"], g["policy"]) for g in payload["groups"]}
        assert keys == {("KM", "baseline"), ("KM", "finereg"),
                        ("LB", "baseline")}
        for group in payload["groups"]:
            assert group["runs"] == 1
            assert 0.0 <= group["stall_fraction_p50"] <= 1.0
            assert group["stall_fraction_p50"] <= group["stall_fraction_p95"]

    def test_switch_budget_totals(self, tiny_runner):
        result = tiny_runner.run("KM", "finereg")
        payload = rollup_results([("KM", result)])
        group = payload["groups"][0]
        assert group["switch_overhead_cycles"] == \
            result.switch_overhead_cycles
        assert group["cta_switch_events"] == result.cta_switch_events

    def test_render_is_a_table(self, tiny_runner):
        payload = rollup_results([("KM", tiny_runner.run("KM", "finereg"))])
        text = render_rollup(payload)
        assert "KM/finereg" in text
        assert "stall p50" in text

    def test_percentile_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5
        assert percentile([10], 95) == 10
        assert percentile([0, 100], 25) == 25.0
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 150)


# ----------------------------------------------------------------------
# Self-profiling (the audited wall-clock exemption)
# ----------------------------------------------------------------------
class TestSelfProfiler:
    def test_phases_record_and_aggregate(self):
        from repro.telemetry.selfprof import SelfProfiler
        prof = SelfProfiler()
        with prof.phase("simulate") as timer:
            timer.sim_cycles = 1000
        with prof.phase("render"):
            pass
        assert [p.name for p in prof.phases] == ["simulate", "render"]
        assert prof.total_wall_s >= 0
        payload = prof.as_payload()
        assert payload["phases"][0]["sim_cycles"] == 1000
        json.dumps(payload)

    def test_cycles_per_second_needs_both_inputs(self):
        from repro.telemetry.selfprof import PhaseProfile
        assert PhaseProfile("x", 0.5, 1000).cycles_per_second == 2000
        assert PhaseProfile("x", 0.5, None).cycles_per_second is None
        assert PhaseProfile("x", 0.0, 1000).cycles_per_second is None

    def test_shipped_module_is_lint_clean_but_exemption_is_real(self):
        """selfprof.py is the one allowed wall-clock reader.  The shipped
        file must pass the determinism lint (its reads carry allow tags),
        and a copy with the tags stripped must be flagged -- proving the
        tags are load-bearing, not decorative."""
        from pathlib import Path

        from repro.analyze.lint import lint_file, lint_source
        import repro.telemetry.selfprof as selfprof

        path = Path(selfprof.__file__)
        assert not lint_file(path), "shipped selfprof.py must lint clean"
        stripped = re.sub(r"\s*# lint: allow\[wall-clock\]", "",
                          path.read_text())
        findings = lint_source(stripped, path="selfprof_stripped.py")
        assert any(f.tag == "wall-clock" for f in findings), (
            "stripping the allow tags must expose the wall-clock reads")
