"""Fig 14: (a) RegMutex's best SRP/BRS ratios and (b) stalls caused by
register-file depletion for the memory-intensive applications.

The paper finds RegMutex's optimum dedicates ~28.1% of the RF to the SRP on
average (20.8% for memory-intensive apps), and that VT+RegMutex stalls 7.5%
of execution time on SRP exhaustion (leases held across memory stalls)
while FineReg stalls only 1.3% on PCRF depletion.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    ALL_APPS,
    MEMORY_INTENSIVE_APPS,
    SRP_RATIOS,
    ExperimentResult,
    best_regmutex,
)
from repro.experiments.parallel import RunRequest
from repro.experiments.runner import ExperimentRunner


def run(runner: ExperimentRunner,
        apps: Sequence[str] = MEMORY_INTENSIVE_APPS,
        ratio_apps: Sequence[str] = ALL_APPS) -> ExperimentResult:
    # (a) Best SRP ratios per app.
    ratios = {}
    for app in ratio_apps:
        __, ratio = best_regmutex(runner, app)
        ratios[app] = ratio

    # (b) Stall fractions for the memory-intensive trio.
    rows = []
    rm_stalls = []
    fr_stalls = []
    for app in apps:
        rm, ratio = best_regmutex(runner, app)
        fr = runner.run(app, "finereg")
        rm_frac = rm.srp_stall_cycles / rm.cycles if rm.cycles else 0.0
        fr_frac = fr.rf_depletion_fraction
        rm_stalls.append(rm_frac)
        fr_stalls.append(fr_frac)
        rows.append([app, ratio, rm_frac, fr_frac])

    mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
    summary = {
        "mean_srp_ratio_all": mean(list(ratios.values())),
        "mean_srp_ratio_memory_intensive": mean(
            [ratios[a] for a in apps if a in ratios]),
        "regmutex_stall_fraction": mean(rm_stalls),
        "finereg_stall_fraction": mean(fr_stalls),
    }
    return ExperimentResult(
        experiment="fig14",
        title="SRP/BRS ratios and register-file depletion stalls",
        headers=["app", "best_srp_ratio", "regmutex_stall_frac",
                 "finereg_stall_frac"],
        rows=rows,
        summary=summary,
        notes=("Paper: best SRP ratio ~28.1% on average (20.8% for KM/SY2/"
               "BF); VT+RegMutex stalls 7.5% of time on SRP vs FineReg's "
               "1.3% on PCRF."),
    )


def plan(runner: ExperimentRunner,
         apps: Sequence[str] = MEMORY_INTENSIVE_APPS,
         ratio_apps: Sequence[str] = ALL_APPS):
    ordered = list(dict.fromkeys(list(ratio_apps) + list(apps)))
    requests = [RunRequest.make(app, "vt_regmutex", srp_ratio=ratio)
                for app in ordered for ratio in SRP_RATIOS]
    requests += [RunRequest.make(app, "finereg") for app in apps]
    return requests


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
