"""Tests for the ACRF allocator and the chained-tag PCRF."""

import pytest

from repro.core.acrf import ACRFAllocator
from repro.core.pcrf import (
    NEXT_POINTER_BITS,
    PAPER_TAG_BITS,
    PCRF,
    PCRFEntryTag,
)


class TestACRFAllocator:
    def test_capacity_tracking(self):
        acrf = ACRFAllocator(100)
        acrf.allocate(1, 40)
        acrf.allocate(2, 40)
        assert acrf.used == 80
        assert acrf.free == 20
        assert acrf.resident_ctas == 2

    def test_overflow_raises(self):
        acrf = ACRFAllocator(100)
        acrf.allocate(1, 90)
        with pytest.raises(MemoryError):
            acrf.allocate(2, 20)

    def test_can_allocate(self):
        acrf = ACRFAllocator(100)
        acrf.allocate(1, 60)
        assert acrf.can_allocate(40)
        assert not acrf.can_allocate(41)

    def test_double_allocation_rejected(self):
        acrf = ACRFAllocator(100)
        acrf.allocate(1, 10)
        with pytest.raises(KeyError):
            acrf.allocate(1, 10)

    def test_release_returns_size(self):
        acrf = ACRFAllocator(100)
        acrf.allocate(5, 30)
        assert acrf.release(5) == 30
        assert acrf.used == 0

    def test_release_unknown_rejected(self):
        with pytest.raises(KeyError):
            ACRFAllocator(100).release(9)

    def test_zero_allocation_rejected(self):
        with pytest.raises(ValueError):
            ACRFAllocator(100).allocate(1, 0)

    def test_utilization(self):
        acrf = ACRFAllocator(200)
        acrf.allocate(1, 50)
        assert acrf.utilization() == pytest.approx(0.25)


class TestPCRFTags:
    def test_tag_field_widths(self):
        with pytest.raises(ValueError):
            PCRFEntryTag(True, False, 1 << NEXT_POINTER_BITS, 0, 0)
        with pytest.raises(ValueError):
            PCRFEntryTag(True, False, 0, 32, 0)   # warp id is 5 bits
        with pytest.raises(ValueError):
            PCRFEntryTag(True, False, 0, 0, 64)   # reg index is 6 bits

    def test_paper_tag_bits(self):
        assert PAPER_TAG_BITS == 21

    def test_capacity_addressable(self):
        with pytest.raises(ValueError):
            PCRF(2048)  # not addressable by a 10-bit pointer
        assert PCRF(1024).capacity == 1024


class TestPCRFSpillRestore:
    def test_round_trip_preserves_order(self):
        pcrf = PCRF(16)
        live = [(0, 3), (0, 7), (1, 2), (2, 5)]
        pcrf.spill(42, live)
        assert pcrf.used_entries == 4
        assert pcrf.restore(42) == tuple(live)
        assert pcrf.used_entries == 0

    def test_chain_links_and_end_bit(self):
        pcrf = PCRF(16)
        result = pcrf.spill(1, [(0, 0), (0, 1), (0, 2)])
        slots = result.slots
        for i, slot in enumerate(slots):
            tag = pcrf.tag_at(slot)
            assert tag.valid
            if i < len(slots) - 1:
                assert not tag.end
                assert tag.next_index == slots[i + 1]
            else:
                assert tag.end

    def test_interleaved_ctas_keep_separate_chains(self):
        pcrf = PCRF(16)
        pcrf.spill(1, [(0, 0), (0, 1)])
        pcrf.spill(2, [(1, 5), (1, 6)])
        assert pcrf.restore(1) == ((0, 0), (0, 1))
        assert pcrf.restore(2) == ((1, 5), (1, 6))

    def test_freed_slots_are_reused(self):
        pcrf = PCRF(4)
        pcrf.spill(1, [(0, 0), (0, 1)])
        pcrf.spill(2, [(0, 2), (0, 3)])
        pcrf.restore(1)
        result = pcrf.spill(3, [(1, 0), (1, 1)])
        assert set(result.slots) == {0, 1}

    def test_overflow_raises(self):
        pcrf = PCRF(4)
        with pytest.raises(MemoryError):
            pcrf.spill(1, [(0, r) for r in range(5)])

    def test_duplicate_cta_rejected(self):
        pcrf = PCRF(8)
        pcrf.spill(1, [(0, 0)])
        with pytest.raises(KeyError):
            pcrf.spill(1, [(0, 1)])

    def test_restore_unknown_rejected(self):
        with pytest.raises(KeyError):
            PCRF(8).restore(3)

    def test_empty_spill_rejected(self):
        with pytest.raises(ValueError):
            PCRF(8).spill(1, [])


class TestFreeSpaceMonitor:
    def test_occupancy_flags(self):
        pcrf = PCRF(4)
        pcrf.spill(1, [(0, 0), (0, 1)])
        assert pcrf.occupancy_flags() == (True, True, False, False)

    def test_eviction_credit(self):
        """Paper V-E: free entries include the restored CTA's slots."""
        pcrf = PCRF(4)
        pcrf.spill(1, [(0, 0), (0, 1), (0, 2)])
        assert pcrf.free_entries == 1
        assert pcrf.free_entries_with_eviction_of(1) == 4
        assert pcrf.free_entries_with_eviction_of(None) == 1
        assert pcrf.free_entries_with_eviction_of(99) == 1

    def test_peek_chain_does_not_free(self):
        pcrf = PCRF(8)
        result = pcrf.spill(1, [(0, 0), (0, 1)])
        assert pcrf.peek_chain(1) == result.slots
        assert pcrf.used_entries == 2
