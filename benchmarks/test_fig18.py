"""Bench: regenerate paper Fig 18 (SM-count scaling + overhead)."""

from conftest import regenerate
from repro.experiments import fig18_sm_scaling


def test_fig18_sm_scaling(benchmark, runner):
    result = regenerate(benchmark, fig18_sm_scaling.run, runner)
    s = result.summary
    # Shape: FineReg stays ahead of the baseline at every SM count, and
    # matching its TLP with raw resources costs megabytes of SRAM (paper:
    # 2.4-19.1 MB) versus FineReg's tens of kilobytes.
    for sms in (16, 32, 64, 128):
        assert s[f"finereg_speedup_{sms}sm"] > 1.0
        assert s[f"overhead_mb_{sms}sm"] > 0.5
    assert s["overhead_mb_128sm"] > s["overhead_mb_16sm"]
