"""Tests for the campaign span tracer (repro.obs.spans) and the
clock-confinement lint rules that keep wall-clock reads out of it."""

import re
from pathlib import Path

from repro.obs.spans import (RECONCILE_SLACK_S, Span, SpanRecorder,
                             phase_rows, reconcile_spans)


class FakeClock:
    """Injected monotonic clock the tests advance by hand."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> float:
        self.t += dt
        return self.t


class TestSpanRecorder:
    def test_nested_spans_record_parent_links_and_durations(self):
        clock = FakeClock()
        rec = SpanRecorder(now=clock)
        with rec.span("outer", "campaign") as outer:
            clock.advance(1.0)
            with rec.span("inner") as inner:
                clock.advance(2.0)
            clock.advance(0.5)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.duration == 2.0
        assert outer.duration == 3.5
        assert outer.closed and inner.closed

    def test_start_does_not_push_but_scope_does(self):
        rec = SpanRecorder(now=FakeClock())
        top = rec.start("top", "campaign")
        assert rec.current_id() is None, "start() must not change nesting"
        with rec.scope(top):
            assert rec.current_id() == top.span_id
            child = rec.start("child")
            assert child.parent_id == top.span_id
        assert rec.current_id() is None

    def test_push_pop_for_block_free_lifetimes(self):
        rec = SpanRecorder(now=FakeClock())
        campaign = rec.start("campaign", "campaign")
        rec.push(campaign)
        assert rec.current_id() == campaign.span_id
        rec.pop(campaign)
        assert rec.current_id() is None
        # Popping a span that is not on top is a no-op, not an error.
        rec.pop(campaign)

    def test_finish_records_attrs(self):
        clock = FakeClock()
        rec = SpanRecorder(now=clock)
        span = rec.start("x")
        clock.advance(1.25)
        rec.finish(span, runs=3)
        assert span.attrs == {"runs": 3}
        assert span.as_dict()["attrs"] == {"runs": 3}

    def test_as_dict_round_trips_ids_and_duration(self):
        clock = FakeClock(10.0)
        rec = SpanRecorder(now=clock)
        with rec.span("a", "phase"):
            clock.advance(0.5)
        d = rec.as_dicts()[0]
        assert d["name"] == "a"
        assert d["kind"] == "phase"
        assert d["t_start"] == 10.0
        assert d["dur_s"] == 0.5

    def test_merge_remaps_ids_and_reparents_roots(self):
        worker_clock = FakeClock(100.0)
        worker = SpanRecorder(now=worker_clock)
        with worker.span("engine-run"):
            worker_clock.advance(2.0)
            with worker.span("serialize"):
                worker_clock.advance(0.25)

        parent = SpanRecorder(now=FakeClock())
        request = parent.start("req:KM/baseline", "request")
        # Consume ids so worker-local ids would collide without remapping.
        parent.start("decoy")
        merged = parent.merge(worker.as_dicts(), parent_id=request.span_id,
                              worker=42)
        assert len(merged) == 2
        engine, serialize = merged
        assert engine.parent_id == request.span_id, "root re-parents"
        assert serialize.parent_id == engine.span_id, "child link remapped"
        assert all(s.worker == 42 for s in merged)
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids)), "merged ids must not collide"
        assert engine.duration == 2.25
        assert serialize.duration == 0.25


class TestReconcileSpans:
    def _tree(self):
        """campaign(4s) > request(3s) > two phases (1s + 1.5s)."""
        clock = FakeClock()
        rec = SpanRecorder(now=clock)
        with rec.span("campaign", "campaign") as campaign:
            with rec.span("req:KM/baseline", "request") as request:
                with rec.span("workload-build"):
                    clock.advance(1.0)
                with rec.span("engine-run"):
                    clock.advance(1.5)
                clock.advance(0.5)
            clock.advance(1.0)
        return rec, campaign, request

    def test_clean_tree_reconciles(self):
        rec, __, __ = self._tree()
        assert reconcile_spans(rec.spans) == []

    def test_unclosed_span_is_flagged(self):
        rec = SpanRecorder(now=FakeClock())
        rec.start("dangling")
        problems = reconcile_spans(rec.spans)
        assert any("never closed" in p for p in problems)

    def test_missing_parent_is_flagged(self):
        span = Span(0, parent_id=99, name="orphan", kind="phase",
                    t_start=0.0)
        span.t_end = 1.0
        problems = reconcile_spans([span])
        assert any("missing parent" in p for p in problems)

    def test_unknown_kind_is_flagged(self):
        span = Span(0, None, "weird", "banana", 0.0)
        span.t_end = 1.0
        assert any("unknown kind" in p for p in reconcile_spans([span]))

    def test_phase_children_exceeding_parent_is_flagged(self):
        rec, __, request = self._tree()
        # Stretch one worker phase past its parent request span.
        phase = next(s for s in rec.spans if s.name == "engine-run")
        phase.t_end = phase.t_start + request.duration + 1.0
        problems = reconcile_spans(rec.spans)
        assert any("sum to" in p and "req:KM/baseline" in p
                   for p in problems)

    def test_request_children_are_exempt_from_the_sum_rule(self):
        """Concurrent pool requests overlap: their durations may sum past
        the campaign wall clock without being an error."""
        clock = FakeClock()
        rec = SpanRecorder(now=clock)
        campaign = rec.start("campaign", "campaign")
        reqs = [rec.start(f"req:{i}", "request",
                          parent=campaign.span_id) for i in range(4)]
        clock.advance(1.0)
        for req in reqs:
            rec.finish(req)  # four concurrent 1s requests in a 1s campaign
        rec.finish(campaign)
        assert reconcile_spans(rec.spans) == []

    def test_slack_absorbs_float_jitter(self):
        clock = FakeClock()
        rec = SpanRecorder(now=clock)
        parent = rec.start("p", "campaign")
        child = rec.start("c", parent=parent.span_id)
        clock.advance(1.0)
        rec.finish(child)
        rec.finish(parent)
        # Nudge the child just inside the slack window.
        child.t_end += RECONCILE_SLACK_S / 2
        assert reconcile_spans(rec.spans) == []
        child.t_end += RECONCILE_SLACK_S
        assert reconcile_spans(rec.spans) != []


class TestPhaseRows:
    def test_rows_name_parent_and_skip_worker_phases(self):
        clock = FakeClock()
        rec = SpanRecorder(now=clock)
        with rec.span("campaign", "campaign"):
            with rec.span("plan"):
                clock.advance(1.0)
            with rec.span("req:KM/baseline", "request"):
                with rec.span("engine-run"):
                    clock.advance(5.0)
        rows = phase_rows(rec.spans)
        assert ("campaign", "plan", 1.0) in rows
        assert all(name != "engine-run" for __, name, __ in rows), \
            "request-parented worker phases stay out of the breakdown"

    def test_unclosed_and_non_phase_spans_are_skipped(self):
        rec = SpanRecorder(now=FakeClock())
        rec.start("open-phase")
        rec.start("req", "request")
        assert phase_rows(rec.spans) == []


class TestClockConfinement:
    """The obs tier reads wall clocks only through repro.obs.clock, and
    the determinism lint enforces that confinement."""

    def test_shipped_clock_module_is_lint_clean_but_tags_are_real(self):
        from repro.analyze.lint import lint_file, lint_source
        import repro.obs.clock as obs_clock

        path = Path(obs_clock.__file__)
        assert not lint_file(path), "shipped obs/clock.py must lint clean"
        stripped = re.sub(r"\s*# lint: allow\[wall-clock\][^\n]*", "",
                          path.read_text())
        findings = lint_source(stripped, path="clock_stripped.py")
        assert any(f.tag == "wall-clock" for f in findings), (
            "stripping the allow tags must expose the clock reads")

    def test_no_other_obs_module_reads_the_clock_directly(self):
        from repro.analyze.lint import lint_file
        import repro.obs as obs_pkg

        pkg_dir = Path(obs_pkg.__file__).parent
        for module in sorted(pkg_dir.glob("*.py")):
            if module.name == "clock.py":
                continue
            findings = lint_file(module)
            clocky = [f for f in findings
                      if f.tag in ("wall-clock", "wall-clock-allowance")]
            assert not clocky, (
                f"{module.name} must route timing through repro.obs.clock: "
                f"{[f.message for f in clocky]}")

    def test_allowance_audit_rejects_suppressed_clocks_elsewhere(self):
        """An allow[wall-clock] tag outside the audited clock modules is
        itself a lint error: ad-hoc exemptions must not accrete."""
        from repro.analyze.lint import lint_source

        src = ("import time\n"
               "def f():\n"
               "    return time.time()  # lint: allow[wall-clock]\n")
        findings = lint_source(src, path="src/repro/experiments/foo.py")
        assert [f.tag for f in findings] == ["wall-clock-allowance"]

    def test_allowance_audit_exempts_the_audited_modules(self):
        from repro.analyze.lint import lint_source

        src = ("import time\n"
               "def f():\n"
               "    return time.time()  # lint: allow[wall-clock]\n")
        for exempt in ("src/repro/obs/clock.py",
                       "src/repro/telemetry/selfprof.py",
                       "tools/profile_sim.py"):
            assert lint_source(src, path=exempt) == [], exempt

    def test_untagged_clock_read_still_fails_as_wall_clock(self):
        from repro.analyze.lint import lint_source

        src = "import time\nx = time.time()\n"
        findings = lint_source(src, path="src/repro/experiments/foo.py")
        assert any(f.tag == "wall-clock" for f in findings)
