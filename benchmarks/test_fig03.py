"""Bench: regenerate paper Fig 3 (per-CTA register/shmem overhead)."""

from conftest import regenerate
from repro.experiments import fig03_cta_overhead


def test_fig03_cta_overhead(benchmark, runner):
    result = regenerate(benchmark, fig03_cta_overhead.run, runner)
    # Paper: 6-37.3 KB per extra CTA, registers ~88.7% of the total.
    assert 2.0 <= result.summary["min_overhead_kb"] <= 10.0
    assert 25.0 <= result.summary["max_overhead_kb"] <= 40.0
    assert result.summary["register_share"] >= 0.75
