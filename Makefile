# FineReg reproduction — common developer targets.

PYTHON ?= python
SCALE ?= small

.PHONY: install test bench bench-fast report calibrate analyze \
	analyze-effects typecheck trace obs-report clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || \
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-out:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	REPRO_SCALE=$(SCALE) $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-fast:
	REPRO_SCALE=tiny $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-out:
	REPRO_SCALE=$(SCALE) $(PYTHON) -m pytest benchmarks/ --benchmark-only \
		2>&1 | tee bench_output.txt

report:
	$(PYTHON) -m repro.experiments.run_all --scale $(SCALE) --out results

# Static kernel verifier + determinism lint + effects audit + self-tests
# (docs/ANALYZE.md).
analyze:
	PYTHONPATH=src $(PYTHON) -m repro analyze --suite --lint --effects \
		--self-test

# Engine-equivalence effects audit alone, strict (warnings fail too).
analyze-effects:
	PYTHONPATH=src $(PYTHON) -m repro analyze --effects --strict

# mypy strict-equivalent on repro.core / repro.isa / repro.analyze plus the
# engine seam (repro.sim.backend / repro.sim.launch); config: pyproject.toml.
# Skips gracefully when mypy is not installed, so offline checkouts can
# still run the rest of the targets.
typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy src/repro/core src/repro/isa src/repro/analyze \
			src/repro/sim/backend.py src/repro/sim/launch.py; \
	else \
		echo "typecheck: mypy not installed, skipping (pip install mypy)"; \
	fi

# Traced tiny simulation with Perfetto + timeline export (docs/TELEMETRY.md).
# Override APP / POLICY to trace something else: make trace APP=LB POLICY=baseline
APP ?= KM
POLICY ?= finereg
trace:
	PYTHONPATH=src $(PYTHON) -m repro trace $(APP) --policy $(POLICY) \
		--scale tiny \
		--perfetto results/trace-$(APP)-$(POLICY).json \
		--timeline results/timeline-$(APP)-$(POLICY).json

# Observed campaign: JSONL event log + live progress, then the log
# summary ("Orchestration observability" in docs/TELEMETRY.md).
obs-report:
	REPRO_OBS=1 PYTHONPATH=src $(PYTHON) -m repro.experiments.run_all \
		--scale $(SCALE) --out results --progress
	PYTHONPATH=src $(PYTHON) -m repro obs summarize results/obs.jsonl

calibrate:
	$(PYTHON) tools/calibrate.py $(SCALE)

clean:
	rm -rf .pytest_cache .benchmarks results/REPORT.md
	find . -name __pycache__ -type d -exec rm -rf {} +
