"""Fig 5: register file usage within 1,000-instruction windows.

The paper measures, per benchmark, the fraction of statically allocated
registers actually accessed inside 1,000-instruction windows: 55.3% on
average, with worst cases under 15% for MC, NW, LI, SR, and TA.  The
simulator samples this when ``sample_usage`` is enabled.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ALL_APPS, ExperimentResult
from repro.experiments.parallel import RunRequest
from repro.experiments.runner import ExperimentRunner


def run(runner: ExperimentRunner,
        apps: Sequence[str] = ALL_APPS) -> ExperimentResult:
    rows = []
    averages = []
    for app in apps:
        result = runner.run(app, "baseline", sample_usage=True)
        bounds = result.window_usage_bounds
        if bounds is None:
            rows.append([app, 0.0, 0.0, 0.0])
            continue
        low, mean, high = bounds
        averages.append(mean)
        rows.append([app, low, mean, high])

    summary = {
        "mean_usage": sum(averages) / len(averages) if averages else 0.0,
        "min_lower_bound": min((row[1] for row in rows), default=0.0),
    }
    return ExperimentResult(
        experiment="fig05",
        title="Register usage per 1,000-instruction window (min/avg/max)",
        headers=["app", "min", "avg", "max"],
        rows=rows,
        summary=summary,
        notes=("Paper: 55.3% of allocated registers touched on average; "
               "worst cases below 15% for MC, NW, LI, SR, TA."),
    )


def plan(runner: ExperimentRunner,
         apps: Sequence[str] = ALL_APPS):
    return [RunRequest.make(app, "baseline", sample_usage=True)
            for app in apps]


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
