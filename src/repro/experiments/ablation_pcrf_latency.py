"""Ablation: PCRF access latency and context-switch cost.

Paper V-E claims CTA-switching latency "is effectively hidden by executing
other active warps".  This sweep stresses that claim: scale the PCRF access
latency (the 4-cycle tag+register pipeline) and watch when the hiding
breaks down.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.experiments.common import ExperimentResult
from repro.experiments.parallel import RunRequest
from repro.experiments.report import geomean
from repro.experiments.runner import ExperimentRunner

LATENCIES = (4, 16, 64, 128)
DEFAULT_APPS = ("KM", "LB", "SR")


def run(runner: ExperimentRunner,
        apps: Sequence[str] = DEFAULT_APPS,
        latencies: Sequence[int] = LATENCIES) -> ExperimentResult:
    rows = []
    summary = {}
    for latency in latencies:
        config = dataclasses.replace(runner.base_config,
                                     pcrf_access_latency=latency)
        speedups = []
        for app in apps:
            base = runner.run(app, "baseline")
            fine = runner.run(app, "finereg", config=config)
            speedups.append(fine.ipc / base.ipc)
        speedup = geomean(speedups)
        rows.append([latency, speedup])
        summary[f"speedup_lat_{latency}"] = speedup
    return ExperimentResult(
        experiment="ablation_pcrf_latency",
        title="FineReg speedup vs PCRF access latency",
        headers=["pcrf_latency", "finereg_speedup"],
        rows=rows,
        summary=summary,
        notes=("Paper V-E: switching latency is hidden by other active "
               "warps; speedup should degrade gracefully, not collapse, "
               "as the PCRF pipeline slows."),
    )


def plan(runner: ExperimentRunner,
         apps: Sequence[str] = DEFAULT_APPS,
         latencies: Sequence[int] = LATENCIES):
    requests = [RunRequest.make(app, "baseline") for app in apps]
    for latency in latencies:
        config = dataclasses.replace(runner.base_config,
                                     pcrf_access_latency=latency)
        requests += [RunRequest.make(app, "finereg", config=config)
                     for app in apps]
    return requests


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
