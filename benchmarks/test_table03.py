"""Bench: regenerate paper Table III (CTA time-to-complete-stall)."""

from conftest import regenerate
from repro.experiments import table03_stall_time


def test_table03_stall_clustering(benchmark, runner):
    result = regenerate(benchmark, table03_stall_time.run, runner)
    # Every app's CTAs must reach a complete stall (the premise of CTA
    # switching), within a few thousand cycles.
    assert result.summary["apps_with_stalls"] == 18
    assert result.summary["max_cycles"] <= 5000
