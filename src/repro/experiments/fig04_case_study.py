"""Fig 4: Convolution Separable (CS) case study.

Four configurations: Baseline, Full RF (launch past the scheduling limit
until the register file fills -- Virtual Thread-like), Full RF + DRAM
(additionally park CTAs in off-chip memory -- Zorua-like), and Ideal
(unbounded scheduling resources and on-chip memory).  The paper finds
Full RF gains 21.3%, Full RF + DRAM only 3.5% more, while Ideal remains far
above -- the motivation gap FineReg targets.
"""

from __future__ import annotations

from repro.experiments.common import (
    REG_DRAM_LIMITS,
    ExperimentResult,
    best_reg_dram,
)
from repro.experiments.parallel import RunRequest
from repro.experiments.runner import ExperimentRunner

APP = "CS"

#: The Ideal configuration is the performance envelope over resource
#: scalings: in this substrate blindly unbounded concurrency eventually
#: thrashes the caches, so "unlimited scheduling resources and memory"
#: means the best achievable point, not the largest configuration.
IDEAL_SCALES = (2.0, 4.0, 8.0)


def run(runner: ExperimentRunner, app: str = APP) -> ExperimentResult:
    base = runner.run(app, "baseline")
    full_rf = runner.run(app, "virtual_thread")
    full_rf_dram = best_reg_dram(runner, app)
    ideal = base
    for factor in IDEAL_SCALES:
        config = runner.base_config \
            .with_scheduling_scale(factor).with_memory_scale(factor)
        candidate = runner.run(app, "baseline", config=config)
        if candidate.ipc > ideal.ipc:
            ideal = candidate

    rows = []
    for label, result in (
            ("Baseline", base),
            ("Full RF", full_rf),
            ("Full RF + DRAM", full_rf_dram),
            ("Ideal", ideal)):
        rows.append([
            label,
            result.ipc / base.ipc,
            result.avg_active_threads_per_sm,
            result.avg_resident_ctas_per_sm,
        ])

    return ExperimentResult(
        experiment="fig04",
        title=f"{app} case study: normalized performance and active threads",
        headers=["config", "norm_perf", "active_threads_per_sm",
                 "resident_ctas_per_sm"],
        rows=rows,
        summary={
            "full_rf_speedup": full_rf.ipc / base.ipc,
            "full_rf_dram_speedup": full_rf_dram.ipc / base.ipc,
            "ideal_speedup": ideal.ipc / base.ipc,
        },
        notes=("Paper: Full RF +21.3% over baseline, Full RF+DRAM only +3.5% "
               "more despite 2x the CTAs; Ideal far above both."),
    )


def plan(runner: ExperimentRunner, app: str = APP):
    """Statically known run-set (the Ideal envelope scan is included)."""
    requests = [RunRequest.make(app, "baseline"),
                RunRequest.make(app, "virtual_thread")]
    requests += [RunRequest.make(app, "reg_dram", dram_pending_limit=limit)
                 for limit in REG_DRAM_LIMITS]
    for factor in IDEAL_SCALES:
        config = runner.base_config \
            .with_scheduling_scale(factor).with_memory_scale(factor)
        requests.append(RunRequest.make(app, "baseline", config=config))
    return requests


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
