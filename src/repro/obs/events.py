"""Structured JSONL event log for campaign runs.

One :class:`EventLog` per campaign: events accumulate in memory (for
in-process consumers like the REPORT.md breakdown and tests) and, when a
path is given, stream to disk one JSON object per line, flushed per event
so ``repro obs tail`` can watch a live campaign.

Timestamps come from the injected ``now`` callable (default: the audited
:mod:`repro.obs.clock`); this module never reads the host clock itself.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.obs import clock
from repro.obs.schema import OBS_SCHEMA_VERSION, check_obs_event, \
    check_obs_log_text


class ObsLogError(ValueError):
    """A log file failed schema validation; ``problems`` names the lines."""

    def __init__(self, path: str, problems: List[str]) -> None:
        self.path = path
        self.problems = problems
        preview = "; ".join(problems[:3])
        super().__init__(f"{path}: invalid obs log ({len(problems)} "
                         f"problems: {preview} ...)")


class EventLog:
    """Append-only campaign event log (in-memory + optional JSONL file)."""

    def __init__(self, path: Optional[str] = None,
                 now: Optional[Callable[[], float]] = None) -> None:
        self.path = Path(path) if path else None
        self.events: List[Dict] = []
        self._now = now if now is not None else clock.monotonic
        self._fh = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "w", encoding="utf-8")

    def emit(self, ev: str, **fields: object) -> Dict:
        event: Dict[str, object] = {"v": OBS_SCHEMA_VERSION,
                                    "t": round(self._now(), 6), "ev": ev}
        event.update(fields)
        self.events.append(event)
        if self._fh is not None:
            self._fh.write(json.dumps(event, separators=(",", ":")) + "\n")
            self._fh.flush()
        return event

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
def load_log(path: str) -> List[Dict]:
    """Parse and schema-validate a JSONL log; raises :class:`ObsLogError`.

    Validation-first by design: every downstream consumer (summarize, the
    Perfetto exporter, CI) goes through here, so a malformed log fails
    with named lines instead of corrupting a report.
    """
    text = Path(path).read_text(encoding="utf-8")
    problems = check_obs_log_text(text)
    if problems:
        raise ObsLogError(str(path), problems)
    events: List[Dict] = []
    for line in text.splitlines():
        if line.strip():
            events.append(json.loads(line))
    return events


def events_of(events: List[Dict], ev: str) -> List[Dict]:
    """The sub-list of one event type, in log order."""
    return [event for event in events if event.get("ev") == ev]


# re-exported for convenience of log readers
__all__ = ["EventLog", "ObsLogError", "load_log", "events_of",
           "check_obs_event", "OBS_SCHEMA_VERSION"]
