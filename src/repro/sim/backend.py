"""Engine backend selection: ``reference`` / ``fused`` / ``vectorized`` /
``compiled``.

Every backend is a pure performance transformation of the same simulation
-- the dense per-cycle oracle (``REPRO_DENSE_STEP=1``) remains the ground
truth and ``tests/test_engine_differential.py`` pins all of them to it
byte-for-byte.  The seam only decides *which* observably-identical driver
executes a run:

* ``reference`` — the event-driven engine stepping every SM through the
  unfused ``StreamingMultiprocessor.step`` path.  Slowest, but every hook
  surface (sanitizer wrappers, telemetry, tracers, issue hooks) works.
* ``fused`` — the event-driven engine with the per-SM fused fast step
  (``_step_fast``) for SMs that pass ``fast_step_eligible()``; ineligible
  SMs transparently fall back to the reference step.  This is the PR-5
  behaviour and the toolchain-free default.
* ``vectorized`` — decoupled per-SM runners with numpy-precomputed
  structure-of-arrays trace tables (:mod:`repro.sim.vectorized`).  Run-level
  eligibility is conservative (inert policy, hook-free SMs); ineligible
  runs degrade to ``fused`` automatically, so selecting ``vectorized`` is
  always safe when numpy is importable.
* ``compiled`` — the vectorized runners' issue loop lowered into the
  ``repro.sim._ckernel`` C extension (:mod:`repro.sim.compiled`), built
  best-effort at install time.  Eligibility narrows the vectorized gate
  further; ineligible runs degrade to ``vectorized`` (then ``fused``), so
  selecting ``compiled`` is always safe when the extension is importable.

Selection order: an explicit ``engine=`` argument to ``GPU.run`` wins, then
the ``REPRO_ENGINE`` environment variable, then ``auto`` (compiled when the
extension is importable, else vectorized when numpy is, else fused).
``REPRO_DENSE_STEP=1`` overrides everything -- the oracle is not a backend,
it is the spec.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

#: Environment variable consulted when no explicit engine is passed.
ENGINE_ENV = "REPRO_ENGINE"

#: Every accepted ``REPRO_ENGINE`` value (``auto`` resolves at run time).
ENGINE_NAMES: Tuple[str, ...] = ("auto", "reference", "fused", "vectorized",
                                 "compiled")


class EngineUnavailableError(RuntimeError):
    """An explicitly requested backend cannot run in this environment.

    Raised when ``vectorized`` is requested without numpy, or ``compiled``
    without the built ``repro.sim._ckernel`` extension.  ``auto`` never
    raises; it degrades down the chain (compiled -> vectorized -> fused).
    """


_NUMPY_AVAILABLE: Optional[bool] = None
_COMPILED_AVAILABLE: Optional[bool] = None


def numpy_available() -> bool:
    """True when the vectorized backend's numpy dependency is importable."""
    global _NUMPY_AVAILABLE
    if _NUMPY_AVAILABLE is None:
        try:
            import numpy  # noqa: F401
            _NUMPY_AVAILABLE = True
        except ImportError:  # pragma: no cover - numpy ships in the image
            _NUMPY_AVAILABLE = False
    return _NUMPY_AVAILABLE


def compiled_available() -> bool:
    """True when the ``repro.sim._ckernel`` C extension is importable.

    The extension is built best-effort at install time (a missing C
    toolchain skips it without failing the install), so absence is a
    supported steady state, not an error.
    """
    global _COMPILED_AVAILABLE
    if _COMPILED_AVAILABLE is None:
        try:
            import repro.sim._ckernel  # noqa: F401
            _COMPILED_AVAILABLE = True
        except ImportError:
            _COMPILED_AVAILABLE = False
    return _COMPILED_AVAILABLE


def parse_engine(value: Optional[str]) -> str:
    """Normalize a requested engine name (``None``/empty -> ``auto``).

    Unknown names fail loudly: a typo in ``REPRO_ENGINE`` silently running
    the wrong backend would invalidate a benchmark, so it is a ValueError.
    """
    if not value:
        return "auto"
    name = value.strip().lower()
    if name not in ENGINE_NAMES:
        raise ValueError(
            f"unknown engine {value!r}; expected one of {ENGINE_NAMES}")
    return name


def select_backend(engine: Optional[str] = None) -> str:
    """Resolve the backend one run will use: the explicit argument, then
    ``REPRO_ENGINE``, then ``auto`` resolution.

    Returns one of ``reference`` / ``fused`` / ``vectorized`` /
    ``compiled``.  ``auto`` picks the fastest importable backend
    (``compiled`` -> ``vectorized`` -> ``fused``); an *explicit* request
    for an unavailable backend raises :class:`EngineUnavailableError`
    instead of silently degrading.
    """
    name = parse_engine(engine if engine is not None
                        else os.environ.get(ENGINE_ENV))
    if name == "auto":
        if compiled_available():
            return "compiled"
        return "vectorized" if numpy_available() else "fused"
    if name == "vectorized" and not numpy_available():
        raise EngineUnavailableError(
            "REPRO_ENGINE=vectorized requires numpy, which is not "
            "importable in this environment; install numpy or use "
            "REPRO_ENGINE=auto (degrades to the fused backend)")
    if name == "compiled" and not compiled_available():
        raise EngineUnavailableError(
            "REPRO_ENGINE=compiled requires the repro.sim._ckernel C "
            "extension, which is not importable in this environment; "
            "build it (pip install -e . with a C toolchain, or python "
            "setup.py build_ext --inplace) or use REPRO_ENGINE=auto "
            "(degrades to vectorized/fused)")
    return name
