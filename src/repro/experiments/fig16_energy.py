"""Fig 16: normalized energy consumption with component breakdown.

The paper reports FineReg using 21.3% less energy than the baseline on
average (and 12.3%/8.6%/1.5% less than Virtual Thread, Reg+DRAM, and
VT+RegMutex): performance improvements turn into leakage and DRAM savings
that outweigh the added switching activity.
"""

from __future__ import annotations

from typing import Sequence

from repro.energy.model import EnergyModel
from repro.experiments.common import (
    ALL_APPS,
    ExperimentResult,
    main_config_results,
    plan_main_configs,
)
from repro.experiments.report import geomean
from repro.experiments.runner import ExperimentRunner

CONFIGS = ("baseline", "virtual_thread", "reg_dram", "vt_regmutex",
           "finereg")
COMPONENTS = ("DRAM_Dyn", "RF_Dyn", "Others_Dyn", "Leakage", "FineReg",
              "CTA_Switching")

#: Full run-set for up-front pool dispatch (shared with Figs 12/13).
plan = plan_main_configs


def run(runner: ExperimentRunner,
        apps: Sequence[str] = ALL_APPS) -> ExperimentResult:
    model = EnergyModel()
    ratios = {config: [] for config in CONFIGS if config != "baseline"}
    breakdown_totals = {config: {c: 0.0 for c in COMPONENTS}
                        for config in CONFIGS}
    rows = []
    for app in apps:
        results = main_config_results(runner, app)
        base_energy = model.evaluate(results["baseline"])
        row = [app]
        for config in CONFIGS:
            breakdown = model.evaluate(results[config])
            normalized = breakdown.normalized_to(base_energy)
            for component, value in normalized.items():
                breakdown_totals[config][component] += value
            ratio = breakdown.total / base_energy.total
            if config != "baseline":
                ratios[config].append(ratio)
            row.append(ratio)
        rows.append(row)

    napps = len(apps)
    summary = {f"{config}_energy_ratio": geomean(values)
               for config, values in ratios.items()}
    for component in COMPONENTS:
        summary[f"finereg_{component.lower()}"] = (
            breakdown_totals["finereg"][component] / napps)
        summary[f"baseline_{component.lower()}"] = (
            breakdown_totals["baseline"][component] / napps)
    return ExperimentResult(
        experiment="fig16",
        title="Normalized energy per configuration (1.0 = baseline)",
        headers=["app"] + list(CONFIGS),
        rows=rows,
        summary=summary,
        notes=("Paper: FineReg -21.3% energy vs baseline; less than VT/"
               "Reg+DRAM/VT+RegMutex by 12.3%/8.6%/1.5%. Components follow "
               "Fig 16's legend."),
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
