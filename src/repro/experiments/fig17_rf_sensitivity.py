"""Fig 17: sensitivity to the ACRF/PCRF split.

The total register file stays 256 KB while the split varies from 64/192 to
192/64.  The paper finds the balanced 128/128 split best: 160/96 loses 5.4%
(less TLP), and 64/192 loses 12.9% (too few active CTAs, constant
switching) despite maximizing the resident CTA count.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ALL_APPS, ExperimentResult
from repro.experiments.parallel import RunRequest
from repro.experiments.report import geomean
from repro.experiments.runner import ExperimentRunner

#: (ACRF KB, PCRF KB) splits of the 256 KB register file.
SPLITS = ((64, 192), (96, 160), (128, 128), (160, 96), (192, 64))


def run(runner: ExperimentRunner,
        apps: Sequence[str] = ALL_APPS) -> ExperimentResult:
    speedups = {split: [] for split in SPLITS}
    cta_ratios = {split: [] for split in SPLITS}
    for app in apps:
        base = runner.run(app, "baseline")
        for split in SPLITS:
            acrf_kb, pcrf_kb = split
            config = runner.base_config.with_rf_split(acrf_kb, pcrf_kb)
            result = runner.run(app, "finereg", config=config)
            speedups[split].append(result.ipc / base.ipc)
            cta_ratios[split].append(result.avg_resident_ctas_per_sm
                                     / base.avg_resident_ctas_per_sm)

    mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
    rows = []
    for split in SPLITS:
        rows.append([
            f"{split[0]}/{split[1]}",
            geomean(speedups[split]),
            mean(cta_ratios[split]),
        ])
    by_speedup = {f"{s[0]}/{s[1]}": geomean(speedups[s]) for s in SPLITS}
    best = max(by_speedup, key=by_speedup.get)
    summary = {f"speedup_{key.replace('/', '_')}": value
               for key, value in by_speedup.items()}
    summary["best_is_128_128"] = 1.0 if best == "128/128" else 0.0
    return ExperimentResult(
        experiment="fig17",
        title="FineReg sensitivity to the ACRF/PCRF split (total 256 KB)",
        headers=["acrf/pcrf_kb", "geomean_speedup", "cta_ratio"],
        rows=rows,
        summary=summary,
        notes=("Paper: 128/128 is best; 160/96 -5.4%, 64/192 -12.9% despite "
               "the highest CTA count."),
    )


def plan(runner: ExperimentRunner,
         apps: Sequence[str] = ALL_APPS):
    requests = []
    for app in apps:
        requests.append(RunRequest.make(app, "baseline"))
        for acrf_kb, pcrf_kb in SPLITS:
            config = runner.base_config.with_rf_split(acrf_kb, pcrf_kb)
            requests.append(RunRequest.make(app, "finereg", config=config))
    return requests


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
