"""Bench: regenerate paper Fig 15 (off-chip traffic comparison)."""

from conftest import regenerate
from repro.experiments import fig15_memory_traffic


def test_fig15_memory_traffic(benchmark, runner):
    result = regenerate(benchmark, fig15_memory_traffic.run, runner)
    s = result.summary
    # Shape: Reg+DRAM's context switching costs by far the most extra
    # traffic; FineReg's bit vectors cost almost nothing beyond VT.
    assert s["reg_dram_traffic_ratio"] \
        >= s["finereg_traffic_ratio"] + 0.05
    assert s["finereg_traffic_ratio"] <= s["virtual_thread_traffic_ratio"] \
        + 0.05
    # On-chip schemes stay within a few percent of the baseline (paper <1%).
    assert 0.80 <= s["virtual_thread_traffic_ratio"] <= 1.10
    assert 0.80 <= s["finereg_traffic_ratio"] <= 1.10
