"""Tests for the RMU's live bit-vector cache (paper V-C, Fig 10)."""

import pytest

from repro.core.bitvector import LiveBitVector
from repro.core.bitvector_cache import BitVectorCache


def vec(*regs):
    return LiveBitVector.from_registers(regs)


class TestStructure:
    def test_default_is_32_entries(self):
        assert BitVectorCache().num_entries == 32

    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            BitVectorCache(12)
        with pytest.raises(ValueError):
            BitVectorCache(0)

    def test_storage_matches_paper(self):
        # 32 entries x 12 bytes = 384 bytes (paper V-F).
        assert BitVectorCache(32).storage_bytes == 384


class TestLookup:
    def test_miss_then_hit(self):
        cache = BitVectorCache()
        assert cache.lookup(0x40) is None
        cache.fill(0x40, vec(1, 2))
        assert cache.lookup(0x40) == vec(1, 2)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_conflicting_pcs_evict(self):
        cache = BitVectorCache(32)
        # Two PCs mapping to the same index conflict (direct-mapped).
        pc_a = 0
        pc_b = None
        for candidate in range(4, 1 << 16, 4):
            if cache._index_of(candidate) == cache._index_of(pc_a):
                pc_b = candidate
                break
        assert pc_b is not None
        cache.fill(pc_a, vec(1))
        cache.fill(pc_b, vec(2))
        assert cache.lookup(pc_a) is None      # evicted
        assert cache.lookup(pc_b) == vec(2)

    def test_contains_does_not_count(self):
        cache = BitVectorCache()
        cache.fill(0x10, vec(3))
        before = cache.stats.accesses
        assert cache.contains(0x10)
        assert not cache.contains(0x20)
        assert cache.stats.accesses == before

    def test_flush(self):
        cache = BitVectorCache()
        cache.fill(0x10, vec(3))
        cache.flush()
        assert not cache.contains(0x10)


class TestStats:
    def test_hit_rate(self):
        cache = BitVectorCache()
        cache.lookup(0x0)            # miss
        cache.fill(0x0, vec(1))
        cache.lookup(0x0)            # hit
        cache.lookup(0x0)            # hit
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_miss_traffic(self):
        cache = BitVectorCache()
        cache.lookup(0x0)
        cache.lookup(0x4)
        # Each miss fetches a 12-byte vector from off-chip memory.
        assert cache.stats.miss_traffic_bytes == 24

    def test_empty_hit_rate_is_zero(self):
        assert BitVectorCache().stats.hit_rate == 0.0
