"""64-bit live-register bit vectors (paper V-A).

The compiler encodes, for each static instruction, which architectural
registers are live at that point as a 64-bit vector -- one bit per possible
per-thread register.  Vectors are stored in a reserved off-device memory area
at kernel launch (12 bytes per static instruction: 4-byte PC + 8-byte vector)
and fetched through the RMU's bit-vector cache at CTA-switch time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

from repro.config import MAX_REGS_PER_THREAD

_FULL_MASK = (1 << MAX_REGS_PER_THREAD) - 1

#: Off-chip bytes one stored bit vector occupies (4-byte PC tag + 64-bit vector).
BITVECTOR_STORAGE_BYTES = 12


@dataclass(frozen=True)
class LiveBitVector:
    """An immutable 64-bit liveness vector."""

    bits: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.bits <= _FULL_MASK:
            raise ValueError("bit vector must fit in 64 bits")

    # ------------------------------------------------------------------
    @classmethod
    def from_registers(cls, registers: Iterable[int]) -> "LiveBitVector":
        bits = 0
        for reg in registers:
            if not 0 <= reg < MAX_REGS_PER_THREAD:
                raise ValueError(f"register R{reg} out of range [0, 64)")
            bits |= 1 << reg
        return cls(bits)

    # ------------------------------------------------------------------
    def is_live(self, reg: int) -> bool:
        if not 0 <= reg < MAX_REGS_PER_THREAD:
            raise ValueError(f"register R{reg} out of range [0, 64)")
        return bool(self.bits >> reg & 1)

    def registers(self) -> Tuple[int, ...]:
        """Live register numbers in ascending order."""
        return tuple(reg for reg in range(MAX_REGS_PER_THREAD)
                     if self.bits >> reg & 1)

    def count(self) -> int:
        """Number of live registers (popcount)."""
        return bin(self.bits).count("1")

    # ------------------------------------------------------------------
    # Set algebra used by the dataflow solver
    # ------------------------------------------------------------------
    def union(self, other: "LiveBitVector") -> "LiveBitVector":
        return LiveBitVector(self.bits | other.bits)

    def minus(self, other: "LiveBitVector") -> "LiveBitVector":
        return LiveBitVector(self.bits & ~other.bits)

    def intersect(self, other: "LiveBitVector") -> "LiveBitVector":
        return LiveBitVector(self.bits & other.bits)

    def with_register(self, reg: int) -> "LiveBitVector":
        if not 0 <= reg < MAX_REGS_PER_THREAD:
            raise ValueError(f"register R{reg} out of range [0, 64)")
        return LiveBitVector(self.bits | 1 << reg)

    def without_register(self, reg: int) -> "LiveBitVector":
        if not 0 <= reg < MAX_REGS_PER_THREAD:
            raise ValueError(f"register R{reg} out of range [0, 64)")
        return LiveBitVector(self.bits & ~(1 << reg))

    # ------------------------------------------------------------------
    def __or__(self, other: "LiveBitVector") -> "LiveBitVector":
        return self.union(other)

    def __and__(self, other: "LiveBitVector") -> "LiveBitVector":
        return self.intersect(other)

    def __sub__(self, other: "LiveBitVector") -> "LiveBitVector":
        return self.minus(other)

    def __iter__(self) -> Iterator[int]:
        return iter(self.registers())

    def __bool__(self) -> bool:
        return self.bits != 0

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "{" + ", ".join(f"R{r}" for r in self.registers()) + "}"


EMPTY = LiveBitVector(0)
