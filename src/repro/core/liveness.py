"""Compile-time live-register analysis (paper V-A, Figures 7 and 9).

A register is live at a program point if it may be read by a subsequent
instruction before being overwritten -- the classic backward may-liveness
dataflow.  The paper describes the same rule operationally: "a register is
regarded as alive if it is used as the source operand of any following
instructions until the register is used again as a destination".

For a warp stalled at PC ``p`` the registers that must be preserved across a
CTA switch are exactly ``live_in(p)``: the instruction at ``p`` has not issued
yet, so its own sources are included (Fig 7: a warp stalled at 0x0000 keeps
R0 because the instruction at 0x0000 reads it).

The solver iterates to a fixpoint over the CFG, which realizes the paper's
Fig 9 traversal rules: a diverging branch merges liveness from both paths up
to the reconvergence point, and a loop body is effectively visited once since
a second pass adds no new facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.bitvector import BITVECTOR_STORAGE_BYTES, EMPTY, LiveBitVector
from repro.isa.cfg import ControlFlowGraph, EdgeKind


@dataclass(frozen=True)
class LivenessTable:
    """Per-instruction live-in vectors for one kernel CFG.

    ``vectors[i]`` is the live set at the linear instruction index ``i``.
    This is what the launch step writes to the reserved off-chip area, and
    what the RMU's bit-vector cache serves at runtime.
    """

    vectors: Tuple[LiveBitVector, ...]
    num_registers: int

    def live_at_index(self, index: int) -> LiveBitVector:
        return self.vectors[index]

    def live_at_pc(self, pc: int) -> LiveBitVector:
        if pc % 4 or not 0 <= pc // 4 < len(self.vectors):
            raise ValueError(f"invalid pc 0x{pc:04x}")
        return self.vectors[pc // 4]

    def live_count_at_index(self, index: int) -> int:
        return self.vectors[index].count()

    @property
    def num_instructions(self) -> int:
        return len(self.vectors)

    @property
    def storage_bytes(self) -> int:
        """Off-chip bytes consumed by the stored vectors (12 B each, V-F)."""
        return BITVECTOR_STORAGE_BYTES * len(self.vectors)

    def mean_live_fraction(self) -> float:
        """Average live registers / allocated registers across instructions."""
        if not self.vectors or self.num_registers == 0:
            return 0.0
        total = sum(vec.count() for vec in self.vectors)
        return total / (len(self.vectors) * self.num_registers)


class LivenessAnalysis:
    """Backward may-liveness over a frozen structured CFG."""

    def __init__(self, cfg: ControlFlowGraph) -> None:
        if not cfg.frozen:
            raise ValueError("liveness analysis requires a frozen CFG")
        self._cfg = cfg
        self._predecessors = self._build_predecessors()

    def _build_predecessors(self) -> Dict[int, List[int]]:
        preds: Dict[int, List[int]] = {b.block_id: [] for b in self._cfg.blocks}
        for block in self._cfg.blocks:
            for succ in block.successors:
                preds[succ].append(block.block_id)
        return preds

    def run(self, regs_per_thread: int) -> LivenessTable:
        """Solve to a fixpoint and return per-instruction live-in vectors."""
        cfg = self._cfg
        live_in: Dict[int, LiveBitVector] = {
            b.block_id: EMPTY for b in cfg.blocks
        }
        live_out: Dict[int, LiveBitVector] = dict(live_in)

        # Iterate in reverse block order (close to reverse post-order for the
        # structured layouts we generate) until nothing changes.
        changed = True
        while changed:
            changed = False
            for block in reversed(cfg.blocks):
                out_vec = EMPTY
                for succ in block.successors:
                    out_vec = out_vec | live_in[succ]
                in_vec = self._transfer_block(block.block_id, out_vec)
                if out_vec != live_out[block.block_id]:
                    live_out[block.block_id] = out_vec
                    changed = True
                if in_vec != live_in[block.block_id]:
                    live_in[block.block_id] = in_vec
                    changed = True

        vectors: List[LiveBitVector] = [EMPTY] * cfg.num_instructions
        for block in cfg.blocks:
            live = live_out[block.block_id]
            first = cfg.first_index(block.block_id)
            for offset in range(len(block.instructions) - 1, -1, -1):
                instr = block.instructions[offset]
                if instr.dest is not None:
                    live = live.without_register(instr.dest)
                live = live | LiveBitVector.from_registers(instr.srcs)
                vectors[first + offset] = live
        return LivenessTable(vectors=tuple(vectors),
                             num_registers=regs_per_thread)

    def _transfer_block(self, block_id: int,
                        live_out: LiveBitVector) -> LiveBitVector:
        """Apply the block's instructions backward to a live-out set."""
        live = live_out
        for instr in reversed(self._cfg.blocks[block_id].instructions):
            if instr.dest is not None:
                live = live.without_register(instr.dest)
            live = live | LiveBitVector.from_registers(instr.srcs)
        return live

    # ------------------------------------------------------------------
    # Fig 9 traversal-cost accounting (blocks visited per analysis point)
    # ------------------------------------------------------------------
    def blocks_visited_from(self, block_id: int) -> int:
        """Number of distinct blocks a Fig-9 style traversal visits starting
        at ``block_id`` (each block at most once, per the paper's loop rule).
        """
        seen = set()
        stack = [block_id]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            block = self._cfg.blocks[current]
            if block.edge_kind is not EdgeKind.EXIT:
                stack.extend(block.successors)
        return len(seen)
