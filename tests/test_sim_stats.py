"""Tests for the statistics containers."""

import pytest

from repro.sim.stats import SMStats, SimResult


def make_result(**overrides):
    defaults = dict(
        policy="baseline", workload="unit", cycles=1000, instructions=2000,
        num_sms=2, avg_active_ctas_per_sm=4.0, avg_pending_ctas_per_sm=2.0,
        max_resident_ctas=8, avg_active_threads_per_sm=128.0,
        dram_traffic_bytes=4096, dram_traffic_by_class={"demand_read": 4096},
        l1_hit_rate=0.5, l2_hit_rate=0.5, idle_cycles=100,
        rf_depletion_cycles=50, srp_stall_cycles=0, cta_switch_events=3,
        rf_reads=10, rf_writes=5, pcrf_reads=2, pcrf_writes=2,
        shmem_accesses=1, l1_accesses=7, l2_accesses=3,
        mean_stall_latency=120.0, window_usage_bounds=(0.2, 0.5, 0.8),
        bitvector_hit_rate=0.95, completed_ctas=16, timed_out=False,
    )
    defaults.update(overrides)
    return SimResult(**defaults)


class TestSMStats:
    def test_accumulate_weights_by_dt(self):
        stats = SMStats()
        stats.accumulate(10, active_ctas=4, pending_ctas=2, active_warps=16)
        stats.accumulate(5, active_ctas=2, pending_ctas=0, active_warps=8)
        assert stats.active_cta_cycles == 50
        assert stats.pending_cta_cycles == 20
        assert stats.active_warp_cycles == 200

    def test_max_resident_tracked(self):
        stats = SMStats()
        stats.accumulate(1, 4, 2, 16)
        stats.accumulate(1, 3, 1, 12)
        assert stats.max_resident_ctas == 6


class TestSimResult:
    def test_ipc(self):
        result = make_result()
        assert result.ipc == 2.0
        assert result.ipc_per_sm == 1.0

    def test_resident_is_active_plus_pending(self):
        assert make_result().avg_resident_ctas_per_sm == 6.0

    def test_rf_depletion_fraction(self):
        assert make_result().rf_depletion_fraction == pytest.approx(0.05)

    def test_speedup_over(self):
        fast = make_result(instructions=4000)
        slow = make_result()
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_speedup_over_zero_baseline(self):
        broken = make_result(instructions=0)
        with pytest.raises(ZeroDivisionError):
            make_result().speedup_over(broken)

    def test_traffic_ratio(self):
        doubled = make_result(dram_traffic_bytes=8192)
        assert doubled.traffic_ratio_over(make_result()) == 2.0

    def test_traffic_ratio_zero_baseline(self):
        zero = make_result(dram_traffic_bytes=0)
        assert make_result().traffic_ratio_over(zero) == 1.0

    def test_zero_cycle_ipc(self):
        # cycles is clamped to >=1 by the GPU, but the property is safe.
        assert make_result(cycles=0).ipc == 0.0
