"""One-call telemetry attachment and artifact assembly.

``attach_telemetry(gpu)`` builds a :class:`TelemetrySession` and installs
its :class:`~repro.telemetry.registry.MetricsRegistry` into every publisher
(SMs, warp schedulers, the memory hierarchy, and -- via duck typing -- any
policy-owned ACRF/PCRF/RMU).  The GPU's main loop drives the session through
``on_advance``/``on_run_end``; everything else is passive.

Detaching is never needed: a fresh GPU starts with ``telemetry = None``
everywhere, which is also the zero-overhead state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.timeline import DEFAULT_MAX_SAMPLES, TimelineSampler

#: Bump when the telemetry artifact layout changes.
TELEMETRY_SCHEMA_VERSION = 1

#: Policy attributes the registry is duck-typed onto when present.
_POLICY_PUBLISHERS = ("acrf", "pcrf", "rmu")


@dataclass(frozen=True)
class TelemetryConfig:
    """What to collect.  Defaults are the full set at cycle resolution."""

    metrics: bool = True
    timeline: bool = True
    timeline_interval: int = 1
    max_samples: int = DEFAULT_MAX_SAMPLES


class TelemetrySession:
    """All telemetry state of one simulation run."""

    def __init__(self, gpu, config: Optional[TelemetryConfig] = None) -> None:
        self.gpu = gpu
        self.config = config if config is not None else TelemetryConfig()
        self.registry = MetricsRegistry() if self.config.metrics else None
        self.timeline = (
            TimelineSampler(gpu, interval=self.config.timeline_interval,
                            max_samples=self.config.max_samples)
            if self.config.timeline else None
        )
        self.end_cycle: Optional[int] = None

    # ------------------------------------------------------------------
    # GPU main-loop hooks
    # ------------------------------------------------------------------
    def on_advance(self, now: int, dt: int) -> None:
        if self.timeline is not None:
            self.timeline.on_advance(now, dt)

    def on_run_end(self, now: int) -> None:
        self.end_cycle = now

    # ------------------------------------------------------------------
    def as_payload(self) -> Dict:
        """JSON-ready artifact written next to the run's result."""
        return {
            "schema": TELEMETRY_SCHEMA_VERSION,
            "end_cycle": self.end_cycle,
            "metrics": (self.registry.snapshot()
                        if self.registry is not None else None),
            "timeline": (self.timeline.as_payload()
                         if self.timeline is not None else None),
            "kernels": self._kernel_summary(),
        }

    def _kernel_summary(self) -> Optional[Dict]:
        """Per-launch attribution for concurrent runs (None single-kernel).

        Summed over all SMs straight from the live ``_kstats`` so the
        payload is available even when the caller discards the SimResult.
        """
        gpu = self.gpu
        if len(gpu.launches) <= 1:
            return None
        out: Dict[str, Dict] = {}
        for launch in gpu.launches:
            totals = {"instructions": 0, "cta_launches": 0,
                      "cta_switch_events": 0, "stall_events": 0,
                      "stall_cycles": 0, "active_cta_cycles": 0.0,
                      "active_warp_cycles": 0.0}
            for sm in gpu.sms:
                stats = sm._kstats[launch.index]
                for key in totals:
                    totals[key] += getattr(stats, key)
            totals["stream"] = launch.stream
            totals["priority"] = launch.priority
            totals["kernel"] = launch.kernel.name
            totals["grid_ctas"] = launch.grid_ctas
            out[launch.label] = totals
        return out


def attach_telemetry(gpu, config: Optional[TelemetryConfig] = None
                     ) -> TelemetrySession:
    """Create a session and install its registry into every publisher."""
    session = TelemetrySession(gpu, config)
    gpu.telemetry = session
    registry = session.registry
    if registry is not None:
        gpu.hierarchy.telemetry = registry
        for sm in gpu.sms:
            sm.telemetry = registry
            for scheduler in sm.schedulers:
                scheduler.telemetry = registry
            for attr in _POLICY_PUBLISHERS:
                component = getattr(sm.policy, attr, None)
                if component is not None:
                    component.telemetry = registry
    return session
