"""Policy interface and shared machinery.

A :class:`RegisterFilePolicy` is instantiated per SM and owns that SM's
register-capacity bookkeeping.  The SM calls into it at well-defined points:

* ``fill(now)``       -- launch CTAs while resources allow (start / after retire)
* ``on_cta_stalled``  -- an active CTA's warps are all blocked long-term
* ``on_cta_finished`` -- a CTA retired; its registers are free
* ``on_tick``         -- top of every SM step (must be O(1) in the common case)
* ``on_issue``        -- optional per-instruction hook (only RegMutex uses it)

``PendingTracker`` implements the cheap-readiness machinery every switching
policy needs: a pending CTA's warps do not execute, so the cycle at which its
stall clears is known exactly at switch-out time and can sit in a heap.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, TYPE_CHECKING

from repro.sim.cta import CTASim, CTAState
from repro.sim.tracing import EventKind
from repro.sim.warp import FOREVER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.sm import StreamingMultiprocessor


class PendingTracker:
    """Readiness heap over pending CTAs."""

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._ready: List[CTASim] = []

    def add(self, cta: CTASim, ready_time: int) -> None:
        heapq.heappush(self._heap, (ready_time, cta.cta_id, cta))

    def drain_ready(self, now: int) -> None:
        """Move CTAs whose stall has cleared into the ready list."""
        heap = self._heap
        while heap and heap[0][0] <= now:
            __, __, cta = heapq.heappop(heap)
            if cta.state is CTAState.PENDING:
                self._ready.append(cta)
            elif (cta.state is CTAState.TRANSIT
                  and cta.transit_target is CTAState.PENDING):
                # Still on its way out; revisit once the switch settles.
                heapq.heappush(heap, (cta.transit_until + 1, cta.cta_id, cta))
            # CTAs that left PENDING by other means are simply dropped.

    def ready_ctas(self, now: int) -> List[CTASim]:
        self.drain_ready(now)
        self._ready = [c for c in self._ready if c.state is CTAState.PENDING]
        return self._ready

    def pop_ready(self, now: int, cta: Optional[CTASim] = None
                  ) -> Optional[CTASim]:
        """Take one ready CTA (oldest first, or a specific one)."""
        ready = self.ready_ctas(now)
        if not ready:
            return None
        if cta is None:
            cta = min(ready, key=lambda c: c.cta_id)
        ready.remove(cta)
        return cta

    def has_ready(self, now: int) -> bool:
        return bool(self.ready_ctas(now))

    def next_ready_time(self) -> int:
        return self._heap[0][0] if self._heap else FOREVER

    def __len__(self) -> int:
        return len(self._heap) + len(self._ready)


class RegisterFilePolicy:
    """Base policy = shared launch loop + no-op switching (subclasses extend).

    ``rf_capacity_entries``/``rf_used_entries`` are in warp-registers.
    """

    name = "abstract"
    needs_issue_hook = False

    def __init__(self, sm: "StreamingMultiprocessor") -> None:
        self.sm = sm
        self.config = sm.config
        self.kernel = sm.kernel
        self.rf_capacity_entries = sm.config.rf_warp_registers
        self.rf_used_entries = 0
        self._cta_regs = self.kernel.warp_registers_per_cta
        # Set when the policy wanted to switch but storage was depleted;
        # consumed by classify_idle for Fig 14 attribution.
        self._blocked_on_rf = False
        self._next_idle_check = 0

    # ------------------------------------------------------------------
    # Launching
    # ------------------------------------------------------------------
    def can_launch(self) -> bool:
        """May one more CTA start right now?"""
        return (self.sm.scheduler_slots_free()
                and self.sm.shmem_free(self.kernel.shmem_per_cta)
                and self.register_space_for_launch())

    def register_space_for_launch(self) -> bool:
        return self.rf_used_entries + self._cta_regs <= self.rf_capacity_entries

    # ------------------------------------------------------------------
    # Concurrent-kernel support.  Single-kernel runs never call these
    # (the arbiter is None), so the classic code paths are untouched.
    # ------------------------------------------------------------------
    def _launch_regs(self, launch) -> int:
        """Register footprint of one CTA of ``launch`` under this policy."""
        return launch.cta_regs

    def register_space_for(self, regs: int) -> bool:
        return self.rf_used_entries + regs <= self.rf_capacity_entries

    def can_launch_for(self, launch) -> bool:
        """Per-launch :meth:`can_launch` against the shared SM budgets."""
        return (self.sm.scheduler_slots_free(launch)
                and self.sm.shmem_free(launch.shmem_per_cta)
                and self.register_space_for(self._launch_regs(launch)))

    def _pop_ready_swap(self, tracker: PendingTracker, outgoing: CTASim,
                        now: int) -> Optional[CTASim]:
        """A ready pending CTA that may legally replace ``outgoing``."""
        if self.sm.gpu.arbiter is None:
            if not self.sm.swap_slots_free(outgoing):
                return None
            return tracker.pop_ready(now)
        ready = tracker.ready_ctas(now)
        for cand in sorted(ready, key=lambda c: c.cta_id):
            if self.sm.swap_slots_free(outgoing, cand.launch):
                return tracker.pop_ready(now, cand)
        return None

    def _pop_ready_fitting(self, tracker: PendingTracker, now: int
                           ) -> Optional[CTASim]:
        """A ready pending CTA whose footprint fits free scheduler slots."""
        if self.sm.gpu.arbiter is None:
            if not self.sm.scheduler_slots_free():
                return None
            return tracker.pop_ready(now)
        ready = tracker.ready_ctas(now)
        for cand in sorted(ready, key=lambda c: c.cta_id):
            if self.sm.scheduler_slots_free(cand.launch):
                return tracker.pop_ready(now, cand)
        return None

    def _new_cta_feasible(self) -> bool:
        """Could a brand-new CTA of *some* launch start (given registers
        and shared memory; scheduler slots are the caller's concern)?"""
        arbiter = self.sm.gpu.arbiter
        if arbiter is None:
            return (self.sm.gpu.ctas_remaining > 0
                    and self.register_space_for_launch()
                    and self.sm.shmem_free(self.kernel.shmem_per_cta))
        return arbiter.next_fitting(
            lambda l: (self.register_space_for(self._launch_regs(l))
                       and self.sm.shmem_free(l.shmem_per_cta))) is not None

    def fill(self, now: int) -> int:
        """Launch CTAs until a limit binds; returns how many started."""
        launched = 0
        arbiter = self.sm.gpu.arbiter
        if arbiter is None:
            while self.can_launch():
                cta = self.sm.launch_new_cta(now)
                if cta is None:
                    break
                self.rf_used_entries += self._cta_regs
                self.note_launched(cta, now)
                launched += 1
            return launched
        while True:
            launch = arbiter.next_fitting(self.can_launch_for)
            if launch is None:
                break
            cta = self.sm.launch_new_cta(now, launch)
            if cta is None:
                break
            self.rf_used_entries += self._launch_regs(launch)
            self.note_launched(cta, now)
            arbiter.note_dispatched(launch)
            launched += 1
        return launched

    def note_launched(self, cta: CTASim, now: int) -> None:
        """Subclass hook (status monitors etc.)."""

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def on_cta_stalled(self, cta: CTASim, now: int) -> None:
        """Baseline: stalls are simply waited out."""

    def on_cta_finished(self, cta: CTASim, now: int) -> None:
        self.rf_used_entries -= self._launch_regs(cta.launch)
        self.fill(now)

    def on_tick(self, now: int) -> None:
        """Called at the top of every SM step; default does nothing."""

    def on_idle(self, now: int) -> None:
        """Called when this SM issued nothing this cycle.

        This is where switching policies act: every CTA that could issue has
        already done so, so any fully stalled CTA can be parked with zero
        opportunity cost.  A short cooldown bounds the rescan cost while one
        SM idles and another keeps the global clock ticking cycle by cycle.
        """
        if now < self._next_idle_check:
            return
        if not self._act_on_idle(now):
            self._next_idle_check = now + 16

    def _act_on_idle(self, now: int) -> bool:
        """Subclass hook: try to switch CTAs; return True if anything moved."""
        return False

    def stalled_active_ctas(self, now: int):
        """Active CTAs that are completely stalled and worth parking."""
        threshold = self.config.min_park_cycles
        out = []
        for cta in self.sm.active_ctas:
            if cta.fully_stalled(now, min_remaining=1) and \
                    cta.earliest_resume(now) - now >= threshold:
                out.append(cta)
        return out

    def on_issue(self, warp, static_index: int, now: int) -> bool:
        """Per-instruction hook (RegMutex); True = may issue."""
        return True

    # ------------------------------------------------------------------
    # Idle attribution & wake-up support
    # ------------------------------------------------------------------
    def classify_idle(self, dt: int) -> str:
        """Attribute an idle period: 'rf', 'srp', or 'other' (Fig 14)."""
        if self._blocked_on_rf:
            return "rf"
        return "other"

    def _set_rf_blocked(self, blocked: bool, now: int, cta_id: int) -> None:
        """Flip the RF-depletion flag, emitting stall begin/end events on
        transitions when a warp-level tracer is attached."""
        if blocked == self._blocked_on_rf:
            return
        self._blocked_on_rf = blocked
        tracer = self.sm.gpu.warp_tracer
        if tracer is not None:
            kind = (EventKind.RF_STALL_BEGIN if blocked
                    else EventKind.RF_STALL_END)
            tracer.record(now, self.sm.sm_id, kind, cta_id)

    def telemetry_levels(self) -> dict:
        """Register-file occupancy levels for per-cycle timeline sampling.

        Baseline policies expose the unified RF; split-RF policies override
        with ACRF/PCRF series.
        """
        return {
            "rf_free": self.rf_capacity_entries - self.rf_used_entries,
            "rf_used": self.rf_used_entries,
        }

    def next_event(self, now: int) -> int:
        """Earliest cycle a policy-driven event (pending ready) can fire."""
        return FOREVER

    def wake_time(self, now: int) -> int:
        """Event engine: earliest executed cycle ``on_tick`` could act.

        Consulted (after ``on_tick`` already ran at ``now``) only for
        policies that override ``on_tick``; returning ``now + 1`` disables
        skipping.  Must be conservative: between ``now`` and the returned
        cycle, ``on_tick`` has to be an observable no-op given the SM's
        frozen state.
        """
        return FOREVER

    # ------------------------------------------------------------------
    # Result extras
    # ------------------------------------------------------------------
    def extras(self) -> dict:
        """Policy-specific numbers merged into the SimResult assembly."""
        return {}
