"""Workload characterization: measure a synthetic benchmark's properties.

Used to validate that generated kernels actually exhibit the envelope their
spec promises (instruction mix, divergence cost, liveness profile, memory
locality), and as a user-facing analysis tool for custom kernels.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from repro.isa.cfg import EdgeKind
from repro.isa.instructions import AccessPattern, Opcode, is_long_latency
from repro.workloads.generator import WorkloadInstance


@dataclass(frozen=True)
class WorkloadProfile:
    """Static + trace-sampled properties of one workload instance."""

    name: str
    static_instructions: int
    dynamic_instructions_per_warp: float
    opcode_mix: Dict[str, float]
    global_memory_fraction: float
    pattern_mix: Dict[str, float]
    divergence_overhead: float       # extra instrs from serialized arms
    mean_live_fraction: float
    max_live_count: int
    loop_blocks: int
    barrier_count: int

    def summary_lines(self):
        yield f"workload {self.name}:"
        yield (f"  {self.static_instructions} static instructions, "
               f"{self.dynamic_instructions_per_warp:.0f} dynamic per warp")
        mix = ", ".join(f"{op}={frac:.0%}"
                        for op, frac in sorted(self.opcode_mix.items()))
        yield f"  opcode mix: {mix}"
        pats = ", ".join(f"{p}={frac:.0%}"
                         for p, frac in sorted(self.pattern_mix.items()))
        yield f"  global-memory patterns: {pats or 'none'}"
        yield (f"  divergence overhead: {self.divergence_overhead:.1%} "
               f"extra dynamic instructions")
        yield (f"  liveness: mean {self.mean_live_fraction:.0%} of the "
               f"allocation, peak {self.max_live_count} registers")


def characterize(instance: WorkloadInstance,
                 sample_ctas: int = 8) -> WorkloadProfile:
    """Profile a workload by sampling per-warp traces."""
    kernel = instance.kernel
    cfg = kernel.cfg
    instructions = cfg.instructions

    opcode_counts: Counter = Counter()
    pattern_counts: Counter = Counter()
    total_dynamic = 0
    warps_sampled = 0
    ctas = min(sample_ctas, kernel.geometry.grid_ctas)
    for cta_id in range(ctas):
        for warp_id in range(kernel.warps_per_cta):
            trace = instance.trace_provider.trace_for(cta_id, warp_id)
            total_dynamic += len(trace)
            warps_sampled += 1
            for index in trace:
                instr = instructions[index]
                opcode_counts[instr.opcode.value] += 1
                if is_long_latency(instr.opcode):
                    pattern_counts[instr.pattern.value] += 1

    dynamic_total = sum(opcode_counts.values())
    global_ops = sum(pattern_counts.values())
    # Divergence overhead: compare against the shortest (uniform) trace.
    min_trace = min(
        len(instance.trace_provider.trace_for(cta_id, warp_id))
        for cta_id in range(ctas)
        for warp_id in range(kernel.warps_per_cta)
    )
    mean_trace = total_dynamic / warps_sampled
    divergence_overhead = mean_trace / min_trace - 1.0 if min_trace else 0.0

    liveness = instance.liveness
    max_live = max(liveness.live_count_at_index(i)
                   for i in range(liveness.num_instructions))

    return WorkloadProfile(
        name=kernel.name,
        static_instructions=cfg.num_instructions,
        dynamic_instructions_per_warp=mean_trace,
        opcode_mix={op: count / dynamic_total
                    for op, count in opcode_counts.items()},
        global_memory_fraction=(
            (opcode_counts.get(Opcode.LDG.value, 0)
             + opcode_counts.get(Opcode.STG.value, 0)) / dynamic_total),
        pattern_mix={p: count / global_ops
                     for p, count in pattern_counts.items()} if global_ops
        else {},
        divergence_overhead=divergence_overhead,
        mean_live_fraction=liveness.mean_live_fraction(),
        max_live_count=max_live,
        loop_blocks=sum(1 for b in cfg.blocks
                        if b.edge_kind is EdgeKind.LOOP_BACK),
        barrier_count=sum(1 for i in instructions
                          if i.opcode is Opcode.BAR),
    )
