"""Implementation of ``python -m repro analyze``.

Modes (combinable; with no mode flags the suite, the lint *and* the
effects audit run):

* positional apps / ``--suite`` — static kernel verifier over Table-II
  workloads
* ``--figure NAME|all`` — verify the distinct kernels of a campaign plan
* ``--lint`` — determinism lint over ``src/repro`` + ``tools/`` (or
  ``--lint-path``)
* ``--effects`` — engine-equivalence effects audit of the fast-path gates
* ``--self-test`` — the broken-kernel verifier self-test plus the
  seeded-fault effects-audit self-test

Exit status is 0 only when no error-severity finding was produced (and,
under ``--strict``, no warning either), which is what the CI gate keys on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.config import SCALES, default_config
from repro.validate.findings import FindingReport
from repro.analyze.effects import audit_effects
from repro.analyze.effects_selftest import run_effects_self_test
from repro.analyze.lint import default_lint_paths, lint_paths
from repro.analyze.selftest import run_self_test
from repro.analyze.verifier import AnalysisReport, verify_requests, verify_suite


def _print_kernel_reports(reports: Sequence[AnalysisReport]) -> None:
    for report in reports:
        errors, warnings = len(report.errors), len(report.warnings)
        status = "FAIL" if errors else ("WARN" if warnings else "PASS")
        print(f"  {status} {report.source:12} "
              f"{errors} error(s), {warnings} warning(s)")
        for finding in report:
            print(f"       {finding.format()}")


def _figure_requests(figure: str, scale_name: str) -> List[object]:
    """Collect the plan of one figure module (or all of them)."""
    import importlib

    from repro.cli import EXPERIMENT_MODULES
    from repro.experiments.runner import ExperimentRunner

    runner = ExperimentRunner(scale=SCALES[scale_name])
    names = sorted(EXPERIMENT_MODULES) if figure == "all" else [figure]
    requests: List[object] = []
    for name in names:
        module = importlib.import_module(
            f"repro.experiments.{EXPERIMENT_MODULES[name]}")
        plan = getattr(module, "plan", None)
        if plan is not None:
            requests.extend(plan(runner))
    return requests


def run_analyze(apps: Sequence[str] = (), suite: bool = False,
                figure: Optional[str] = None, lint: bool = False,
                effects: bool = False, self_test: bool = False,
                lint_roots: Optional[Sequence[str]] = None,
                scale_name: str = "tiny", strict: bool = False,
                as_json: bool = False) -> int:
    run_kernels = suite or bool(apps) or figure is not None
    if not (run_kernels or lint or effects or self_test):
        # bare `repro analyze` checks everything
        run_kernels = lint = effects = True
        suite = not apps

    combined = FindingReport()
    sections: List[Dict[str, object]] = []
    ok = True

    if run_kernels:
        scale = SCALES[scale_name]
        config = default_config(scale)
        reports: List[AnalysisReport] = []
        if figure is not None:
            reports.extend(verify_requests(
                _figure_requests(figure, scale_name), config, scale))
        if suite or apps:
            reports.extend(verify_suite(
                config, scale, abbrevs=[a.upper() for a in apps] or None))
        if not as_json:
            print(f"static kernel verifier: {len(reports)} kernel(s) "
                  f"({scale.name} scale, Table-I limits)")
            _print_kernel_reports(reports)
        for report in reports:
            combined.extend(report.findings)
        sections.append({"kind": "verifier", "kernels": [
            {"source": r.source, "findings": r.to_dicts()} for r in reports]})

    if lint:
        roots = [Path(p) for p in lint_roots] if lint_roots else None
        lint_report = lint_paths(roots)
        if not as_json:
            where = ", ".join(str(p) for p in (roots or default_lint_paths()))
            print(f"determinism lint over {where}: "
                  f"{len(lint_report.errors)} error(s), "
                  f"{len(lint_report.warnings)} warning(s)")
            for finding in lint_report:
                print(f"  {finding.format()}")
        combined.extend(lint_report.findings)
        sections.append({"kind": "lint",
                         "findings": lint_report.to_dicts()})

    if effects:
        effects_report = audit_effects()
        if not as_json:
            infos = (len(effects_report) - len(effects_report.errors)
                     - len(effects_report.warnings))
            print(f"engine-equivalence effects audit: "
                  f"{len(effects_report.errors)} error(s), "
                  f"{len(effects_report.warnings)} warning(s), "
                  f"{infos} advisory")
            for finding in effects_report:
                print(f"  {finding.format()}")
        combined.extend(effects_report.findings)
        sections.append({"kind": "effects",
                         "findings": effects_report.to_dicts()})

    if self_test:
        self_reports = run_self_test()
        missed = [r for r in self_reports if not r.detected]
        if not as_json:
            print(f"verifier self-test: {len(self_reports)} broken kernels")
            for report in self_reports:
                status = "DETECTED" if report.detected else "MISSED  "
                print(f"  {status} {report.case.name} "
                      f"[{report.case.tag}] -- {report.case.description}")
                if not report.detected:
                    detail = report.error or \
                        f"reported tags: {', '.join(report.tags) or 'none'}"
                    print(f"           {detail}")
        ok = ok and not missed
        sections.append({"kind": "self-test", "cases": [
            {"name": r.case.name, "tag": r.case.tag,
             "detected": r.detected, "tags": list(r.tags)}
            for r in self_reports]})

        fault_reports = run_effects_self_test()
        missed_faults = [r for r in fault_reports if not r.detected]
        if not as_json:
            print(f"effects-audit self-test: {len(fault_reports)} "
                  f"seeded faults")
            for report in fault_reports:
                status = "DETECTED" if report.detected else "MISSED  "
                print(f"  {status} {report.case.name} "
                      f"[{report.case.tag}] -- {report.case.description}")
                if not report.detected:
                    detail = report.error or \
                        f"reported tags: {', '.join(report.tags) or 'none'}"
                    print(f"           {detail}")
        ok = ok and not missed_faults
        sections.append({"kind": "effects-self-test", "cases": [
            {"name": r.case.name, "tag": r.case.tag,
             "detected": r.detected, "tags": list(r.tags)}
            for r in fault_reports]})

    ok = ok and not combined.has_errors
    if strict:
        ok = ok and not combined.warnings
    if as_json:
        print(json.dumps({"ok": ok, "sections": sections}, indent=1,
                         sort_keys=True))
    else:
        print("analysis PASSED" if ok else "analysis FAILED")
    return 0 if ok else 1
