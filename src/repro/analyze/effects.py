"""Static engine-equivalence auditor: effect summaries for the fast-path gates.

The fused (``SM._step_fast``) and vectorized (``run_vectorized``) backends
are only sound because hand-maintained gates route every instrumented or
specialised run back to the reference engine: ``fast_step_eligible``,
``policy_inert`` / ``_INERT_POLICY_ATTRS`` and ``run_eligible`` /
``_BYPASSED_SM_ATTRS``.  Nothing used to *verify* those lists — a new hook
read on the reference path, or a new policy override outside the checked
surface, silently diverged the fast paths instead of disabling them.

This module parses the simulator source (no simulation is run) into
per-method **effect summaries** — which attributes a method reads or
writes on which receiver, which methods it calls, and under which guard
conditions — then closes them over the call graph and audits the gates:

* **Fused-path completeness** — every effect of the reference step closure
  (``SM.step`` + scheduler ``issue`` + ``_try_issue``) that the fused
  closure (``fast_step_eligible`` + ``_bind_fast_path`` + ``_step_fast``)
  does not reproduce must be *covered*: mentioned by ``fast_step_eligible``,
  reachable only under a gate-checked guard (e.g. ``_div_forks`` behind
  ``self._wt``), or recorded in the audited fold table (``_FAST_FOLDED``,
  effects the fast step precomputes rather than re-reads).  Anything else
  is a HIGH ``fast-gate-missing`` finding.
* **Vectorized bypass completeness** — SM methods the event engine invokes
  dynamically but the decoupled runners bypass must all appear in
  ``_BYPASSED_SM_ATTRS`` (or be barred by ``fast_step_eligible``'s
  instance-dict scan), so an instance-level wrapper can never be skipped.
* **Policy inertness derivation** — the engine-reachable base-policy
  surface is derived from the source and closed over base/override method
  bodies; every derived name must be checked by ``policy_inert`` (via
  ``_INERT_POLICY_ATTRS`` or its direct attribute reads), every subclass
  that overrides any base hook must override at least one *checked* one,
  and stale or never-overridden entries are reported.
* **Determinism** — the launch/arbiter layer (and every audited module) is
  re-checked for unordered set iteration, and every ``sorted``/``min``/
  ``max`` key lambda must break ties on a unique id attribute.

Severity vocabulary is shared with the rest of the analyze layer
(:mod:`repro.validate.findings`): HIGH = ``Severity.ERROR`` (fails CI),
MEDIUM = ``Severity.WARNING`` (fails ``--strict``), LOW = ``Severity.INFO``.

The summaries are deliberately conservative approximations: guard sets
only shrink coverage (an unguarded read of a bypassed attribute is always
a finding), local aliases (``wt = self._wt``; ``try_issue =
self._try_issue``) are tracked flow-insensitively, and receiver
namespaces are resolved by the simulator's own strict naming conventions
(``self``/``sm``/``sched``/``scheduler``/``gpu``/``policy``).
``audit_effects`` with a seeded fault — see :mod:`repro.analyze
.effects_selftest` — proves each audit actually fires.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Dict, FrozenSet, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple)

from repro.analyze.lint import lint_source
from repro.sim.compiled import _COMPILED_BYPASSED_SM_ATTRS
from repro.sim.vectorized import (_BYPASSED_SM_ATTRS, _INERT_POLICY_ATTRS,
                                  instance_overrides)
from repro.validate.findings import Finding, FindingReport, Severity

__all__ = [
    "EffectsConfig", "default_effects_config", "audit_effects",
    "instance_overrides",
]

HIGH = Severity.ERROR
MEDIUM = Severity.WARNING
LOW = Severity.INFO

_REPRO_ROOT = Path(__file__).resolve().parents[1]

#: Module keys -> repo-relative source files the auditor parses.
SIM_MODULE_FILES = {
    "sim.sm": "sim/sm.py",
    "sim.scheduler": "sim/scheduler.py",
    "sim.gpu": "sim/gpu.py",
    "sim.vectorized": "sim/vectorized.py",
    "sim.compiled": "sim/compiled.py",
    "sim.launch": "sim/launch.py",
}
POLICY_MODULE_FILES = {
    "policies.base": "policies/base.py",
    "policies.baseline": "policies/baseline.py",
    "policies.virtual_thread": "policies/virtual_thread.py",
    "policies.finereg": "policies/finereg.py",
    "policies.finereg_adaptive": "policies/finereg_adaptive.py",
    "policies.reg_dram": "policies/reg_dram.py",
    "policies.regmutex": "policies/regmutex.py",
    "policies.unified_memory": "policies/unified_memory.py",
}
MODULE_FILES = {**SIM_MODULE_FILES, **POLICY_MODULE_FILES}

#: Receiver namespaces with a backing class.
_NAMESPACE_CLASSES = {
    "sm": ("sim.sm", "StreamingMultiprocessor"),
    "sched": ("sim.scheduler", "GTOScheduler"),
    "gpu": ("sim.gpu", "GPU"),
}
#: Local variable names that, by simulator convention, always hold a
#: receiver of the corresponding namespace.
_NS_BY_LOCAL = {
    "sm": "sm", "sched": "sched", "scheduler": "sched",
    "gpu": "gpu", "policy": "policy",
}
#: Attribute names that re-root a receiver chain into the policy namespace
#: (``self._policy.on_tick`` / ``sm.policy.fill``).
_POLICY_LINKS = ("policy", "_policy")
#: ... and into the gpu namespace: the compiled driver's ``_Run`` holds
#: the GPU as ``self.gpu`` (``gpu = self.gpu`` / ``self.gpu._finish_run``).
_GPU_LINKS = ("gpu", "_gpu")

#: Reference-only effects the fused step intentionally *folds* instead of
#: re-reading, with the equivalence argument.  An entry that stops showing
#: up in the reference-minus-fused diff is reported stale (MEDIUM) so the
#: table cannot rot.
_FAST_FOLDED: Dict[Tuple[str, str], str] = {
    ("sm", "_alu_lat"): (
        "issue latency is precomputed per static instruction into "
        "_meta[9] at table-build time; the fused loop reads meta[9]"),
    ("sm", "_sfu_lat"): (
        "issue latency is precomputed per static instruction into "
        "_meta[9] at table-build time; the fused loop reads meta[9]"),
    ("sm", "_shmem_lat"): (
        "issue latency is precomputed per static instruction into "
        "_meta[9] at table-build time; the fused loop reads meta[9]"),
    ("sched", "issue"): (
        "GTOScheduler.issue is inlined into _step_fast verbatim "
        "(greedy-then-oldest scan over the same _ready/_blocked state); "
        "fast_step_eligible pins the scheduler type to GTOScheduler"),
    ("sched", "_note_sleep"): (
        "the telemetry-free sleep computation is folded into the fused "
        "scan-failure path; sched.telemetry is gate-checked"),
}

#: Base-policy attributes the engine reaches but the inertness gate may
#: legitimately skip, with the reason.
_INERT_EXEMPT: Dict[str, str] = {
    "name": "pure label, copied into SimResult.policy; never affects "
            "simulated state",
}

#: Attributes that make a sort key a stable unique-id tie-break.
_UNIQUE_ID_ATTRS = frozenset({
    "cta_id", "sm_id", "index", "warp_id", "global_warp_id",
    "scheduler_id", "index_base", "warp_base", "cta_base",
})


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EffectsConfig:
    """Inputs of one audit run.

    ``sources`` maps module keys (``sim.sm`` ...) to python source text;
    the self-test overrides individual entries to inject faults without
    touching the tree.  The gate tuples default to the live values
    imported from :mod:`repro.sim.vectorized`, so editing the real gate
    is immediately visible to the audit.
    """

    sources: Mapping[str, str]
    paths: Mapping[str, str]
    bypassed_sm_attrs: Tuple[str, ...] = _BYPASSED_SM_ATTRS
    inert_policy_attrs: Tuple[str, ...] = _INERT_POLICY_ATTRS
    compiled_bypassed_sm_attrs: Tuple[str, ...] = _COMPILED_BYPASSED_SM_ATTRS


def default_effects_config() -> EffectsConfig:
    sources = {}
    paths = {}
    for key, rel in MODULE_FILES.items():
        path = _REPRO_ROOT / rel
        sources[key] = path.read_text()
        paths[key] = f"src/repro/{rel}"
    return EffectsConfig(sources=sources, paths=paths)


# ----------------------------------------------------------------------
# Source indexing
# ----------------------------------------------------------------------
class _ClassInfo:
    __slots__ = ("name", "bases", "methods", "attr_names", "lineno")

    def __init__(self, node: ast.ClassDef) -> None:
        self.name = node.name
        self.lineno = node.lineno
        self.bases = [_base_name(b) for b in node.bases]
        self.methods: Dict[str, List[ast.FunctionDef]] = {}
        self.attr_names: Set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods.setdefault(stmt.name, []).append(stmt)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.attr_names.add(target.id)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    self.attr_names.add(stmt.target.id)

    @property
    def body_names(self) -> Set[str]:
        return set(self.methods) | self.attr_names


def _base_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


class _ModuleInfo:
    __slots__ = ("key", "path", "tree", "classes", "functions")

    def __init__(self, key: str, source: str, path: str) -> None:
        self.key = key
        self.path = path
        self.tree = ast.parse(source)
        self.classes: Dict[str, _ClassInfo] = {}
        self.functions: Dict[str, ast.FunctionDef] = {}
        for node in self.tree.body:
            if isinstance(node, ast.ClassDef):
                self.classes[node.name] = _ClassInfo(node)
            elif isinstance(node, ast.FunctionDef):
                self.functions[node.name] = node


class _CodeIndex:
    """All parsed modules plus namespace-aware method lookup."""

    def __init__(self, config: EffectsConfig) -> None:
        self.config = config
        self.modules: Dict[str, _ModuleInfo] = {
            key: _ModuleInfo(key, source, config.paths.get(key, key))
            for key, source in config.sources.items()
        }
        self._summaries: Dict[Tuple[int, Optional[str]], "_EffectMap"] = {}

    def cls(self, ns: str) -> Optional[_ClassInfo]:
        spec = _NAMESPACE_CLASSES.get(ns)
        if spec is None:
            return None
        module = self.modules.get(spec[0])
        return module.classes.get(spec[1]) if module else None

    def lookup(self, ns: str, name: str) -> List[ast.FunctionDef]:
        """Bodies a ``<ns receiver>.<name>`` reference can dispatch to."""
        if ns == "vec":
            module = self.modules.get("sim.vectorized")
            node = module.functions.get(name) if module else None
            return [node] if node is not None else []
        if ns == "comp":
            # The compiled driver: module functions plus the _Run lowering
            # class, whose ``self.<method>`` calls stay in this namespace.
            module = self.modules.get("sim.compiled")
            if module is None:
                return []
            node = module.functions.get(name)
            if node is not None:
                return [node]
            return [fn for info in module.classes.values()
                    for fn in info.methods.get(name, [])]
        info = self.cls(ns)
        if info is None:
            return []
        return info.methods.get(name, [])

    def summarize(self, node: ast.FunctionDef,
                  self_ns: Optional[str]) -> "_EffectMap":
        key = (id(node), self_ns)
        cached = self._summaries.get(key)
        if cached is None:
            visitor = _EffectVisitor(self_ns)
            for stmt in node.body:
                visitor.visit(stmt)
            cached = visitor.items
            self._summaries[key] = cached
        return cached

    def policy_classes(self) -> Dict[str, Tuple[str, _ClassInfo]]:
        """RegisterFilePolicy and every transitive subclass, by name."""
        by_name: Dict[str, Tuple[str, _ClassInfo]] = {}
        for key, module in self.modules.items():
            for cname, info in module.classes.items():
                by_name[cname] = (key, info)
        family = {"RegisterFilePolicy"}
        changed = True
        while changed:
            changed = False
            for cname, (_, info) in by_name.items():
                if cname in family:
                    continue
                if any(base in family for base in info.bases):
                    family.add(cname)
                    changed = True
        return {cname: by_name[cname] for cname in sorted(family)
                if cname in by_name}


#: (ns, name) -> set of guard frozensets (one per distinct access context).
_EffectMap = Dict[Tuple[str, str], Set[FrozenSet[str]]]


class _EffectVisitor(ast.NodeVisitor):
    """Collects one method body's receiver-attribute effects."""

    def __init__(self, self_ns: Optional[str]) -> None:
        self.self_ns = self_ns
        self.items: _EffectMap = {}
        self._guards: List[FrozenSet[str]] = []
        self._aliases: Dict[str, Tuple[str, str]] = {}

    # -- recording ------------------------------------------------------
    def _record(self, ns: str, name: str) -> None:
        if self._guards:
            guards: FrozenSet[str] = frozenset().union(*self._guards)
        else:
            guards = frozenset()
        self.items.setdefault((ns, name), set()).add(guards)

    # -- receiver resolution -------------------------------------------
    def _resolve(self, node: ast.expr) -> Optional[Tuple[str, Optional[str]]]:
        """(namespace, chained-prefix) of an expression used as receiver."""
        if isinstance(node, ast.Name):
            nid = node.id
            if nid == "self":
                return (self.self_ns, None) if self.self_ns else None
            alias = self._aliases.get(nid)
            if alias is not None:
                ns, name = alias
                if name in _POLICY_LINKS and ns in ("sm", "vec", "gpu"):
                    return ("policy", None)
                return (ns, name)
            ns = _NS_BY_LOCAL.get(nid)
            if ns is not None:
                return (ns, None)
            return None
        if isinstance(node, ast.Attribute):
            base = self._resolve(node.value)
            if base is None:
                return None
            ns, prefix = base
            if prefix is not None and "." in prefix:
                return None  # depth cap: record two levels only
            attr = node.attr
            if attr in _POLICY_LINKS and ns in ("sm", "gpu"):
                return ("policy", None)
            if attr in _GPU_LINKS and ns == "comp":
                return ("gpu", None)
            return (ns, attr if prefix is None else f"{prefix}.{attr}")
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "type" and len(node.args) == 1):
            return self._resolve(node.args[0])
        return None

    # -- guard extraction ----------------------------------------------
    def _guard_names(self, test: ast.expr) -> FrozenSet[str]:
        names: Set[str] = set()
        for node in ast.walk(test):
            if isinstance(node, ast.Attribute):
                resolved = self._resolve(node)
                if resolved is not None and resolved[1] is not None:
                    names.add(resolved[1])
            elif isinstance(node, ast.Name):
                alias = self._aliases.get(node.id)
                if alias is not None:
                    names.add(alias[1])
        return frozenset(names)

    # -- visitors -------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        resolved = self._resolve(node)
        if resolved is not None and resolved[1] is not None:
            self._record(resolved[0], resolved[1])
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if (len(node.targets) == 1 and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Attribute)):
            resolved = self._resolve(node.value)
            if resolved is not None and resolved[1] is not None:
                self._aliases[node.targets[0].id] = resolved
        self.generic_visit(node)

    def _guarded(self, guards: FrozenSet[str],
                 nodes: Iterable[ast.AST]) -> None:
        self._guards.append(guards)
        try:
            for child in nodes:
                self.visit(child)
        finally:
            self._guards.pop()

    def visit_If(self, node: ast.If) -> None:
        guards = self._guard_names(node.test)
        # The test's own reads are self-guarding (``if self._wt is not
        # None`` never dereferences the hook), as is the guarded body.
        self._guarded(guards, [node.test])
        self._guarded(guards, node.body)
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        guards = self._guard_names(node.test)
        self._guarded(guards, [node.test, node.body])
        self.visit(node.orelse)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for stmt in node.body:  # nested defs: same receiver conventions
            self.visit(stmt)

    visit_AsyncFunctionDef = visit_FunctionDef


# ----------------------------------------------------------------------
# Interprocedural closure
# ----------------------------------------------------------------------
def _closure(index: _CodeIndex, seeds: Iterable[Tuple[str, str]],
             traversable: FrozenSet[str],
             skip: FrozenSet[Tuple[str, str]] = frozenset()) -> _EffectMap:
    """Effects reachable from ``seeds``, guards inherited through calls.

    Only namespaces in ``traversable`` are expanded; references into any
    other namespace are recorded but treated as opaque.  ``skip`` prunes
    specific methods (e.g. the vectorized fallback's delegation back to
    the event engine, which is not part of the decoupled path).
    """
    result: _EffectMap = {}
    seen: Set[Tuple[str, str, FrozenSet[str]]] = set()
    work: deque = deque(
        (ns, name, frozenset()) for ns, name in seeds)
    while work:
        ns, name, inherited = work.popleft()
        if (ns, name) in skip:
            continue
        for node in index.lookup(ns, name):
            self_ns = None if ns == "vec" else ns
            for (ins, iname), guardsets in index.summarize(
                    node, self_ns).items():
                for guards in guardsets:
                    eff: FrozenSet[str] = guards | inherited
                    result.setdefault((ins, iname), set()).add(eff)
                    if (ins in traversable and "." not in iname
                            and (ins, iname) not in skip
                            and index.lookup(ins, iname)):
                        key = (ins, iname, eff)
                        if key not in seen:
                            seen.add(key)
                            work.append((ins, iname, eff))
    return result


def _gate_mentions(index: _CodeIndex, ns: str, name: str) -> Set[str]:
    """Attribute names and string literals a gate function checks."""
    mentions: Set[str] = set()
    for node in index.lookup(ns, name):
        for child in ast.walk(node):
            if isinstance(child, ast.Attribute):
                mentions.add(child.attr)
            elif (isinstance(child, ast.Constant)
                    and isinstance(child.value, str)
                    and "\n" not in child.value):
                mentions.add(child.value)
    return mentions


def _last(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def _finding(tag: str, severity: Severity, message: str, path: str,
             line: Optional[int] = None) -> Finding:
    return Finding(tag=tag, severity=severity, message=message,
                   source="effects-audit", path=path, line=line)


def _tuple_lineno(index: _CodeIndex, name: str,
                  module_key: str = "sim.vectorized") -> Optional[int]:
    module = index.modules.get(module_key)
    if module is None:
        return None
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.lineno
    return None


# ----------------------------------------------------------------------
# Audit (a): fused fast-step completeness
# ----------------------------------------------------------------------
def _audit_fused(index: _CodeIndex) -> List[Finding]:
    findings: List[Finding] = []
    sm_path = index.modules["sim.sm"].path
    traversable = frozenset({"sm", "sched"})
    reference = _closure(index, [("sm", "step"), ("sm", "next_event")],
                         traversable)
    fused = _closure(index, [("sm", "_step_fast"), ("sm", "next_event_fast"),
                             ("sm", "_bind_fast_path"),
                             ("sm", "fast_step_eligible")], traversable)
    gate = _gate_mentions(index, "sm", "fast_step_eligible")
    folded_used: Set[Tuple[str, str]] = set()

    for (ns, name), guardsets in sorted(reference.items()):
        if ns not in ("sm", "sched") or (ns, name) in fused:
            continue
        if _last(name) in gate:
            continue
        if (ns, name) in _FAST_FOLDED:
            folded_used.add((ns, name))
            continue
        if guardsets and all(
                g and {_last(t) for t in g} & gate for g in guardsets):
            continue  # only reachable when a gate-checked hook is armed
        findings.append(_finding(
            "fast-gate-missing", HIGH,
            f"reference step path touches {ns}.{name} but the fused "
            f"_step_fast neither reproduces it nor gates on it: add it to "
            f"fast_step_eligible's checks (or the audited fold table) "
            f"before trusting the fused backend", sm_path))
    for (ns, name), reason in _FAST_FOLDED.items():
        if (ns, name) not in folded_used:
            findings.append(_finding(
                "fast-gate-fold-stale", MEDIUM,
                f"fold-table entry {ns}.{name} no longer appears in the "
                f"reference-minus-fused effect diff; drop it "
                f"(recorded rationale: {reason})", sm_path))
    return findings


# ----------------------------------------------------------------------
# Audit (b): vectorized bypass completeness
# ----------------------------------------------------------------------
def _audit_bypass(index: _CodeIndex) -> List[Finding]:
    findings: List[Finding] = []
    config = index.config
    vec_path = index.modules["sim.vectorized"].path
    line = _tuple_lineno(index, "_BYPASSED_SM_ATTRS")
    sm_methods = set(index.cls("sm").methods) if index.cls("sm") else set()

    def sm_refs(effects: _EffectMap) -> Set[str]:
        return {name for (ns, name) in effects
                if ns == "sm" and "." not in name and name in sm_methods}

    engine = _closure(index, [("gpu", "_run_event"), ("gpu", "_finish_run")],
                      frozenset({"gpu"}))
    runners = _closure(
        index,
        [("vec", "run_vectorized"), ("vec", "_sm_runner"),
         ("vec", "run_eligible"), ("vec", "policy_inert")],
        frozenset({"gpu", "vec"}),
        skip=frozenset({("gpu", "_run_event"), ("gpu", "_run_dense")}))
    bypassed = sm_refs(engine) - sm_refs(runners)
    covered = set(config.bypassed_sm_attrs) | _gate_mentions(
        index, "sm", "fast_step_eligible")

    for name in sorted(bypassed - covered):
        findings.append(_finding(
            "bypass-gate-missing", HIGH,
            f"the event engine dispatches SM.{name} dynamically but the "
            f"vectorized runners never call it; an instance-level wrapper "
            f"would be silently skipped — add {name!r} to "
            f"_BYPASSED_SM_ATTRS", vec_path, line))
    for name in config.bypassed_sm_attrs:
        if name not in sm_methods:
            findings.append(_finding(
                "bypass-gate-stale", MEDIUM,
                f"_BYPASSED_SM_ATTRS entry {name!r} is not a "
                f"StreamingMultiprocessor method; the instance-dict scan "
                f"checks a name that cannot be shadowed", vec_path, line))
        elif name not in bypassed:
            findings.append(_finding(
                "bypass-gate-candidate", LOW,
                f"_BYPASSED_SM_ATTRS entry {name!r} is no longer derived "
                f"as engine-only; the gate is wider than the runners "
                f"require (narrowing candidate)", vec_path, line))
    return findings


# ----------------------------------------------------------------------
# Audit (b'): compiled-core bypass completeness
# ----------------------------------------------------------------------
def _audit_compiled(index: _CodeIndex) -> List[Finding]:
    """The C core behind ``run_compiled`` reimplements not only the SM
    surface the vectorized runners already bypass but also the hooks the
    runners still dispatched in Python (``_on_long_block``,
    ``_wake_schedulers``).  Every SM method the Python engines reach that
    the compiled driver never calls must appear in
    ``_COMPILED_BYPASSED_SM_ATTRS`` so ``compiled_run_eligible``'s
    instance-dict scan routes instrumented SMs back to a Python backend
    instead of letting the C core silently ignore the override."""
    findings: List[Finding] = []
    config = index.config
    comp = index.modules.get("sim.compiled")
    if comp is None:
        return findings  # compiled driver absent from the audited sources
    line = _tuple_lineno(index, "_COMPILED_EXTRA_SM_ATTRS", "sim.compiled")
    sm_methods = set(index.cls("sm").methods) if index.cls("sm") else set()

    def sm_refs(effects: _EffectMap) -> Set[str]:
        return {name for (ns, name) in effects
                if ns == "sm" and "." not in name and name in sm_methods}

    engine = _closure(index, [("gpu", "_run_event"), ("gpu", "_finish_run")],
                      frozenset({"gpu"}))
    runners = _closure(
        index,
        [("vec", "run_vectorized"), ("vec", "_sm_runner"),
         ("vec", "run_eligible"), ("vec", "policy_inert")],
        frozenset({"gpu", "vec"}),
        skip=frozenset({("gpu", "_run_event"), ("gpu", "_run_dense")}))
    seeds = [("comp", name)
             for name in ("run_compiled", "compiled_run_eligible")]
    seeds += [("comp", mname) for info in comp.classes.values()
              for mname in sorted(info.methods)]
    # compiled_run_eligible delegates to run_eligible/policy_inert by bare
    # name (invisible to receiver resolution); seed them explicitly.
    seeds += [("vec", "run_eligible"), ("vec", "policy_inert")]
    compiled = _closure(
        index, seeds, frozenset({"gpu", "vec", "comp"}),
        skip=frozenset({("gpu", "_run_event"), ("gpu", "_run_dense"),
                        ("vec", "run_vectorized"), ("vec", "_sm_runner"),
                        ("comp", "_fallback")}))
    bypassed = (sm_refs(engine) | sm_refs(runners)) - sm_refs(compiled)
    covered = set(config.compiled_bypassed_sm_attrs) | _gate_mentions(
        index, "sm", "fast_step_eligible")

    for name in sorted(bypassed - covered):
        findings.append(_finding(
            "compiled-gate-missing", HIGH,
            f"the Python engines dispatch SM.{name} dynamically but the "
            f"compiled driver never calls it (the C core would silently "
            f"ignore an instance-level wrapper) — add {name!r} to "
            f"_COMPILED_BYPASSED_SM_ATTRS", comp.path, line))
    for name in config.compiled_bypassed_sm_attrs:
        if name not in sm_methods:
            findings.append(_finding(
                "compiled-gate-stale", MEDIUM,
                f"_COMPILED_BYPASSED_SM_ATTRS entry {name!r} is not a "
                f"StreamingMultiprocessor method; the instance-dict scan "
                f"checks a name that cannot be shadowed", comp.path, line))
        elif name not in bypassed:
            findings.append(_finding(
                "compiled-gate-candidate", LOW,
                f"_COMPILED_BYPASSED_SM_ATTRS entry {name!r} is no longer "
                f"derived as Python-engine-only; the gate is wider than "
                f"the C core requires (narrowing candidate)", comp.path,
                line))
    return findings


# ----------------------------------------------------------------------
# Audit (c): policy inertness derivation
# ----------------------------------------------------------------------
def _policy_ns_names(effects: _EffectMap) -> Set[str]:
    return {name for (ns, name) in effects
            if ns == "policy" and "." not in name}


def _engine_policy_refs(index: _CodeIndex) -> Set[str]:
    """Base-policy attributes referenced anywhere in the engine layer."""
    refs: Set[str] = set()
    for ns in ("sm", "gpu"):
        info = index.cls(ns)
        if info is None:
            continue
        for nodes in info.methods.values():
            for node in nodes:
                refs |= _policy_ns_names(index.summarize(node, ns))
    vec = index.modules.get("sim.vectorized")
    if vec is not None:
        for node in vec.functions.values():
            refs |= _policy_ns_names(index.summarize(node, None))
    return refs


def _audit_inert(index: _CodeIndex) -> List[Finding]:
    findings: List[Finding] = []
    config = index.config
    vec_path = index.modules["sim.vectorized"].path
    line = _tuple_lineno(index, "_INERT_POLICY_ATTRS")
    family = index.policy_classes()
    base = family.get("RegisterFilePolicy")
    if base is None:
        return [_finding("inert-audit-error", HIGH,
                         "RegisterFilePolicy not found in audited sources",
                         vec_path, line)]
    base_names = base[1].body_names

    # Names policy_inert / run_eligible inspect directly on the instance.
    direct: Set[str] = set()
    for fn in ("policy_inert", "run_eligible"):
        for node in index.lookup("vec", fn):
            direct |= _policy_ns_names(index.summarize(node, None))
    covered = set(config.inert_policy_attrs) | direct | set(_INERT_EXEMPT)

    # Required = engine-referenced base surface, closed over the bodies of
    # required-named methods in the base class and every subclass (an
    # override of a required hook may route through further base hooks).
    required = {name for name in _engine_policy_refs(index)
                if name in base_names} - direct - set(_INERT_EXEMPT)
    changed = True
    while changed:
        changed = False
        for cname, (_, info) in family.items():
            for mname, nodes in info.methods.items():
                if mname not in required:
                    continue
                for node in nodes:
                    for name in _policy_ns_names(
                            index.summarize(node, "policy")):
                        if (name in base_names and name not in required
                                and name not in direct
                                and name not in _INERT_EXEMPT):
                            required.add(name)
                            changed = True

    for name in sorted(required - set(config.inert_policy_attrs)):
        findings.append(_finding(
            "inert-gate-missing", HIGH,
            f"base-policy attribute {name!r} is engine-reachable but "
            f"policy_inert does not check it; a subclass overriding only "
            f"{name!r} would wrongly pass the inertness gate — add it to "
            f"_INERT_POLICY_ATTRS", vec_path, line))
    for name in config.inert_policy_attrs:
        if name not in base_names:
            findings.append(_finding(
                "inert-gate-stale", MEDIUM,
                f"_INERT_POLICY_ATTRS entry {name!r} is not defined on "
                f"RegisterFilePolicy; the identity check compares a name "
                f"that cannot be overridden", vec_path, line))

    # Per-subclass: overriding any base hook without touching a checked
    # one means policy_inert cannot tell the subclass from the base.
    overridden_entries: Set[str] = set()
    for cname, (mkey, info) in sorted(family.items()):
        if cname == "RegisterFilePolicy":
            continue
        inherited: Set[str] = set()
        cursor: Optional[str] = cname
        seen_chain: Set[str] = set()
        while cursor and cursor in family and cursor not in seen_chain:
            seen_chain.add(cursor)
            if cursor != "RegisterFilePolicy":
                inherited |= family[cursor][1].body_names
            cursor = next((b for b in family[cursor][1].bases
                           if b in family), None)
        base_overrides = (inherited & base_names) - set(_INERT_EXEMPT)
        checked = base_overrides & covered
        overridden_entries |= base_overrides & set(config.inert_policy_attrs)
        path = index.modules[mkey].path
        if base_overrides and not checked:
            findings.append(_finding(
                "inert-unguarded-policy", HIGH,
                f"{cname} overrides base-policy surface "
                f"({', '.join(sorted(base_overrides))}) but none of it is "
                f"checked by policy_inert; the vectorized backend would "
                f"treat it as the base no-op policy", path,
                info.lineno))
        elif not base_overrides:
            findings.append(_finding(
                "inert-policy-passthrough", LOW,
                f"{cname} overrides no base-policy behaviour and passes "
                f"policy_inert by design", path, info.lineno))
    for name in config.inert_policy_attrs:
        if name in base_names and name not in overridden_entries:
            findings.append(_finding(
                "inert-gate-candidate", LOW,
                f"_INERT_POLICY_ATTRS entry {name!r} is overridden by no "
                f"current subclass; still engine-reachable, but a "
                f"narrowing candidate if the surface shrinks", vec_path,
                line))
    return findings


# ----------------------------------------------------------------------
# Audit (d): launch/arbiter determinism
# ----------------------------------------------------------------------
def _audit_determinism(index: _CodeIndex) -> List[Finding]:
    findings: List[Finding] = []
    for key, module in sorted(index.modules.items()):
        for found in lint_source(index.config.sources[key], module.path):
            if "iteration" in found.tag:
                findings.append(_finding(
                    found.tag, found.severity,
                    f"{found.message} (iteration-order hazard on an "
                    f"audited engine module)", module.path, found.line))
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in ("sorted", "min", "max")):
                continue
            key_lambda = next(
                (kw.value for kw in node.keywords
                 if kw.arg == "key" and isinstance(kw.value, ast.Lambda)),
                None)
            if key_lambda is None:
                continue
            attrs = {child.attr for child in ast.walk(key_lambda)
                     if isinstance(child, ast.Attribute)}
            if not attrs & _UNIQUE_ID_ATTRS:
                findings.append(_finding(
                    "unstable-tiebreak", MEDIUM,
                    f"{node.func.id}() key lambda orders on "
                    f"{sorted(attrs) or 'no attributes'} — no unique-id "
                    f"tie-break (cta_id / sm_id / index ...); equal keys "
                    f"make dispatch order an implementation detail",
                    module.path, node.lineno))
    return findings


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def audit_effects(config: Optional[EffectsConfig] = None) -> FindingReport:
    """Run all engine-equivalence audits; returns the combined report."""
    if config is None:
        config = default_effects_config()
    index = _CodeIndex(config)
    report = FindingReport()
    for finding in (_audit_fused(index) + _audit_bypass(index)
                    + _audit_compiled(index) + _audit_inert(index)
                    + _audit_determinism(index)):
        report.add(finding)
    return report
