"""Tests for workload characterization and the ablation experiments."""

import pytest

from repro.config import TINY
from repro.experiments import (
    ablation_bitvector_cache,
    ablation_pcrf_latency,
    ablation_switch_policy,
)
from repro.workloads.characterize import WorkloadProfile, characterize
from repro.workloads.suite import get_spec


class TestCharacterize:
    def test_profile_fields(self, km_workload):
        profile = characterize(km_workload)
        assert profile.name == "KM"
        assert profile.static_instructions \
            == km_workload.kernel.num_static_instructions
        assert profile.dynamic_instructions_per_warp > 0
        assert abs(sum(profile.opcode_mix.values()) - 1.0) < 1e-9

    def test_memory_fraction_tracks_spec(self, km_workload):
        profile = characterize(km_workload)
        # KM: mem_burst 3 + 1 store over a ~17-instruction iteration.
        assert 0.1 <= profile.global_memory_fraction <= 0.5

    def test_pattern_mix_tracks_spec(self, km_workload):
        profile = characterize(km_workload)
        spec = km_workload.spec
        measured_stream = profile.pattern_mix.get("stream", 0.0)
        # Store damping keeps measured stream below the raw spec fraction,
        # but the ordering across classes must hold.
        assert measured_stream > 0
        assert abs(measured_stream - spec.stream_frac) < 0.35

    def test_divergent_app_has_overhead(self, config):
        from repro.workloads.generator import build_workload
        bf = characterize(build_workload(get_spec("BF"), config, TINY))
        km = characterize(build_workload(get_spec("KM"), config, TINY))
        assert bf.divergence_overhead > km.divergence_overhead

    def test_barrier_count(self, config):
        from repro.workloads.generator import build_workload
        nw = characterize(build_workload(get_spec("NW"), config, TINY))
        assert nw.barrier_count >= 1

    def test_summary_lines_render(self, km_workload):
        lines = list(characterize(km_workload).summary_lines())
        assert any("opcode mix" in line for line in lines)


class TestAblations:
    def test_bitvector_cache_hit_rate_grows_with_size(self, tiny_runner):
        res = ablation_bitvector_cache.run(tiny_runner, apps=("KM",),
                                           sizes=(1, 32))
        assert res.summary["hit_rate_32"] >= res.summary["hit_rate_1"]

    def test_default_cache_size_saturates(self, tiny_runner):
        res = ablation_bitvector_cache.run(tiny_runner, apps=("KM",),
                                           sizes=(32, 64))
        # Paper V-C: 32 entries are enough; doubling buys (almost) nothing.
        assert res.summary["hit_rate_64"] - res.summary["hit_rate_32"] < 0.05

    def test_switch_policy_ablation(self, tiny_runner):
        res = ablation_switch_policy.run(tiny_runner, apps=("KM",),
                                         thresholds=(40, 640))
        assert "speedup_park_40" in res.summary
        assert "speedup_gto" in res.summary
        assert "speedup_lrr" in res.summary

    def test_pcrf_latency_degrades_gracefully(self, tiny_runner):
        res = ablation_pcrf_latency.run(tiny_runner, apps=("KM",),
                                        latencies=(4, 128))
        fast = res.summary["speedup_lat_4"]
        slow = res.summary["speedup_lat_128"]
        assert slow <= fast + 0.05
        assert slow > 0.7 * fast   # hidden, not collapsed (paper V-E)
