"""Hardware overhead accounting (paper V-F).

Reproduces the paper's storage-overhead arithmetic: the FineReg additions
total about 5.02 KB of SRAM (status monitor, bit-vector cache, PCRF pointer
table, PCRF tags, CTA switching logic), i.e. ~0.38% of a Fermi SM's area.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bitvector import BITVECTOR_STORAGE_BYTES
from repro.core.pcrf import PAPER_TAG_BITS

#: Storage needed by the Virtual-Thread-derived CTA switching logic [45].
CTA_SWITCH_LOGIC_BYTES = int(2.4 * 1024)

#: Fermi SM SRAM baseline used for the area percentage (paper cites ~0.38%
#: for ~5KB; that implies roughly 1.3 MB of SM storage).
FERMI_SM_SRAM_BYTES = int(5.02 * 1024 / 0.0038)


@dataclass(frozen=True)
class HardwareOverhead:
    """Per-structure SRAM cost of a FineReg SM."""

    status_monitor_bytes: float
    bitvector_cache_bytes: int
    pointer_table_bytes: int
    pcrf_tag_bytes: float
    switch_logic_bytes: int

    @property
    def total_bytes(self) -> float:
        return (self.status_monitor_bytes + self.bitvector_cache_bytes
                + self.pointer_table_bytes + self.pcrf_tag_bytes
                + self.switch_logic_bytes)

    @property
    def total_kb(self) -> float:
        return self.total_bytes / 1024

    @property
    def sm_area_fraction(self) -> float:
        """Rough area fraction relative to a Fermi SM's SRAM budget."""
        return self.total_bytes / FERMI_SM_SRAM_BYTES


def finereg_overhead(max_ctas: int = 128, cache_entries: int = 32,
                     pcrf_entries: int = 1024) -> HardwareOverhead:
    """Compute the FineReg SRAM overhead for a given sizing.

    Defaults reproduce the paper's numbers: 2x256-bit status monitor,
    384-byte bit-vector cache, 256-byte pointer table, 2.15 KB of PCRF tags
    (21 bits x 1024 entries) and 2.4 KB of switching logic ~= 5.02 KB.
    """
    status_bits = 2 * 2 * max_ctas            # two 2-bit fields per CTA
    pointer_line_bits = 10 + 6                # PCRF pointer + live count
    return HardwareOverhead(
        status_monitor_bytes=status_bits / 8,
        bitvector_cache_bytes=cache_entries * BITVECTOR_STORAGE_BYTES,
        pointer_table_bytes=max_ctas * pointer_line_bits // 8,
        pcrf_tag_bytes=PAPER_TAG_BITS * pcrf_entries / 8,
        switch_logic_bytes=CTA_SWITCH_LOGIC_BYTES,
    )


def bitvector_memory_bytes(num_static_instructions: int) -> int:
    """Off-chip bytes to store one application's live bit vectors (V-F)."""
    return num_static_instructions * BITVECTOR_STORAGE_BYTES
