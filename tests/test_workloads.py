"""Tests for the workload suite, generator, and trace/address providers."""

import pytest

from repro.config import GPUConfig, SMALL, TINY, default_config
from repro.isa.cfg import EdgeKind
from repro.isa.instructions import AccessPattern, Opcode
from repro.workloads.generator import baseline_resident_ctas, build_workload
from repro.workloads.spec import WorkloadSpec, WorkloadType
from repro.workloads.suite import (
    ALL_SPECS,
    SPEC_BY_ABBREV,
    TYPE_R_SPECS,
    TYPE_S_SPECS,
    get_spec,
)
from repro.workloads.traces import AddressModel, TraceProvider


class TestSuiteComposition:
    def test_eighteen_benchmarks(self):
        assert len(ALL_SPECS) == 18
        assert len(TYPE_S_SPECS) == 9
        assert len(TYPE_R_SPECS) == 9

    def test_table_ii_abbreviations(self):
        expected = {"BF", "BI", "CS", "FD", "KM", "MC", "NW", "ST", "SY2",
                    "AT", "CF", "HS", "LI", "LB", "SG", "SR", "TA", "TR"}
        assert set(SPEC_BY_ABBREV) == expected

    def test_lookup(self):
        assert get_spec("km").abbrev == "KM"
        with pytest.raises(KeyError):
            get_spec("XX")

    def test_unique_seeds(self):
        assert len({spec.seed for spec in ALL_SPECS}) == len(ALL_SPECS)


class TestTypeClassification:
    """Type-S must be scheduler-limited; Type-R register/shmem-limited."""

    @pytest.mark.parametrize("spec", TYPE_S_SPECS,
                             ids=lambda s: s.abbrev)
    def test_type_s_has_register_headroom(self, spec):
        config = GPUConfig()
        sched_limit = min(
            config.max_ctas_per_sm,
            config.max_warps_per_sm // spec.warps_per_cta,
            config.max_threads_per_sm // spec.threads_per_cta,
        )
        rf_limit = config.rf_warp_registers // spec.warp_registers_per_cta
        assert rf_limit >= sched_limit, \
            f"{spec.abbrev}: register file binds before the scheduler"

    @pytest.mark.parametrize("spec", TYPE_R_SPECS,
                             ids=lambda s: s.abbrev)
    def test_type_r_is_memory_bound(self, spec):
        config = GPUConfig()
        sched_limit = min(
            config.max_ctas_per_sm,
            config.max_warps_per_sm // spec.warps_per_cta,
            config.max_threads_per_sm // spec.threads_per_cta,
        )
        rf_limit = config.rf_warp_registers // spec.warp_registers_per_cta
        limits = [rf_limit]
        if spec.shmem_per_cta:
            limits.append(config.shared_memory_bytes // spec.shmem_per_cta)
        assert min(limits) < sched_limit, \
            f"{spec.abbrev}: scheduler binds before registers/shmem"

    def test_fig3_overhead_range(self):
        overheads = [spec.cta_overhead_bytes / 1024 for spec in ALL_SPECS]
        assert min(overheads) >= 2.0
        assert max(overheads) <= 40.0
        # Registers dominate the overhead (paper: 88.7%).
        reg = sum(s.register_bytes_per_cta for s in ALL_SPECS)
        total = sum(s.cta_overhead_bytes for s in ALL_SPECS)
        assert reg / total > 0.75


class TestSpecValidation:
    def test_bad_threads(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", abbrev="X", wtype=WorkloadType.TYPE_S,
                         threads_per_cta=100, regs_per_thread=8)

    def test_bad_locality_mix(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", abbrev="X", wtype=WorkloadType.TYPE_S,
                         threads_per_cta=64, regs_per_thread=8,
                         stream_frac=0.8, reuse_frac=0.5)

    def test_divergence_requires_branch_region(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", abbrev="X", wtype=WorkloadType.TYPE_S,
                         threads_per_cta=64, regs_per_thread=8,
                         divergence_prob=0.2, branch_region=False)


class TestGenerator:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.abbrev)
    def test_every_spec_builds(self, spec, config):
        instance = build_workload(spec, config, TINY)
        kernel = instance.kernel
        assert kernel.cfg.frozen
        assert kernel.regs_per_thread == spec.regs_per_thread
        assert kernel.num_static_instructions <= 600  # paper V-F bound
        assert kernel.geometry.grid_ctas >= 2

    def test_barrier_only_outside_branch_arms(self, config):
        for spec in ALL_SPECS:
            if not spec.has_barrier:
                continue
            instance = build_workload(spec, config, TINY)
            for block in instance.kernel.cfg.blocks:
                has_bar = any(i.opcode is Opcode.BAR for i in block)
                if has_bar:
                    # Barrier blocks must be on the main path (loop-back or
                    # fallthrough), never inside a divergent arm.
                    assert block.edge_kind in (EdgeKind.LOOP_BACK,
                                               EdgeKind.FALLTHROUGH,
                                               EdgeKind.EXIT)

    def test_liveness_tracks_live_fraction(self, config):
        """Low-live specs must produce lower live fractions than high-live
        ones (Fig 5's spread)."""
        low = build_workload(get_spec("LI"), config, TINY)
        high = build_workload(get_spec("FD"), config, TINY)
        assert low.liveness.mean_live_fraction() \
            < high.liveness.mean_live_fraction()

    def test_baseline_resident(self, config):
        spec = get_spec("LB")  # 4 warps x 48 regs = 192 entries
        assert baseline_resident_ctas(spec, config) == 2048 // 192

    def test_grid_scales_with_sms(self):
        spec = get_spec("KM")
        one = build_workload(spec, GPUConfig().with_num_sms(1), TINY)
        two = build_workload(spec, GPUConfig().with_num_sms(2), TINY)
        assert two.kernel.geometry.grid_ctas \
            == 2 * one.kernel.geometry.grid_ctas


class TestTraceProvider:
    def test_deterministic(self, km_workload):
        provider = km_workload.trace_provider
        assert provider.trace_for(3, 1) == provider.trace_for(3, 1)

    def test_trips_are_cta_uniform(self, km_workload):
        provider = km_workload.trace_provider
        assert provider.trips_for_cta(5) == provider.trips_for_cta(5)
        # Different CTAs may differ (seeded jitter) but stay near the mean.
        trips = [list(provider.trips_for_cta(c).values())[0]
                 for c in range(20)]
        spec = km_workload.spec
        mean = sum(trips) / len(trips)
        assert 0.5 * spec.loop_trips * TINY.trace_scale <= mean \
            <= 1.5 * spec.loop_trips * TINY.trace_scale

    def test_trace_indices_valid(self, km_workload):
        trace = km_workload.trace_provider.trace_for(0, 0)
        n = km_workload.kernel.num_static_instructions
        assert all(0 <= idx < n for idx in trace)
        # Ends with the EXIT instruction.
        last = km_workload.kernel.cfg.instructions[trace[-1]]
        assert last.opcode is Opcode.EXIT

    def test_divergent_traces_longer_on_average(self, config):
        spec = get_spec("BF")  # divergent branch region
        instance = build_workload(spec, config, TINY)
        cfg = instance.kernel.cfg
        branch = next(b for b in cfg.blocks
                      if b.edge_kind is EdgeKind.BRANCH)
        reconv = cfg.reconvergence_block(branch.block_id)
        assert reconv is not None


class TestAddressModel:
    def test_stream_never_repeats(self, km_workload):
        from repro.sim.warp import WarpSim
        warp = WarpSim(0, 0, 0, [])
        model = AddressModel()
        instr = next(i for i in km_workload.kernel.cfg.instructions
                     if i.pattern is AccessPattern.STREAM)
        addresses = {model.address_for(warp, instr) for __ in range(100)}
        assert len(addresses) == 100

    def test_reuse_has_spatial_locality(self):
        from repro.sim.warp import WarpSim
        from repro.isa.instructions import Instruction
        warp = WarpSim(0, 0, 0, [])
        model = AddressModel(reuse_spatial=4)
        instr = Instruction(Opcode.LDG, 1, (0,), AccessPattern.REUSE)
        lines = [model.address_for(warp, instr) // 128 for __ in range(8)]
        assert lines[0] == lines[1] == lines[2] == lines[3]
        assert lines[4] == lines[5] == lines[6] == lines[7]

    def test_shared_ws_bounded(self):
        from repro.sim.warp import WarpSim
        from repro.isa.instructions import Instruction
        warp = WarpSim(0, 5, 0, [])
        model = AddressModel(shared_ws_kb=16)
        instr = Instruction(Opcode.LDG, 1, (0,), AccessPattern.SHARED_WS)
        lines = {model.address_for(warp, instr) for __ in range(1000)}
        assert len(lines) <= 128  # 16 KB / 128 B

    def test_warm_l2_resets_stats(self):
        from repro.memory.cache import Cache
        model = AddressModel(shared_ws_kb=16)
        l2 = Cache("l2", 256 * 1024, 8, 128)
        model.warm_l2(l2)
        assert l2.stats.accesses == 0
        assert l2.probe(model.SHARED_BASE)
