"""Fig 3: on-chip memory overhead of allocating one additional CTA.

The paper reports 6-37.3 KB per extra CTA, with registers accounting for
88.7% of the total across the suite.  This is a static property of the
kernels' resource envelopes, so no simulation is needed.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ALL_APPS, ExperimentResult
from repro.experiments.runner import ExperimentRunner
from repro.workloads.suite import get_spec

KB = 1024.0


def run(runner: ExperimentRunner,
        apps: Sequence[str] = ALL_APPS) -> ExperimentResult:
    rows = []
    total_regs = 0
    total_shmem = 0
    for app in apps:
        spec = get_spec(app)
        regs = spec.register_bytes_per_cta
        shmem = spec.shmem_per_cta
        total_regs += regs
        total_shmem += shmem
        rows.append([
            app,
            regs / KB,
            shmem / KB,
            (regs + shmem) / KB,
            regs / (regs + shmem) if regs + shmem else 0.0,
        ])
    overall = total_regs + total_shmem
    summary = {
        "min_overhead_kb": min(row[3] for row in rows),
        "max_overhead_kb": max(row[3] for row in rows),
        "register_share": total_regs / overall if overall else 0.0,
    }
    return ExperimentResult(
        experiment="fig03",
        title="Per-CTA on-chip overhead (registers vs shared memory)",
        headers=["app", "reg_kb", "shmem_kb", "total_kb", "reg_share"],
        rows=rows,
        summary=summary,
        notes=("Paper: 6-37.3 KB per extra CTA; registers are 88.7% of the "
               "total overhead."),
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
