"""Static kernel verifier: passes, self-test, and the generator gate."""

import pytest

from conftest import build_branch_cfg, build_linear_cfg, build_loop_cfg
from repro.analyze import (
    KernelVerificationError,
    verify_cfg,
    verify_kernel,
    verify_suite,
)
from repro.analyze.graph import (
    back_edges,
    dominators,
    immediate_postdominator,
    postdominators,
    reachable_from_entry,
)
from repro.analyze.selftest import (
    BROKEN_KERNELS,
    run_broken_kernel,
    run_self_test,
)
from repro.config import TINY, default_config
from repro.isa.cfg import ControlFlowGraph, EdgeKind
from repro.isa.instructions import Instruction, Opcode
from repro.workloads import generator
from repro.workloads.suite import ALL_SPECS, get_spec


def _exit_block():
    return [Instruction(Opcode.EXIT)]


def _compute(dest, *srcs):
    return Instruction(Opcode.IALU, dest, tuple(srcs))


class TestHealthyKernels:
    def test_table_ii_suite_is_clean(self, config):
        reports = verify_suite(config, TINY)
        assert len(reports) == len(ALL_SPECS)
        for report in reports:
            assert not report.has_errors, report.format()

    def test_fixture_kernel_is_clean(self, small_kernel, config):
        report = verify_kernel(small_kernel, config)
        assert not report.has_errors, report.format()

    def test_clean_report_carries_liveness(self, linear_cfg):
        report = verify_cfg(linear_cfg, 8, source="unit")
        assert not report.findings
        assert report.liveness is not None
        assert report.liveness.num_registers == 8

    @pytest.mark.parametrize("builder", [build_linear_cfg, build_loop_cfg,
                                         build_branch_cfg])
    def test_conftest_shapes_are_clean(self, builder):
        report = verify_cfg(builder(), 8, source=builder.__name__)
        assert not report.has_errors, report.format()


class TestSelfTest:
    @pytest.mark.parametrize("case", BROKEN_KERNELS, ids=lambda c: c.name)
    def test_each_broken_kernel_is_caught_with_its_tag(self, case):
        report = run_broken_kernel(case)
        assert report.error is None, report.error
        assert report.detected, (
            f"{case.name} not caught; error tags reported: {report.tags}")

    def test_covers_six_distinct_corruptions(self):
        assert len(BROKEN_KERNELS) >= 6
        assert len({c.tag for c in BROKEN_KERNELS}) >= 6

    def test_run_self_test_all_green(self):
        assert all(r.detected for r in run_self_test())


class TestEdgeCaseGraphs:
    """The analysis handles the CFG shapes freeze() accepts but tests rarely
    build: single blocks, self-loops, multiple back edges to one header."""

    def test_single_exit_block_kernel(self):
        cfg = ControlFlowGraph()
        cfg.add_block(_exit_block(), EdgeKind.EXIT)
        report = verify_cfg(cfg.freeze(), 1, source="minimal")
        assert not report.has_errors, report.format()

    def test_self_loop_is_reducible(self):
        cfg = build_loop_cfg()
        assert back_edges(cfg) == [(1, 1)]
        report = verify_cfg(cfg, 8, source="self-loop")
        assert not report.has_errors, report.format()

    def test_multi_backedge_loop_is_clean(self):
        # Two latches, both looping back to the same header: B1 dominates
        # both, so the loop is reducible and must verify clean.
        cfg = ControlFlowGraph()
        cfg.add_block([_compute(0)], EdgeKind.FALLTHROUGH, successors=(1,))
        cfg.add_block([_compute(1, 0)], EdgeKind.FALLTHROUGH, successors=(2,))
        cfg.add_block([Instruction(Opcode.BRA, None, (1,))],
                      EdgeKind.LOOP_BACK, successors=(1, 3),
                      mean_trip_count=2.0)
        cfg.add_block([Instruction(Opcode.BRA, None, (1,))],
                      EdgeKind.LOOP_BACK, successors=(1, 4),
                      mean_trip_count=2.0)
        cfg.add_block(_exit_block(), EdgeKind.EXIT)
        frozen = cfg.freeze()
        assert back_edges(frozen) == [(2, 1), (3, 1)]
        report = verify_cfg(frozen, 4, source="multi-backedge")
        assert not report.has_errors, report.format()

    def test_dominators_on_branch_diamond(self):
        cfg = build_branch_cfg()
        dom = dominators(cfg)
        assert dom[3] == {0, 3}          # arms do not dominate the tail
        pdom = postdominators(cfg)
        assert immediate_postdominator(pdom, 0) == 3

    def test_reachability_sees_every_block_of_healthy_cfgs(self):
        cfg = build_branch_cfg()
        assert reachable_from_entry(cfg) == {0, 1, 2, 3}


class TestFindingDetails:
    def test_unreachable_finding_names_the_block(self):
        case = next(c for c in BROKEN_KERNELS if c.tag == "cfg-unreachable")
        cfg, regs, threads, shmem = case.build()
        report = verify_cfg(cfg, regs, source="x")
        finding = next(f for f in report.errors if f.tag == "cfg-unreachable")
        assert finding.block == 2
        assert "B2" in finding.format()

    def test_barrier_finding_carries_a_pc(self):
        case = next(c for c in BROKEN_KERNELS
                    if c.tag == "barrier-divergence")
        cfg, regs, threads, shmem = case.build()
        report = verify_cfg(cfg, regs, source="x")
        finding = next(f for f in report.errors
                       if f.tag == "barrier-divergence")
        assert finding.pc is not None

    def test_under_declared_liveness_not_propagated(self):
        case = next(c for c in BROKEN_KERNELS
                    if c.tag == "register-pressure")
        cfg, regs, threads, shmem = case.build()
        report = verify_cfg(cfg, regs, source="x")
        # The solved table carries the wrong num_registers; it must not be
        # handed onward for reuse.
        assert report.liveness is None


class TestGeneratorGate:
    def test_suite_builds_through_the_gate(self, config):
        instance = generator.build_workload(get_spec("KM"), config, TINY)
        assert instance.kernel is not None

    def test_gate_reuses_verifier_liveness(self, config):
        instance = generator.build_workload(get_spec("KM"), config, TINY)
        assert instance._liveness is not None
        assert instance.liveness is instance._liveness

    def test_under_declared_spec_raises_at_build_time(self, config,
                                                      monkeypatch):
        spec = get_spec("KM")

        def bad_cfg(_spec):
            cfg = ControlFlowGraph()
            setup = [_compute(r) for r in range(spec.regs_per_thread + 4)]
            use = [_compute(0, spec.regs_per_thread + 3)]
            cfg.add_block(setup + use, EdgeKind.FALLTHROUGH, successors=(1,))
            cfg.add_block(_exit_block(), EdgeKind.EXIT)
            return cfg.freeze()

        monkeypatch.setattr(generator, "_build_cfg", bad_cfg)
        with pytest.raises(KernelVerificationError) as excinfo:
            generator.build_workload(spec, config, TINY)
        report = excinfo.value.report
        assert any(f.tag == "register-pressure" for f in report.errors)
        assert spec.abbrev in str(excinfo.value)

    def test_gate_can_be_bypassed_explicitly(self, config, monkeypatch):
        # verify=False skips the static gate; the Kernel constructor's own
        # (weaker) check then fires instead, proving the gate ran earlier.
        spec = get_spec("KM")

        def bad_cfg(_spec):
            cfg = ControlFlowGraph()
            setup = [_compute(r) for r in range(spec.regs_per_thread + 4)]
            cfg.add_block(setup, EdgeKind.FALLTHROUGH, successors=(1,))
            cfg.add_block(_exit_block(), EdgeKind.EXIT)
            return cfg.freeze()

        monkeypatch.setattr(generator, "_build_cfg", bad_cfg)
        with pytest.raises(ValueError) as excinfo:
            generator.build_workload(spec, config, TINY, verify=False)
        assert not isinstance(excinfo.value, KernelVerificationError)


class TestOccupancyAndCapacity:
    def test_oversized_shmem_is_an_error(self, config):
        cfg = build_linear_cfg()
        report = verify_cfg(cfg, 8, source="x", config=config,
                            threads_per_cta=64,
                            shmem_per_cta=config.shared_memory_bytes + 1)
        assert any(f.tag == "occupancy" for f in report.errors)

    def test_non_warp_multiple_threads_is_an_error(self, config):
        report = verify_cfg(build_linear_cfg(), 8, source="x",
                            config=config, threads_per_cta=48)
        assert any(f.tag == "occupancy" for f in report.errors)

    def test_zero_regs_is_an_error(self):
        report = verify_cfg(build_linear_cfg(), 0, source="x")
        assert any(f.tag == "register-pressure" for f in report.errors)
