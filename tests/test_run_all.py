"""Tests for the full-campaign driver."""

import json
from pathlib import Path

from repro.experiments.run_all import CAMPAIGN, run_campaign, write_report
from repro.telemetry.rollup import render_rollup, rollup_results
from repro.telemetry.selfprof import SelfProfiler


class TestCampaignDefinition:
    def test_covers_every_paper_experiment(self):
        names = {name for name, __ in CAMPAIGN}
        for required in ("fig02_resources", "fig03_cta_overhead",
                         "fig04_case_study", "fig05_register_usage",
                         "table03_stall_time", "fig12_concurrent_ctas",
                         "fig13_performance", "fig14_rf_stalls",
                         "fig15_memory_traffic", "fig16_energy",
                         "fig17_rf_sensitivity", "fig18_sm_scaling",
                         "fig19_unified_memory"):
            assert required in names

    def test_includes_ablations(self):
        names = {name for name, __ in CAMPAIGN}
        assert "ablation_bitvector_cache" in names
        assert "ablation_switch_policy" in names


class TestCampaignExecution:
    def test_subset_runs_and_reports(self, tiny_runner, tmp_path):
        results = run_campaign(tiny_runner, modules=["fig03_cta_overhead"])
        assert len(results) == 1
        assert results[0].experiment == "fig03"
        assert "_elapsed_s" in results[0].summary
        report = tmp_path / "REPORT.md"
        write_report(results, report, "tiny")
        text = report.read_text()
        assert "# FineReg reproduction" in text
        assert "fig03" in text

    def test_profiled_campaign_with_rollup_report(self, tiny_runner,
                                                  tmp_path):
        profiler = SelfProfiler()
        results = run_campaign(tiny_runner, modules=["fig03_cta_overhead"],
                               profiler=profiler)
        phases = {p["name"] for p in profiler.as_payload()["phases"]}
        assert {"plan+prefetch", "render"} <= phases
        # Roll-up derives purely from the memoized SimResults (fig03 is
        # analytic, so simulate a pair of runs to have something to roll up).
        tiny_runner.run("KM", "finereg")
        tiny_runner.run("KM", "baseline")
        rollup = rollup_results(tiny_runner.memoized_results())
        assert rollup["groups"]
        assert all(g["runs"] > 0 for g in rollup["groups"])
        report = tmp_path / "REPORT.md"
        write_report(results, report, "tiny",
                     rollup_text=render_rollup(rollup))
        text = report.read_text()
        assert "## Telemetry roll-up" in text
        assert "stall p50" in text
        # ... so the BENCH payload round-trips through JSON.
        payload = profiler.as_payload()
        payload["rollup"] = rollup
        assert json.loads(json.dumps(payload)) == payload


class TestCampaignObservability:
    def test_observed_campaign_reports_phase_breakdown(self, tmp_path):
        """An obs-instrumented campaign produces reconciling spans and a
        REPORT.md phase-breakdown section derived from them."""
        from repro.config import TINY
        from repro.experiments.runner import ExperimentRunner
        from repro.obs.session import ObsSession
        from repro.obs.spans import phase_rows, reconcile_spans

        runner = ExperimentRunner(scale=TINY)
        session = ObsSession()
        runner.attach_obs(session)
        session.campaign_begin(total=0, jobs=2, label="run_all:tiny")
        results = run_campaign(runner, modules=["fig03_cta_overhead"])
        session.campaign_end()

        assert reconcile_spans(session.recorder.spans) == []
        breakdown = phase_rows(session.recorder.spans)
        names = {name for __, name, __ in breakdown}
        assert {"plan+prefetch", "render", "render:fig03_cta_overhead"} \
            <= names
        # render:fig03 nests under render, which nests under the campaign.
        parents = {name: within for within, name, __ in breakdown}
        assert parents["render:fig03_cta_overhead"] == "render"
        assert parents["render"] == "run_all:tiny"

        report = tmp_path / "REPORT.md"
        write_report(results, report, "tiny", phase_breakdown=breakdown)
        text = report.read_text()
        assert "## Campaign phase breakdown" in text
        assert "render:fig03_cta_overhead" in text
        session.close()

    def test_report_omits_breakdown_without_observability(self, tmp_path,
                                                          tiny_runner):
        results = run_campaign(tiny_runner, modules=["fig03_cta_overhead"])
        report = tmp_path / "REPORT.md"
        write_report(results, report, "tiny")
        assert "## Campaign phase breakdown" not in report.read_text()
