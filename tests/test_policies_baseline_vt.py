"""Tests for the baseline and Virtual Thread policies."""

import pytest

from repro.config import TINY
from repro.policies.base import PendingTracker
from repro.sim.cta import CTASim, CTAState
from repro.sim.warp import WarpSim


def make_cta(cta_id=1, blocked_until=0):
    warps = [WarpSim(i, cta_id * 8 + i, cta_id, [0]) for i in range(2)]
    cta = CTASim(cta_id, warps)
    for warp in warps:
        warp.cta = cta
        warp.blocked_until = blocked_until
    return cta


class TestPendingTracker:
    def test_ready_after_time(self):
        tracker = PendingTracker()
        cta = make_cta()
        cta.state = CTAState.PENDING
        tracker.add(cta, ready_time=100)
        assert not tracker.has_ready(50)
        assert tracker.has_ready(100)
        assert tracker.pop_ready(100) is cta
        assert tracker.pop_ready(100) is None

    def test_oldest_first(self):
        tracker = PendingTracker()
        young = make_cta(cta_id=9)
        old = make_cta(cta_id=2)
        for cta in (young, old):
            cta.state = CTAState.PENDING
            tracker.add(cta, ready_time=10)
        assert tracker.pop_ready(10) is old

    def test_specific_pop(self):
        tracker = PendingTracker()
        a, b = make_cta(1), make_cta(2)
        for cta in (a, b):
            cta.state = CTAState.PENDING
            tracker.add(cta, 0)
        assert tracker.pop_ready(0, b) is b
        assert tracker.pop_ready(0) is a

    def test_transit_cta_requeued_not_dropped(self):
        tracker = PendingTracker()
        cta = make_cta()
        cta.begin_transit(until=200, target=CTAState.PENDING)
        tracker.add(cta, ready_time=100)
        assert not tracker.has_ready(150)   # still in transit: requeued
        cta.settle_transit(200)
        assert tracker.has_ready(201)

    def test_non_pending_cta_dropped(self):
        tracker = PendingTracker()
        cta = make_cta()
        cta.state = CTAState.FINISHED
        tracker.add(cta, ready_time=0)
        assert not tracker.has_ready(10)
        assert len(tracker) == 0

    def test_next_ready_time(self):
        tracker = PendingTracker()
        cta = make_cta()
        cta.state = CTAState.PENDING
        tracker.add(cta, 123)
        assert tracker.next_ready_time() == 123


class TestBaselinePolicy:
    def test_never_switches(self, tiny_runner):
        result = tiny_runner.run("KM", "baseline")
        assert result.cta_switch_events == 0
        assert result.avg_pending_ctas_per_sm == 0.0

    def test_respects_register_capacity(self, tiny_runner):
        # LB: 4 warps x 48 regs = 192 entries -> at most 10 CTAs in 2048.
        result = tiny_runner.run("LB", "baseline")
        assert result.max_resident_ctas <= 2048 // 192

    def test_completes_grid(self, tiny_runner):
        result = tiny_runner.run("CS", "baseline")
        instance = tiny_runner.workload("CS")
        assert result.completed_ctas == instance.kernel.geometry.grid_ctas


class TestVirtualThreadPolicy:
    def test_exceeds_baseline_residency_for_type_s(self, tiny_runner):
        base = tiny_runner.run("KM", "baseline")
        vt = tiny_runner.run("KM", "virtual_thread")
        assert vt.avg_resident_ctas_per_sm > base.avg_resident_ctas_per_sm

    def test_no_gain_for_register_bound_apps(self, tiny_runner):
        """Type-R: the RF is already full, VT cannot add CTAs (paper VI-B)."""
        base = tiny_runner.run("LB", "baseline")
        vt = tiny_runner.run("LB", "virtual_thread")
        assert vt.max_resident_ctas <= base.max_resident_ctas + 1

    def test_switching_happens(self, tiny_runner):
        vt = tiny_runner.run("KM", "virtual_thread")
        assert vt.cta_switch_events > 0

    def test_no_extra_dram_context_traffic(self, tiny_runner):
        """VT keeps registers on-chip: no context traffic classes."""
        vt = tiny_runner.run("KM", "virtual_thread")
        assert "context_spill" not in vt.dram_traffic_by_class
        assert "context_restore" not in vt.dram_traffic_by_class

    def test_completes_grid(self, tiny_runner):
        result = tiny_runner.run("KM", "virtual_thread")
        instance = tiny_runner.workload("KM")
        assert result.completed_ctas == instance.kernel.geometry.grid_ctas

    def test_instruction_count_matches_baseline(self, tiny_runner):
        """Switching must not change the work performed."""
        base = tiny_runner.run("KM", "baseline")
        vt = tiny_runner.run("KM", "virtual_thread")
        assert vt.instructions == base.instructions
