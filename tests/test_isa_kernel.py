"""Tests for the kernel model and launch geometry."""

import pytest

from repro.isa.kernel import Kernel, LaunchGeometry


class TestLaunchGeometry:
    def test_warps_per_cta(self):
        geom = LaunchGeometry(threads_per_cta=256, grid_ctas=10)
        assert geom.warps_per_cta == 8

    def test_rejects_non_warp_multiple(self):
        with pytest.raises(ValueError):
            LaunchGeometry(threads_per_cta=100, grid_ctas=1)

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            LaunchGeometry(threads_per_cta=0, grid_ctas=1)

    def test_rejects_over_limit(self):
        with pytest.raises(ValueError):
            LaunchGeometry(threads_per_cta=2048, grid_ctas=1)

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            LaunchGeometry(threads_per_cta=64, grid_ctas=0)


class TestKernel:
    def test_requires_frozen_cfg(self, linear_cfg):
        from repro.isa.cfg import ControlFlowGraph, EdgeKind
        from repro.isa.instructions import Instruction, Opcode
        cfg = ControlFlowGraph()
        cfg.add_block([Instruction(Opcode.EXIT)], EdgeKind.EXIT)
        with pytest.raises(ValueError):
            Kernel("k", cfg, LaunchGeometry(64, 1), regs_per_thread=8)

    def test_register_allocation_must_cover_named_regs(self, linear_cfg):
        # linear_cfg names R3, so 3 regs/thread is too few.
        with pytest.raises(ValueError):
            Kernel("k", linear_cfg, LaunchGeometry(64, 1), regs_per_thread=3)

    def test_rejects_negative_shmem(self, linear_cfg):
        with pytest.raises(ValueError):
            Kernel("k", linear_cfg, LaunchGeometry(64, 1),
                   regs_per_thread=8, shmem_per_cta=-1)

    def test_register_footprint(self, small_kernel):
        # 2 warps x 8 regs = 16 warp-registers = 2 KB.
        assert small_kernel.warp_registers_per_cta == 16
        assert small_kernel.register_bytes_per_cta == 16 * 128

    def test_cta_overhead_includes_shmem(self, linear_cfg):
        kernel = Kernel("k", linear_cfg, LaunchGeometry(64, 1),
                        regs_per_thread=8, shmem_per_cta=4096)
        assert kernel.cta_overhead_bytes \
            == kernel.register_bytes_per_cta + 4096

    def test_num_static_instructions(self, small_kernel):
        assert small_kernel.num_static_instructions == 5
