"""FineReg: fine-grained register file management (the paper's contribution).

The register file is split into an ACRF (active CTAs, full allocations) and a
PCRF (pending CTAs, live registers only).  When every warp of an active CTA
blocks on long-latency operations, the RMU decodes the live registers at each
warp's stalled PC from the compiler-generated bit vectors and, if they fit,
spills them into the PCRF; the freed ACRF space hosts either a brand-new CTA
or a pending CTA whose stall has cleared.  When the PCRF is full, FineReg
degrades to pure context switching -- allowed whenever the stalled CTA's live
set fits in the PCRF counting the slots the restored CTA vacates (V-E).

Timing: a switch transaction's latency is the RMU's pipelined chain traversal
(4 cycles + one register per cycle) plus any bit-vector-cache miss penalties
(a DRAM round trip each, with 12 bytes of traffic counted against the
off-chip bus).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.acrf import ACRFAllocator
from repro.core.pcrf import PCRF
from repro.core.rmu import RegisterManagementUnit
from repro.core.status_monitor import (
    CTAStatusMonitor,
    ContextLocation,
    RegisterLocation,
)
from repro.policies.base import PendingTracker, RegisterFilePolicy
from repro.sim.cta import CTASim, CTAState
from repro.sim.tracing import EventKind

#: Pipeline-context backup latency (shared-memory side of a switch).
CONTEXT_SWITCH_LATENCY = 36


class FineRegPolicy(RegisterFilePolicy):
    """ACRF/PCRF split with live-register-only pending storage."""

    name = "finereg"

    def __init__(self, sm) -> None:
        super().__init__(sm)
        config = self.config
        self.acrf = ACRFAllocator(config.acrf_entries)
        self.pcrf = PCRF(min(config.pcrf_entries, 1024))
        self.rmu = RegisterManagementUnit(
            self.pcrf,
            sm.gpu.liveness,
            cache_entries=config.bitvector_cache_entries,
            pcrf_access_latency=config.pcrf_access_latency,
            dram_latency=config.dram_latency,
        )
        self.monitor = CTAStatusMonitor(config.max_resident_ctas)
        self.pending = PendingTracker()
        self.rf_capacity_entries = config.acrf_entries
        self.failed_spills = 0
        self.switch_pairs = 0
        self.blocked_restores = 0
        # Residency throttle: beyond a few stall-periods' worth of pending
        # CTAs there is nothing left to hide, and every extra resident CTA
        # costs cold-start traffic.  The hardware caps at 128 CTAs / 512
        # warps (V-F); the launch heuristic stops well before when the
        # pending pool is already deep relative to the active complement.
        active_cap = max(
            min(
                config.max_ctas_per_sm,
                config.max_warps_per_sm // launch.warps_per_cta,
                config.max_threads_per_sm // launch.threads_per_cta,
                max(1, config.acrf_entries // max(1, launch.cta_regs)),
            )
            for launch in sm.gpu.launches)
        self._resident_cap = min(config.max_resident_ctas, 3 * active_cap)
        # Declared warps of launched-but-unretired CTAs.  With one kernel
        # this is resident_ctas * warps_per_cta; with concurrent kernels
        # the per-launch footprints differ, so it is tracked directly.
        self._decl_warps = 0
        #: New-CTA launches pause while the DRAM backlog exceeds this.
        self.bus_backlog_threshold = config.dram_latency

    # ------------------------------------------------------------------
    # Launching: bounded by ACRF + scheduler slots + residency caps.
    # ------------------------------------------------------------------
    def can_launch(self) -> bool:
        return (self.sm.scheduler_slots_free()
                and self.sm.shmem_free(self.kernel.shmem_per_cta)
                and self.acrf.can_allocate(self._cta_regs)
                and self._residency_headroom())

    def register_space_for_launch(self) -> bool:
        return self.acrf.can_allocate(self._cta_regs)

    def register_space_for(self, regs: int) -> bool:
        return self.acrf.can_allocate(regs)

    def can_launch_for(self, launch) -> bool:
        return (self.sm.scheduler_slots_free(launch)
                and self.sm.shmem_free(launch.shmem_per_cta)
                and self.acrf.can_allocate(self._launch_regs(launch))
                and self._residency_headroom_for(launch))

    def _residency_headroom(self) -> bool:
        return self._residency_headroom_for(self.sm.gpu.launches[0])

    def _residency_headroom_for(self, launch) -> bool:
        resident = self.sm.resident_ctas
        return (resident < self._resident_cap
                and self._decl_warps + launch.warps_per_cta
                <= self.config.max_resident_warps)

    def note_launched(self, cta: CTASim, now: int) -> None:
        self.acrf.allocate(cta.cta_id, self._launch_regs(cta.launch))
        self.rf_used_entries = self.acrf.used
        self._decl_warps += cta.launch.warps_per_cta
        self.monitor.launch(cta.cta_id)

    # ------------------------------------------------------------------
    # Core event: an active CTA completely stalled.
    # ------------------------------------------------------------------
    def _act_on_idle(self, now: int) -> bool:
        """The SM starves: move stalled live sets to the PCRF and refill."""
        acted = False
        for cta in self.stalled_active_ctas(now):
            if not self._try_switch_out(cta, now):
                break
            acted = True
        return acted

    def _try_switch_out(self, cta: CTASim, now: int) -> bool:
        warp_pcs = self._stalled_warp_pcs(cta)
        if not warp_pcs:
            return False
        candidate = self._peek_ready(now)
        # Launch brand-new CTAs only while the off-chip bus has headroom:
        # on a saturated channel extra residents add compulsory traffic and
        # queueing delay without any latency left to hide.
        bus_ok = self.sm.gpu.hierarchy.dram.backlog(now) \
            < self.bus_backlog_threshold
        arbiter = self.sm.gpu.arbiter
        if arbiter is None:
            can_host_new = (bus_ok
                            and self.sm.gpu.ctas_remaining > 0
                            and self._residency_headroom()
                            and self.sm.shmem_free(self.kernel.shmem_per_cta))
        else:
            can_host_new = bus_ok and arbiter.next_fitting(
                lambda l: (self._residency_headroom_for(l)
                           and self.sm.shmem_free(l.shmem_per_cta))
            ) is not None
        if candidate is None and not can_host_new:
            return False  # parking buys nothing; wake up in place

        live_count = max(1, self.rmu.live_count_of(warp_pcs))
        if self.rmu.can_spill(live_count, None):
            self._spill(cta, warp_pcs, now)
            # Resume ready pending CTAs first (oldest work, and its PCRF
            # slots free up); only launch fresh CTAs when nothing is ready.
            self._restore_ready(now)
            if candidate is None:
                self.fill(now)
            self._set_rf_blocked(False, now, cta.cta_id)
            return True

        # Mixed-kernel swaps must also fit: the incoming CTA's scheduler
        # footprint and ACRF allocation may exceed what the outgoing one
        # frees (both trivially hold in a single-kernel run).
        fits_swap = candidate is not None and (
            arbiter is None
            or (self.sm.swap_slots_free(cta, candidate.launch)
                and self.acrf.free + self._launch_regs(cta.launch)
                >= self._launch_regs(candidate.launch)))
        if fits_swap and self.rmu.can_spill(live_count, candidate.cta_id):
            # PCRF full, but the swap-out credit covers us (paper V-E):
            # restore the candidate's chain out while the stalled CTA's
            # live set streams in through the 128-byte transfer buffer.
            live, fetch_latency, misses = self.rmu.live_set_of(warp_pcs)
            self._release_acrf(cta, now, fetch_latency, misses)
            self._restore(self.pending.pop_ready(now, candidate), now)
            self._finish_spill(cta, live, fetch_latency, now)
            self.switch_pairs += 1
            self._set_rf_blocked(False, now, cta.cta_id)
            return True

        # PCRF depleted: the stalled CTA must remain in the ACRF (V-B).
        self.failed_spills += 1
        self.rmu.stats.rejected_switches += 1
        self._set_rf_blocked(True, now, cta.cta_id)
        return False

    # ------------------------------------------------------------------
    def _spill(self, cta: CTASim, warp_pcs: List[Tuple[int, int]],
               now: int) -> None:
        live, fetch_latency, misses = self.rmu.live_set_of(warp_pcs)
        self._release_acrf(cta, now, fetch_latency, misses)
        self._finish_spill(cta, live, fetch_latency, now)

    def _release_acrf(self, cta: CTASim, now: int, fetch_latency: int,
                      misses: int) -> None:
        """First half of a switch-out: free the ACRF and start the transit."""
        freed = self.acrf.release(cta.cta_id)
        assert freed == self._launch_regs(cta.launch)
        self.rf_used_entries = self.acrf.used
        if misses:
            # Cold bit vectors are fetched from the reserved off-chip area.
            self.sm.gpu.hierarchy.bulk_transfer(now, misses * 12, "bitvector")

    def _finish_spill(self, cta: CTASim, live, fetch_latency: int,
                      now: int) -> None:
        """Second half: chain the live registers into the PCRF."""
        cost = self.rmu.spill(cta.cta_id, live, fetch_latency)
        latency = max(cost.cycles, CONTEXT_SWITCH_LATENCY)
        self.sm.deactivate_cta(cta, now, latency)
        self.pending.add(cta, max(now + latency, cta.earliest_resume(now)))
        self.monitor.set_context(cta.cta_id, ContextLocation.SHARED_MEMORY)
        self.monitor.set_registers(cta.cta_id, RegisterLocation.PCRF)
        spilled = self.pcrf.live_count_of(cta.cta_id)
        self.sm.stats.pcrf_writes += spilled
        tracer = self.sm.gpu.warp_tracer
        if tracer is not None:
            tracer.record(now, self.sm.sm_id, EventKind.PCRF_SPILL,
                          cta.cta_id, dur=latency, value=spilled)

    def _restore(self, cta: CTASim, now: int) -> None:
        restored = self.rmu.pending_live_count(cta.cta_id)
        cost = self.rmu.restore(cta.cta_id)
        self.acrf.allocate(cta.cta_id, self._launch_regs(cta.launch))
        self.rf_used_entries = self.acrf.used
        latency = max(cost.cycles, CONTEXT_SWITCH_LATENCY)
        self.sm.activate_cta(cta, now, latency)
        self.monitor.set_context(cta.cta_id, ContextLocation.PIPELINE)
        self.monitor.set_registers(cta.cta_id, RegisterLocation.ACRF)
        self.sm.stats.pcrf_reads += restored
        tracer = self.sm.gpu.warp_tracer
        if tracer is not None:
            tracer.record(now, self.sm.sm_id, EventKind.PCRF_FILL,
                          cta.cta_id, dur=latency, value=restored)

    def _peek_ready(self, now: int) -> Optional[CTASim]:
        """The pending CTA the status monitor would pick, without removal."""
        ready = self.pending.ready_ctas(now)
        if not ready:
            return None
        by_id = {cta.cta_id: cta for cta in ready}
        choice = self.monitor.select_switch_candidate(by_id)
        if choice is None:
            choice = min(by_id)
        return by_id[choice]

    def _select_ready(self, now: int) -> Optional[CTASim]:
        cta = self._peek_ready(now)
        if cta is None:
            return None
        return self.pending.pop_ready(now, cta)

    def _stalled_warp_pcs(self, cta: CTASim) -> List[Tuple[int, int]]:
        """(warp_id, stalled PC) for each unfinished warp of the CTA."""
        pcs = []
        for warp in cta.warps:
            if warp.finished:
                continue
            static_index = warp.trace[warp.pos] if \
                warp.pos < len(warp.trace) else None
            if static_index is None:
                continue
            pcs.append((warp.warp_id, static_index * 4))
        return pcs

    # ------------------------------------------------------------------
    def on_cta_finished(self, cta: CTASim, now: int) -> None:
        self.acrf.release(cta.cta_id)
        self.rf_used_entries = self.acrf.used
        self._decl_warps -= cta.launch.warps_per_cta
        self.monitor.retire(cta.cta_id)
        self._restore_ready(now)
        self.fill(now)

    def on_tick(self, now: int) -> None:
        if self.pending.has_ready(now):
            self._restore_ready(now)

    def _restore_ready(self, now: int) -> None:
        if self.sm.gpu.arbiter is None:
            while (self.sm.scheduler_slots_free()
                   and self.acrf.can_allocate(self._cta_regs)):
                candidate = self._select_ready(now)
                if candidate is None:
                    break
                self._restore(candidate, now)
                self._set_rf_blocked(False, now, candidate.cta_id)
            if (self.pending.has_ready(now) and self.sm.scheduler_slots_free()
                    and not self.acrf.can_allocate(self._cta_regs)):
                # A ready CTA is waiting on ACRF space (adaptive signal).
                self.blocked_restores += 1
            return
        # Concurrent kernels: fitness is per-candidate, so the monitor's
        # pick is overridden by the first (lowest-id) CTA that fits.
        while True:
            candidate = None
            for cand in sorted(self.pending.ready_ctas(now),
                               key=lambda c: c.cta_id):
                if (self.sm.scheduler_slots_free(cand.launch)
                        and self.acrf.can_allocate(
                            self._launch_regs(cand.launch))):
                    candidate = self.pending.pop_ready(now, cand)
                    break
            if candidate is None:
                break
            self._restore(candidate, now)
            self._set_rf_blocked(False, now, candidate.cta_id)
        if any(self.sm.scheduler_slots_free(c.launch)
               and not self.acrf.can_allocate(self._launch_regs(c.launch))
               for c in self.pending.ready_ctas(now)):
            # A ready CTA is waiting on ACRF space (adaptive signal).
            self.blocked_restores += 1

    def next_event(self, now: int) -> int:
        return self.pending.next_ready_time()

    def wake_time(self, now: int) -> int:
        # While a ready CTA waits on ACRF space, _restore_ready counts a
        # blocked restore every tick (the adaptive-split pressure signal),
        # so ticking may not be skipped in that state.
        if self.pending.has_ready(now):
            return now + 1
        return self.pending.next_ready_time()

    # ------------------------------------------------------------------
    def classify_idle(self, dt: int) -> str:
        if self._blocked_on_rf:
            return "rf"
        return "other"

    def telemetry_levels(self) -> dict:
        return {
            "acrf_free": self.acrf.free,
            "acrf_used": self.acrf.used,
            "pcrf_free": self.pcrf.free_entries,
            "pcrf_used": self.pcrf.used_entries,
        }

    def extras(self) -> dict:
        cache = self.rmu.bitvector_cache.stats
        return {
            "pcrf_spills": self.rmu.stats.spills,
            "pcrf_restores": self.rmu.stats.restores,
            "failed_spills": self.failed_spills,
            "switch_pairs": self.switch_pairs,
            "bitvector_hits": cache.hits,
            "bitvector_misses": cache.misses,
        }
