"""Basic blocks and control-flow graphs for synthetic kernels.

Kernels are *structured*: the CFG is built from sequences, diverging
branches (if/else with a post-dominator reconvergence block, paper Fig 9a)
and natural loops (single back edge, paper Fig 9b).  Structure is enough for
both the liveness pass (which must traverse branches and loops exactly as
Section V-A describes) and the per-warp trace generator (which serializes
divergent paths per the PDOM reconvergence model).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.isa.instructions import Instruction, Opcode


class EdgeKind(enum.Enum):
    """How control leaves a basic block."""

    FALLTHROUGH = "fallthrough"   # single successor
    BRANCH = "branch"             # two-way, potentially divergent
    LOOP_BACK = "loop_back"       # back edge to the loop header
    EXIT = "exit"                 # kernel end


@dataclass
class BasicBlock:
    """A straight-line run of instructions with one control transfer."""

    block_id: int
    instructions: List[Instruction] = field(default_factory=list)
    edge_kind: EdgeKind = EdgeKind.FALLTHROUGH
    successors: Tuple[int, ...] = ()
    # For BRANCH blocks: probability that a given warp diverges (threads split
    # across both paths) versus uniformly taking one side.
    divergence_prob: float = 0.0
    taken_prob: float = 0.5
    # For LOOP_BACK blocks: mean dynamic trip count of the enclosing loop.
    mean_trip_count: float = 0.0

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)


class ControlFlowGraph:
    """An immutable-after-``freeze`` structured CFG.

    Blocks are appended via builder methods; ``freeze`` assigns PCs (4-byte
    spacing over a single linear layout) and validates structure.
    """

    def __init__(self) -> None:
        self.blocks: List[BasicBlock] = []
        self._frozen = False
        self._instructions: List[Instruction] = []
        self._block_of_index: List[int] = []
        self._first_index: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_block(self, instructions: Sequence[Instruction],
                  edge_kind: EdgeKind = EdgeKind.FALLTHROUGH,
                  successors: Tuple[int, ...] = (),
                  divergence_prob: float = 0.0,
                  taken_prob: float = 0.5,
                  mean_trip_count: float = 0.0) -> BasicBlock:
        if self._frozen:
            raise RuntimeError("cannot add blocks to a frozen CFG")
        block = BasicBlock(
            block_id=len(self.blocks),
            instructions=list(instructions),
            edge_kind=edge_kind,
            successors=successors,
            divergence_prob=divergence_prob,
            taken_prob=taken_prob,
            mean_trip_count=mean_trip_count,
        )
        self.blocks.append(block)
        return block

    def freeze(self) -> "ControlFlowGraph":
        """Assign PCs, validate edges, and lock the graph."""
        if self._frozen:
            return self
        self._validate()
        pc = 0
        for block in self.blocks:
            self._first_index[block.block_id] = len(self._instructions)
            for index, instr in enumerate(block.instructions):
                placed = Instruction(
                    opcode=instr.opcode,
                    dest=instr.dest,
                    srcs=instr.srcs,
                    pattern=instr.pattern,
                    pc=pc,
                )
                block.instructions[index] = placed
                self._instructions.append(placed)
                self._block_of_index.append(block.block_id)
                pc += 4
        self._frozen = True
        return self

    def _validate(self) -> None:
        if not self.blocks:
            raise ValueError("CFG has no blocks")
        ids = {block.block_id for block in self.blocks}
        exit_blocks = 0
        for block in self.blocks:
            if not block.instructions:
                raise ValueError(f"block B{block.block_id} is empty")
            for succ in block.successors:
                if succ not in ids:
                    raise ValueError(
                        f"block B{block.block_id} has unknown successor B{succ}"
                    )
            expected = {
                EdgeKind.FALLTHROUGH: 1,
                EdgeKind.BRANCH: 2,
                EdgeKind.LOOP_BACK: 2,
                EdgeKind.EXIT: 0,
            }[block.edge_kind]
            if len(block.successors) != expected:
                raise ValueError(
                    f"block B{block.block_id} ({block.edge_kind.value}) needs "
                    f"{expected} successors, has {len(block.successors)}"
                )
            if block.edge_kind is EdgeKind.EXIT:
                exit_blocks += 1
                if block.instructions[-1].opcode is not Opcode.EXIT:
                    raise ValueError(
                        f"exit block B{block.block_id} must end in EXIT"
                    )
            if block.edge_kind is EdgeKind.LOOP_BACK:
                if block.successors[0] > block.block_id:
                    raise ValueError(
                        f"loop back edge of B{block.block_id} must go backward"
                    )
                if block.mean_trip_count < 1.0:
                    raise ValueError(
                        f"loop at B{block.block_id} needs mean_trip_count >= 1"
                    )
        if exit_blocks != 1:
            raise ValueError(f"CFG must have exactly one exit block, "
                             f"found {exit_blocks}")

    # ------------------------------------------------------------------
    # Frozen-graph queries
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        return self._frozen

    @property
    def instructions(self) -> List[Instruction]:
        self._require_frozen()
        return self._instructions

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def num_instructions(self) -> int:
        self._require_frozen()
        return len(self._instructions)

    def block(self, block_id: int) -> BasicBlock:
        return self.blocks[block_id]

    def block_of(self, instr_index: int) -> int:
        """Block id containing the instruction at linear index."""
        self._require_frozen()
        return self._block_of_index[instr_index]

    def first_index(self, block_id: int) -> int:
        """Linear index of a block's first instruction."""
        self._require_frozen()
        return self._first_index[block_id]

    def index_of_pc(self, pc: int) -> int:
        self._require_frozen()
        if pc % 4 or not 0 <= pc // 4 < len(self._instructions):
            raise ValueError(f"invalid pc 0x{pc:04x}")
        return pc // 4

    def registers_used(self) -> Tuple[int, ...]:
        """Sorted architectural registers the kernel ever names."""
        self._require_frozen()
        regs = set()
        for instr in self._instructions:
            regs.update(instr.registers)
        return tuple(sorted(regs))

    def reconvergence_block(self, branch_block_id: int) -> Optional[int]:
        """Immediate post-dominator of a BRANCH block.

        For structured CFGs the reconvergence point is the unique common
        successor reached by both branch paths; we find it by walking each
        path's fallthrough chain (paths inside a structured branch region are
        linear).
        """
        self._require_frozen()
        branch = self.blocks[branch_block_id]
        if branch.edge_kind is not EdgeKind.BRANCH:
            raise ValueError(f"B{branch_block_id} is not a branch block")

        def chain(start: int) -> List[int]:
            seen = [start]
            current = self.blocks[start]
            while current.edge_kind is EdgeKind.FALLTHROUGH:
                nxt = current.successors[0]
                seen.append(nxt)
                current = self.blocks[nxt]
            return seen

        left = chain(branch.successors[0])
        right = set(chain(branch.successors[1]))
        for block_id in left:
            if block_id in right:
                return block_id
        return None

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise RuntimeError("CFG must be frozen first")
