"""Static analysis layer: kernel verifier + determinism lint.

``repro.analyze`` gates every workload *before* it reaches the simulator,
and the simulator sources before they reach CI:

* :mod:`repro.analyze.passes` / :mod:`repro.analyze.verifier` — dataflow
  and graph passes over :mod:`repro.isa` kernels: CFG well-formedness,
  post-dominator reconvergence consistency, barrier-divergence legality,
  static register-pressure bounds (cross-checked against the declared
  regs/thread and the ACRF/PCRF split), and Table-I occupancy feasibility.
  :func:`~repro.workloads.generator.build_workload` runs the verifier at
  construction time, so a malformed synthetic kernel is rejected with a
  block/PC diagnostic instead of failing cycles into a run.
* :mod:`repro.analyze.lint` — an AST lint over ``src/repro`` and the
  ``tools/`` scripts for the nondeterminism hazards that would silently
  break the golden-trace corpus and the content-addressed result cache.
* :mod:`repro.analyze.effects` — the engine-equivalence effects audit:
  interprocedural effect summaries over the simulator source proving the
  fused/vectorized fast-path gates (``fast_step_eligible``,
  ``_BYPASSED_SM_ATTRS``, ``_INERT_POLICY_ATTRS``) cover every bypassed
  hook, plus a determinism audit of the launch/arbiter layer.
* :mod:`repro.analyze.selftest` / :mod:`repro.analyze.effects_selftest` —
  deliberately broken kernels and seeded gate faults proving each
  verifier pass and each gate audit actually fires.

Division of labor with :mod:`repro.validate`: the verifier checks *static*
properties of kernels and code before cycle 0; the sanitizer checks
*dynamic* invariants of a live simulation.  They share the
:class:`~repro.validate.findings.Finding` vocabulary.

CLI: ``python -m repro analyze`` (see docs/ANALYZE.md).
"""

from repro.validate.findings import Finding, FindingReport, Severity  # noqa: F401
from repro.analyze.verifier import (  # noqa: F401
    AnalysisReport,
    KernelVerificationError,
    verify_cfg,
    verify_kernel,
    verify_requests,
    verify_spec,
    verify_suite,
)
from repro.analyze.effects import (  # noqa: F401
    EffectsConfig,
    audit_effects,
    default_effects_config,
)
from repro.analyze.effects_selftest import run_effects_self_test  # noqa: F401
from repro.analyze.lint import lint_paths, lint_source  # noqa: F401

__all__ = [
    "AnalysisReport",
    "EffectsConfig",
    "Finding",
    "FindingReport",
    "KernelVerificationError",
    "Severity",
    "audit_effects",
    "default_effects_config",
    "lint_paths",
    "lint_source",
    "run_effects_self_test",
    "verify_cfg",
    "verify_kernel",
    "verify_requests",
    "verify_spec",
    "verify_suite",
]
