"""Tests for the shared policy base class behaviours."""

import pytest

from repro.config import GPUConfig, TINY
from repro.policies.baseline import BaselinePolicy
from repro.sim.gpu import GPU
from repro.workloads.generator import build_workload
from repro.workloads.suite import get_spec


def fresh_gpu(app="KM", policy=BaselinePolicy):
    config = GPUConfig().with_num_sms(1)
    instance = build_workload(get_spec(app), config, TINY)
    return GPU(config, instance.kernel, policy,
               instance.trace_provider, instance.address_model,
               liveness=instance.liveness)


class TestFill:
    def test_fill_launches_to_the_binding_limit(self):
        gpu = fresh_gpu("LB")   # register-bound: 2048 // 192 = 10 CTAs
        policy = gpu.sms[0].policy
        launched = policy.fill(0)
        assert launched == 10
        assert policy.rf_used_entries == 10 * policy._cta_regs

    def test_fill_stops_when_grid_empty(self):
        gpu = fresh_gpu("KM")
        policy = gpu.sms[0].policy
        total = gpu.kernel.geometry.grid_ctas
        launched = policy.fill(0)
        assert launched <= total
        # Drain the whole grid manually.
        while gpu.next_cta() is not None:
            pass
        assert policy.fill(0) == 0

    def test_register_accounting_on_finish(self):
        gpu = fresh_gpu("KM")
        policy = gpu.sms[0].policy
        policy.fill(0)
        used_before = policy.rf_used_entries
        cta = gpu.sms[0].active_ctas[0]
        for warp in cta.warps:
            warp.finish()
        gpu.sms[0].active_ctas.remove(cta)
        gpu.sms[0].retire_cta(cta, 0)
        # One allocation came back, and (grid permitting) a new CTA took it.
        assert policy.rf_used_entries <= used_before


class TestIdleCooldown:
    def test_unproductive_idle_sets_cooldown(self):
        gpu = fresh_gpu("KM")
        policy = gpu.sms[0].policy
        policy.fill(0)
        # Baseline never acts; on_idle should arm the cooldown.
        policy.on_idle(100)
        assert policy._next_idle_check == 116
        # Within the cooldown nothing is even attempted.
        policy.on_idle(110)
        assert policy._next_idle_check == 116

    def test_classify_idle_default(self):
        gpu = fresh_gpu("KM")
        policy = gpu.sms[0].policy
        assert policy.classify_idle(5) == "other"
        policy._blocked_on_rf = True
        assert policy.classify_idle(5) == "rf"


class TestStalledScan:
    def test_stalled_active_ctas_filters_by_threshold(self):
        gpu = fresh_gpu("KM")
        sm = gpu.sms[0]
        policy = sm.policy
        policy.fill(0)
        # Nothing blocked yet: no stalled CTAs.
        assert policy.stalled_active_ctas(0) == []
        # Block every warp of the first CTA far into the future.
        cta = sm.active_ctas[0]
        for warp in cta.warps:
            warp.blocked_until = 10_000
        stalled = policy.stalled_active_ctas(0)
        assert cta in stalled
        # A short block does not qualify.
        for warp in cta.warps:
            warp.blocked_until = 10
        assert cta not in policy.stalled_active_ctas(0)
