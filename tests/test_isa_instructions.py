"""Tests for the static instruction model."""

import pytest

from repro.isa.instructions import (
    AccessPattern,
    Instruction,
    Opcode,
    alu,
    is_long_latency,
    is_memory,
    load,
    store,
)


class TestConstruction:
    def test_alu_requires_dest(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.IALU, None, (1,))

    def test_store_cannot_write(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.STG, 1, (2,), AccessPattern.STREAM)

    def test_barrier_has_no_operands(self):
        bar = Instruction(Opcode.BAR)
        assert bar.dest is None
        assert bar.srcs == ()

    def test_register_range_enforced(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.IALU, 64, ())
        with pytest.raises(ValueError):
            Instruction(Opcode.IALU, 1, (-1,))

    def test_global_load_needs_pattern(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LDG, 1, (0,))

    def test_shared_load_needs_no_pattern(self):
        lds = Instruction(Opcode.LDS, 1, (0,))
        assert lds.pattern is None

    def test_non_memory_rejects_pattern(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.IALU, 1, (0,), AccessPattern.STREAM)


class TestAccessors:
    def test_registers_includes_dest_and_srcs(self):
        instr = Instruction(Opcode.FALU, 3, (1, 2))
        assert set(instr.registers) == {1, 2, 3}

    def test_reads_and_writes(self):
        instr = Instruction(Opcode.FALU, 3, (1, 2))
        assert instr.reads(1) and instr.reads(2)
        assert not instr.reads(3)
        assert instr.writes(3)
        assert not instr.writes(1)

    def test_pc_not_part_of_equality(self):
        a = Instruction(Opcode.IALU, 1, (0,), pc=0)
        b = Instruction(Opcode.IALU, 1, (0,), pc=4)
        assert a == b


class TestClassification:
    @pytest.mark.parametrize("opcode", [Opcode.LDG, Opcode.STG, Opcode.LDS,
                                        Opcode.STS])
    def test_memory_ops(self, opcode):
        assert is_memory(opcode)

    @pytest.mark.parametrize("opcode", [Opcode.IALU, Opcode.FALU, Opcode.SFU,
                                        Opcode.BAR, Opcode.BRA, Opcode.EXIT])
    def test_non_memory_ops(self, opcode):
        assert not is_memory(opcode)

    def test_long_latency_is_global_only(self):
        assert is_long_latency(Opcode.LDG)
        assert is_long_latency(Opcode.STG)
        assert not is_long_latency(Opcode.LDS)
        assert not is_long_latency(Opcode.IALU)


class TestConvenienceConstructors:
    def test_alu_helper(self):
        instr = alu(3, 1, 2)
        assert instr.opcode is Opcode.IALU
        assert instr.dest == 3
        assert instr.srcs == (1, 2)

    def test_alu_fp_flag(self):
        assert alu(3, 1, fp=True).opcode is Opcode.FALU

    def test_load_helper_defaults_to_stream(self):
        instr = load(2, 0)
        assert instr.opcode is Opcode.LDG
        assert instr.pattern is AccessPattern.STREAM

    def test_store_helper(self):
        instr = store(2, 0, AccessPattern.REUSE)
        assert instr.opcode is Opcode.STG
        assert instr.dest is None
        assert instr.pattern is AccessPattern.REUSE
