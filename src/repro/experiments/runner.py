"""Shared experiment runner.

Builds (workload, config, policy) simulations and caches their results at
two levels so figures that share runs (12/13/16 all use the same five
configurations, for instance) never recompute:

* an in-memory memo keyed by the *complete* simulation-relevant
  configuration (every ``GPUConfig`` field — see the PR-1 collision fix);
* a persistent on-disk store (:mod:`repro.experiments.cache`) keyed by a
  content hash of the same material, shared across processes and sessions.

``run_many`` accepts a whole campaign of :class:`RunRequest`s up front,
dedupes them, and fans the cold ones out over a ``multiprocessing`` pool
(:mod:`repro.experiments.parallel`).  All experiment modules go through
this class.
"""

from __future__ import annotations

import dataclasses
from contextlib import nullcontext
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.config import GPUConfig, SMALL, Scale, default_config
from repro.experiments.cache import ResultCache, run_key
from repro.experiments.parallel import RunRequest, run_requests, \
    simulate_request
from repro.policies.baseline import BaselinePolicy
from repro.policies.finereg import FineRegPolicy
from repro.policies.finereg_adaptive import AdaptiveFineRegPolicy
from repro.policies.reg_dram import RegDRAMPolicy
from repro.policies.regmutex import RegMutexPolicy
from repro.policies.virtual_thread import VirtualThreadPolicy
from repro.sim.stats import SimResult
from repro.workloads.generator import WorkloadInstance, build_workload
from repro.workloads.suite import get_spec

#: Name -> policy factory-factory.  Each entry returns a per-SM factory.
POLICIES: Dict[str, Callable] = {
    "baseline": lambda **kw: BaselinePolicy,
    "virtual_thread": lambda **kw: VirtualThreadPolicy,
    "reg_dram": lambda **kw: (
        lambda sm: RegDRAMPolicy(
            sm, dram_pending_limit=kw.get("dram_pending_limit", 8))
    ),
    "vt_regmutex": lambda **kw: (
        lambda sm: RegMutexPolicy(sm, srp_ratio=kw.get("srp_ratio", 0.28))
    ),
    "finereg": lambda **kw: FineRegPolicy,
    "finereg_adaptive": lambda **kw: AdaptiveFineRegPolicy,
}

#: The four configurations of Figs 12/13/16 plus the baseline.
MAIN_POLICIES = ("baseline", "virtual_thread", "reg_dram", "vt_regmutex",
                 "finereg")


class ExperimentRunner:
    """Memoized simulation driver for the experiment modules."""

    def __init__(self, scale: Scale = SMALL,
                 config: Optional[GPUConfig] = None,
                 cache: Optional[ResultCache] = None,
                 obs=None) -> None:
        self.scale = scale
        self.base_config = config if config is not None \
            else default_config(scale)
        self.cache = cache if cache is not None else ResultCache.from_env()
        self._results: Dict[Tuple, SimResult] = {}
        self._workloads: Dict[Tuple, WorkloadInstance] = {}
        #: Optional :class:`repro.obs.session.ObsSession`: spans around the
        #: scheduling/pool/store phases, timed cache traffic, and per-run
        #: events.  ``None`` (the default) costs one ``is not None`` test.
        self.obs = None
        if obs is not None:
            self.attach_obs(obs)

    def attach_obs(self, obs) -> None:
        """Wire an observability session into this runner and its cache."""
        self.obs = obs
        self.cache.obs = obs

    def _obs_phase(self, name: str):
        return self.obs.phase(name) if self.obs is not None \
            else nullcontext()

    # ------------------------------------------------------------------
    def workload(self, abbrev: str,
                 config: Optional[GPUConfig] = None) -> WorkloadInstance:
        """The workload instance for a benchmark.

        The grid is sized from the *unscaled* Table-I configuration (at the
        requested SM count) so that resource-scaling experiments (Figs 2, 4,
        17, 18) compare identical launches across configurations.
        """
        num_sms = (config if config is not None else self.base_config).num_sms
        reference = self.base_config.with_num_sms(num_sms)
        key = (abbrev, num_sms, self.scale.name)
        instance = self._workloads.get(key)
        if instance is None:
            instance = build_workload(get_spec(abbrev), reference, self.scale)
            self._workloads[key] = instance
        return instance

    # ------------------------------------------------------------------
    def run(self, abbrev: str, policy: str,
            config: Optional[GPUConfig] = None,
            sample_usage: bool = False,
            unified_memory: bool = False,
            telemetry: bool = False,
            **policy_kwargs) -> SimResult:
        """Simulate one benchmark under one policy (memoized)."""
        if policy not in POLICIES:
            known = ", ".join(sorted(POLICIES))
            raise KeyError(f"unknown policy {policy!r}; known: {known}")
        request = RunRequest.make(
            abbrev, policy, config=config, sample_usage=sample_usage,
            unified_memory=unified_memory, telemetry=telemetry,
            **policy_kwargs)
        return self.run_request(request)

    def run_request(self, request: RunRequest) -> SimResult:
        """Execute one request through the memo and persistent cache.

        Telemetry runs bypass the cache *read*: their purpose is the
        artifact the simulation writes as a side effect, so they must
        actually simulate.  The result they produce is identical to the
        untraced one and is written back to the cache as usual.
        """
        config = request.config if request.config is not None \
            else self.base_config
        key = self._memo_key(request, config)
        cached = self._results.get(key)
        if cached is not None:
            return cached
        disk_key = self._persistent_key(request, config)
        result = None if request.telemetry else self.cache.get(disk_key)
        if result is None:
            scope = self.obs.run_scope(request) if self.obs is not None \
                else nullcontext()
            with scope:
                # In-process runs share workload instances with direct
                # ``workload()`` callers via the runner's own memo.
                with self._obs_phase("workload-build"):
                    instance = self.workload(request.abbrev, config)
                result = simulate_request(self.scale, self.base_config,
                                          request, instance=instance,
                                          obs=self.obs)
            self.cache.put(disk_key, result)
        self._results[key] = result
        return result

    def run_many(self, requests: Iterable[RunRequest],
                 jobs: Optional[int] = None) -> List[SimResult]:
        """Run a whole campaign, deduped, over a process pool.

        Returns one result per *input* request (duplicates included), in
        order.  Already-memoized and disk-cached requests never hit the
        pool; with ``jobs=1`` the remainder runs serially in-process.
        """
        requests = list(requests)
        pending: List[Tuple[Tuple, RunRequest]] = []
        claimed = set()
        with self._obs_phase("cache-lookup"):
            for request in requests:
                if request.policy not in POLICIES:
                    known = ", ".join(sorted(POLICIES))
                    raise KeyError(
                        f"unknown policy {request.policy!r}; known: {known}")
                config = request.config if request.config is not None \
                    else self.base_config
                key = self._memo_key(request, config)
                if key in self._results or key in claimed:
                    continue
                result = None if request.telemetry else \
                    self.cache.get(self._persistent_key(request, config))
                if result is not None:
                    self._results[key] = result
                    continue
                claimed.add(key)
                pending.append((key, request.with_config(config)))

        if pending:
            payloads = [(self.scale, self.base_config, request)
                        for __, request in pending]
            with self._obs_phase("pool-run"):
                results = run_requests(payloads, jobs=jobs, obs=self.obs)
            with self._obs_phase("store"):
                for (key, request), result in zip(pending, results):
                    self._results[key] = result
                    self.cache.put(
                        self._persistent_key(request, request.config),
                        result)
        return [self._results[self._memo_key(
                    request,
                    request.config if request.config is not None
                    else self.base_config)]
                for request in requests]

    def run_main_configs(self, abbrev: str) -> Dict[str, SimResult]:
        """All five Fig-12/13 configurations for one benchmark."""
        return {policy: self.run(abbrev, policy) for policy in MAIN_POLICIES}

    def memoized_results(self) -> List[Tuple[str, SimResult]]:
        """(abbrev, result) pairs for every run this runner has memoized.

        Feed for the campaign telemetry roll-up: memo keys lead with the
        benchmark abbreviation, so grouping by app needs no extra state.
        """
        return [(key[0], result) for key, result in self._results.items()]

    # ------------------------------------------------------------------
    def _memo_key(self, request: RunRequest, config: GPUConfig) -> Tuple:
        # ``telemetry`` is part of the key so a traced run actually runs
        # (and writes its artifact) even when the untraced result is memoized.
        return (request.abbrev, request.policy, self._config_key(config),
                request.sample_usage, request.unified_memory,
                request.policy_kwargs, request.telemetry)

    def _persistent_key(self, request: RunRequest,
                        config: GPUConfig) -> str:
        return run_key(
            scale=self.scale,
            reference=self.base_config.with_num_sms(config.num_sms),
            config=config,
            spec=get_spec(request.abbrev),
            policy=request.policy,
            policy_kwargs=request.kwargs,
            sample_usage=request.sample_usage,
            unified_memory=request.unified_memory,
        )

    @staticmethod
    def _config_key(config: GPUConfig) -> Tuple:
        """Memo key over *every* configuration field.

        Deriving this from a hand-picked subset caused distinct configs
        (e.g. differing only in ``warp_scheduling`` or
        ``cta_switch_threshold``) to alias to one cached result.
        """
        return dataclasses.astuple(config)
