"""Active-CTA register file (ACRF) allocator.

The ACRF behaves like the baseline register file: each active CTA gets its
full static allocation (``warps x regs_per_thread`` warp-registers) for the
duration of its residence in the active region.  Allocation is tracked at
CTA granularity -- FineReg never subdivides an active CTA's registers, only
the *pending* copy in the PCRF is reduced to live registers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.registry import MetricsRegistry


class ACRFAllocator:
    """Capacity-tracking allocator for the active-CTA register region."""

    def __init__(self, capacity_entries: int) -> None:
        if capacity_entries <= 0:
            raise ValueError("ACRF capacity must be positive")
        self._capacity = capacity_entries
        self._allocated: Dict[int, int] = {}
        #: MetricsRegistry installed by repro.telemetry (None = off).
        self.telemetry: Optional["MetricsRegistry"] = None
        #: Test-only fault injection (mutation self-test): when non-zero,
        #: every release leaks this many entries into a phantom allocation.
        self.fault_leak_on_release = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def used(self) -> int:
        return sum(self._allocated.values())

    @property
    def free(self) -> int:
        return self._capacity - self.used

    @property
    def resident_ctas(self) -> int:
        return len(self._allocated)

    def holds(self, cta_id: int) -> bool:
        return cta_id in self._allocated

    def can_allocate(self, entries: int) -> bool:
        return entries <= self.free

    def allocate(self, cta_id: int, entries: int) -> None:
        """Reserve ``entries`` warp-registers for a CTA entering the ACRF."""
        if entries <= 0:
            raise ValueError("allocation must be positive")
        if cta_id in self._allocated:
            raise KeyError(f"CTA {cta_id} already holds ACRF space")
        if entries > self.free:
            raise MemoryError(
                f"ACRF overflow: need {entries}, have {self.free} free"
            )
        self._allocated[cta_id] = entries
        if self.telemetry is not None:
            self.telemetry.inc("acrf.allocations")
            self.telemetry.gauge_set("acrf.free_entries", self.free)

    def release(self, cta_id: int) -> int:
        """Free a CTA's registers (it finished or moved to the PCRF)."""
        if cta_id not in self._allocated:
            raise KeyError(f"CTA {cta_id} holds no ACRF space")
        freed = self._allocated.pop(cta_id)
        if self.fault_leak_on_release:
            # Deliberate accounting leak, keyed off the real ID space.
            self._allocated[-(cta_id + 1)] = self.fault_leak_on_release
        if self.telemetry is not None:
            self.telemetry.inc("acrf.releases")
            self.telemetry.gauge_set("acrf.free_entries", self.free)
        return freed

    def allocation_of(self, cta_id: int) -> int:
        return self._allocated[cta_id]

    def allocations(self) -> Dict[int, int]:
        """Copy of the per-CTA allocation map (sanitizer view)."""
        return dict(self._allocated)

    def utilization(self) -> float:
        return self.used / self._capacity

    def resize(self, new_capacity: int) -> None:
        """Repartition support: grow or shrink the active region.

        Shrinking below the currently allocated amount is refused -- the
        caller must wait for CTAs to drain first.
        """
        if new_capacity <= 0:
            raise ValueError("ACRF capacity must stay positive")
        if new_capacity < self.used:
            raise MemoryError(
                f"cannot shrink ACRF to {new_capacity}: {self.used} in use"
            )
        self._capacity = new_capacity
