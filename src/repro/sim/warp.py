"""Per-warp execution state.

A warp carries a pre-generated dynamic trace (list of static-instruction
indices; loops unrolled and divergent paths serialized at trace-generation
time) and a small timing context: per-register ready times, a blocked-until
cycle, and synthetic address counters for each memory access pattern.
"""

from __future__ import annotations

import enum
from typing import List

#: Sentinel "blocked forever" used for barrier waits.
FOREVER = 1 << 60


class WarpState(enum.Enum):
    RUNNABLE = "runnable"
    AT_BARRIER = "barrier"
    FINISHED = "finished"


class WarpSim:
    """Timing state of one warp."""

    __slots__ = (
        "warp_id", "global_warp_id", "cta", "trace", "pos",
        "ready_at", "peak_ready", "blocked_until", "state", "sched_seq",
        "chk_pos", "chk_ready",
        "stream_counter", "reuse_counter", "shared_counter",
        "stream_base", "reuse_base", "wmeta",
    )

    def __init__(self, warp_id: int, global_warp_id: int, cta_id: int,
                 trace: List[int], nregs: int = 64) -> None:
        self.warp_id = warp_id                  # index within the CTA
        self.global_warp_id = global_warp_id    # unique across the launch
        self.cta = None                         # attached by the SM
        self.trace = trace
        self.pos = 0
        # Scoreboard: per-register ready cycle, indexed by register id
        # (register ids are small and dense, so a flat list beats a dict on
        # every hot-path read/write; never-written registers read 0 exactly
        # like the old ``dict.get(reg, 0)``).
        self.ready_at: List[int] = [0] * nregs
        # Upper bound on max(ready_at.values()): while it is <= now, no
        # source register can be pending, so the per-issue operand scan is
        # skipped entirely.  Writebacks raise it; it never needs lowering
        # (a stale-high bound only costs one redundant scan).
        self.peak_ready = 0
        # Memoized operand scan: the max source-ready cycle computed for
        # trace position ``chk_pos``.  ``ready_at`` only changes when this
        # warp issues (which advances ``pos``), so a matching position means
        # the cached value is still exact.
        self.chk_pos = -1
        self.chk_ready = 0
        self.blocked_until = 0
        self.state = WarpState.RUNNABLE
        # Stable GTO priority key (attach order); set by the scheduler.
        self.sched_seq = 0
        # Synthetic address-stream state (see workloads.traces).
        self.stream_counter = 0
        self.reuse_counter = 0
        self.shared_counter = 0
        self.stream_base = (global_warp_id & 0xFFFF) << 26
        self.reuse_base = (cta_id & 0xFFFF) << 18 | 1 << 42
        # Per-trace-position metadata (meta tuple per dynamic instruction),
        # installed by the vectorized backend (sim.vectorized.TraceTables);
        # None on the reference/fused paths.
        self.wmeta = None

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.state is WarpState.FINISHED

    def is_runnable(self, now: int) -> bool:
        return (self.state is WarpState.RUNNABLE
                and self.blocked_until <= now)

    def is_blocked(self, now: int) -> bool:
        """Blocked = alive but unable to issue this cycle."""
        return not self.finished and not self.is_runnable(now)

    def remaining_block(self, now: int) -> int:
        """Cycles until this warp could issue again (0 if runnable)."""
        if self.finished:
            return FOREVER
        return max(0, self.blocked_until - now)

    # ------------------------------------------------------------------
    def current_static_index(self) -> int:
        """Static instruction index the warp is stalled at / will issue."""
        return self.trace[self.pos]

    def operands_ready_at(self, srcs) -> int:
        """Cycle when all source registers are available."""
        ready = 0
        ready_at = self.ready_at
        for reg in srcs:
            t = ready_at[reg]
            if t > ready:
                ready = t
        return ready

    def finish(self) -> None:
        self.state = WarpState.FINISHED
        self.blocked_until = FOREVER

    def wait_at_barrier(self) -> None:
        self.state = WarpState.AT_BARRIER
        self.blocked_until = FOREVER

    def release_barrier(self, now: int) -> None:
        if self.state is WarpState.AT_BARRIER:
            self.state = WarpState.RUNNABLE
            self.blocked_until = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Warp(cta={self.cta.cta_id}, id={self.warp_id}, "
                f"pos={self.pos}/{len(self.trace)}, {self.state.value})")
