"""Greedy-then-oldest (GTO) warp scheduler.

Each SM has four schedulers (Table I); warps of active CTAs are distributed
round-robin across them.  A scheduler keeps issuing from its current warp
("greedy") until that warp blocks, then falls back to the oldest runnable
warp it owns (warp lists are kept in launch order, so a linear scan finds the
oldest).

Hot-loop note: after a scan in which *every* warp failed to issue, the
scheduler knows exactly when the earliest of them can wake, so it caches
that cycle (``_sleep_until``) and refuses instantly until then.  The cache
is conservative — any event that could make a warp runnable earlier
(attaching a warp, a barrier release) resets it via :meth:`wake` — so
sleeping is observably identical to rescanning, just without the O(warps)
walk on every blocked cycle.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sim.warp import FOREVER, WarpSim, WarpState

#: The issue callback: (warp, now) -> True if the warp issued an instruction.
IssueFn = Callable[[WarpSim, int], bool]


class GTOScheduler:
    """One of the SM's warp schedulers."""

    __slots__ = ("scheduler_id", "warps", "_current", "_sleep_until",
                 "telemetry")

    def __init__(self, scheduler_id: int) -> None:
        self.scheduler_id = scheduler_id
        self.warps: List[WarpSim] = []
        self._current: Optional[WarpSim] = None
        self._sleep_until = 0
        # MetricsRegistry installed by repro.telemetry (None = off).
        self.telemetry = None

    # ------------------------------------------------------------------
    def add_warp(self, warp: WarpSim) -> None:
        self.warps.append(warp)
        self._sleep_until = 0

    def remove_warp(self, warp: WarpSim) -> None:
        self.warps.remove(warp)
        if self._current is warp:
            self._current = None

    def remove_cta(self, cta_id: int) -> None:
        """Drop all warps belonging to a CTA (it went pending or finished)."""
        self.warps = [w for w in self.warps if w.cta.cta_id != cta_id]
        if self._current is not None and self._current.cta.cta_id == cta_id:
            self._current = None

    def wake(self) -> None:
        """Invalidate the sleep cache (a warp may be runnable earlier)."""
        self._sleep_until = 0

    def sleeping(self, now: int) -> bool:
        """Would :meth:`issue` refuse instantly at ``now``?"""
        return now < self._sleep_until

    @property
    def occupancy(self) -> int:
        return len(self.warps)

    # ------------------------------------------------------------------
    def issue(self, now: int, try_issue: IssueFn) -> bool:
        """Attempt to issue one instruction this cycle.

        Greedy: retry the current warp first.  Then oldest-first over the
        remaining runnable warps.  ``try_issue`` may refuse (dependency not
        ready), in which case it must have set the warp's ``blocked_until``
        so the warp is skipped cheaply for the rest of the stall.
        """
        if now < self._sleep_until:
            return False
        # ``warp.is_runnable(now)`` inlined below: this scan dominates the
        # whole simulator's profile, and attribute tests beat method calls.
        runnable = WarpState.RUNNABLE
        current = self._current
        if current is not None:
            if current.state is WarpState.FINISHED:
                self._current = None
            elif (current.state is runnable and current.blocked_until <= now
                  and try_issue(current, now)):
                return True

        for warp in self.warps:
            if warp is current:
                continue
            if (warp.state is runnable and warp.blocked_until <= now
                    and try_issue(warp, now)):
                self._current = warp
                return True
        self._set_sleep(now)
        return False

    def _set_sleep(self, now: int) -> None:
        """All warps just failed to issue: sleep until the earliest wake.

        A warp still having ``blocked_until <= now`` after a failed scan was
        refused by a policy without a stated retry time (none do today, but
        the guard keeps sleeping conservative): no sleeping, rescan next
        cycle.  Barrier waits (``FOREVER``) are woken by the SM explicitly.
        """
        earliest = FOREVER
        for warp in self.warps:
            blocked = warp.blocked_until
            if blocked <= now:
                return
            if blocked < earliest:
                earliest = blocked
        self._sleep_until = earliest
        if self.telemetry is not None:
            self.telemetry.inc("scheduler.sleep_entries")
            if earliest < FOREVER:
                self.telemetry.observe("scheduler.sleep_cycles",
                                       earliest - now)

    def has_runnable(self, now: int) -> bool:
        return any(warp.is_runnable(now) for warp in self.warps)


class LRRScheduler(GTOScheduler):
    """Loose round-robin: rotate through warps instead of running one
    greedily.  Included for the scheduler ablation (Table I uses GTO)."""

    __slots__ = ("_next",)

    def __init__(self, scheduler_id: int) -> None:
        super().__init__(scheduler_id)
        self._next = 0

    def issue(self, now: int, try_issue: IssueFn) -> bool:
        if now < self._sleep_until:
            return False
        runnable = WarpState.RUNNABLE
        warps = self.warps
        count = len(warps)
        for offset in range(count):
            warp = warps[(self._next + offset) % count]
            if (warp.state is runnable and warp.blocked_until <= now
                    and try_issue(warp, now)):
                self._next = (self._next + offset + 1) % count
                self._current = warp
                return True
        self._set_sleep(now)
        return False


SCHEDULER_KINDS = {
    "gto": GTOScheduler,
    "lrr": LRRScheduler,
}
