#!/usr/bin/env python
"""Bring your own kernel: build a custom CFG, run the compiler liveness
pass, and simulate it under FineReg.

This example shows the library's lower-level API -- the pieces the workload
suite is built from:

1.  Construct a structured control-flow graph by hand (a tiled
    reduce-style kernel: load burst, compute, loop, store).
2.  Run the FineReg compiler support (backward liveness) and inspect the
    per-instruction live bit vectors -- the data the RMU consults when
    spilling a stalled CTA's working set into the PCRF.
3.  Launch the kernel on the simulated GPU under baseline and FineReg.

Run:
    python examples/custom_kernel.py
"""

from repro.config import GPUConfig, TINY
from repro.core.liveness import LivenessAnalysis
from repro.isa.cfg import ControlFlowGraph, EdgeKind
from repro.isa.instructions import AccessPattern, Instruction, Opcode
from repro.isa.kernel import Kernel, LaunchGeometry
from repro.policies.baseline import BaselinePolicy
from repro.policies.finereg import FineRegPolicy
from repro.sim.gpu import GPU
from repro.workloads.traces import AddressModel, TraceProvider


def build_reduce_kernel() -> Kernel:
    """A small tiled-reduction kernel: 8 registers, one main loop."""
    cfg = ControlFlowGraph()
    # Prologue: load the tile base pointer and initialize the accumulator.
    cfg.add_block([
        Instruction(Opcode.LDG, 1, (0,), AccessPattern.REUSE),   # base ptr
        Instruction(Opcode.IALU, 2, (1,)),                       # acc = 0
    ], EdgeKind.FALLTHROUGH, successors=(1,))
    # Loop body: burst-load two elements, accumulate, iterate.
    cfg.add_block([
        Instruction(Opcode.LDG, 3, (1,), AccessPattern.STREAM),
        Instruction(Opcode.LDG, 4, (1,), AccessPattern.STREAM),
        Instruction(Opcode.FALU, 5, (3, 4)),
        Instruction(Opcode.FALU, 2, (2, 5)),                     # acc +=
        Instruction(Opcode.BRA, None, (2,)),
    ], EdgeKind.LOOP_BACK, successors=(1, 2), mean_trip_count=8)
    # Epilogue: write the per-thread partial sum.
    cfg.add_block([
        Instruction(Opcode.STG, None, (2, 1), AccessPattern.REUSE),
        Instruction(Opcode.EXIT),
    ], EdgeKind.EXIT)
    return Kernel(
        name="tiled_reduce",
        cfg=cfg.freeze(),
        geometry=LaunchGeometry(threads_per_cta=128, grid_ctas=24),
        regs_per_thread=8,
    )


def show_liveness(kernel: Kernel) -> None:
    table = LivenessAnalysis(kernel.cfg).run(kernel.regs_per_thread)
    print("Per-instruction live registers (the compiler-generated bit "
          "vectors FineReg stores off-chip):")
    for index, instr in enumerate(kernel.cfg.instructions):
        live = table.live_at_index(index)
        print(f"  {instr!s:38} live={{{', '.join(f'R{r}' for r in live)}}}")
    print(f"Mean live fraction: {table.mean_live_fraction():.1%} of the "
          f"{kernel.regs_per_thread} allocated registers")
    print(f"Off-chip bit-vector storage: {table.storage_bytes} bytes")
    print()


def simulate(kernel: Kernel, policy, label: str):
    config = GPUConfig().with_num_sms(1)
    gpu = GPU(config, kernel, policy,
              TraceProvider(kernel.cfg, seed=7), AddressModel())
    result = gpu.run(max_cycles=TINY.max_cycles)
    print(f"{label:10} IPC={result.ipc:.3f}  cycles={result.cycles}  "
          f"resident CTAs/SM={result.avg_resident_ctas_per_sm:.1f}  "
          f"switches={result.cta_switch_events}")
    return result


def main() -> None:
    kernel = build_reduce_kernel()
    print(f"Kernel '{kernel.name}': {kernel.num_static_instructions} static "
          f"instructions, {kernel.warps_per_cta} warps/CTA, "
          f"{kernel.register_bytes_per_cta // 1024} KB registers/CTA\n")
    show_liveness(kernel)
    base = simulate(kernel, BaselinePolicy, "baseline")
    fine = simulate(kernel, FineRegPolicy, "finereg")
    print(f"\nFineReg speedup: {fine.ipc / base.ipc:.3f}x")


if __name__ == "__main__":
    main()
