"""GPUWattch-style event-count energy model (paper Fig 16)."""

from repro.energy.model import EnergyBreakdown, EnergyConstants, EnergyModel

__all__ = ["EnergyBreakdown", "EnergyConstants", "EnergyModel"]
