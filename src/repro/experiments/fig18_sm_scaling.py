"""Fig 18: scaling the number of SMs.

(a) FineReg keeps a >10% advantage over the baseline from 16 to 128 SMs.
(b) A "Baseline+Resource" design scaled to host the same number of CTAs as
FineReg gains only 3.6-5.3% more but costs 2.4-19.1 MB of extra SRAM,
whereas FineReg needs ~5 KB per SM.

Simulating 16-128 SMs cycle-by-cycle is impractical in Python, so the sweep
uses scaled-down SM counts with the same ratio ladder (the per-SM dynamics
that produce the FineReg advantage are SM-count independent once DRAM
bandwidth scales along, which :meth:`GPUConfig.with_num_sms` ensures).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.config import KB
from repro.core.overhead import finereg_overhead
from repro.experiments.common import ALL_APPS, ExperimentResult
from repro.experiments.parallel import RunRequest
from repro.experiments.report import geomean
from repro.experiments.runner import ExperimentRunner

#: Scaled-down SM ladder standing in for the paper's 16/32/64/128.
SM_LADDER = (1, 2, 4, 8)

#: The paper's SM counts, for the overhead model.
PAPER_SM_LADDER = (16, 32, 64, 128)


def run(runner: ExperimentRunner,
        apps: Sequence[str] = ALL_APPS,
        ladder: Sequence[int] = SM_LADDER) -> ExperimentResult:
    rows = []
    summary = {}
    for num_sms, paper_sms in zip(ladder, PAPER_SM_LADDER):
        config = runner.base_config.with_num_sms(num_sms)
        speedups = []
        extra_resource_rows = []
        baseline_plus = []
        for app in apps:
            base = runner.run(app, "baseline", config=config)
            fine = runner.run(app, "finereg", config=config)
            speedups.append(fine.ipc / base.ipc)
            # Baseline+Resource: scale scheduling + memory so the baseline
            # can host FineReg's resident CTA count.
            ratio = (fine.avg_resident_ctas_per_sm
                     / max(base.avg_resident_ctas_per_sm, 1e-9))
            factor = max(1.0, ratio)
            big = config.with_scheduling_scale(factor) \
                        .with_memory_scale(factor)
            big_result = runner.run(app, "baseline", config=big)
            baseline_plus.append(big_result.ipc / base.ipc)
            # Extra on-chip memory the scaled baseline needs, per SM.
            extra_bytes = (big.register_file_bytes
                           - config.register_file_bytes
                           + big.shared_memory_bytes
                           - config.shared_memory_bytes)
            extra_resource_rows.append(extra_bytes)

        fr = geomean(speedups)
        bp = geomean(baseline_plus)
        mean_extra_mb = (sum(extra_resource_rows) / len(extra_resource_rows)
                         * paper_sms / (1024 * 1024))
        finereg_kb = finereg_overhead().total_kb * paper_sms / 1024
        rows.append([paper_sms, fr, bp, mean_extra_mb, finereg_kb])
        summary[f"finereg_speedup_{paper_sms}sm"] = fr
        summary[f"baseline_resource_speedup_{paper_sms}sm"] = bp
        summary[f"overhead_mb_{paper_sms}sm"] = mean_extra_mb

    return ExperimentResult(
        experiment="fig18",
        title="SM-count scaling: FineReg vs resource-scaled baseline",
        headers=["sms", "finereg_speedup", "baseline+resource_speedup",
                 "extra_sram_mb", "finereg_overhead_mb"],
        rows=rows,
        summary=summary,
        notes=("Paper: FineReg >10% over baseline at every SM count; "
               "Baseline+Resource adds 3.6-5.3% more but needs 2.4-19.1 MB "
               "vs FineReg's tens of KB. SM counts simulated at a scaled "
               "ladder (see module docstring)."),
    )


def plan(runner: ExperimentRunner,
         apps: Sequence[str] = ALL_APPS,
         ladder: Sequence[int] = SM_LADDER):
    """Statically known run-set.  The Baseline+Resource points depend on
    measured CTA ratios, so they run (memoized) during ``run()``."""
    requests = []
    for num_sms in ladder:
        config = runner.base_config.with_num_sms(num_sms)
        for app in apps:
            requests.append(RunRequest.make(app, "baseline", config=config))
            requests.append(RunRequest.make(app, "finereg", config=config))
    return requests


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
