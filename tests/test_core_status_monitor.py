"""Tests for the CTA status monitor (paper V-B, Table IV)."""

import pytest

from repro.core.status_monitor import (
    CTAStatusMonitor,
    ContextLocation,
    RegisterLocation,
)


class TestTableIVEncoding:
    """The 2-bit encodings must match paper Table IV exactly."""

    def test_context_encoding(self):
        assert ContextLocation.NOT_LAUNCHED == 0
        assert ContextLocation.SHARED_MEMORY == 1
        assert ContextLocation.PIPELINE == 2

    def test_register_encoding(self):
        assert RegisterLocation.NOT_LAUNCHED == 0
        assert RegisterLocation.PCRF == 1
        assert RegisterLocation.ACRF == 2

    def test_active_requires_both_fields_two(self):
        monitor = CTAStatusMonitor()
        monitor.launch(0)
        assert monitor.is_active(0)
        monitor.set_context(0, ContextLocation.SHARED_MEMORY)
        assert not monitor.is_active(0)
        monitor.set_context(0, ContextLocation.PIPELINE)
        monitor.set_registers(0, RegisterLocation.PCRF)
        assert not monitor.is_active(0)


class TestLifecycle:
    def test_launch_sets_pipeline_acrf(self):
        monitor = CTAStatusMonitor()
        monitor.launch(7)
        status = monitor.status_of(7)
        assert status.context is ContextLocation.PIPELINE
        assert status.registers is RegisterLocation.ACRF
        assert status.is_active

    def test_untracked_reads_as_not_launched(self):
        monitor = CTAStatusMonitor()
        status = monitor.status_of(99)
        assert status.context is ContextLocation.NOT_LAUNCHED
        assert not status.is_active
        assert not status.is_pending

    def test_retire_frees_slot(self):
        monitor = CTAStatusMonitor(max_ctas=1)
        monitor.launch(1)
        monitor.retire(1)
        monitor.launch(2)  # slot recycled
        assert monitor.resident_count == 1

    def test_capacity_enforced(self):
        monitor = CTAStatusMonitor(max_ctas=2)
        monitor.launch(1)
        monitor.launch(2)
        with pytest.raises(MemoryError):
            monitor.launch(3)

    def test_double_launch_rejected(self):
        monitor = CTAStatusMonitor()
        monitor.launch(1)
        with pytest.raises(KeyError):
            monitor.launch(1)

    def test_set_on_untracked_rejected(self):
        monitor = CTAStatusMonitor()
        with pytest.raises(KeyError):
            monitor.set_context(5, ContextLocation.PIPELINE)

    def test_cannot_set_not_launched(self):
        monitor = CTAStatusMonitor()
        monitor.launch(1)
        with pytest.raises(ValueError):
            monitor.set_context(1, ContextLocation.NOT_LAUNCHED)
        with pytest.raises(ValueError):
            monitor.set_registers(1, RegisterLocation.NOT_LAUNCHED)

    def test_active_and_pending_partitions(self):
        monitor = CTAStatusMonitor()
        monitor.launch(1)
        monitor.launch(2)
        monitor.set_context(2, ContextLocation.SHARED_MEMORY)
        monitor.set_registers(2, RegisterLocation.PCRF)
        assert monitor.active_ctas() == (1,)
        assert monitor.pending_ctas() == (2,)


class TestSwitchPriority:
    """Paper V-B: prefer (context=1, register=2), then (1, 1)."""

    def _pending(self, monitor, cta_id, registers):
        monitor.launch(cta_id)
        monitor.set_context(cta_id, ContextLocation.SHARED_MEMORY)
        monitor.set_registers(cta_id, registers)

    def test_prefers_registers_still_in_acrf(self):
        monitor = CTAStatusMonitor()
        self._pending(monitor, 1, RegisterLocation.PCRF)
        self._pending(monitor, 2, RegisterLocation.ACRF)
        assert monitor.select_switch_candidate([1, 2]) == 2

    def test_falls_back_to_pcrf_candidates(self):
        monitor = CTAStatusMonitor()
        self._pending(monitor, 1, RegisterLocation.PCRF)
        self._pending(monitor, 2, RegisterLocation.PCRF)
        assert monitor.select_switch_candidate([1, 2]) == 1  # oldest

    def test_no_candidates(self):
        monitor = CTAStatusMonitor()
        monitor.launch(1)  # active, not a switch candidate
        assert monitor.select_switch_candidate([1]) is None

    def test_ties_break_by_lowest_id(self):
        monitor = CTAStatusMonitor()
        self._pending(monitor, 9, RegisterLocation.ACRF)
        self._pending(monitor, 3, RegisterLocation.ACRF)
        assert monitor.select_switch_candidate([9, 3]) == 3


class TestStorage:
    def test_storage_bits_match_paper(self):
        # 2 bits/CTA x 128 CTAs per field, two fields = 512 bits (V-F).
        assert CTAStatusMonitor(128).storage_bits == 512
