"""Hierarchical wall-clock span tracing for the campaign tier.

A :class:`Span` is one timed region with a parent: the campaign is the
root, each :class:`~repro.experiments.parallel.RunRequest` is a ``request``
span under it, and sequential work regions (cache lookup, workload build,
engine run, store) are ``phase`` spans.  Phases are sequential by
construction, so the reconciliation invariant checked by
:func:`reconcile_spans` is: **the durations of a parent's phase children
sum to at most the parent's own duration**.  ``request`` spans are exempt
from the sum rule at their parent (pool requests run concurrently) but
their *own* phase children, recorded inside one worker, are sequential and
reconcile normally.

Worker processes record spans with a local :class:`SpanRecorder` and ship
them back as dicts; :meth:`SpanRecorder.merge` grafts them under the
parent-side request span, remapping ids so the merged tree stays
collision-free.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs import clock

#: Span kinds; ``phase`` children participate in the <=-parent sum rule.
SPAN_KINDS = ("campaign", "request", "phase")

#: Slack for the child-sum reconciliation: clock reads around nested
#: context-manager entries/exits are not perfectly nested in float time.
RECONCILE_SLACK_S = 1e-4


class Span:
    """One timed region of campaign work."""

    __slots__ = ("span_id", "parent_id", "name", "kind", "t_start", "t_end",
                 "worker", "attrs")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 kind: str, t_start: float,
                 worker: Optional[int] = None) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.t_start = t_start
        self.t_end: Optional[float] = None
        self.worker = worker
        self.attrs: Dict[str, object] = {}

    @property
    def closed(self) -> bool:
        return self.t_end is not None

    @property
    def duration(self) -> float:
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    def as_dict(self) -> Dict:
        out: Dict[str, object] = {
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "t_start": round(self.t_start, 6),
            "dur_s": round(self.duration, 6) if self.closed else None,
        }
        if self.worker is not None:
            out["worker"] = self.worker
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class SpanRecorder:
    """Creates, nests, and stores spans for one process.

    ``now`` is injectable for deterministic tests; the default is the one
    audited clock module.  The context-manager :meth:`span` nests under the
    current stack top; pool-side request spans (many open concurrently) use
    :meth:`start`/:meth:`finish` with an explicit :meth:`scope`.
    """

    def __init__(self, now: Optional[Callable[[], float]] = None) -> None:
        self._now = now if now is not None else clock.monotonic
        self.spans: List[Span] = []
        self._stack: List[int] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    def current_id(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    def start(self, name: str, kind: str = "phase",
              parent: Optional[int] = None,
              worker: Optional[int] = None) -> Span:
        """Open a span (not pushed on the nesting stack)."""
        if parent is None:
            parent = self.current_id()
        span = Span(self._next_id, parent, name, kind, self._now(),
                    worker=worker)
        self._next_id += 1
        self.spans.append(span)
        return span

    def finish(self, span: Span, **attrs: object) -> Span:
        span.t_end = self._now()
        if attrs:
            span.attrs.update(attrs)
        return span

    def push(self, span: Span) -> None:
        """Make ``span`` the nesting parent until :meth:`pop` (campaign
        open/close spans whose lifetime doesn't fit a ``with`` block)."""
        self._stack.append(span.span_id)

    def pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()

    @contextmanager
    def scope(self, span: Span) -> Iterator[Span]:
        """Make ``span`` the nesting parent for the duration of the block."""
        self._stack.append(span.span_id)
        try:
            yield span
        finally:
            self._stack.pop()

    @contextmanager
    def span(self, name: str, kind: str = "phase",
             **attrs: object) -> Iterator[Span]:
        """Open a nested span for the duration of the block."""
        opened = self.start(name, kind)
        self._stack.append(opened.span_id)
        try:
            yield opened
        finally:
            self._stack.pop()
            self.finish(opened, **attrs)

    # ------------------------------------------------------------------
    def merge(self, span_dicts: Sequence[Dict], parent_id: int,
              worker: Optional[int] = None) -> List[Span]:
        """Graft worker-recorded span dicts under ``parent_id``.

        Ids are reassigned from this recorder's counter; local parent links
        are remapped, and local roots are re-parented to ``parent_id``.
        Worker recorders append parents before children, so a single pass
        suffices.
        """
        mapping: Dict[int, int] = {}
        merged: List[Span] = []
        for entry in span_dicts:
            local_parent = entry.get("parent")
            parent = (mapping[local_parent] if local_parent in mapping
                      else parent_id)
            span = Span(self._next_id, parent, str(entry["name"]),
                        str(entry["kind"]), float(entry["t_start"]),
                        worker=worker)
            self._next_id += 1
            dur = entry.get("dur_s")
            if dur is not None:
                span.t_end = span.t_start + float(dur)
            attrs = entry.get("attrs")
            if attrs:
                span.attrs.update(attrs)
            mapping[int(entry["span"])] = span.span_id
            self.spans.append(span)
            merged.append(span)
        return merged

    def as_dicts(self) -> List[Dict]:
        return [span.as_dict() for span in self.spans]


# ----------------------------------------------------------------------
def reconcile_spans(spans: Sequence[Span],
                    slack_s: float = RECONCILE_SLACK_S) -> List[str]:
    """Structural problems in a span tree (empty list = reconciles).

    Checks: every parent id exists; kinds are known; closed spans have
    ``t_end >= t_start``; and per parent, the summed durations of its
    *phase* children stay within the parent's duration (+``slack_s``).
    """
    problems: List[str] = []
    by_id = {span.span_id: span for span in spans}
    child_phase_sum: Dict[int, float] = {}
    for span in spans:
        label = f"span {span.span_id} ({span.name})"
        if span.kind not in SPAN_KINDS:
            problems.append(f"{label} has unknown kind {span.kind!r}")
        if span.parent_id is not None and span.parent_id not in by_id:
            problems.append(f"{label} references missing parent "
                            f"{span.parent_id}")
            continue
        if not span.closed:
            problems.append(f"{label} was never closed")
            continue
        if span.t_end is not None and span.t_end < span.t_start:
            problems.append(f"{label} ends before it starts")
        if span.kind == "phase" and span.parent_id is not None:
            child_phase_sum[span.parent_id] = \
                child_phase_sum.get(span.parent_id, 0.0) + span.duration
    for parent_id, total in sorted(child_phase_sum.items()):
        parent = by_id.get(parent_id)
        if parent is None or not parent.closed:
            continue
        if total > parent.duration + slack_s:
            problems.append(
                f"phase children of span {parent_id} ({parent.name}) sum to "
                f"{total:.6f}s > parent {parent.duration:.6f}s")
    return problems


def phase_rows(spans: Sequence[Span]) -> List[Tuple[str, str, float]]:
    """(parent name, phase name, seconds) rows for closed phase spans.

    Worker-side phases (whose parents are ``request`` spans) are omitted:
    the campaign-level breakdown reports orchestration phases, not the
    thousands of per-run repeats (those live in the metrics histograms).
    """
    by_id = {span.span_id: span for span in spans}
    rows: List[Tuple[str, str, float]] = []
    for span in spans:
        if span.kind != "phase" or not span.closed:
            continue
        parent = by_id.get(span.parent_id) if span.parent_id is not None \
            else None
        if parent is not None and parent.kind == "request":
            continue
        rows.append((parent.name if parent is not None else "-",
                     span.name, span.duration))
    return rows
