"""RegMutex [17]: inter-warp register time-sharing (VT+RegMutex variant).

The register file is split into a base-register-set (BRS) region -- each warp
statically owns ``brs`` registers -- and a shared register pool (SRP).  When
a warp executes through a region of the program whose live-register demand
exceeds its BRS, it must hold an SRP lease for the excess.  Leases are NOT
released while the warp is stalled on long-latency memory (the pathology the
paper measures in Fig 14): a stalled warp keeps its lease and can starve
runnable warps out of the SRP.

Following the paper's methodology we merge Virtual Thread into RegMutex
(launch-past-the-limit + CTA switching) and expose the SRP/BRS ratio so the
harness can sweep for each application's best operating point.

CTA switching interacts with leases: a CTA that goes pending keeps its SRP
leases (its registers stay resident), which is precisely why contention
builds up under memory-intensive workloads.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.core.liveness import LivenessTable
from repro.policies.virtual_thread import VirtualThreadPolicy

#: Cycles a warp waits before re-requesting SRP space.
SRP_RETRY_INTERVAL = 20

#: Default fraction of the register file dedicated to the SRP.
DEFAULT_SRP_RATIO = 0.28

#: SRP allocation granularity in warp-registers.  RegMutex hands out
#: register *blocks*, not individual registers, so a warp needing any
#: register beyond its BRS occupies at least one whole block.
SRP_BLOCK = 8


class RegMutexPolicy(VirtualThreadPolicy):
    """VT+RegMutex: BRS/SRP register split with lease-based overflow."""

    name = "vt_regmutex"
    needs_issue_hook = True

    def __init__(self, sm, srp_ratio: float = DEFAULT_SRP_RATIO,
                 brs_ratio: float = 0.6) -> None:
        super().__init__(sm)
        if not 0.0 < srp_ratio < 1.0:
            raise ValueError("SRP ratio must be in (0, 1)")
        if not 0.0 < brs_ratio <= 1.0:
            raise ValueError("BRS ratio must be in (0, 1]")
        self.srp_ratio = srp_ratio
        self.brs_ratio = brs_ratio
        total = self.config.rf_warp_registers
        self.srp_capacity = int(total * srp_ratio)
        self.brs_capacity = total - self.srp_capacity
        # Each warp statically owns only ``brs_ratio`` of its architectural
        # registers; the rest must be leased from the SRP on demand.  This
        # is RegMutex's capacity gain: CTAs/SM grows by (1-srp)/brs.
        # Per-launch BRS sizes: each resident kernel's warps own a BRS cut
        # from its own architectural register count.
        launches = sm.gpu.launches
        self._brs_by_index = tuple(
            max(1, math.ceil(l.regs_per_thread * brs_ratio))
            for l in launches)
        self.brs_regs = self._brs_by_index[0]
        self._cta_regs = self.kernel.warps_per_cta * self.brs_regs
        self.rf_capacity_entries = self.brs_capacity
        self.srp_free = self.srp_capacity
        self._leases: Dict[int, int] = {}   # global_warp_id -> held registers
        self._srp_blocked = 0
        self.srp_acquires = 0
        self.srp_denials = 0
        # Per-static-instruction SRP demand: live registers whose index
        # falls above the owning warp's BRS (they physically live in the
        # SRP).  Indexed by the SM's concatenated static-index space.
        liveness: LivenessTable = sm.gpu.liveness
        demand = []
        for launch in launches:
            brs = self._brs_by_index[launch.index]
            base = launch.index_base
            demand.extend(
                bin(liveness.live_at_index(base + i).bits >> brs).count("1")
                for i in range(launch.num_instructions))
        self._extra_demand = tuple(demand)

    def _launch_regs(self, launch) -> int:
        """BRS footprint of one CTA of ``launch`` (the SRP is leased)."""
        return launch.warps_per_cta * self._brs_by_index[launch.index]

    # ------------------------------------------------------------------
    # Per-instruction SRP leasing
    # ------------------------------------------------------------------
    def on_issue(self, warp, static_index: int, now: int) -> bool:
        demand = self._extra_demand[static_index]
        gid = warp.global_warp_id
        held = self._leases.get(gid, 0)
        if demand == 0:
            if held:
                self.srp_free += held
                del self._leases[gid]
            return True
        # Block-granular allocation: round the excess up to whole blocks.
        demand = -(-demand // SRP_BLOCK) * SRP_BLOCK
        if demand <= held:
            return True
        need = demand - held
        if need <= self.srp_free:
            self.srp_free -= need
            self._leases[gid] = demand
            self.srp_acquires += 1
            return True
        # SRP exhausted: the warp must wait and retry.
        warp.blocked_until = now + SRP_RETRY_INTERVAL
        self._srp_blocked += 1
        self.srp_denials += 1
        return False

    # ------------------------------------------------------------------
    def classify_idle(self, dt: int) -> str:
        if self.srp_free == 0 or self._srp_blocked > 0:
            self._srp_blocked = 0
            return "srp"
        return super().classify_idle(dt)

    def on_cta_finished(self, cta, now: int) -> None:
        # Release any leases warps of this CTA still hold.
        for warp in cta.warps:
            held = self._leases.pop(warp.global_warp_id, None)
            if held:
                self.srp_free += held
        super().on_cta_finished(cta, now)

    def extras(self) -> dict:
        return {
            "srp_ratio": self.srp_ratio,
            "srp_acquires": self.srp_acquires,
            "srp_denials": self.srp_denials,
        }
