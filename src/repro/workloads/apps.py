"""Multi-kernel applications: streams drawn from weighted kernel pools.

Concurrent-kernel experiments model an *application* as a set of streams,
each launching one kernel from a pool with a per-kernel coverage weight —
the fraction of the app's work that kernel represents, the way multi-kernel
suites report per-kernel coverage.  :func:`build_app` turns a pool into
co-resident :class:`~repro.sim.launch.LaunchSpec` objects whose grids are
scaled by coverage and which share one address model, so the grids contend
for the same memory hierarchy exactly like a single-kernel run would.

The canned pools in :data:`APP_POOLS` pair Table-II kernels with opposed
resource appetites (register-hungry LB against scheduler-bound KM, the
barrier-synchronized HS against both) — the contention FineReg's
fine-grained reclamation is built for.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.config import GPUConfig, Scale
from repro.isa.kernel import LaunchGeometry
from repro.sim.launch import LaunchSpec
from repro.workloads.generator import WorkloadInstance, build_workload
from repro.workloads.suite import get_spec


@dataclass(frozen=True)
class StreamSpec:
    """One stream of an application: a pool kernel plus launch attributes.

    ``weight`` is the kernel's coverage within the app; grid sizes scale
    with the weight normalized over the pool (mean weight = the kernel's
    standalone grid).  ``priority`` feeds the dispatch arbiter: higher
    values launch first under ``priority`` arbitration.
    """

    abbrev: str
    weight: float = 1.0
    priority: int = 0
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"{self.abbrev}: coverage weight must be > 0")


@dataclass(frozen=True)
class AppPool:
    """A named multi-kernel application (kernel pool + coverage weights)."""

    name: str
    streams: Tuple[StreamSpec, ...]

    def __post_init__(self) -> None:
        if len(self.streams) < 1:
            raise ValueError(f"{self.name}: an app needs at least one stream")

    def coverage(self) -> Tuple[float, ...]:
        """Weights normalized to mean 1.0 (sum = number of streams)."""
        total = sum(stream.weight for stream in self.streams)
        n = len(self.streams)
        return tuple(stream.weight * n / total for stream in self.streams)


#: Canned contended pairings over the Table-II kernels.
APP_POOLS: Dict[str, AppPool] = {
    "hs+lb": AppPool("hs+lb", (StreamSpec("HS"), StreamSpec("LB"))),
    "st+km": AppPool("st+km", (StreamSpec("ST"), StreamSpec("KM"))),
    "lb+km": AppPool("lb+km", (StreamSpec("LB"), StreamSpec("KM"))),
    "hs+st": AppPool("hs+st", (StreamSpec("HS"), StreamSpec("ST"))),
}


def build_app(pool: AppPool, config: GPUConfig, scale: Scale,
              verify: bool = True) -> List[LaunchSpec]:
    """Materialize an app pool into co-launchable specs.

    Each stream's kernel is generated standalone (same CFG, traces and
    liveness as its single-kernel runs), then its grid is rescaled by the
    stream's normalized coverage.  All launches share the first stream's
    address model — :func:`~repro.sim.launch.shared_address_model` enforces
    that the models are interchangeable, and here they are identical.
    """
    instances: List[WorkloadInstance] = []
    for stream in pool.streams:
        instances.append(build_workload(
            get_spec(stream.abbrev), config, scale, verify=verify))
    shared_model = instances[0].address_model
    specs: List[LaunchSpec] = []
    for index, (stream, instance, cover) in enumerate(
            zip(pool.streams, instances, pool.coverage())):
        kernel = instance.kernel
        grid = max(1, round(kernel.geometry.grid_ctas * cover))
        if grid != kernel.geometry.grid_ctas:
            kernel = replace(kernel, geometry=LaunchGeometry(
                threads_per_cta=kernel.geometry.threads_per_cta,
                grid_ctas=grid))
        specs.append(LaunchSpec(
            kernel=kernel,
            trace_provider=instance.trace_provider,
            address_model=shared_model,
            liveness=instance.liveness,
            stream=index,
            priority=stream.priority,
            label=stream.label,
        ))
    return specs


def get_app(name: str) -> AppPool:
    """Look up a canned pool by name (KeyError lists the alternatives)."""
    try:
        return APP_POOLS[name]
    except KeyError:
        known = ", ".join(sorted(APP_POOLS))
        raise KeyError(f"unknown app pool {name!r}; known pools: {known}")
