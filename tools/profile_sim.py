#!/usr/bin/env python
"""Profile one simulation end to end and record the timings.

Runs a single (app, policy) simulation at the chosen scale with the disk
cache bypassed, separates the per-stage costs (workload construction vs.
the simulation proper), repeats the simulation a few times for a stable
best-of wall clock, and takes one cProfile pass for the hot-function
table.  Results land in ``BENCH_sim.json`` (override with ``--out``),
including the speedup against the recorded pre-optimization reference.

A full run also sweeps a per-app x per-policy benchmark ``matrix`` (KM,
HS and LB under every registered policy at the chosen scale) so BENCH
captures throughput beyond the single headline workload, plus a
``backends`` section timing the default benchmark under every engine
backend (reference / fused / vectorized / compiled, see
``repro.sim.backend``) so regressions are caught per backend rather than
only on the default.

``--backend`` pins the engine for the headline run and the matrix
(``auto`` defers to ``REPRO_ENGINE`` / auto resolution).  ``--quick``
skips the cProfile pass, the matrix and the backend sweep for CI smoke
use, and ``--check <committed BENCH>`` exits non-zero when
``sim_cycles_per_s`` regresses more than ``--check-slack`` (default 20%)
below the committed value — compared like-for-like against the committed
``backends`` entry for the selected backend when one is recorded.

Usage::

    PYTHONPATH=src python tools/profile_sim.py [--app KM] [--policy baseline]
        [--scale small] [--repeats 3] [--out BENCH_sim.json] [--top 15]
        [--backend auto|reference|fused|vectorized|compiled]
        [--quick] [--check BENCH_sim.json]
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import SCALES, default_config  # noqa: E402
from repro.experiments.parallel import RunRequest, simulate_request  # noqa: E402
from repro.sim.backend import (ENGINE_NAMES, compiled_available,  # noqa: E402
                               numpy_available, select_backend)
from repro.workloads.generator import build_workload  # noqa: E402
from repro.workloads.suite import get_spec  # noqa: E402

#: Best-of-three wall clock of the default benchmark (small-scale KM under
#: the baseline policy) measured on the pre-optimization simulator, i.e.
#: the tree just before the scheduler sleep-cache landed.  The recorded
#: speedup is only meaningful for that default benchmark.
SEED_REFERENCE = {"app": "KM", "policy": "baseline", "scale": "small",
                  "wall_s": 0.657}


#: Matrix coverage: the three workloads whose goldens span the suite's
#: memory/compute mixes, under every registered policy.
MATRIX_APPS = ("KM", "HS", "LB")


def profile_run(app: str, policy: str, scale_name: str, repeats: int,
                top: int, profile: bool = True, engine=None) -> dict:
    scale = SCALES[scale_name]
    config = default_config(scale)
    request = RunRequest.make(app, policy, engine=engine)

    t0 = time.perf_counter()  # lint: allow[wall-clock] (host benchmark timing)
    instance = build_workload(get_spec(app), config, scale)
    build_s = time.perf_counter() - t0  # lint: allow[wall-clock] (host benchmark timing)

    walls = []
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()  # lint: allow[wall-clock] (host benchmark timing)
        result = simulate_request(scale, config, request, instance=instance)
        walls.append(time.perf_counter() - t0)  # lint: allow[wall-clock] (host benchmark timing)
    best = min(walls)

    hot = []
    if profile:
        profiler = cProfile.Profile()
        profiler.enable()
        simulate_request(scale, config, request, instance=instance)
        profiler.disable()
        stats = pstats.Stats(profiler)
        stats.sort_stats("tottime")
        for func, (cc, nc, tt, ct, __) in sorted(
                stats.stats.items(),
                key=lambda kv: kv[1][2], reverse=True)[:top]:
            filename, line, name = func
            hot.append({
                "function": f"{Path(filename).name}:{line}:{name}",
                "calls": nc,
                "tottime_s": round(tt, 4),
                "cumtime_s": round(ct, 4),
            })

    report = {
        "app": app,
        "policy": policy,
        "scale": scale_name,
        # Resolved engine for the headline run (run-level eligibility can
        # still degrade vectorized -> fused for instrumented runs; the
        # headline benchmark is uninstrumented, so this is what executed).
        "backend": select_backend(engine),
        "stages": {
            "workload_build_s": round(build_s, 4),
            "simulate_walls_s": [round(w, 4) for w in walls],
            "simulate_best_s": round(best, 4),
        },
        "cycles": result.cycles,
        "instructions": result.instructions,
        "sim_cycles_per_s": round(result.cycles / best),
        "hot_functions": hot,
        "seed_reference": SEED_REFERENCE,
    }
    if (app, policy, scale_name) == (SEED_REFERENCE["app"],
                                     SEED_REFERENCE["policy"],
                                     SEED_REFERENCE["scale"]):
        report["speedup_vs_seed"] = round(SEED_REFERENCE["wall_s"] / best, 2)
    return report


def bench_backends(app: str, policy: str, scale_name: str,
                   repeats: int) -> dict:
    """Best-of wall clock of the headline benchmark under every backend.

    Skips ``vectorized`` / ``compiled`` (with a recorded reason) when
    numpy / the C extension is missing so the sweep still completes in a
    degraded environment.
    """
    scale = SCALES[scale_name]
    config = default_config(scale)
    instance = build_workload(get_spec(app), config, scale)
    backends: dict = {}
    for name in ("reference", "fused", "vectorized", "compiled"):
        if name == "vectorized" and not numpy_available():
            backends[name] = {"skipped": "numpy not importable"}
            continue
        if name == "compiled" and not compiled_available():
            backends[name] = {
                "skipped": "compiled extension (_ckernel) not importable"}
            continue
        request = RunRequest.make(app, policy, engine=name)
        result = None
        best = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()  # lint: allow[wall-clock] (host benchmark timing)
            result = simulate_request(scale, config, request,
                                      instance=instance)
            wall = time.perf_counter() - t0  # lint: allow[wall-clock] (host benchmark timing)
            if best is None or wall < best:
                best = wall
        backends[name] = {
            "cycles": result.cycles,
            "best_s": round(best, 4),
            "sim_cycles_per_s": round(result.cycles / best),
        }
    return backends


def bench_matrix(scale_name: str, repeats: int, engine=None) -> dict:
    """Best-of wall clock for every (matrix app, policy) pair."""
    from repro.experiments.runner import POLICIES

    scale = SCALES[scale_name]
    config = default_config(scale)
    matrix: dict = {}
    for app in MATRIX_APPS:
        instance = build_workload(get_spec(app), config, scale)
        row: dict = {}
        for policy in sorted(POLICIES):
            request = RunRequest.make(app, policy, engine=engine)
            result = None
            best = None
            for _ in range(max(1, repeats)):
                t0 = time.perf_counter()  # lint: allow[wall-clock] (host benchmark timing)
                result = simulate_request(scale, config, request,
                                          instance=instance)
                wall = time.perf_counter() - t0  # lint: allow[wall-clock] (host benchmark timing)
                if best is None or wall < best:
                    best = wall
            row[policy] = {
                "cycles": result.cycles,
                "best_s": round(best, 4),
                "sim_cycles_per_s": round(result.cycles / best),
            }
        matrix[app] = row
    return matrix


def check_regression(report: dict, committed_path: Path,
                     slack: float) -> int:
    """Compare the headline throughput against a committed BENCH file.

    Returns 0 when within ``slack`` (fractional allowed drop), 1 on a
    regression or an incomparable baseline.
    """
    committed = json.loads(committed_path.read_text())
    key = ("app", "policy", "scale")
    if tuple(committed.get(k) for k in key) != tuple(report[k] for k in key):
        print(f"check: {committed_path} benchmarks "
              f"{[committed.get(k) for k in key]}, current run is "
              f"{[report[k] for k in key]}; incomparable")
        return 1
    # Like-for-like: when the committed BENCH records a per-backend entry
    # for the backend this run used, compare against that; the flat
    # headline belongs to whatever backend recorded the committed file.
    backend = report.get("backend")
    committed_entry = committed.get("backends", {}).get(backend, {})
    baseline = committed_entry.get("sim_cycles_per_s")
    label = f"committed[{backend}]"
    if baseline is None:
        baseline = committed["sim_cycles_per_s"]
        label = "committed headline"
    current = report["sim_cycles_per_s"]
    floor = baseline * (1.0 - slack)
    verdict = "OK" if current >= floor else "REGRESSION"
    print(f"check[{backend}]: {current:,} cycles/s vs {label} {baseline:,} "
          f"(floor {floor:,.0f}, slack {slack:.0%}): {verdict}")
    return 0 if current >= floor else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="KM")
    parser.add_argument("--policy", default="baseline")
    parser.add_argument("--scale", default="small", choices=sorted(SCALES))
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--top", type=int, default=15,
                        help="hot functions to record")
    parser.add_argument("--out", default="BENCH_sim.json")
    parser.add_argument("--backend", default="auto", choices=ENGINE_NAMES,
                        help="engine backend for the headline run and the "
                             "matrix (auto defers to REPRO_ENGINE)")
    parser.add_argument("--quick", action="store_true",
                        help="skip the cProfile pass, the app x policy "
                             "matrix and the backend sweep (CI smoke mode)")
    parser.add_argument("--check", metavar="BENCH",
                        help="committed BENCH file to compare against; "
                             "exit 1 on a throughput regression")
    parser.add_argument("--check-slack", type=float, default=0.20,
                        help="allowed fractional drop before --check fails")
    parser.add_argument("--matrix-repeats", type=int, default=2)
    parser.add_argument("--history", default="BENCH_history.jsonl",
                        metavar="PATH",
                        help="perf-trajectory history to append this run "
                             "to (inspect with `repro obs "
                             "perf-trajectory`)")
    parser.add_argument("--no-history", action="store_true",
                        help="skip the history append (CI check-only runs)")
    args = parser.parse_args(argv)

    engine = None if args.backend == "auto" else args.backend
    report = profile_run(args.app.upper(), args.policy, args.scale,
                         args.repeats, args.top, profile=not args.quick,
                         engine=engine)
    if not args.quick:
        report["backends"] = bench_backends(
            report["app"], args.policy, args.scale, args.repeats)
        report["matrix"] = bench_matrix(args.scale, args.matrix_repeats,
                                        engine=engine)
    Path(args.out).write_text(json.dumps(report, indent=1) + "\n")

    if not args.no_history:
        # One line per (run, backend): the perf-trajectory input for
        # `repro obs perf-trajectory` (commit, backend, cycles/s) -- the
        # headline under its resolved backend plus each sweep cell under
        # its own, so series never mix engines.
        from repro.obs.trajectory import append_history, entries_from_bench
        entries = entries_from_bench(report)
        for entry in entries:
            append_history(args.history, entry)
        print(f"appended {len(entries)} entries to {args.history}")

    stages = report["stages"]
    print(f"{report['app']} / {report['policy']} / {report['scale']} "
          f"[{report['backend']}]: "
          f"build {stages['workload_build_s']:.3f}s, "
          f"simulate best {stages['simulate_best_s']:.3f}s "
          f"({report['sim_cycles_per_s']:,} cycles/s)")
    for name, cell in report.get("backends", {}).items():
        if "skipped" in cell:
            print(f"backend {name}: skipped ({cell['skipped']})")
        else:
            print(f"backend {name}: best {cell['best_s']:.4f}s "
                  f"({cell['sim_cycles_per_s']:,} cycles/s)")
    if "speedup_vs_seed" in report:
        print(f"speedup vs pre-optimization reference "
              f"({SEED_REFERENCE['wall_s']}s): "
              f"{report['speedup_vs_seed']:.2f}x")
    if "matrix" in report:
        for app, row in report["matrix"].items():
            cells = ", ".join(f"{p}={c['sim_cycles_per_s']:,}"
                              for p, c in row.items())
            print(f"matrix {app}: {cells}")
    print(f"wrote {args.out}")
    if args.check:
        return check_regression(report, Path(args.check), args.check_slack)
    return 0


if __name__ == "__main__":
    sys.exit(main())
