"""Tests for the LRR scheduler variant and scheduler selection."""

import dataclasses

import pytest

from repro.config import GPUConfig
from repro.sim.cta import CTASim
from repro.sim.scheduler import LRRScheduler, SCHEDULER_KINDS
from repro.sim.warp import WarpSim


def make_warps(n):
    warps = [WarpSim(i, i, 0, [0, 1, 2, 3]) for i in range(n)]
    cta = CTASim(0, warps)
    for warp in warps:
        warp.cta = cta
    return warps


def always_issue(warp, now):
    warp.pos += 1
    return True


class TestLRR:
    def test_rotates_instead_of_sticking(self):
        sched = LRRScheduler(0)
        warps = make_warps(3)
        for warp in warps:
            sched.add_warp(warp)
        issued = []
        for cycle in range(6):
            sched.issue(cycle, lambda w, n: (issued.append(w.warp_id),
                                             True)[1])
        # Round-robin order: 0,1,2,0,1,2.
        assert issued == [0, 1, 2, 0, 1, 2]

    def test_skips_blocked_warps(self):
        sched = LRRScheduler(0)
        warps = make_warps(3)
        for warp in warps:
            sched.add_warp(warp)
        warps[1].blocked_until = 100
        issued = []
        for cycle in range(4):
            sched.issue(cycle, lambda w, n: (issued.append(w.warp_id),
                                             True)[1])
        assert 1 not in issued

    def test_no_runnable_returns_false(self):
        sched = LRRScheduler(0)
        for warp in make_warps(2):
            warp.blocked_until = 50
            sched.add_warp(warp)
        assert not sched.issue(0, always_issue)


class TestSchedulerSelection:
    def test_registry(self):
        assert set(SCHEDULER_KINDS) == {"gto", "lrr"}

    def test_config_validates_choice(self):
        with pytest.raises(ValueError):
            GPUConfig(warp_scheduling="fifo")

    def test_sm_uses_configured_scheduler(self, tiny_runner):
        config = dataclasses.replace(tiny_runner.base_config,
                                     warp_scheduling="lrr")
        result = tiny_runner.run("KM", "baseline", config=config)
        base = tiny_runner.run("KM", "baseline")
        # Same work, different interleaving.
        assert result.instructions == base.instructions
        assert result.cycles != base.cycles or result.ipc == base.ipc

    def test_gto_clusters_stalls_at_least_as_fast(self, tiny_runner):
        """GTO's greedy per-warp progress drives whole-CTA stalls, the
        property FineReg's trigger relies on (ablation rationale)."""
        config = dataclasses.replace(tiny_runner.base_config,
                                     warp_scheduling="lrr")
        lrr = tiny_runner.run("KM", "baseline", config=config)
        gto = tiny_runner.run("KM", "baseline")
        if gto.mean_stall_latency and lrr.mean_stall_latency:
            assert gto.mean_stall_latency \
                <= lrr.mean_stall_latency * 3.0
