#!/usr/bin/env python
"""Policy shootout: compare all five register-file management schemes.

Reproduces a slice of the paper's Figs 12/13 interactively: for a chosen
set of workloads, run Baseline, Virtual Thread, Reg+DRAM (Zorua-like, with
the per-app pending-CTA sweep), VT+RegMutex (with the SRP-ratio sweep), and
FineReg, then print normalized IPC and CTA residency side by side.

Run:
    python examples/policy_shootout.py [APP ...]

Defaults to one memory-intensive Type-S app (KM), one scheduler-bound app
(CS), and one register-bound Type-R app (LB).
"""

import sys

from repro.config import SCALES
from repro.experiments.common import main_config_results
from repro.experiments.report import format_table, geomean
from repro.experiments.runner import ExperimentRunner

CONFIG_LABELS = (
    ("baseline", "Base"),
    ("virtual_thread", "VT"),
    ("reg_dram", "Reg+DRAM"),
    ("vt_regmutex", "VT+RegMutex"),
    ("finereg", "FineReg"),
)


def main() -> None:
    apps = [a.upper() for a in sys.argv[1:]] or ["KM", "CS", "LB"]
    runner = ExperimentRunner(scale=SCALES["tiny"])

    perf_rows = []
    cta_rows = []
    speedups = {key: [] for key, __ in CONFIG_LABELS if key != "baseline"}
    for app in apps:
        results = main_config_results(runner, app)
        base = results["baseline"]
        perf_rows.append(
            [app] + [results[key].ipc / base.ipc
                     for key, __ in CONFIG_LABELS])
        cta_rows.append(
            [app] + [results[key].avg_resident_ctas_per_sm
                     for key, __ in CONFIG_LABELS])
        for key in speedups:
            speedups[key].append(results[key].ipc / base.ipc)

    headers = ["app"] + [label for __, label in CONFIG_LABELS]
    print(format_table(headers, perf_rows, title="Normalized IPC"))
    print()
    print(format_table(headers, cta_rows,
                       title="Average resident CTAs per SM", precision=1))
    print()
    print("Geomean speedups over baseline:")
    for key, label in CONFIG_LABELS:
        if key == "baseline":
            continue
        print(f"  {label:12} {geomean(speedups[key]):.3f}x")
    print()
    print("Paper reference (Fig 13, full suite, GPGPU-Sim): "
          "VT +12-14%, Reg+DRAM ~+18%, VT+RegMutex ~+24%, FineReg +32.8%.")


if __name__ == "__main__":
    main()
