"""Tests for the `repro obs` / `repro cache stats` surfaces and the
perf-trajectory analytics behind them."""

import json

import pytest

from repro.config import TINY
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import RunRequest
from repro.experiments.runner import ExperimentRunner
from repro.obs.cli import run_obs
from repro.obs.session import ObsSession
from repro.obs.trajectory import (HISTORY_SCHEMA_VERSION, append_history,
                                  check_history_entry, detect_regressions,
                                  entries_from_bench, entry_from_bench,
                                  git_commit, load_history,
                                  trajectory_report)


@pytest.fixture()
def campaign_log(tmp_path):
    """A real (tiny) campaign log: two requests, one pooled worker."""
    cache = ResultCache(root=tmp_path / "cache", enabled=True)
    runner = ExperimentRunner(scale=TINY, cache=cache)
    log = tmp_path / "obs.jsonl"
    session = ObsSession(log_path=str(log))
    runner.attach_obs(session)
    session.campaign_begin(total=2, jobs=2, label="cli-test")
    runner.run_many([RunRequest.make("KM", "baseline"),
                     RunRequest.make("KM", "finereg")], jobs=2)
    session.campaign_end()
    session.close()
    return log


def history_entry(commit, cycles, **overrides):
    entry = {"v": HISTORY_SCHEMA_VERSION, "commit": commit, "app": "KM",
             "policy": "baseline", "scale": "small",
             "backend": "vectorized", "sim_cycles_per_s": cycles}
    entry.update(overrides)
    return entry


class TestRunObs:
    def test_summarize_text_output(self, campaign_log, capsys):
        assert run_obs("summarize", log=str(campaign_log)) == 0
        out = capsys.readouterr().out
        assert "campaign: cli-test (2/2 runs" in out
        assert "hit rate" in out or "0 hits" in out
        assert "spans reconcile: ok" in out

    def test_summarize_json_output(self, campaign_log, capsys):
        assert run_obs("summarize", log=str(campaign_log),
                       as_json=True) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["campaign"]["completed"] == 2
        assert payload["reconcile"] == []

    def test_summarize_strict_fails_on_broken_spans(self, tmp_path,
                                                    capsys, campaign_log):
        # Point one closed span at a parent that never existed: the tree
        # stays schema-valid but no longer reconciles.
        lines = []
        for line in campaign_log.read_text().splitlines():
            event = json.loads(line)
            if event["ev"] == "span_close" \
                    and event.get("parent") is not None:
                event["parent"] = 9999
            lines.append(json.dumps(event, separators=(",", ":")))
        broken = tmp_path / "broken.jsonl"
        broken.write_text("\n".join(lines) + "\n")
        assert run_obs("summarize", log=str(broken)) == 0
        assert run_obs("summarize", log=str(broken), strict=True) == 1

    def test_tail_prints_last_events(self, campaign_log, capsys):
        assert run_obs("tail", log=str(campaign_log), last=5) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 5
        assert "campaign_end" in lines[-1]

    def test_tail_marks_invalid_lines(self, tmp_path, capsys):
        log = tmp_path / "partial.jsonl"
        log.write_text('{"v":1,"t":0.0,"ev":"worker_start","worker":1}\n'
                       '{"truncated mid-wri\n')
        assert run_obs("tail", log=str(log)) == 0
        out = capsys.readouterr().out
        assert "worker_start" in out
        assert "[invalid:" in out

    def test_perfetto_export_validates_and_writes(self, campaign_log,
                                                  tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert run_obs("perfetto", log=str(campaign_log),
                       out=str(out_path)) == 0
        payload = json.loads(out_path.read_text())
        assert payload["traceEvents"], "trace must carry span events"
        from repro.telemetry.schema import check_trace_payload
        assert check_trace_payload(payload) == []
        assert "ui.perfetto.dev" in capsys.readouterr().out

    def test_perfetto_default_out_derives_from_log(self, campaign_log,
                                                   capsys):
        assert run_obs("perfetto", log=str(campaign_log)) == 0
        assert campaign_log.with_suffix(".perfetto.json").exists()

    def test_malformed_log_is_rejected_with_lines(self, tmp_path, capsys):
        log = tmp_path / "bad.jsonl"
        log.write_text("junk\n")
        assert run_obs("summarize", log=str(log)) == 1
        out = capsys.readouterr().out
        assert "invalid obs log" in out
        assert "line 1" in out

    def test_log_actions_require_a_log(self, campaign_log, capsys):
        assert run_obs("summarize") == 2
        assert run_obs("unknown-action", log=str(campaign_log)) == 2
        assert run_obs("summarize", log="does/not/exist.jsonl") == 1


class TestPerfTrajectory:
    def test_report_lists_series_and_flags_regressions(self, tmp_path,
                                                       capsys):
        history = tmp_path / "hist.jsonl"
        append_history(str(history), history_entry("aaaa111", 100_000))
        append_history(str(history), history_entry("bbbb222", 70_000))
        assert run_obs("perf-trajectory", history=str(history)) == 0
        out = capsys.readouterr().out
        assert "KM/baseline/small/vectorized" in out
        assert "REGRESSION" in out
        # Strict mode turns the regression into a non-zero exit.
        assert run_obs("perf-trajectory", history=str(history),
                       strict=True) == 1

    def test_json_output_and_threshold(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        append_history(str(history), history_entry("aaaa111", 100_000))
        append_history(str(history), history_entry("bbbb222", 85_000))
        assert run_obs("perf-trajectory", history=str(history),
                       as_json=True) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressions"] == [], "15% drop within 20% slack"
        assert run_obs("perf-trajectory", history=str(history),
                       threshold=0.10, strict=True, as_json=True) == 1

    def test_missing_history_is_reported(self, tmp_path, capsys):
        assert run_obs("perf-trajectory",
                       history=str(tmp_path / "none.jsonl")) == 1
        assert "no history" in capsys.readouterr().out

    def test_committed_history_file_is_valid(self, capsys):
        """The repo ships a seeded BENCH_history.jsonl; it must load."""
        from pathlib import Path
        root = Path(__file__).resolve().parent.parent
        entries = load_history(str(root / "BENCH_history.jsonl"))
        assert entries, "seeded history must carry at least one entry"
        assert detect_regressions(entries) == []


class TestTrajectoryModule:
    def test_detect_regressions_is_per_series_and_consecutive(self):
        entries = [
            history_entry("c1", 100_000),
            history_entry("c1", 500_000, app="HS"),  # other series
            history_entry("c2", 75_000),             # -25%: regression
            history_entry("c3", 74_000),             # -1.3%: fine
            history_entry("c2", 490_000, app="HS"),  # -2%: fine
        ]
        regs = detect_regressions(entries, threshold=0.20)
        assert len(regs) == 1
        assert regs[0]["series"] == "KM/baseline/small/vectorized"
        assert regs[0]["prev_commit"] == "c1"
        assert regs[0]["commit"] == "c2"
        assert regs[0]["drop"] == 0.25

    def test_trajectory_report_shows_net_change(self):
        entries = [history_entry("c1", 100_000),
                   history_entry("c2", 110_000)]
        lines = trajectory_report(entries)
        assert any("+10.0% over 2 entries" in line for line in lines)

    def test_append_rejects_invalid_entries(self, tmp_path):
        with pytest.raises(ValueError, match="refusing to append"):
            append_history(str(tmp_path / "h.jsonl"),
                           {"v": HISTORY_SCHEMA_VERSION})
        assert not (tmp_path / "h.jsonl").exists()

    def test_load_rejects_damaged_history(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="line 1"):
            load_history(str(path))

    def test_entry_from_bench_extracts_identity_and_throughput(self):
        bench = {"app": "KM", "policy": "baseline", "scale": "small",
                 "backend": "fused", "sim_cycles_per_s": 123456,
                 "stages": {"simulate_best_s": 0.5}}
        entry = entry_from_bench(bench, commit="abc1234")
        assert entry == {"v": HISTORY_SCHEMA_VERSION, "commit": "abc1234",
                         "app": "KM", "policy": "baseline",
                         "scale": "small", "backend": "fused",
                         "sim_cycles_per_s": 123456, "best_s": 0.5}
        assert not entry_from_bench(bench, commit="x").get("missing")

    def test_entries_from_bench_fans_out_per_backend(self):
        bench = {"app": "KM", "policy": "baseline", "scale": "small",
                 "backend": "compiled", "sim_cycles_per_s": 600_000,
                 "stages": {"simulate_best_s": 0.1},
                 "backends": {
                     "reference": {"sim_cycles_per_s": 40_000,
                                   "best_s": 1.5},
                     "vectorized": {"sim_cycles_per_s": 250_000,
                                    "best_s": 0.24},
                     # Duplicates the headline backend: omitted.
                     "compiled": {"sim_cycles_per_s": 590_000,
                                  "best_s": 0.101},
                     "fused": {"skipped": "whatever"},
                 }}
        entries = entries_from_bench(bench, commit="abc1234")
        assert [(e["backend"], e["sim_cycles_per_s"]) for e in entries] == [
            ("compiled", 600_000), ("reference", 40_000),
            ("vectorized", 250_000)]
        assert all(not check_history_entry(e) for e in entries)

    def test_backend_switch_does_not_cross_trigger_regressions(self):
        """An ``auto`` resolution flip (vectorized -> compiled) starts a
        new series; the slower vectorized trajectory and the faster
        compiled one never compare against each other."""
        entries = [
            history_entry("c1", 250_000),  # backend=vectorized
            history_entry("c2", 600_000, backend="compiled"),
            history_entry("c2", 245_000),  # vectorized sweep leg
            history_entry("c3", 595_000, backend="compiled"),
        ]
        assert detect_regressions(entries, threshold=0.20) == []
        # ... while a genuine within-series drop still fires.
        entries.append(history_entry("c4", 100_000, backend="compiled"))
        regs = detect_regressions(entries, threshold=0.20)
        assert [r["series"] for r in regs] == [
            "KM/baseline/small/compiled"]

    def test_git_commit_never_raises(self, tmp_path):
        assert git_commit(cwd=str(tmp_path)) == "unknown"
        assert isinstance(git_commit(), str)


class TestCacheStatsCli:
    def _seed_cache(self, tmp_path, monkeypatch):
        root = tmp_path / "cache"
        cache = ResultCache(root=root, enabled=True)
        runner = ExperimentRunner(scale=TINY, cache=cache)
        runner.run("KM", "baseline")
        monkeypatch.setenv("REPRO_CACHE", "on")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
        return cache

    def test_stats_table_reports_entries_and_schema(self, tmp_path,
                                                    monkeypatch, capsys):
        from repro.cli import main
        self._seed_cache(tmp_path, monkeypatch)
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "schema v" in out

    def test_stats_json_with_log_counters(self, tmp_path, monkeypatch,
                                          capsys):
        from repro.cli import main
        cache = self._seed_cache(tmp_path, monkeypatch)
        # A warm lookup recorded through an obs log.
        log = tmp_path / "obs.jsonl"
        session = ObsSession(log_path=str(log))
        warm = ExperimentRunner(
            scale=TINY, cache=ResultCache(root=cache.root, enabled=True))
        warm.attach_obs(session)
        warm.run("KM", "baseline")
        session.close()
        assert main(["cache", "stats", "--log", str(log),
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 0
        assert stats["counters_from"] == str(log)
        assert stats["total_bytes"] > 0
        assert list(stats["schema_versions"])

    def test_obs_subcommand_wires_through_main(self, campaign_log,
                                               capsys):
        from repro.cli import main
        assert main(["obs", "summarize", str(campaign_log)]) == 0
        assert "cli-test" in capsys.readouterr().out
