"""Orchestration-tier observability (`repro.obs`).

Where `repro.telemetry` records what one *simulation* did cycle by cycle,
`repro.obs` records what a *campaign* did second by second: hierarchical
wall-clock spans (campaign -> request -> phases), a schema-validated JSONL
event log (cache hit/miss/store, worker lifecycle, heartbeats), campaign
metrics on the PR-4 `MetricsRegistry`, live progress with ETA and stall
detection, and a `repro obs` CLI that summarizes/tails a log, exports the
spans to Perfetto, and tracks the perf trajectory across commits.

The PR-4 invariant carries over verbatim: observability is observation-only
(an instrumented campaign produces byte-identical SimResults and cache
entries) and the disabled path costs one ``is not None`` check per site.
All host-clock reads are confined to :mod:`repro.obs.clock` (lint-audited,
like ``telemetry.selfprof``).  See docs/TELEMETRY.md "Orchestration
observability".
"""

from repro.obs.session import (  # noqa: F401
    OBS_ENV,
    OBS_LOG_ENV,
    ObsSession,
    WorkerObs,
    obs_enabled,
)
