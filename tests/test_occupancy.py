"""Tests for the analytical occupancy calculator."""

import pytest

from repro.config import GPUConfig
from repro.occupancy import (
    KernelFootprint,
    Limit,
    baseline_occupancy,
    finereg_occupancy,
    occupancy_report,
    virtual_thread_occupancy,
)
from repro.workloads.suite import ALL_SPECS, get_spec


def fp_of(spec):
    return KernelFootprint(
        threads_per_cta=spec.threads_per_cta,
        regs_per_thread=spec.regs_per_thread,
        shmem_per_cta=spec.shmem_per_cta,
        live_fraction=spec.live_fraction,
    )


class TestValidation:
    def test_bad_threads(self):
        with pytest.raises(ValueError):
            KernelFootprint(threads_per_cta=100, regs_per_thread=8)

    def test_bad_live_fraction(self):
        with pytest.raises(ValueError):
            KernelFootprint(threads_per_cta=64, regs_per_thread=8,
                            live_fraction=0.0)

    def test_live_registers_rounded_up(self):
        fp = KernelFootprint(64, 10, live_fraction=0.33)
        assert fp.live_warp_registers_per_cta == 7  # ceil(20 * 0.33)


class TestBaseline:
    def test_register_bound_kernel(self):
        fp = fp_of(get_spec("LB"))  # 4 warps x 48 regs = 192 entries
        occ = baseline_occupancy(fp, GPUConfig())
        assert occ.resident == 2048 // 192
        assert occ.binding is Limit.REGISTERS
        assert occ.pending == 0

    def test_scheduler_bound_kernel(self):
        fp = fp_of(get_spec("KM"))
        occ = baseline_occupancy(fp, GPUConfig())
        assert occ.binding in (Limit.CTA_SLOTS, Limit.WARP_SLOTS,
                               Limit.THREAD_SLOTS)

    def test_shmem_bound_kernel(self):
        fp = fp_of(get_spec("TA"))
        occ = baseline_occupancy(fp, GPUConfig())
        assert occ.binding is Limit.SHARED_MEMORY


class TestVirtualThread:
    def test_type_s_gains_residency(self):
        fp = fp_of(get_spec("KM"))
        base = baseline_occupancy(fp, GPUConfig())
        vt = virtual_thread_occupancy(fp, GPUConfig())
        assert vt.resident > base.resident
        assert vt.active == base.active

    def test_type_r_gains_nothing(self):
        fp = fp_of(get_spec("LB"))
        base = baseline_occupancy(fp, GPUConfig())
        vt = virtual_thread_occupancy(fp, GPUConfig())
        assert vt.resident == base.resident


class TestFineReg:
    def test_beats_virtual_thread_everywhere(self):
        config = GPUConfig()
        for spec in ALL_SPECS:
            fp = fp_of(spec)
            vt = virtual_thread_occupancy(fp, config)
            fr = finereg_occupancy(fp, config)
            assert fr.resident >= min(vt.resident, 128), spec.abbrev

    def test_halved_acrf_halves_actives_for_type_r(self):
        fp = fp_of(get_spec("LB"))
        config = GPUConfig()
        base = baseline_occupancy(fp, config)
        fr = finereg_occupancy(fp, config)
        assert fr.active == config.acrf_entries \
            // fp.warp_registers_per_cta
        assert fr.active < base.active

    def test_live_fraction_drives_pending_capacity(self):
        lean = KernelFootprint(128, 32, live_fraction=0.2)
        fat = KernelFootprint(128, 32, live_fraction=0.8)
        config = GPUConfig()
        assert finereg_occupancy(lean, config).pending \
            > finereg_occupancy(fat, config).pending

    def test_residency_cap_binds_tiny_kernels(self):
        fp = KernelFootprint(32, 2, live_fraction=0.5)
        occ = finereg_occupancy(fp, GPUConfig())
        assert occ.resident <= 128
        assert occ.binding is Limit.RESIDENCY

    def test_matches_simulated_residency_direction(self, tiny_runner):
        """The analytical model must agree with simulation on who gains."""
        for app in ("KM", "LB"):
            spec = get_spec(app)
            fp = fp_of(spec)
            config = GPUConfig()
            analytic_gain = (finereg_occupancy(fp, config).resident
                             / baseline_occupancy(fp, config).resident)
            base = tiny_runner.run(app, "baseline")
            fine = tiny_runner.run(app, "finereg")
            simulated_gain = (fine.max_resident_ctas
                              / base.max_resident_ctas)
            assert (analytic_gain > 1.1) == (simulated_gain > 1.05), app


class TestReport:
    def test_report_renders(self):
        text = occupancy_report(fp_of(get_spec("SG")))
        assert "finereg" in text
        assert "bound by" in text
