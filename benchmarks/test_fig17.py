"""Bench: regenerate paper Fig 17 (ACRF/PCRF split sensitivity)."""

from conftest import regenerate
from repro.experiments import fig17_rf_sensitivity


def test_fig17_rf_split_sensitivity(benchmark, runner):
    result = regenerate(benchmark, fig17_rf_sensitivity.run, runner)
    s = result.summary
    # Shape: the balanced 128/128 split beats both extremes (paper:
    # 64/192 loses 12.9%, 160/96 loses 5.4%).
    assert s["speedup_128_128"] >= s["speedup_64_192"]
    assert s["speedup_128_128"] >= s["speedup_192_64"] - 0.02
