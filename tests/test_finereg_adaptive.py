"""Tests for the adaptive ACRF/PCRF repartitioning extension."""

import pytest

from repro.config import GPUConfig, TINY
from repro.core.acrf import ACRFAllocator
from repro.core.pcrf import PCRF
from repro.policies.finereg_adaptive import (
    AdaptiveFineRegPolicy,
    MIN_REGION,
    REPARTITION_STEP,
)
from repro.sim.gpu import GPU
from repro.workloads.generator import build_workload
from repro.workloads.suite import get_spec


class TestResizePrimitives:
    def test_acrf_grow_and_shrink(self):
        acrf = ACRFAllocator(256)
        acrf.allocate(1, 100)
        acrf.resize(512)
        assert acrf.capacity == 512
        acrf.resize(128)
        assert acrf.capacity == 128
        with pytest.raises(MemoryError):
            acrf.resize(64)   # below the 100 in use

    def test_acrf_resize_validates(self):
        with pytest.raises(ValueError):
            ACRFAllocator(64).resize(0)

    def test_pcrf_grow(self):
        pcrf = PCRF(64)
        pcrf.spill(1, [(0, 0)])
        pcrf.resize(128)
        assert pcrf.capacity == 128
        assert pcrf.free_entries == 127
        assert pcrf.restore(1) == ((0, 0),)

    def test_pcrf_shrink_requires_free_top(self):
        pcrf = PCRF(64)
        pcrf.spill(1, [(0, r) for r in range(4)])  # slots 0-3
        pcrf.resize(32)
        assert pcrf.capacity == 32
        assert pcrf.free_entries == 28

    def test_pcrf_shrink_refused_when_top_occupied(self):
        pcrf = PCRF(8)
        pcrf.spill(1, [(0, r) for r in range(8)])  # fully occupied
        with pytest.raises(MemoryError):
            pcrf.resize(4)

    def test_pcrf_resize_respects_pointer_width(self):
        with pytest.raises(ValueError):
            PCRF(64).resize(2048)


class TestAdaptivePolicy:
    def _run(self, app):
        config = GPUConfig().with_num_sms(1)
        instance = build_workload(get_spec(app), config, TINY)
        gpu = GPU(config, instance.kernel, AdaptiveFineRegPolicy,
                  instance.trace_provider, instance.address_model,
                  liveness=instance.liveness)
        result = gpu.run(max_cycles=TINY.max_cycles)
        return gpu.sms[0].policy, result

    def test_completes_correctly(self):
        policy, result = self._run("KM")
        assert not result.timed_out
        assert result.completed_ctas > 0
        # Conservation still holds after any repartitioning.
        assert policy.acrf.used == 0
        assert policy.pcrf.used_entries == 0

    def test_total_capacity_is_invariant(self):
        policy, __ = self._run("LB")
        total = policy.acrf.capacity + policy.pcrf.capacity
        assert total == GPUConfig().rf_warp_registers

    def test_regions_respect_minimum(self):
        for app in ("KM", "LB", "LI"):
            policy, __ = self._run(app)
            assert policy.acrf.capacity >= MIN_REGION
            assert policy.pcrf.capacity >= MIN_REGION

    def test_step_granularity(self):
        policy, __ = self._run("SG")
        drift = abs(policy.acrf.capacity - GPUConfig().acrf_entries)
        assert drift % REPARTITION_STEP == 0

    def test_extras_report_repartitions(self):
        policy, __ = self._run("KM")
        extras = policy.extras()
        assert "repartitions_to_acrf" in extras
        assert "repartitions_to_pcrf" in extras

    def test_runner_integration(self, tiny_runner):
        result = tiny_runner.run("KM", "finereg_adaptive")
        base = tiny_runner.run("KM", "baseline")
        assert result.instructions == base.instructions
        assert result.policy == "finereg_adaptive"
