"""Tests for the experiment runner, report helpers, and the figure modules
(smoke runs over a reduced app set at tiny scale)."""

import pytest

from repro.config import TINY
from repro.experiments import (
    fig02_resources,
    fig03_cta_overhead,
    fig04_case_study,
    fig05_register_usage,
    fig12_concurrent_ctas,
    fig13_performance,
    fig14_rf_stalls,
    fig15_memory_traffic,
    fig16_energy,
    fig17_rf_sensitivity,
    fig18_sm_scaling,
    fig19_unified_memory,
    table03_stall_time,
)
from repro.experiments.common import best_reg_dram, best_regmutex
from repro.experiments.report import (
    arithmean,
    format_table,
    geomean,
    normalize_to,
)
from repro.experiments.runner import ExperimentRunner

APPS = ("KM", "LB")


class TestReportHelpers:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([])

    def test_arithmean(self):
        assert arithmean([1.0, 3.0]) == 2.0

    def test_normalize_to(self):
        out = normalize_to({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["x", 1.23456]],
                            title="T", precision=2)
        assert "T" in text
        assert "1.23" in text
        assert "1.235" not in text


class TestRunner:
    def test_memoization(self, tiny_runner):
        first = tiny_runner.run("KM", "baseline")
        second = tiny_runner.run("KM", "baseline")
        assert first is second

    def test_distinct_configs_not_conflated(self, tiny_runner):
        base = tiny_runner.run("KM", "baseline")
        scaled = tiny_runner.run(
            "KM", "baseline",
            config=tiny_runner.base_config.with_memory_scale(2.0))
        assert base is not scaled

    def test_unknown_policy(self, tiny_runner):
        with pytest.raises(KeyError):
            tiny_runner.run("KM", "nonsense")

    def test_unknown_app(self, tiny_runner):
        with pytest.raises(KeyError):
            tiny_runner.run("ZZ", "baseline")

    def test_workload_grid_independent_of_resource_scaling(self, tiny_runner):
        plain = tiny_runner.workload("KM")
        scaled = tiny_runner.workload(
            "KM", tiny_runner.base_config.with_memory_scale(2.0))
        assert plain is scaled

    def test_sweeps(self, tiny_runner):
        rd = best_reg_dram(tiny_runner, "KM", limits=(0, 2))
        vt = tiny_runner.run("KM", "virtual_thread")
        assert rd.ipc >= vt.ipc * 0.999  # limit 0 == VT is the floor
        rm, ratio = best_regmutex(tiny_runner, "KM", ratios=(0.2, 0.35))
        assert ratio in (0.2, 0.35)


class TestFigureModules:
    """Each module must run end to end and produce its summary keys."""

    def test_fig02(self, tiny_runner):
        res = fig02_resources.run(tiny_runner, apps=APPS)
        assert "type_s_sched_x2" in res.summary
        assert len(res.rows) == len(APPS)

    def test_fig03(self, tiny_runner):
        res = fig03_cta_overhead.run(tiny_runner)
        assert len(res.rows) == 18
        assert 0.7 < res.summary["register_share"] <= 1.0

    def test_fig04(self, tiny_runner):
        res = fig04_case_study.run(tiny_runner)
        labels = [row[0] for row in res.rows]
        assert labels == ["Baseline", "Full RF", "Full RF + DRAM", "Ideal"]
        assert res.summary["full_rf_speedup"] > 0

    def test_fig05(self, tiny_runner):
        res = fig05_register_usage.run(tiny_runner, apps=APPS)
        assert 0.0 < res.summary["mean_usage"] <= 1.0
        for __, low, mean, high in res.rows:
            assert 0.0 <= low <= mean <= high <= 1.0

    def test_table03(self, tiny_runner):
        res = table03_stall_time.run(tiny_runner, apps=APPS)
        assert res.summary["apps_with_stalls"] >= 1

    def test_fig12(self, tiny_runner):
        res = fig12_concurrent_ctas.run(tiny_runner, apps=APPS)
        assert res.summary["finereg_cta_ratio"] >= 1.0

    def test_fig13(self, tiny_runner):
        res = fig13_performance.run(tiny_runner, apps=APPS)
        assert "finereg_speedup" in res.summary
        # Baseline column is exactly 1.0 by construction.
        for row in res.rows:
            assert row[1] == pytest.approx(1.0)

    def test_fig14(self, tiny_runner):
        res = fig14_rf_stalls.run(tiny_runner, apps=("KM",),
                                  ratio_apps=("KM",))
        assert 0.0 <= res.summary["finereg_stall_fraction"] <= 1.0

    def test_fig15(self, tiny_runner):
        res = fig15_memory_traffic.run(tiny_runner, apps=("NW",))
        assert res.summary["reg_dram_traffic_ratio"] >= \
            res.summary["virtual_thread_traffic_ratio"] * 0.9

    def test_fig16(self, tiny_runner):
        res = fig16_energy.run(tiny_runner, apps=APPS)
        assert res.summary["finereg_energy_ratio"] > 0

    def test_fig17(self, tiny_runner):
        res = fig17_rf_sensitivity.run(tiny_runner, apps=("KM",))
        assert len(res.rows) == 5

    def test_fig18(self, tiny_runner):
        res = fig18_sm_scaling.run(tiny_runner, apps=("KM",), ladder=(1,))
        assert res.summary["overhead_mb_16sm"] > 0.1

    def test_fig19(self, tiny_runner):
        res = fig19_unified_memory.run(tiny_runner, apps=APPS)
        assert res.summary["um_speedup"] > 0

    def test_to_text_renders(self, tiny_runner):
        res = fig03_cta_overhead.run(tiny_runner)
        text = res.to_text()
        assert "fig03" in text
        assert "Summary" in text


class TestBarChart:
    def test_renders_bars_and_values(self):
        from repro.experiments.report import bar_chart
        text = bar_chart({"baseline": 1.0, "finereg": 1.5}, title="IPC")
        assert "IPC" in text
        assert "finereg" in text
        assert "1.500" in text

    def test_reference_tick(self):
        from repro.experiments.report import bar_chart
        text = bar_chart({"a": 0.5, "b": 2.0}, reference=1.0)
        assert "|" in text

    def test_rejects_empty_and_negative(self):
        import pytest
        from repro.experiments.report import bar_chart
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"x": -1.0})
