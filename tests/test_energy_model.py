"""Tests for the energy model (paper Fig 16)."""

import pytest

from repro.energy.model import EnergyBreakdown, EnergyConstants, EnergyModel
from repro.sim.stats import SimResult


def make_result(**overrides):
    defaults = dict(
        policy="baseline", workload="unit", cycles=1000, instructions=2000,
        num_sms=1, avg_active_ctas_per_sm=4.0, avg_pending_ctas_per_sm=0.0,
        max_resident_ctas=4, avg_active_threads_per_sm=128.0,
        dram_traffic_bytes=10_000, dram_traffic_by_class={},
        l1_hit_rate=0.5, l2_hit_rate=0.5, idle_cycles=100,
        rf_depletion_cycles=0, srp_stall_cycles=0, cta_switch_events=0,
        rf_reads=4000, rf_writes=1500, pcrf_reads=0, pcrf_writes=0,
        shmem_accesses=100, l1_accesses=500, l2_accesses=200,
        mean_stall_latency=None, window_usage_bounds=None,
        bitvector_hit_rate=None, completed_ctas=4, timed_out=False,
    )
    defaults.update(overrides)
    return SimResult(**defaults)


class TestConstants:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EnergyConstants(dram_pj_per_byte=-1.0)


class TestBreakdown:
    def test_total_is_sum_of_components(self):
        model = EnergyModel()
        breakdown = model.evaluate(make_result())
        assert breakdown.total == pytest.approx(
            breakdown.dram_dyn + breakdown.rf_dyn + breakdown.others_dyn
            + breakdown.leakage + breakdown.finereg
            + breakdown.cta_switching)

    def test_component_formulas(self):
        constants = EnergyConstants()
        model = EnergyModel(constants)
        result = make_result()
        breakdown = model.evaluate(result)
        assert breakdown.dram_dyn == 10_000 * constants.dram_pj_per_byte
        assert breakdown.rf_dyn == 5500 * constants.rf_pj_per_access
        assert breakdown.leakage == 1000 * constants.leakage_pj_per_cycle_per_sm
        assert breakdown.finereg == 0.0
        assert breakdown.cta_switching == 0.0

    def test_finereg_components_counted(self):
        model = EnergyModel()
        breakdown = model.evaluate(
            make_result(pcrf_reads=100, pcrf_writes=100,
                        cta_switch_events=10))
        assert breakdown.finereg > 0
        assert breakdown.cta_switching > 0

    def test_as_dict_matches_fig16_legend(self):
        keys = set(EnergyModel().evaluate(make_result()).as_dict())
        assert keys == {"DRAM_Dyn", "RF_Dyn", "Others_Dyn", "Leakage",
                        "FineReg", "CTA_Switching"}


class TestComparisons:
    def test_faster_run_uses_less_leakage(self):
        model = EnergyModel()
        slow = model.evaluate(make_result(cycles=2000))
        fast = model.evaluate(make_result(cycles=1000))
        assert fast.leakage < slow.leakage
        assert fast.total < slow.total

    def test_energy_ratio(self):
        model = EnergyModel()
        base = make_result(cycles=2000)
        improved = make_result(cycles=1000)
        assert model.energy_ratio(improved, base) < 1.0

    def test_normalized_to(self):
        model = EnergyModel()
        base = model.evaluate(make_result())
        normalized = base.normalized_to(base)
        assert sum(normalized.values()) == pytest.approx(1.0)

    def test_end_to_end_finereg_saves_energy(self, tiny_runner):
        """Fig 16's headline: the speedup turns into an energy win."""
        model = EnergyModel()
        base = tiny_runner.run("KM", "baseline")
        fine = tiny_runner.run("KM", "finereg")
        if fine.ipc > base.ipc * 1.02:
            assert model.energy_ratio(fine, base) < 1.02
