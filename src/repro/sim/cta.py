"""Per-CTA state: warps, activity status, barrier bookkeeping, and the
stall-clustering timer that feeds paper Table III."""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.sim.warp import FOREVER, WarpSim, WarpState

_FINISHED = WarpState.FINISHED


class CTAState(enum.Enum):
    ACTIVE = "active"       # warps are schedulable
    PENDING = "pending"     # switched out (context/registers backed up)
    TRANSIT = "transit"     # a switch is in flight; schedulable afterwards
    FINISHED = "finished"


class CTASim:
    """One cooperative thread array resident on an SM."""

    __slots__ = (
        "cta_id", "warps", "state", "transit_until", "transit_target",
        "barrier_arrived", "first_issue_cycle", "stall_recorded",
        "launch_cycle", "pending_since", "shmem_bytes", "launch",
    )

    def __init__(self, cta_id: int, warps: List[WarpSim],
                 shmem_bytes: int = 0) -> None:
        self.cta_id = cta_id
        self.warps = warps
        # The KernelLaunch this CTA belongs to (set by the SM at launch;
        # concurrent runs use it for per-kernel footprints/attribution).
        self.launch = None
        self.state = CTAState.ACTIVE
        self.transit_until = 0
        self.transit_target: Optional[CTAState] = None
        self.barrier_arrived = 0
        self.first_issue_cycle: Optional[int] = None
        self.stall_recorded = False
        self.launch_cycle = 0
        self.pending_since = 0
        self.shmem_bytes = shmem_bytes

    # ------------------------------------------------------------------
    @property
    def num_warps(self) -> int:
        return len(self.warps)

    @property
    def num_threads(self) -> int:
        return self.num_warps * 32

    def unfinished_warps(self) -> int:
        return sum(1 for warp in self.warps if not warp.finished)

    @property
    def finished(self) -> bool:
        return all(warp.finished for warp in self.warps)

    # ------------------------------------------------------------------
    # Stall analysis
    # ------------------------------------------------------------------
    def fully_stalled(self, now: int, min_remaining: int = 0) -> bool:
        """True when every unfinished warp is blocked (paper IV-A trigger).

        ``min_remaining`` filters out short ALU-dependency bubbles: the CTA
        counts as *completely stalled* only if no warp can issue within that
        many cycles.  A runnable warp (blocked_until <= now) always defeats
        the stall.
        """
        threshold = max(1, min_remaining)
        saw_unfinished = False
        for warp in self.warps:
            if warp.state is _FINISHED:
                continue
            saw_unfinished = True
            if warp.blocked_until - now < threshold:
                return False
        return saw_unfinished

    def earliest_resume(self, now: int) -> int:
        """Absolute cycle when the first blocked warp could issue again.

        Finished warps carry ``blocked_until == FOREVER`` so they drop out
        of the minimum without an explicit state check.
        """
        earliest = FOREVER
        for warp in self.warps:
            if warp.blocked_until < earliest:
                earliest = warp.blocked_until
        return max(now, earliest)

    def is_ready(self, now: int) -> bool:
        """For a pending CTA: has its stall condition cleared?

        Finished warps never qualify (``blocked_until == FOREVER``).
        """
        return any(warp.blocked_until <= now for warp in self.warps)

    # ------------------------------------------------------------------
    # Barrier bookkeeping (driven by the SM issue loop)
    # ------------------------------------------------------------------
    def arrive_at_barrier(self, warp: WarpSim, now: int) -> bool:
        """Register a warp at the CTA barrier; returns True if released."""
        warp.wait_at_barrier()
        self.barrier_arrived += 1
        return self.maybe_release_barrier(now)

    def maybe_release_barrier(self, now: int) -> bool:
        """Release the barrier once every unfinished warp has arrived."""
        if self.barrier_arrived and \
                self.barrier_arrived >= self.unfinished_warps():
            for warp in self.warps:
                warp.release_barrier(now)
            self.barrier_arrived = 0
            return True
        return False

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------
    def begin_transit(self, until: int, target: CTAState) -> None:
        self.state = CTAState.TRANSIT
        self.transit_until = until
        self.transit_target = target

    def settle_transit(self, now: int) -> bool:
        """Complete an in-flight switch whose latency has elapsed."""
        if self.state is CTAState.TRANSIT and now >= self.transit_until:
            assert self.transit_target is not None
            self.state = self.transit_target
            self.transit_target = None
            if self.state is CTAState.PENDING:
                self.pending_since = now
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CTA(id={self.cta_id}, state={self.state.value}, "
                f"warps={self.unfinished_warps()}/{self.num_warps})")
