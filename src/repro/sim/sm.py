"""Streaming multiprocessor: issue loop, resource tracking, policy hooks.

The SM owns four GTO warp schedulers, the lists of active/pending/in-transit
CTAs, and the per-SM L1 (via the shared :class:`MemoryHierarchy`).  All
register-file management decisions are delegated to the attached
:class:`~repro.policies.base.RegisterFilePolicy`; the SM provides the
mechanics (launching CTAs, moving warps in and out of schedulers, timing).
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Dict, List, Optional, Set, Tuple

from repro.config import GPUConfig
from repro.isa.cfg import EdgeKind
from repro.isa.instructions import AccessPattern, Opcode
from repro.isa.kernel import Kernel
from repro.policies.base import RegisterFilePolicy
from repro.sim.cta import CTASim, CTAState
from repro.sim.scheduler import SCHEDULER_KINDS
from repro.sim.stats import KernelStats, SMStats
from repro.sim.tracing import EventKind
from repro.sim.warp import FOREVER, WarpSim, WarpState
from repro.workloads.traces import AddressModel

_RUNNABLE = WarpState.RUNNABLE
_FINISHED = WarpState.FINISHED
_SHARED_BASE = AddressModel.SHARED_BASE

#: Issued-instruction window length for Fig-5 register-usage sampling.
USAGE_WINDOW = 1000

#: Dense integer dispatch kinds for the issue hot path (see ``_meta``).
(_K_ALU, _K_LDG, _K_STG, _K_LDS, _K_STS, _K_SFU,
 _K_BAR, _K_BRA, _K_EXIT) = range(9)

_OPCODE_KIND = {
    Opcode.IALU: _K_ALU, Opcode.FALU: _K_ALU,
    Opcode.LDG: _K_LDG, Opcode.STG: _K_STG,
    Opcode.LDS: _K_LDS, Opcode.STS: _K_STS,
    Opcode.SFU: _K_SFU, Opcode.BAR: _K_BAR,
    Opcode.BRA: _K_BRA, Opcode.EXIT: _K_EXIT,
}


class StreamingMultiprocessor:
    """One SM of the simulated GPU."""

    def __init__(self, sm_id: int, config: GPUConfig, kernel: Kernel,
                 gpu, sample_usage: bool = False) -> None:
        self.sm_id = sm_id
        self.config = config
        self.kernel = kernel
        self.gpu = gpu
        self._policy = None  # attached by the GPU after construction
        self._issue_hook = None
        self._needs_tick = False
        self._needs_idle = False
        scheduler_cls = SCHEDULER_KINDS[config.warp_scheduling]
        self.schedulers = [scheduler_cls(i)
                           for i in range(config.num_warp_schedulers)]
        self.active_ctas: List[CTASim] = []
        self.pending_ctas: List[CTASim] = []
        self.transit_ctas: List[CTASim] = []
        self.stats = SMStats()
        self.shmem_used = 0
        self._active_warps = 0
        self._active_threads = 0
        self._incoming_ctas = 0
        # Declared Table-I footprint of CTAs in transit toward ACTIVE.
        # With one resident kernel these are always ``_incoming_ctas``
        # times its per-CTA warp/thread counts; concurrent kernels make
        # the per-launch footprints differ, so they are tracked directly.
        self._incoming_warps = 0
        self._incoming_threads = 0
        self._last_step_issued = 0
        self._next_sched = 0
        # SM-level sleep: min of the schedulers' sleep caches, valid while
        # nothing wakes them.  Skips the whole issue stage in one test.
        self._sched_sleep = 0
        launches = gpu.launches
        if len(launches) == 1:
            self._instrs = kernel.cfg.instructions
            self._kstats = None
        else:
            # Concatenated static-index space: launch i's instructions
            # live at [index_base, index_base + num_instructions); traces
            # are rebased by KernelLaunch.trace_for.
            instrs = []
            for launch in launches:
                instrs.extend(launch.kernel.cfg.instructions)
            self._instrs = tuple(instrs)
            # Per-launch attribution (concurrent runs only, so the
            # single-kernel hot path never touches these).
            self._kstats = [KernelStats() for _ in launches]
            self._k_active = [0] * len(launches)
            self._k_warps = [0] * len(launches)
            self._klvl_active = [0] * len(launches)
            self._klvl_warps = [0] * len(launches)
        # Telemetry surfaces.  ``telemetry`` is a MetricsRegistry installed
        # by repro.telemetry; ``_wt`` caches the warp-level tracer so the
        # warp-event emission sites pay one attribute test when disabled.
        self.telemetry = None
        self._wt = None
        self._div_forks: Optional[Set[int]] = None
        self._div_joins: Optional[Set[int]] = None
        self._sample_usage = sample_usage
        self._window_regs: Set[Tuple[int, int]] = set()
        self._window_count = 0
        # Latencies pulled out of config for the hot loop.
        self._alu_lat = config.alu_latency
        self._sfu_lat = config.sfu_latency
        self._shmem_lat = config.shared_mem_latency
        self._stall_threshold = config.cta_switch_threshold
        self._rf_banks = config.rf_banks if config.model_rf_banks else 0
        # Per-static-instruction issue metadata, precomputed once:
        # (srcs, dest, kind, bank_penalty, opcode_value, instr).  The bank
        # penalty depends only on the static source registers, so the
        # per-issue set construction of the original hot path is static too.
        banks = self._rf_banks
        self._meta = []
        for instr in self._instrs:
            srcs = instr.srcs
            penalty = 0
            if banks and len(srcs) > 1:
                penalty = len(srcs) - len({reg % banks for reg in srcs})
            kind = _OPCODE_KIND[instr.opcode]
            # Dense address-pattern id for the fused step's inlined
            # AddressModel dispatch (-1 for non-global-memory kinds).
            pat = -1
            if kind == _K_LDG or kind == _K_STG:
                pattern = instr.pattern
                if pattern is AccessPattern.STREAM:
                    pat = 0
                elif pattern is AccessPattern.REUSE:
                    pat = 1
                else:
                    pat = 2
            # Fused-step dispatch id (meta[8]) and total fixed latency
            # (meta[9]): ALU, SFU and LDS all reduce to "write dest at
            # now + lat" in the fast path, so they share one branch with
            # the latency (incl. the ALU bank penalty) precomputed.
            if kind == _K_ALU:
                fkind, flat = 0, self._alu_lat + penalty
            elif kind == _K_SFU:
                fkind, flat = 0, self._sfu_lat
            elif kind == _K_LDS:
                fkind, flat = 0, self._shmem_lat
            elif kind == _K_LDG:
                fkind, flat = 1, 0
            elif kind == _K_STG:
                fkind, flat = 2, 0
            elif kind == _K_BAR:
                fkind, flat = 3, 0
            elif kind == _K_EXIT:
                fkind, flat = 4, 0
            else:               # BRA / STS: no timing effect when fused
                fkind, flat = 5, 0
            self._meta.append((srcs, instr.dest, kind,
                               penalty, instr.opcode.value, instr, len(srcs),
                               pat, fkind, flat))
        # Per-static issue-counter increments packed into one integer
        # (20 bits per field), so a whole warp's contribution to the issue
        # counters is one C-level sum over its trace.  Fast-path runs defer
        # the per-issue counting to warp finish via these (see
        # ``_defer_stats``); the totals are exact because every trace entry
        # issues exactly once.
        self._packed_vec = [
            m[6] + ((0 if m[1] is None else 1) << 20) + (m[3] << 40)
            + ((1 if m[2] == _K_LDS or m[2] == _K_STS else 0) << 60)
            for m in self._meta
        ]
        self._defer_stats = False
        # Scoreboard width for this kernel's warps (flat ready-at lists).
        nregs = 1
        for m in self._meta:
            for reg in m[0]:
                if reg >= nregs:
                    nregs = reg + 1
            if m[1] is not None and m[1] >= nregs:
                nregs = m[1] + 1
        self._nregs = nregs
        # Buffered time-weighted level integrals: while the (CTA, warp)
        # levels are untouched, accumulate() only sums dt; the buffered
        # span is flushed with the cached levels when a mutation site sets
        # ``_lvl_dirty`` (or at run end via flush_levels()).
        self._lvl_dirty = True
        self._lvl_dt = 0
        self._lvl_active = 0
        self._lvl_pending = 0
        self._lvl_warps = 0
        # Fast-path caches bound by _bind_fast_path (event engine only).
        self._hier = None
        self._reuse_spatial = 1
        self._reuse_lines = 1
        self._shared_lines = 1
        self._fast_consts = None

    # ------------------------------------------------------------------
    # Policy attachment (hot-path hooks cached at assignment time)
    # ------------------------------------------------------------------
    @property
    def policy(self):
        return self._policy

    @policy.setter
    def policy(self, policy) -> None:
        self._policy = policy
        self._issue_hook = (policy.on_issue
                            if policy is not None and policy.needs_issue_hook
                            else None)
        # Only call on_tick for policies that actually override it.
        self._needs_tick = (
            policy is not None
            and type(policy).on_tick is not RegisterFilePolicy.on_tick)
        # Event engine: only policies overriding _act_on_idle can take an
        # observable action from on_idle (the base cooldown is invisible).
        self._needs_idle = (
            policy is not None
            and type(policy)._act_on_idle
            is not RegisterFilePolicy._act_on_idle)

    # ------------------------------------------------------------------
    # Resource queries (used by policies)
    # ------------------------------------------------------------------
    @property
    def resident_ctas(self) -> int:
        return (len(self.active_ctas) + len(self.pending_ctas)
                + len(self.transit_ctas))

    def scheduler_slots_free(self, launch=None) -> bool:
        """Can one more CTA of ``launch`` become active under the Table-I
        limits?  The limits are *shared* budgets: active and incoming
        footprints are summed across every resident kernel.

        CTAs in transit toward ACTIVE already own their slots.  ``launch``
        defaults to the (single-kernel) primary launch.
        """
        if launch is None:
            launch = self.gpu.launches[0]
        config = self.config
        ctas = len(self.active_ctas) + self._incoming_ctas
        warps = self._active_warps + self._incoming_warps
        threads = self._active_threads + self._incoming_threads
        return (ctas < config.max_ctas_per_sm
                and warps + launch.warps_per_cta <= config.max_warps_per_sm
                and threads + launch.threads_per_cta
                <= config.max_threads_per_sm)

    def swap_slots_free(self, outgoing: CTASim, launch=None) -> bool:
        """Would one full incoming CTA of ``launch`` fit after parking
        ``outgoing``?

        A swap is not automatically slot-neutral: a partially-retired CTA
        frees fewer warp/thread slots than a full incoming CTA needs, so
        swapping it out can overshoot the Table-I limits — and under
        concurrent kernels the two CTAs may belong to different launches
        with different footprints.
        """
        if launch is None:
            launch = self.gpu.launches[0]
        config = self.config
        out_warps = outgoing.unfinished_warps()
        ctas = len(self.active_ctas) - 1 + self._incoming_ctas
        warps = self._active_warps - out_warps + self._incoming_warps
        threads = self._active_threads - 32 * out_warps \
            + self._incoming_threads
        return (ctas < config.max_ctas_per_sm
                and warps + launch.warps_per_cta <= config.max_warps_per_sm
                and threads + launch.threads_per_cta
                <= config.max_threads_per_sm)

    def shmem_free(self, nbytes: int) -> bool:
        return self.shmem_used + nbytes <= self.config.shared_memory_bytes

    # ------------------------------------------------------------------
    # Warp-level tracing
    # ------------------------------------------------------------------
    def enable_warp_events(self, tracer) -> None:
        """Install a warp-level tracer (called by ``attach_tracer``)."""
        self._wt = tracer
        if self._div_forks is None:
            self._build_divergence_index()

    def _build_divergence_index(self) -> None:
        """Static indices where divergence events fire.

        A warp *forks* when it issues the terminating BRA of a two-successor
        block and *joins* when it reaches the first instruction of that
        branch's PDOM reconvergence block -- the same reconvergence model the
        static verifier checks.
        """
        forks: Set[int] = set()
        joins: Set[int] = set()
        for launch in self.gpu.launches:
            cfg = launch.kernel.cfg
            base = launch.index_base
            for block in cfg.blocks:
                if block.edge_kind is not EdgeKind.BRANCH \
                        or not block.instructions:
                    continue
                forks.add(base + cfg.first_index(block.block_id)
                          + len(block.instructions) - 1)
                reconv = cfg.reconvergence_block(block.block_id)
                if reconv is not None:
                    joins.add(base + cfg.first_index(reconv))
        self._div_forks = forks
        self._div_joins = joins

    # ------------------------------------------------------------------
    # CTA lifecycle (mechanics; policies decide when)
    # ------------------------------------------------------------------
    def launch_new_cta(self, now: int, launch=None) -> Optional[CTASim]:
        """Pull the next CTA off a launch's grid and start it as active.

        ``launch`` defaults to the primary launch (single-kernel runs);
        concurrent fills pass the launch the dispatch arbiter picked.
        """
        if launch is None:
            launch = self.gpu.launches[0]
        cta_id = launch.pop_cta()
        if cta_id is None:
            return None
        local = cta_id - launch.cta_base
        wpc = launch.warps_per_cta
        warps = []
        for warp_id in range(wpc):
            trace = launch.trace_for(local, warp_id)
            global_id = launch.warp_base + local * wpc + warp_id
            warps.append(WarpSim(warp_id, global_id, cta_id, trace,
                                 self._nregs))
        cta = CTASim(cta_id, warps, shmem_bytes=launch.shmem_per_cta)
        cta.launch = launch
        for warp in warps:
            warp.cta = cta
        cta.launch_cycle = now
        self.shmem_used += cta.shmem_bytes
        self.active_ctas.append(cta)
        if self._kstats is not None:
            self._kstats[launch.index].cta_launches += 1
            self._k_active[launch.index] += 1
        self._attach_warps(cta)
        self.stats.cta_launches += 1
        if self.gpu.tracer is not None:
            self.gpu.tracer.record(now, self.sm_id, EventKind.LAUNCH, cta_id)
        return cta

    def deactivate_cta(self, cta: CTASim, now: int, latency: int) -> None:
        """Move an active CTA toward PENDING (switch-out in flight)."""
        self.active_ctas.remove(cta)
        self._detach_warps(cta)
        cta.begin_transit(now + latency, CTAState.PENDING)
        self.transit_ctas.append(cta)
        self.stats.cta_switch_events += 1
        self.stats.switch_out_overhead_cycles += latency
        if self._kstats is not None:
            self._kstats[cta.launch.index].cta_switch_events += 1
            self._k_active[cta.launch.index] -= 1
        tracer = self.gpu.tracer
        if tracer is not None:
            tracer.record(now, self.sm_id, EventKind.SWITCH_OUT, cta.cta_id,
                          dur=latency if tracer.warp_level else 0)

    def activate_cta(self, cta: CTASim, now: int, latency: int) -> None:
        """Move a pending CTA toward ACTIVE (switch-in in flight)."""
        self.pending_ctas.remove(cta)
        cta.begin_transit(now + latency, CTAState.ACTIVE)
        self.transit_ctas.append(cta)
        self._incoming_ctas += 1
        self._incoming_warps += cta.launch.warps_per_cta
        self._incoming_threads += cta.launch.threads_per_cta
        self._lvl_dirty = True
        self.stats.cta_switch_events += 1
        self.stats.switch_in_overhead_cycles += latency
        if self._kstats is not None:
            self._kstats[cta.launch.index].cta_switch_events += 1
        tracer = self.gpu.tracer
        if tracer is not None:
            tracer.record(now, self.sm_id, EventKind.SWITCH_IN, cta.cta_id,
                          dur=latency if tracer.warp_level else 0)

    def retire_cta(self, cta: CTASim, now: int) -> None:
        """A finished CTA releases shmem and scheduler slots."""
        cta.state = CTAState.FINISHED
        self.shmem_used -= cta.shmem_bytes
        if self.gpu.tracer is not None:
            self.gpu.tracer.record(now, self.sm_id, EventKind.RETIRE,
                                   cta.cta_id)
        if self.policy is not None:
            self.policy.on_cta_finished(cta, now)

    def _attach_warps(self, cta: CTASim) -> None:
        for warp in cta.warps:
            if warp.finished:
                continue
            self.schedulers[self._next_sched].add_warp(warp)
            self._next_sched = (self._next_sched + 1) % len(self.schedulers)
        self._sched_sleep = 0
        self._active_warps += cta.unfinished_warps()
        self._active_threads += cta.unfinished_warps() * 32
        if self._kstats is not None:
            self._k_warps[cta.launch.index] += cta.unfinished_warps()
        self._lvl_dirty = True

    def _detach_warps(self, cta: CTASim) -> None:
        for scheduler in self.schedulers:
            scheduler.remove_cta(cta.cta_id)
        self._active_warps -= cta.unfinished_warps()
        self._active_threads -= cta.unfinished_warps() * 32
        if self._kstats is not None:
            self._k_warps[cta.launch.index] -= cta.unfinished_warps()
        self._lvl_dirty = True

    # ------------------------------------------------------------------
    # Simulation step
    # ------------------------------------------------------------------
    def step(self, now: int) -> int:
        """Advance one cycle; returns the number of instructions issued."""
        if self.transit_ctas:
            self._settle_transits(now)
        if self._needs_tick:
            self._policy.on_tick(now)
        if now < self._sched_sleep:
            # Every scheduler would refuse instantly; skip the calls.
            self._last_step_issued = 0
            return 0
        issued = 0
        try_issue = self._try_issue
        for scheduler in self.schedulers:
            # Inlined scheduler sleep test (saves the call on idle cycles;
            # issue() would refuse identically).
            if now < scheduler._sleep_until:
                continue
            if scheduler.issue(now, try_issue):
                issued += 1
        if not issued:
            # All schedulers just (re)computed their sleep time; cache the
            # min.  A scheduler that refused without sleeping left its own
            # _sleep_until <= now, keeping the SM awake too.
            sleep = FOREVER
            for scheduler in self.schedulers:
                s = scheduler._sleep_until
                if s < sleep:
                    sleep = s
            self._sched_sleep = sleep
        self._last_step_issued = issued
        return issued

    def _step_fast(self, now: int,
                   _RUNNABLE=_RUNNABLE, _FINISHED=_FINISHED,
                   heappush=heappush, heappop=heappop, insort=insort,
                   FOREVER=FOREVER, _SHARED_BASE=_SHARED_BASE) -> int:
        """Hook-free fused issue step (event engine only).

        Observably identical to :meth:`step` + ``GTOScheduler.issue`` +
        :meth:`_try_issue` for SMs that pass ``fast_step_eligible``: no
        sanitizer/mutation wrappers on ``step``/``_try_issue``, no
        telemetry, no warp tracer, no Fig-5 sampling, no policy issue hook,
        and plain :class:`GTOScheduler` schedulers.  Inlining the three
        layers removes per-instruction call overhead and repeated attribute
        loads, which dominate the dense hot path; the dense oracle plus the
        engine differential test pin the duplicated logic to the reference
        implementation.  ``_finish_warp``/``_on_long_block`` stay dynamic
        attribute lookups (rare, and mutation tests wrap them).

        The greedy retry of the scheduler's current warp and the
        oldest-first scan of the ready bucket are two straight-line copies
        of the try-issue body (operand check + dispatch) rather than one
        shared loop with a phase flag: the per-issue flag tests and the
        loop round trip per blocked warp are pure overhead at this call
        rate.  Dispatch goes through ``meta[8]`` (the collapsed kind:
        0 = fixed-latency register write for ALU/SFU/LDS with the total
        latency precomputed in ``meta[9]``, 1 = LDG, 2 = STG, 3 = BAR,
        4 = EXIT, 5 = no-op) so the common case is a single branch.

        The vectorized backend's per-SM runner
        (``repro.sim.vectorized._sm_runner``) carries a line-for-line copy
        of this issue loop (plus merge-protocol yields before shared
        operations); any change here must be mirrored there — the
        three-way engine differential suite catches divergence.
        """
        if self.transit_ctas:
            self._settle_transits(now)
        if self._needs_tick:
            self._policy.on_tick(now)
        if now < self._sched_sleep:
            self._last_step_issued = 0
            return 0
        issued = 0
        (meta_list, thresh, hier, sm_id,
         reuse_spatial, reuse_lines, shared_lines,
         schedulers) = self._fast_consts
        for sched in schedulers:
            if now < sched._sleep_until:
                continue
            current = sched._current
            if current is not None:
                if current.state is _FINISHED:
                    sched._current = None
                    current = None
                elif (current.blocked_until <= now
                        and current.state is _RUNNABLE):
                    # ---- greedy retry of the current warp ----
                    warp = current
                    tr = warp.trace
                    pos = warp.pos
                    meta = meta_list[tr[pos]]
                    srcs = meta[0]
                    rdy = 0
                    if srcs and warp.peak_ready > now:
                        # Reuse the memoized operand scan when the warp has
                        # not issued since it was computed (ready_at is only
                        # written by the warp's own issues, which advance
                        # pos).
                        if warp.chk_pos == pos:
                            rdy = warp.chk_ready
                        else:
                            ra = warp.ready_at
                            nsrc = meta[6]
                            if nsrc == 1:
                                rdy = ra[srcs[0]]
                            elif nsrc == 2:
                                rdy = ra[srcs[0]]
                                t = ra[srcs[1]]
                                if t > rdy:
                                    rdy = t
                            else:
                                for reg in srcs:
                                    t = ra[reg]
                                    if t > rdy:
                                        rdy = t
                    if rdy <= now:
                        cta = warp.cta
                        if cta.first_issue_cycle is None:
                            cta.first_issue_cycle = now
                        warp.pos = pos + 1
                        # Issue counters deferred to finish (_defer_stats).
                        fk = meta[8]
                        if fk == 0:       # ALU / SFU / LDS
                            t = now + meta[9]
                            warp.ready_at[meta[1]] = t
                            if t > warp.peak_ready:
                                warp.peak_ready = t
                        elif fk <= 2:     # LDG / STG
                            # Inlined AddressModel.address_for + hierarchy
                            # wrappers (eligibility pins the stock
                            # AddressModel and telemetry-off hierarchy).
                            pat = meta[7]
                            if pat == 0:      # STREAM
                                c = warp.stream_counter + 1
                                warp.stream_counter = c
                                address = warp.stream_base + c * 128
                            elif pat == 1:    # REUSE
                                c = warp.reuse_counter
                                warp.reuse_counter = c + 1
                                address = warp.reuse_base + (
                                    (c // reuse_spatial)
                                    % reuse_lines) * 128
                            else:             # SHARED_WS
                                c = warp.shared_counter + 1
                                warp.shared_counter = c
                                address = _SHARED_BASE + (
                                    (c * 7 + warp.global_warp_id * 13)
                                    % shared_lines) * 128
                            if fk == 1:
                                hier.stats.loads += 1
                                done = hier._access(sm_id, address, now,
                                                    False)
                                warp.ready_at[meta[1]] = done
                                if done > warp.peak_ready:
                                    warp.peak_ready = done
                            else:
                                hier.stats.stores += 1
                                hier._access(sm_id, address, now, True)
                        elif fk == 3:     # BAR
                            if cta.arrive_at_barrier(warp, now):
                                self._wake_schedulers()
                            elif warp.blocked_until == FOREVER:
                                self._on_long_block(warp, now)
                        elif fk == 4:     # EXIT
                            self._finish_warp(warp, now)
                        # fk == 5: BRA / STS — no timing effect
                        issued += 1
                        continue
                    warp.blocked_until = rdy
                    warp.chk_pos = pos
                    warp.chk_ready = rdy
                    if rdy - now >= thresh:
                        self._on_long_block(warp, now)
                    # Blocked greedy warp: fall through to the ready scan.
            # ---- oldest-first scan of the ready bucket ----
            if sched._dirty:
                sched._rebuild(now)
                ready = sched._ready
                blocked = sched._blocked
            else:
                ready = sched._ready
                blocked = sched._blocked
                if blocked and blocked[0][0] <= now:
                    e = heappop(blocked)
                    first = (e[1], e[2])
                    if blocked and blocked[0][0] <= now:
                        ready.append(first)
                        while blocked and blocked[0][0] <= now:
                            e = heappop(blocked)
                            ready.append((e[1], e[2]))
                        ready.sort()
                    elif ready:
                        insort(ready, first)
                    else:
                        ready.append(first)
            i = 0
            n = len(ready)
            while i < n:
                entry = ready[i]
                warp = entry[1]
                if warp is current:
                    i += 1
                    continue
                b = warp.blocked_until
                if b > now:
                    heappush(blocked, (b, entry[0], warp))
                    del ready[i]
                    n -= 1
                    continue
                if warp.state is not _RUNNABLE:
                    i += 1
                    continue
                tr = warp.trace
                pos = warp.pos
                meta = meta_list[tr[pos]]
                srcs = meta[0]
                rdy = 0
                if srcs and warp.peak_ready > now:
                    if warp.chk_pos == pos:
                        rdy = warp.chk_ready
                    else:
                        ra = warp.ready_at
                        nsrc = meta[6]
                        if nsrc == 1:
                            rdy = ra[srcs[0]]
                        elif nsrc == 2:
                            rdy = ra[srcs[0]]
                            t = ra[srcs[1]]
                            if t > rdy:
                                rdy = t
                        else:
                            for reg in srcs:
                                t = ra[reg]
                                if t > rdy:
                                    rdy = t
                if rdy > now:
                    warp.blocked_until = rdy
                    warp.chk_pos = pos
                    warp.chk_ready = rdy
                    if rdy - now >= thresh:
                        self._on_long_block(warp, now)
                    heappush(blocked, (rdy, entry[0], warp))
                    del ready[i]
                    n -= 1
                    continue
                cta = warp.cta
                if cta.first_issue_cycle is None:
                    cta.first_issue_cycle = now
                warp.pos = pos + 1
                fk = meta[8]
                if fk == 0:       # ALU / SFU / LDS
                    t = now + meta[9]
                    warp.ready_at[meta[1]] = t
                    if t > warp.peak_ready:
                        warp.peak_ready = t
                elif fk <= 2:     # LDG / STG
                    pat = meta[7]
                    if pat == 0:      # STREAM
                        c = warp.stream_counter + 1
                        warp.stream_counter = c
                        address = warp.stream_base + c * 128
                    elif pat == 1:    # REUSE
                        c = warp.reuse_counter
                        warp.reuse_counter = c + 1
                        address = warp.reuse_base + (
                            (c // reuse_spatial)
                            % reuse_lines) * 128
                    else:             # SHARED_WS
                        c = warp.shared_counter + 1
                        warp.shared_counter = c
                        address = _SHARED_BASE + (
                            (c * 7 + warp.global_warp_id * 13)
                            % shared_lines) * 128
                    if fk == 1:
                        hier.stats.loads += 1
                        done = hier._access(sm_id, address, now, False)
                        warp.ready_at[meta[1]] = done
                        if done > warp.peak_ready:
                            warp.peak_ready = done
                    else:
                        hier.stats.stores += 1
                        hier._access(sm_id, address, now, True)
                elif fk == 3:     # BAR
                    if cta.arrive_at_barrier(warp, now):
                        self._wake_schedulers()
                    elif warp.blocked_until == FOREVER:
                        self._on_long_block(warp, now)
                elif fk == 4:     # EXIT
                    self._finish_warp(warp, now)
                # fk == 5: BRA / STS — no timing effect
                sched._current = warp
                issued += 1
                break
            else:
                # No warp could issue: fold the sleep computation in (the
                # telemetry-free _note_sleep body; telemetry-on runs are
                # routed to the slow path).
                earliest = blocked[0][0] if blocked else FOREVER
                stay = False
                for e in ready:
                    b = e[1].blocked_until
                    if b <= now:
                        stay = True
                        break
                    if b < earliest:
                        earliest = b
                if not stay:
                    sched._sleep_until = earliest
        self._last_step_issued = issued
        if issued:
            # This SM issued, so the global clock advances by exactly one
            # cycle; fold the per-cycle accumulate() in (issuing SMs skip
            # the idle taxonomy, so only the level span is extended).
            if self._lvl_dirty:
                self.accumulate(1, False)
            else:
                self._lvl_dt += 1
        else:
            sleep = FOREVER
            for sched in schedulers:
                s = sched._sleep_until
                if s < sleep:
                    sleep = s
            self._sched_sleep = sleep
        return issued

    def fast_step_eligible(self) -> bool:
        """True when :meth:`_step_fast` is observably equal to :meth:`step`.

        Any instance-level wrapper on ``step``/``_try_issue`` (sanitizer,
        mutation self-test), any telemetry/tracing surface, Fig-5 usage
        sampling, a policy issue hook, or a non-GTO scheduler routes the SM
        to the unfused reference path.
        """
        from repro.sim.scheduler import GTOScheduler
        d = self.__dict__
        if ("step" in d or "_try_issue" in d
                or self.telemetry is not None or self._wt is not None
                or self._sample_usage or self._issue_hook is not None):
            return False
        gpu = self.gpu
        if (type(gpu.address_model) is not AddressModel
                or gpu.hierarchy.telemetry is not None):
            return False
        for sched in self.schedulers:
            if type(sched) is not GTOScheduler or sched.telemetry is not None:
                return False
        return True

    def _bind_fast_path(self) -> None:
        """Cache cross-object hot-path state for :meth:`_step_fast` and
        switch the issue counters to deferred (per-warp-finish) mode.

        The hot scalars are packed into one tuple so the fused step does a
        single attribute load + C-level unpack per call instead of a dozen
        attribute loads."""
        model = self.gpu.address_model
        self._hier = self.gpu.hierarchy
        self._reuse_spatial = model.reuse_spatial
        self._reuse_lines = model.reuse_lines
        self._shared_lines = model.shared_lines
        self._defer_stats = True
        self._fast_consts = (
            self._meta, self._stall_threshold, self._hier, self.sm_id,
            self._reuse_spatial, self._reuse_lines, self._shared_lines,
            tuple(self.schedulers),
        )

    def _flush_deferred_stats(self) -> None:
        """Credit the issued prefix of still-unfinished warps (timeout).

        Finished warps were credited by :meth:`_finish_warp`; on a normal
        run-to-completion exit every warp is finished and this is a no-op.
        """
        packed_vec = self._packed_vec
        stats = self.stats
        for ctas in (self.active_ctas, self.pending_ctas, self.transit_ctas):
            for cta in ctas:
                for warp in cta.warps:
                    if warp.state is _FINISHED or not warp.pos:
                        continue
                    prefix = warp.trace[:warp.pos]
                    packed = sum(map(packed_vec.__getitem__, prefix))
                    stats.instructions += len(prefix)
                    if self._kstats is not None:
                        self._kstats[cta.launch.index].instructions += \
                            len(prefix)
                    stats.rf_reads += packed & 0xFFFFF
                    stats.rf_writes += (packed >> 20) & 0xFFFFF
                    stats.rf_bank_conflicts += (packed >> 40) & 0xFFFFF
                    stats.shmem_accesses += packed >> 60

    def _settle_transits(self, now: int) -> None:
        remaining = []
        for cta in self.transit_ctas:
            if cta.settle_transit(now):
                self._lvl_dirty = True
                if cta.state is CTAState.ACTIVE:
                    self._incoming_ctas -= 1
                    self._incoming_warps -= cta.launch.warps_per_cta
                    self._incoming_threads -= cta.launch.threads_per_cta
                    if self._kstats is not None:
                        self._k_active[cta.launch.index] += 1
                    self.active_ctas.append(cta)
                    self._attach_warps(cta)
                else:
                    self.pending_ctas.append(cta)
            else:
                remaining.append(cta)
        self.transit_ctas = remaining

    # ------------------------------------------------------------------
    # Instruction issue (the hot path)
    # ------------------------------------------------------------------
    def _try_issue(self, warp: WarpSim, now: int) -> bool:
        static_index = warp.trace[warp.pos]
        meta = self._meta[static_index]
        srcs = meta[0]
        # peak_ready bounds max(ready_at.values()): when it has passed, no
        # source can still be pending and the operand scan is skipped.
        if srcs and warp.peak_ready > now:
            ready = 0
            ready_at = warp.ready_at
            for reg in srcs:
                t = ready_at[reg]
                if t > ready:
                    ready = t
            if ready > now:
                warp.blocked_until = ready
                if ready - now >= self._stall_threshold:
                    self._on_long_block(warp, now)
                return False
        if self._issue_hook is not None:
            if not self._issue_hook(warp, static_index, now):
                return False

        cta = warp.cta
        if cta.first_issue_cycle is None:
            cta.first_issue_cycle = now
        warp.pos += 1
        stats = self.stats
        stats.instructions += 1
        if self._kstats is not None:
            self._kstats[cta.launch.index].instructions += 1
        stats.rf_reads += meta[6]
        dest = meta[1]
        if dest is not None:
            stats.rf_writes += 1
        if self.telemetry is not None:
            self.telemetry.issue_counts[meta[4]] += 1
        wt = self._wt
        if wt is not None:
            if static_index in self._div_forks:
                wt.record(now, self.sm_id, EventKind.DIVERGE_FORK,
                          cta.cta_id, warp=warp.warp_id)
            elif static_index in self._div_joins:
                wt.record(now, self.sm_id, EventKind.DIVERGE_JOIN,
                          cta.cta_id, warp=warp.warp_id)

        # Operand-collector serialization: sources mapping to the same bank
        # are read over extra cycles (penalty precomputed per instruction).
        bank_penalty = meta[3]
        if bank_penalty:
            stats.rf_bank_conflicts += bank_penalty
        if self._sample_usage:
            self._sample_window(warp, meta[5])

        kind = meta[2]
        if kind == _K_ALU:
            t = now + self._alu_lat + bank_penalty
            warp.ready_at[dest] = t
            if t > warp.peak_ready:
                warp.peak_ready = t
        elif kind == _K_LDG:
            address = self.gpu.address_model.address_for(warp, meta[5])
            done = self.gpu.hierarchy.load(self.sm_id, address, now)
            warp.ready_at[dest] = done
            if done > warp.peak_ready:
                warp.peak_ready = done
        elif kind == _K_STG:
            address = self.gpu.address_model.address_for(warp, meta[5])
            self.gpu.hierarchy.store(self.sm_id, address, now)
        elif kind == _K_LDS:
            t = now + self._shmem_lat
            warp.ready_at[dest] = t
            if t > warp.peak_ready:
                warp.peak_ready = t
            stats.shmem_accesses += 1
        elif kind == _K_STS:
            stats.shmem_accesses += 1
        elif kind == _K_SFU:
            t = now + self._sfu_lat
            warp.ready_at[dest] = t
            if t > warp.peak_ready:
                warp.peak_ready = t
        elif kind == _K_BAR:
            released = cta.arrive_at_barrier(warp, now)
            if wt is not None:
                wt.record(now, self.sm_id, EventKind.BARRIER_ARRIVE,
                          cta.cta_id, warp=warp.warp_id)
                if released:
                    wt.record(now, self.sm_id, EventKind.BARRIER_RELEASE,
                              cta.cta_id)
            if released:
                # Barrier released: warps (possibly on sleeping sibling
                # schedulers) just became runnable.
                self._wake_schedulers()
            elif warp.blocked_until == FOREVER:
                self._on_long_block(warp, now)
        elif kind == _K_BRA:
            pass  # path already resolved in the trace
        elif kind == _K_EXIT:
            self._finish_warp(warp, now)
            return True
        # Proactive short-stall block: the warp stays current after issuing,
        # so the dense engine's next step would retry it first and discover
        # the dependency stall.  Peeking the next instruction's operands now
        # writes the identical blocked_until one attempt earlier, skipping
        # that guaranteed-failing call.  Long stalls (>= the CTA-switch
        # threshold) are left to the real attempt: its _on_long_block side
        # effects must keep their exact per-cycle timing, and an early
        # blocked_until would otherwise flip fully_stalled() checks made by
        # sibling warps later this same cycle.
        if kind != _K_BAR:
            nmeta = self._meta[warp.trace[warp.pos]]
            nsrcs = nmeta[0]
            if nsrcs and warp.peak_ready > now:
                nready = 0
                ready_at = warp.ready_at
                for reg in nsrcs:
                    t = ready_at[reg]
                    if t > nready:
                        nready = t
                if now < nready and nready - now < self._stall_threshold:
                    warp.blocked_until = nready
        return True

    def _finish_warp(self, warp: WarpSim, now: int) -> None:
        if self._defer_stats:
            # Deferred issue counters: one packed C-level sum credits the
            # warp's whole (fully issued) trace.
            tr = warp.trace
            packed = sum(map(self._packed_vec.__getitem__, tr))
            stats = self.stats
            stats.instructions += len(tr)
            stats.rf_reads += packed & 0xFFFFF
            stats.rf_writes += (packed >> 20) & 0xFFFFF
            stats.rf_bank_conflicts += (packed >> 40) & 0xFFFFF
            stats.shmem_accesses += packed >> 60
            if self._kstats is not None:
                self._kstats[warp.cta.launch.index].instructions += len(tr)
        warp.finish()
        self._active_warps -= 1
        self._active_threads -= 32
        if self._kstats is not None:
            self._k_warps[warp.cta.launch.index] -= 1
        self._lvl_dirty = True
        for scheduler in self.schedulers:
            if warp in scheduler.warps:
                scheduler.remove_warp(warp)
                break
        cta = warp.cta
        if cta.maybe_release_barrier(now):
            if self._wt is not None:
                self._wt.record(now, self.sm_id, EventKind.BARRIER_RELEASE,
                                cta.cta_id)
            self._wake_schedulers()
        if cta.finished:
            self.active_ctas.remove(cta)
            if self._kstats is not None:
                self._k_active[cta.launch.index] -= 1
            self.retire_cta(cta, now)

    def _wake_schedulers(self) -> None:
        self._sched_sleep = 0
        for scheduler in self.schedulers:
            scheduler.wake()

    def _on_long_block(self, warp: WarpSim, now: int) -> None:
        """A warp just blocked for a while; check for a complete CTA stall."""
        cta = warp.cta
        if cta.state is not CTAState.ACTIVE:
            return
        if not cta.fully_stalled(now, min_remaining=self._stall_threshold):
            return
        if not cta.stall_recorded and cta.first_issue_cycle is not None:
            cta.stall_recorded = True
            self.stats.stall_latencies.append(now - cta.first_issue_cycle)
            if self._kstats is not None:
                ks = self._kstats[cta.launch.index]
                ks.stall_events += 1
                ks.stall_cycles += now - cta.first_issue_cycle
        if self._policy is not None:
            self._policy.on_cta_stalled(cta, now)

    # ------------------------------------------------------------------
    # Fig-5 sampling
    # ------------------------------------------------------------------
    def _sample_window(self, warp: WarpSim, instr) -> None:
        gid = warp.global_warp_id
        for reg in instr.registers:
            self._window_regs.add((gid, reg))
        self._window_count += 1
        if self._window_count >= USAGE_WINDOW:
            allocated = sum(
                cta.unfinished_warps() * cta.launch.regs_per_thread
                for cta in self.active_ctas
            )
            if allocated:
                usage = len(self._window_regs) / allocated
                self.stats.window_usage.append(min(1.0, usage))
            self._window_regs.clear()
            self._window_count = 0

    def debug_accounting(self) -> Dict[str, object]:
        """Snapshot of the SM's resource bookkeeping (sanitizer, tests)."""
        return {
            "active": sorted(c.cta_id for c in self.active_ctas),
            "pending": sorted(c.cta_id for c in self.pending_ctas),
            "transit": sorted(c.cta_id for c in self.transit_ctas),
            "active_warps": self._active_warps,
            "active_threads": self._active_threads,
            "incoming_ctas": self._incoming_ctas,
            "incoming_warps": self._incoming_warps,
            "incoming_threads": self._incoming_threads,
            "shmem_used": self.shmem_used,
            "sched_sleep": self._sched_sleep,
            "scheduler_warps": [len(s.warps) for s in self.schedulers],
        }

    # ------------------------------------------------------------------
    # Bookkeeping for the global loop
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return bool(self.active_ctas or self.pending_ctas
                    or self.transit_ctas)

    def next_event(self, now: int) -> int:
        """Earliest future cycle at which this SM's state can change."""
        earliest = FOREVER
        # Inlined min over every active warp's blocked_until.  Equivalent to
        # min(cta.earliest_resume(now)) because max(now, .) distributes over
        # the min: min_c max(now, m_c) == max(now, min_c m_c).
        blocked = FOREVER
        for cta in self.active_ctas:
            for warp in cta.warps:
                b = warp.blocked_until
                if b < blocked:
                    blocked = b
        if blocked < FOREVER:
            earliest = blocked if blocked > now else now
        for cta in self.transit_ctas:
            if cta.transit_until < earliest:
                earliest = cta.transit_until
        if self._policy is not None:
            t = self._policy.next_event(now)
            if t < earliest:
                earliest = t
        return earliest

    def next_event_fast(self, now: int) -> int:
        """:meth:`next_event` for fused-path SMs (event engine only).

        The active-warp scan is replaced by ``_sched_sleep``: whenever the
        event loop asks (global zero-issue cycles, after this SM's step or
        while it sleeps with a frozen state), the cache equals the minimum
        ``blocked_until`` over every scheduler-attached warp — each
        scheduler's ``_sleep_until`` is the exact minimum over its bucket
        entries, and every external wake resets the caches and marks the
        buckets dirty.  Clamping mirrors :meth:`next_event`.
        """
        ss = FOREVER
        for sched in self.schedulers:
            s = sched._sleep_until
            if s < ss:
                ss = s
        if ss < FOREVER:
            earliest = ss if ss > now else now
        else:
            earliest = FOREVER
        for cta in self.transit_ctas:
            if cta.transit_until < earliest:
                earliest = cta.transit_until
        policy = self._policy
        if policy is not None:
            t = policy.next_event(now)
            if t < earliest:
                earliest = t
        return earliest

    def accumulate(self, dt: int, idle: bool) -> None:
        """Advance the time-weighted stats by ``dt`` cycles.

        The level integrals are buffered: while the CTA/warp levels are
        unchanged (``_lvl_dirty`` unset), only the span length is summed and
        the product is materialized lazily.  Sums of exact integer products
        stay exact in float, so the buffered integral is bit-identical to
        the per-cycle one.  ``flush_levels`` must run before the integrals
        are read (the GPU loop flushes at run end).  The per-cycle idle
        taxonomy is NOT buffered: ``classify_idle`` may be stateful
        (RegMutex consumes its SRP flag on the first call), so it keeps its
        exact per-advance cadence.
        """
        stats = self.stats
        if self._lvl_dirty:
            buffered = self._lvl_dt
            if buffered:
                stats.accumulate(buffered, self._lvl_active,
                                 self._lvl_pending, self._lvl_warps)
            active = len(self.active_ctas)
            pending = len(self.pending_ctas) + len(self.transit_ctas)
            self._lvl_active = active
            self._lvl_pending = pending
            self._lvl_warps = self._active_warps
            if self._kstats is not None:
                # Per-kernel level integrals flush on the same spans with
                # the same buffered snapshots, so they sum exactly to the
                # whole-SM integrals.
                if buffered:
                    for i, ks in enumerate(self._kstats):
                        ks.active_cta_cycles += \
                            buffered * self._klvl_active[i]
                        ks.active_warp_cycles += \
                            buffered * self._klvl_warps[i]
                self._klvl_active = self._k_active[:]
                self._klvl_warps = self._k_warps[:]
            self._lvl_dt = dt
            self._lvl_dirty = False
            resident = active + pending
            if resident > stats.max_resident_ctas:
                stats.max_resident_ctas = resident
        else:
            self._lvl_dt += dt
        if not (idle or not self._last_step_issued):
            return
        if self.active_ctas or self.pending_ctas or self.transit_ctas:
            stats.idle_cycles += dt
            policy = self._policy
            if policy is not None:
                reason = policy.classify_idle(dt)
                if reason == "rf":
                    stats.rf_depletion_cycles += dt
                elif reason == "srp":
                    stats.srp_stall_cycles += dt

    def flush_levels(self) -> None:
        """Materialize the buffered level-integral span (run end / reads)."""
        buffered = self._lvl_dt
        if buffered:
            self.stats.accumulate(buffered, self._lvl_active,
                                  self._lvl_pending, self._lvl_warps)
            if self._kstats is not None:
                for i, ks in enumerate(self._kstats):
                    ks.active_cta_cycles += buffered * self._klvl_active[i]
                    ks.active_warp_cycles += buffered * self._klvl_warps[i]
            self._lvl_dt = 0
