"""Implementation of ``python -m repro validate``.

Replays the golden corpus under the sanitizer and runs the mutation
self-test, printing one line per case.  Exit status 0 only when every
golden matches and every mutation is detected.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.validate.golden import (
    CORPUS,
    default_goldens_dir,
    record_goldens,
    validate_goldens,
)
from repro.validate.mutations import MUTATIONS, run_all_mutations


def _goldens(directory: Path) -> bool:
    print(f"golden corpus: {len(CORPUS)} cases from {directory}")
    ok = True
    for report in validate_goldens(directory):
        case = report.case
        label = f"{case.name} ({case.abbrev}/{case.policy})"
        if report.ok:
            print(f"  PASS {label}")
            continue
        ok = False
        print(f"  FAIL {label}")
        if report.error:
            print(f"       {report.error}")
        if report.violations:
            print(f"       {report.violations} sanitizer violation(s)")
        for line in report.diff:
            print(f"       {line}")
    return ok


def _mutations() -> bool:
    print(f"mutation self-test: {len(MUTATIONS)} corruptions")
    ok = True
    for report in run_all_mutations():
        mutation = report.mutation
        label = (f"{mutation.name} [{mutation.invariant}] "
                 f"({mutation.abbrev}/{mutation.policy})")
        if report.detected:
            print(f"  DETECTED {label}")
            continue
        ok = False
        print(f"  MISSED   {label}")
        if report.error:
            print(f"           {report.error}")
        if report.tags:
            print(f"           reported tags: {', '.join(report.tags)}")
    return ok


def run_validate(record: bool = False, only: Optional[str] = None,
                 goldens_dir: Optional[str] = None) -> int:
    directory = Path(goldens_dir) if goldens_dir else default_goldens_dir()
    if record:
        written = record_goldens(directory)
        for path in written:
            print(f"recorded {path}")
        print(f"{len(written)} golden file(s) written; review the diff "
              f"before committing")
        return 0
    ok = True
    if only in (None, "goldens"):
        ok = _goldens(directory) and ok
    if only in (None, "mutations"):
        ok = _mutations() and ok
    print("validation PASSED" if ok else "validation FAILED")
    return 0 if ok else 1
