"""Tests for the opt-in event tracer."""

import pytest

from repro.config import GPUConfig, TINY
from repro.policies.finereg import FineRegPolicy
from repro.sim.gpu import GPU
from repro.sim.tracing import (
    LIFECYCLE_KINDS,
    Event,
    EventKind,
    EventTracer,
    attach_tracer,
)
from repro.workloads.generator import build_workload
from repro.workloads.suite import get_spec


def traced_run(app="KM", policy=FineRegPolicy, level="cta", capacity=100_000):
    config = GPUConfig().with_num_sms(1)
    instance = build_workload(get_spec(app), config, TINY)
    gpu = GPU(config, instance.kernel, policy,
              instance.trace_provider, instance.address_model,
              liveness=instance.liveness)
    tracer = attach_tracer(gpu, capacity=capacity, level=level)
    result = gpu.run(max_cycles=TINY.max_cycles)
    return gpu, tracer, result


class TestTracerBasics:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventTracer(0)

    def test_bounded_capacity_drops(self):
        tracer = EventTracer(capacity=2)
        for i in range(5):
            tracer.record(i, 0, EventKind.LAUNCH, i)
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_event_rendering(self):
        event = Event(12, 0, EventKind.SWITCH_OUT, 7)
        assert "switch_out" in str(event)
        assert "CTA 7" in str(event)

    def test_listener_sees_every_event_including_dropped(self):
        tracer = EventTracer(capacity=2)
        seen = []
        tracer.listener = (
            lambda cycle, sm, kind, cta: seen.append((cycle, kind, cta)))
        for i in range(5):
            tracer.record(i, 0, EventKind.LAUNCH, i)
        # The log saturates, but the listener observes the full stream.
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert [cta for __, __, cta in seen] == [0, 1, 2, 3, 4]

    def test_events_for_sm_filters_in_record_order(self):
        tracer = EventTracer()
        tracer.record(1, 0, EventKind.LAUNCH, 0)
        tracer.record(2, 1, EventKind.LAUNCH, 1)
        tracer.record(3, 0, EventKind.RETIRE, 0)
        assert [e.cycle for e in tracer.events_for_sm(0)] == [1, 3]
        assert [e.cycle for e in tracer.events_for_sm(1)] == [2]
        assert tracer.events_for_sm(9) == []

    def test_as_dicts_is_json_ready(self):
        tracer = EventTracer()
        tracer.record(5, 2, EventKind.SWITCH_IN, 7)
        assert tracer.as_dicts() == [
            {"cycle": 5, "sm": 2, "kind": "switch_in", "cta": 7}]

    def test_drop_oldest_retains_newest(self):
        tracer = EventTracer(capacity=3)
        for i in range(10):
            tracer.record(i, 0, EventKind.LAUNCH, i)
        # Ring buffer policy: the oldest records make room for the newest.
        assert [e.cta_id for e in tracer.events] == [7, 8, 9]
        assert tracer.dropped == 7

    def test_as_dicts_leads_with_drop_marker_when_saturated(self):
        tracer = EventTracer(capacity=3)
        for i in range(10):
            tracer.record(i, 0, EventKind.LAUNCH, i)
        dicts = tracer.as_dicts()
        # A synthetic first record tells consumers the log is truncated
        # and where the retained window begins.
        assert dicts[0] == {
            "cycle": 7, "sm": -1, "kind": "dropped_events", "cta": 7}
        assert [d["cta"] for d in dicts[1:]] == [7, 8, 9]

    def test_as_dicts_has_no_marker_when_unsaturated(self):
        tracer = EventTracer(capacity=16)
        tracer.record(1, 0, EventKind.LAUNCH, 0)
        assert all(d["kind"] != "dropped_events"
                   for d in tracer.as_dicts())


class TestTracedRun:
    def test_every_cta_launches_and_retires(self):
        gpu, tracer, result = traced_run()
        grid = gpu.kernel.geometry.grid_ctas
        assert len(tracer.of_kind(EventKind.LAUNCH)) == grid
        assert len(tracer.of_kind(EventKind.RETIRE)) == grid

    def test_switches_balance(self):
        __, tracer, result = traced_run()
        outs = len(tracer.of_kind(EventKind.SWITCH_OUT))
        ins = len(tracer.of_kind(EventKind.SWITCH_IN))
        assert outs == ins
        assert outs + ins == result.cta_switch_events

    def test_cta_timeline_is_ordered(self):
        __, tracer, __ = traced_run()
        events = tracer.for_cta(0)
        cycles = [e.cycle for e in events]
        assert cycles == sorted(cycles)
        assert events[0].kind is EventKind.LAUNCH
        assert events[-1].kind is EventKind.RETIRE

    def test_residency_positive(self):
        __, tracer, __ = traced_run()
        residency = tracer.residency_of(0)
        assert residency is not None and residency > 0

    def test_switch_count_per_cta(self):
        __, tracer, __ = traced_run()
        total = sum(tracer.switch_count(e.cta_id)
                    for e in tracer.of_kind(EventKind.LAUNCH))
        assert total == len(tracer.of_kind(EventKind.SWITCH_OUT))

    def test_timeline_renders_with_limit(self):
        __, tracer, __ = traced_run()
        text = tracer.timeline(limit=5)
        assert "more events" in text or len(tracer) <= 5

    def test_untraced_run_has_no_tracer(self, tiny_runner):
        result = tiny_runner.run("KM", "baseline")
        assert result is not None  # runner path never attaches a tracer


class TestWarpLevelRun:
    def test_warp_events_recorded_only_at_warp_level(self):
        __, cta_tracer, __ = traced_run(level="cta")
        __, warp_tracer, __ = traced_run(level="warp")
        cta_kinds = {e.kind for e in cta_tracer.events}
        warp_kinds = {e.kind for e in warp_tracer.events}
        assert cta_kinds <= LIFECYCLE_KINDS
        # The warp-level run is a strict superset: same lifecycle stream
        # plus warp/policy detail.
        assert warp_kinds > cta_kinds
        assert warp_kinds - LIFECYCLE_KINDS

    def test_switch_events_carry_overhead_durations(self):
        __, tracer, result = traced_run(level="warp")
        outs = tracer.of_kind(EventKind.SWITCH_OUT)
        ins = tracer.of_kind(EventKind.SWITCH_IN)
        assert outs and ins
        assert all(e.dur > 0 for e in outs + ins)
        assert (sum(e.dur for e in outs + ins)
                == result.switch_overhead_cycles)

    def test_cta_level_dicts_stay_compact(self):
        __, tracer, __ = traced_run(level="cta")
        # At CTA level no warp/dur/value fields are populated, so the
        # JSON rows keep the original 4-key shape.
        assert all(set(d) == {"cycle", "sm", "kind", "cta"}
                   for d in tracer.as_dicts())
