"""Register management unit (paper V-C, Fig 10).

The RMU glues together the five components the paper enumerates:

  i)   live register information cache (``BitVectorCache``),
  ii)  register index decoder (bit vector -> per-warp register indices),
  iii) PCRF pointer table (head slot + live count per pending CTA),
  iv)  free space monitor (occupancy bitmap, owned by the ``PCRF``), and
  v)   PCRF access logic (chained spill/restore with 4-cycle pipelined
       access timing).

The RMU is purely a bookkeeping + timing model: actual schedulability state
lives in the simulator's CTA objects; policies call into the RMU to decide
whether a switch fits and what it costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.registry import MetricsRegistry

from repro.core.bitvector import LiveBitVector
from repro.core.bitvector_cache import BitVectorCache
from repro.core.liveness import LivenessTable
from repro.core.pcrf import PCRF


@dataclass
class RMUStats:
    """Event counters the energy and traffic models consume."""

    spills: int = 0
    restores: int = 0
    spilled_registers: int = 0
    restored_registers: int = 0
    rejected_switches: int = 0

    @property
    def transfers(self) -> int:
        return self.spills + self.restores


@dataclass(frozen=True)
class SwitchCost:
    """Latency/traffic outcome of one RMU transaction."""

    cycles: int
    offchip_bytes: int


@dataclass
class _PointerTableEntry:
    head_slot: int
    live_count: int


class RegisterManagementUnit:
    """Decides and executes register movement between ACRF and PCRF."""

    def __init__(self, pcrf: PCRF, liveness: LivenessTable,
                 cache_entries: int = 32, pcrf_access_latency: int = 4,
                 dram_latency: int = 350) -> None:
        self._pcrf = pcrf
        self._liveness = liveness
        self._cache = BitVectorCache(cache_entries)
        self._access_latency = pcrf_access_latency
        self._dram_latency = dram_latency
        self._pointer_table: Dict[int, _PointerTableEntry] = {}
        self.stats = RMUStats()
        #: MetricsRegistry installed by repro.telemetry (None = off).
        self.telemetry: Optional["MetricsRegistry"] = None
        #: Test-only fault injection (mutation self-test): when True, a
        #: spill claims PCRF space but never records its pointer-table row.
        self.fault_drop_pointer = False

    # ------------------------------------------------------------------
    @property
    def pcrf(self) -> PCRF:
        return self._pcrf

    @property
    def bitvector_cache(self) -> BitVectorCache:
        return self._cache

    def set_liveness(self, liveness: LivenessTable) -> None:
        """Swap the live-register table (new kernel launch)."""
        self._liveness = liveness
        self._cache.flush()

    # ------------------------------------------------------------------
    # Live-set queries
    # ------------------------------------------------------------------
    def live_vector_at(self, pc: int) -> Tuple[LiveBitVector, int]:
        """Fetch the live bit vector for a stalled warp's PC.

        Returns (vector, extra_latency): a cache hit is free, a miss costs a
        DRAM round trip and installs the line.
        """
        cached = self._cache.lookup(pc)
        if cached is not None:
            return cached, 0
        vector = self._liveness.live_at_pc(pc)
        self._cache.fill(pc, vector)
        return vector, self._dram_latency

    def live_set_of(self, warp_pcs: Sequence[Tuple[int, int]]
                    ) -> Tuple[List[Tuple[int, int]], int, int]:
        """Decode the live warp-registers of a stalled CTA.

        ``warp_pcs`` is (warp_id, pc) per unfinished warp.  Returns the
        (warp_id, register_index) pairs (the register index decoder output),
        the accumulated bit-vector fetch latency, and the number of cache
        misses (each fetches a 12-byte vector from off-chip memory).
        """
        live: List[Tuple[int, int]] = []
        extra_latency = 0
        misses = 0
        for warp_id, pc in warp_pcs:
            vector, miss_latency = self.live_vector_at(pc)
            if miss_latency:
                misses += 1
                extra_latency += miss_latency
            for reg in vector.registers():
                live.append((warp_id, reg))
        return live, extra_latency, misses

    def live_count_of(self, warp_pcs: Sequence[Tuple[int, int]]) -> int:
        """Live warp-register count without touching cache counters."""
        return sum(self._liveness.live_at_pc(pc).count() for _, pc in warp_pcs)

    # ------------------------------------------------------------------
    # Switching feasibility (paper V-E free-entry rule)
    # ------------------------------------------------------------------
    def can_spill(self, live_count: int,
                  restoring_cta: Optional[int] = None) -> bool:
        """True if ``live_count`` registers fit in the PCRF, counting the
        slots freed by restoring ``restoring_cta`` out first."""
        free = self._pcrf.free_entries_with_eviction_of(restoring_cta)
        return live_count <= free

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def spill(self, cta_id: int, live: Sequence[Tuple[int, int]],
              fetch_latency: int = 0) -> SwitchCost:
        """Move a stalled CTA's decoded live registers from ACRF to PCRF.

        ``live`` comes from :meth:`live_set_of`; ``fetch_latency`` is that
        call's accumulated bit-vector miss latency and is folded into the
        transaction's cycle count.
        """
        if not live:
            # Degenerate but legal: a CTA with an empty live set still needs
            # a PCRF presence to anchor its pointer-table entry.
            live = [(0, 0)]
        result = self._pcrf.spill(cta_id, list(live))
        if not self.fault_drop_pointer:
            self._pointer_table[cta_id] = _PointerTableEntry(
                head_slot=result.head_index, live_count=result.entries_used)
        self.stats.spills += 1
        self.stats.spilled_registers += result.entries_used
        cycles = self._transfer_cycles(result.entries_used) + fetch_latency
        if self.telemetry is not None:
            self.telemetry.inc("rmu.spills")
            self.telemetry.observe("rmu.spill_cycles", cycles)
        return SwitchCost(cycles=cycles, offchip_bytes=0)

    def restore(self, cta_id: int) -> SwitchCost:
        """Move a pending CTA's live registers from PCRF back to ACRF."""
        if cta_id not in self._pointer_table:
            raise KeyError(f"CTA {cta_id} has no PCRF pointer table entry")
        entry = self._pointer_table.pop(cta_id)
        registers = self._pcrf.restore(cta_id)
        if len(registers) != entry.live_count:
            raise RuntimeError(
                f"pointer table live count {entry.live_count} disagrees with "
                f"PCRF chain length {len(registers)} for CTA {cta_id}"
            )
        self.stats.restores += 1
        self.stats.restored_registers += len(registers)
        cycles = self._transfer_cycles(len(registers))
        if self.telemetry is not None:
            self.telemetry.inc("rmu.restores")
            self.telemetry.observe("rmu.restore_cycles", cycles)
        return SwitchCost(cycles=cycles, offchip_bytes=0)

    def pending_live_count(self, cta_id: int) -> int:
        return self._pointer_table[cta_id].live_count

    def pointer_table_ctas(self) -> set:
        """IDs of CTAs with pointer-table rows (sanitizer view)."""
        return set(self._pointer_table)

    def holds(self, cta_id: int) -> bool:
        return cta_id in self._pointer_table

    def _transfer_cycles(self, register_count: int) -> int:
        """Chain traversal is pipelined: first access pays the full PCRF
        latency, each further register streams at one per cycle (V-E)."""
        if register_count == 0:
            return 0
        return self._access_latency + (register_count - 1)

    # ------------------------------------------------------------------
    @property
    def pointer_table_bytes(self) -> int:
        """SRAM cost: 128 lines x (10-bit pointer + 6-bit count) = 256 B."""
        return 128 * 16 // 8
