"""Tests for the full-campaign driver."""

from pathlib import Path

from repro.experiments.run_all import CAMPAIGN, run_campaign, write_report


class TestCampaignDefinition:
    def test_covers_every_paper_experiment(self):
        names = {name for name, __ in CAMPAIGN}
        for required in ("fig02_resources", "fig03_cta_overhead",
                         "fig04_case_study", "fig05_register_usage",
                         "table03_stall_time", "fig12_concurrent_ctas",
                         "fig13_performance", "fig14_rf_stalls",
                         "fig15_memory_traffic", "fig16_energy",
                         "fig17_rf_sensitivity", "fig18_sm_scaling",
                         "fig19_unified_memory"):
            assert required in names

    def test_includes_ablations(self):
        names = {name for name, __ in CAMPAIGN}
        assert "ablation_bitvector_cache" in names
        assert "ablation_switch_policy" in names


class TestCampaignExecution:
    def test_subset_runs_and_reports(self, tiny_runner, tmp_path):
        results = run_campaign(tiny_runner, modules=["fig03_cta_overhead"])
        assert len(results) == 1
        assert results[0].experiment == "fig03"
        assert "_elapsed_s" in results[0].summary
        report = tmp_path / "REPORT.md"
        write_report(results, report, "tiny")
        text = report.read_text()
        assert "# FineReg reproduction" in text
        assert "fig03" in text
