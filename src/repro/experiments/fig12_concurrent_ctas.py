"""Fig 12: number of concurrent (resident) CTAs per configuration.

The paper reports FineReg running substantially more CTAs than the baseline
(+111.8% on average; Type-S apps gain much more than Type-R), more than
Virtual Thread and Reg+DRAM, while VT+RegMutex packs ~11.5% more CTAs than
FineReg yet performs worse (Fig 13).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    ALL_APPS,
    TYPE_R_APPS,
    TYPE_S_APPS,
    ExperimentResult,
    main_config_results,
    plan_main_configs,
)
from repro.experiments.runner import ExperimentRunner

CONFIGS = ("baseline", "virtual_thread", "reg_dram", "vt_regmutex",
           "finereg")

#: Full run-set for up-front pool dispatch (shared with Figs 13/16).
plan = plan_main_configs


def run(runner: ExperimentRunner,
        apps: Sequence[str] = ALL_APPS) -> ExperimentResult:
    rows = []
    ratios = {config: [] for config in CONFIGS if config != "baseline"}
    type_ratios = {"S": [], "R": []}
    for app in apps:
        results = main_config_results(runner, app)
        base = results["baseline"].avg_resident_ctas_per_sm
        row = [app] + [results[c].avg_resident_ctas_per_sm for c in CONFIGS]
        rows.append(row)
        for config in ratios:
            ratios[config].append(
                results[config].avg_resident_ctas_per_sm / base)
        wtype = "S" if app in TYPE_S_APPS else "R"
        type_ratios[wtype].append(
            results["finereg"].avg_resident_ctas_per_sm / base)

    mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
    summary = {
        f"{config}_cta_ratio": mean(values)
        for config, values in ratios.items()
    }
    summary["finereg_type_s_ratio"] = mean(type_ratios["S"])
    summary["finereg_type_r_ratio"] = mean(type_ratios["R"])
    return ExperimentResult(
        experiment="fig12",
        title="Concurrent CTAs per SM across configurations",
        headers=["app"] + list(CONFIGS),
        rows=rows,
        summary=summary,
        notes=("Paper: FineReg +111.8% CTAs vs baseline (Type-S +203.8%, "
               "Type-R +79.8%); VT+RegMutex packs ~11.5% more CTAs than "
               "FineReg."),
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner()).to_text(precision=1))


if __name__ == "__main__":  # pragma: no cover
    main()
