"""Property-based tests (hypothesis) for the core data structures.

These pin down the algebraic invariants the microarchitecture relies on:
bit-vector set algebra, liveness-vs-interpreter agreement, PCRF chain
round-trips under arbitrary interleavings, cache inclusion of the most
recent access, and allocator conservation.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.acrf import ACRFAllocator
from repro.core.bitvector import LiveBitVector
from repro.core.bitvector_cache import BitVectorCache
from repro.core.liveness import LivenessAnalysis
from repro.core.pcrf import PCRF
from repro.isa.cfg import ControlFlowGraph, EdgeKind
from repro.isa.instructions import Instruction, Opcode
from repro.memory.cache import Cache
from repro.memory.dram import DRAM

registers = st.sets(st.integers(min_value=0, max_value=63), max_size=16)


# ----------------------------------------------------------------------
# LiveBitVector algebra
# ----------------------------------------------------------------------
class TestBitVectorProperties:
    @given(registers)
    def test_round_trip(self, regs):
        vec = LiveBitVector.from_registers(regs)
        assert set(vec.registers()) == regs
        assert vec.count() == len(regs)

    @given(registers, registers)
    def test_union_is_set_union(self, a, b):
        va, vb = map(LiveBitVector.from_registers, (a, b))
        assert set((va | vb).registers()) == a | b

    @given(registers, registers)
    def test_minus_is_set_difference(self, a, b):
        va, vb = map(LiveBitVector.from_registers, (a, b))
        assert set((va - vb).registers()) == a - b

    @given(registers, registers)
    def test_intersect_is_set_intersection(self, a, b):
        va, vb = map(LiveBitVector.from_registers, (a, b))
        assert set((va & vb).registers()) == a & b

    @given(registers, st.integers(min_value=0, max_value=63))
    def test_with_without_inverse(self, regs, reg):
        vec = LiveBitVector.from_registers(regs)
        assert vec.with_register(reg).without_register(reg) \
            == vec.without_register(reg)


# ----------------------------------------------------------------------
# Liveness vs. a reference interpreter
# ----------------------------------------------------------------------
def random_straightline(seed: int, length: int):
    """A random straight-line program over 8 registers."""
    rng = random.Random(seed)
    instrs = []
    for __ in range(length):
        dest = rng.randrange(8)
        srcs = tuple(rng.sample(range(8), rng.randint(1, 2)))
        instrs.append(Instruction(Opcode.IALU, dest, srcs))
    cfg = ControlFlowGraph()
    cfg.add_block(instrs, EdgeKind.FALLTHROUGH, successors=(1,))
    cfg.add_block([Instruction(Opcode.EXIT)], EdgeKind.EXIT)
    return cfg.freeze()


def reference_live_in(cfg, index):
    """Brute-force liveness: walk forward from `index` and collect reads
    that happen before the register is overwritten."""
    live = set()
    killed = set()
    for instr in cfg.instructions[index:]:
        for src in instr.srcs:
            if src not in killed:
                live.add(src)
        if instr.dest is not None:
            killed.add(instr.dest)
    return live


class TestLivenessProperties:
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_interpreter(self, seed, length):
        cfg = random_straightline(seed, length)
        table = LivenessAnalysis(cfg).run(8)
        for index in range(cfg.num_instructions):
            expected = reference_live_in(cfg, index)
            assert set(table.live_at_index(index).registers()) == expected

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_live_never_exceeds_named_registers(self, seed):
        cfg = random_straightline(seed, 20)
        table = LivenessAnalysis(cfg).run(8)
        named = set(cfg.registers_used())
        for index in range(cfg.num_instructions):
            assert set(table.live_at_index(index).registers()) <= named


# ----------------------------------------------------------------------
# PCRF chains
# ----------------------------------------------------------------------
live_sets = st.lists(
    st.tuples(st.integers(min_value=0, max_value=31),
              st.integers(min_value=0, max_value=63)),
    min_size=1, max_size=12)


class TestPCRFProperties:
    @given(st.lists(live_sets, min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_interleaved_round_trips(self, cta_lives):
        total = sum(len(lv) for lv in cta_lives)
        pcrf = PCRF(max(16, total))
        for cta_id, live in enumerate(cta_lives):
            pcrf.spill(cta_id, live)
        # Restore in reverse order: chains must be independent.
        for cta_id in reversed(range(len(cta_lives))):
            assert list(pcrf.restore(cta_id)) == cta_lives[cta_id]
        assert pcrf.free_entries == pcrf.capacity

    @given(live_sets, live_sets)
    @settings(max_examples=60, deadline=None)
    def test_free_space_conservation(self, a, b):
        pcrf = PCRF(64)
        pcrf.spill(0, a)
        pcrf.spill(1, b)
        assert pcrf.used_entries == len(a) + len(b)
        pcrf.restore(0)
        assert pcrf.used_entries == len(b)
        occupied = sum(pcrf.occupancy_flags())
        assert occupied == pcrf.used_entries


# ----------------------------------------------------------------------
# Caches
# ----------------------------------------------------------------------
addresses = st.lists(st.integers(min_value=0, max_value=1 << 20),
                     min_size=1, max_size=200)


class TestCacheProperties:
    @given(addresses)
    @settings(max_examples=50, deadline=None)
    def test_most_recent_line_always_resident(self, addrs):
        cache = Cache("p", 8 * 2 * 128, 2, 128)
        for addr in addrs:
            cache.access(addr)
            assert cache.probe(addr)

    @given(addresses)
    @settings(max_examples=50, deadline=None)
    def test_occupancy_bounded(self, addrs):
        cache = Cache("p", 4 * 2 * 128, 2, 128)
        for addr in addrs:
            cache.access(addr)
        occ = cache.occupancy()
        assert occ["lines"] <= occ["capacity"]

    @given(addresses)
    @settings(max_examples=50, deadline=None)
    def test_stats_add_up(self, addrs):
        cache = Cache("p", 4 * 2 * 128, 2, 128)
        for addr in addrs:
            cache.access(addr)
        assert cache.stats.accesses == len(addrs)


class TestBitVectorCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=4000), min_size=1,
                    max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_fill_then_lookup_hits(self, pcs):
        cache = BitVectorCache(8)
        vec = LiveBitVector.from_registers([1])
        for pc in pcs:
            pc *= 4
            cache.fill(pc, vec)
            assert cache.lookup(pc) == vec


# ----------------------------------------------------------------------
# DRAM monotonicity
# ----------------------------------------------------------------------
class TestDRAMProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=1000),
                              st.integers(min_value=1, max_value=4096)),
                    min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_completions_monotone_for_sorted_arrivals(self, reqs):
        dram = DRAM(16.0, 100)
        last = 0
        for now, nbytes in sorted(reqs):
            done = dram.request(now, nbytes)
            assert done >= now + 100
            assert done >= last   # FIFO channel never reorders
            last = done

    @given(st.lists(st.integers(min_value=1, max_value=4096), min_size=1,
                    max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_traffic_accounting_exact(self, sizes):
        dram = DRAM(16.0, 100)
        for nbytes in sizes:
            dram.request(0, nbytes)
        assert dram.stats.total_bytes == sum(sizes)


# ----------------------------------------------------------------------
# ACRF conservation
# ----------------------------------------------------------------------
class TestACRFProperties:
    @given(st.lists(st.integers(min_value=1, max_value=64), min_size=1,
                    max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_allocate_release_conserves(self, sizes):
        acrf = ACRFAllocator(4096)
        allocated = {}
        for cta_id, size in enumerate(sizes):
            if acrf.can_allocate(size):
                acrf.allocate(cta_id, size)
                allocated[cta_id] = size
        assert acrf.used == sum(allocated.values())
        for cta_id, size in allocated.items():
            assert acrf.release(cta_id) == size
        assert acrf.used == 0
        assert acrf.free == acrf.capacity
