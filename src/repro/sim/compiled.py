"""Compiled backend: the vectorized runners' issue loop in C.

``repro.sim.vectorized`` already decouples the run into per-SM runners
that only synchronize at genuinely shared operations (memory-hierarchy
accesses, grid pulls via the EXIT -> retire -> ``fill`` chain, run-end
reconciliation).  PR 6's profile shows the remaining cost is the pure
Python of the issue loop itself: ~2 us of scheduler work per visited
SM-cycle.  This backend lowers that loop -- and only that loop -- into
the ``repro.sim._ckernel`` C extension:

* **Lowering** -- once per run, after the dense prologue fill: the static
  ``_meta`` table becomes a flat C array (srcs / dest / pattern /
  fused-kind / fixed latency), each unique dynamic trace is interned once
  (memoized by identity, like ``TraceTables``), and every warp / CTA /
  scheduler becomes a flat C record (scoreboard, ``blocked_until``,
  barrier counts, member lists in ``sched_seq`` order).
* **Merge points** -- ``Core.resume(sm_id)`` runs one SM's issue loop
  privately and returns exactly where the vectorized runner would
  ``yield``: before every hierarchy access and before every
  ``_finish_warp``.  The held operation is then performed *in Python*
  through the real objects (``hierarchy._access``, ``sm._finish_warp``,
  the policy fill chain), in the same global ``(cycle, sm_id)`` heap
  order as ``run_vectorized``, so the dense interleaving -- and therefore
  every L2/DRAM state transition and grid race -- is reproduced exactly.
* **Write-back** -- around each EXIT the mutated state is exchanged both
  ways: C's view of the SM (scheduler sleep/current, warp positions and
  block states, CTA barrier/stall fields) is written to the Python
  objects *before* the retire chain runs, and the chain's effects (freed
  warps, released barriers, freshly launched CTAs) are re-lowered after.
  The run ends with the same closed-form reconciliation as the vectorized
  backend, the C level integrals merged as exact integer sums.

Eligibility narrows ``run_eligible`` further: the C core additionally
inlines ``_on_long_block`` / ``_wake_schedulers`` (SM), ``wake`` /
``_rebuild`` / ``_note_sleep`` (scheduler) and ``stats.accumulate``, so
an instance-level wrapper on any of those routes the run to the
vectorized backend (or the event engine when numpy is absent) instead of
being silently skipped.  The gate tuples below are machine-checked by the
effects auditor (``repro.analyze.effects``).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush

from repro.sim.vectorized import (_BYPASSED_SM_ATTRS, FOREVER,
                                  instance_overrides, run_eligible)
from repro.sim.warp import WarpState

#: SM surface additionally inlined by the C core on top of the vectorized
#: bypass list: the long-block / fully-stalled check and the barrier
#: scheduler wake both run inside C between merge points.
_COMPILED_EXTRA_SM_ATTRS = ("_on_long_block", "_wake_schedulers")

#: The full SM bypass surface of this backend (vectorized's plus the
#: extras); imported by the effects auditor's compiled gate.
_COMPILED_BYPASSED_SM_ATTRS = _BYPASSED_SM_ATTRS + _COMPILED_EXTRA_SM_ATTRS

#: Stats surface inlined: the per-segment level flush runs in C as int64
#: sums (merged once at reconciliation).
_COMPILED_BYPASSED_STATS_ATTRS = ("accumulate",)

#: C warp-state ids <-> the Python enum (order is part of the C ABI).
_STATES = (WarpState.RUNNABLE, WarpState.AT_BARRIER, WarpState.FINISHED)
_STATE_IDS = {state: index for index, state in enumerate(_STATES)}


def compiled_run_eligible(gpu) -> bool:
    """True when the whole run can execute on the C core.

    Everything ``run_eligible`` demands, plus no instance-level overrides
    on the additional surface the C core inlines (see the gate tuples
    above).  Ineligible runs fall back down the chain -- never error.
    """
    if not run_eligible(gpu):
        return False
    for sm in gpu.sms:
        if instance_overrides(sm, _COMPILED_EXTRA_SM_ATTRS):
            return False
        if instance_overrides(sm.stats, _COMPILED_BYPASSED_STATS_ATTRS):
            return False
        # The scheduler surface the C core inlines (the bucket scan, the
        # barrier wake, the sleep fold) needs no instance gate:
        # GTOScheduler declares __slots__, so instance-level overrides are
        # impossible, and run_eligible already pins the exact type.
    return True


def _fallback(gpu, max_cycles):
    """Ineligible run: next backend down the auto chain."""
    from repro.sim.backend import numpy_available
    if numpy_available():
        from repro.sim.vectorized import run_vectorized
        return run_vectorized(gpu, max_cycles)
    return gpu._run_event(max_cycles)


def run_compiled(gpu, max_cycles):
    """Drive one run on the C core (vectorized/fused fallback if not
    eligible); bit-identical to the dense oracle by construction."""
    if not compiled_run_eligible(gpu):
        return _fallback(gpu, max_cycles)
    gpu.engine_used = "compiled"
    sms = gpu.sms
    for sm in sms:
        sm._bind_fast_path()
    # Initial fill in SM order (exactly the dense prologue), then lower.
    for sm in sms:
        sm.policy.fill(0)
    return _Run(gpu, max_cycles).run()


class _Run:
    """One lowered run: the Core object plus the Python<->C slot maps."""

    def __init__(self, gpu, max_cycles) -> None:
        from repro.sim import _ckernel

        sms = gpu.sms
        sm0 = sms[0]
        model = gpu.address_model
        # _meta is identical across SMs for a single-launch run (the only
        # kind that is eligible): lower SM 0's table once.
        meta = [(m[6], -1 if m[1] is None else m[1], m[7], m[8], m[9],
                 tuple(m[0])) for m in sm0._meta]
        self.gpu = gpu
        self.max_cycles = max_cycles
        self.core = _ckernel.Core(
            len(sms), len(sm0.schedulers), sm0._nregs,
            sm0._stall_threshold, model.reuse_spatial, model.reuse_lines,
            model.shared_lines, model.SHARED_BASE, max_cycles, meta)
        # Identity maps.  Strong references pin the ids: traces are shared
        # and immutable, warps/CTAs live until the Core does.
        self.wslots = {}        # id(warp) -> warp slot
        self.slot_warps = []    # warp slot -> warp
        self.cslots = {}        # id(cta) -> CTA slot
        self._trace_slots = {}  # id(trace) -> trace slot
        self._refs = []
        for sm in sms:
            for cta in sm.active_ctas:
                self._lower_cta(sm, cta)
        for sm in sms:
            self._sync_sm(sm)

    # ------------------------------------------------------------------
    # Python -> C
    # ------------------------------------------------------------------
    def _lower_cta(self, sm, cta) -> None:
        """Lower one freshly launched CTA (all warps in pristine state)."""
        core = self.core
        cslot = core.new_cta(sm.sm_id, cta.cta_id)
        self.cslots[id(cta)] = cslot
        self._refs.append(cta)
        trace_slots = self._trace_slots
        for warp in cta.warps:
            trace = warp.trace
            tslot = trace_slots.get(id(trace))
            if tslot is None:
                tslot = core.add_trace(trace)
                trace_slots[id(trace)] = tslot
                self._refs.append(trace)
            wslot = core.new_warp(sm.sm_id, cslot, tslot,
                                  warp.global_warp_id)
            self.wslots[id(warp)] = wslot
            self.slot_warps.append(warp)

    def _sync_sm(self, sm) -> None:
        """Import the SM's scheduler membership and resource levels."""
        core = self.core
        wslots = self.wslots
        for k, sched in enumerate(sm.schedulers):
            current = sched._current
            core.set_sched(
                sm.sm_id, k, [wslots[id(w)] for w in sched.warps],
                sched._sleep_until,
                -1 if current is None else wslots[id(current)])
        core.set_levels(sm.sm_id, 1 if sm._lvl_dirty else 0,
                        len(sm.active_ctas), sm._active_warps)
        # The C core owns the level-flush boundary from here on (it clears
        # its dirty bit at its own end-of-cycle flush, exactly where the
        # vectorized runner clears this flag).
        sm._lvl_dirty = False

    # ------------------------------------------------------------------
    # C -> Python
    # ------------------------------------------------------------------
    def _writeback_sm(self, sm) -> None:
        """Export C's view of one SM onto the real Python objects.

        Required before the EXIT retire chain runs: ``remove_warp`` /
        ``_resleep`` reads every sibling's ``blocked_until``,
        ``maybe_release_barrier`` reads warp states, and the scheduler
        sleep caches must round-trip exactly (a blanket wake here would
        corrupt the wake summary near ``max_cycles``).
        """
        core = self.core
        sm_id = sm.sm_id
        slot_warps = self.slot_warps
        wslots = self.wslots
        cslots = self.cslots
        for k, sched in enumerate(sm.schedulers):
            sleep, cur = core.sched_state(sm_id, k)
            sched._sleep_until = sleep
            sched._current = None if cur < 0 else slot_warps[cur]
            sched._dirty = True
        for cta in sm.active_ctas:
            arrived, first, recorded = core.get_cta(cslots[id(cta)])
            cta.barrier_arrived = arrived
            cta.first_issue_cycle = None if first < 0 else first
            cta.stall_recorded = bool(recorded)
            for warp in cta.warps:
                pos, state, blocked = core.get_warp(wslots[id(warp)])
                warp.pos = pos
                warp.state = _STATES[state]
                warp.blocked_until = blocked

    def _serve_exit(self, sm, now, wslot) -> None:
        """One EXIT merge point: run the real retire chain in Python.

        C already advanced the warp past its EXIT; the finish itself
        (packed stat credit, scheduler removal, barrier release, CTA
        retire -> policy fill -> grid pull) runs through the real SM and
        policy methods so instance-level wrappers stay honored and grid
        races revalidate naturally.
        """
        warp = self.slot_warps[wslot]
        self._writeback_sm(sm)
        sm._finish_warp(warp, now)
        exit_cta = warp.cta
        cslots = self.cslots
        for cta in sm.active_ctas:
            if id(cta) not in cslots:
                self._lower_cta(sm, cta)
        # The chain may have released the exiting CTA's barrier: re-import
        # its warps' states (the finished warp included) before the
        # scheduler/level sync.
        core = self.core
        wslots = self.wslots
        for w in exit_cta.warps:
            core.set_warp(wslots[id(w)], _STATE_IDS[w.state],
                          w.blocked_until)
        self._sync_sm(sm)

    # ------------------------------------------------------------------
    def run(self):
        gpu = self.gpu
        core = self.core
        sms = gpu.sms
        hier = gpu.hierarchy
        hier_stats = hier.stats
        access = hier._access
        resume = core.resume
        max_cycles = self.max_cycles

        results = [None] * len(sms)
        held = [None] * len(sms)
        heap = []
        for sm in sms:
            desc = resume(sm.sm_id, 0)
            if desc[0] == 0:
                results[sm.sm_id] = core.summary(sm.sm_id)
            else:
                held[sm.sm_id] = desc
                heap.append((desc[1], sm.sm_id))
        heapify(heap)

        # K-way merge on (cycle, sm_id), exactly run_vectorized's: resume
        # cycles are nondecreasing and each SM holds one outstanding op,
        # so serving the heap minimum reproduces the dense global order;
        # the inner loop keeps serving the same SM while it remains the
        # minimum.
        while heap:
            cycle, sm_id = heappop(heap)
            sm = sms[sm_id]
            while True:
                desc = held[sm_id]
                kind = desc[0]
                if kind == 1:       # LDG
                    hier_stats.loads += 1
                    done = access(sm_id, desc[3], desc[1], False)
                    desc = resume(sm_id, done)
                elif kind == 2:     # STG
                    hier_stats.stores += 1
                    access(sm_id, desc[3], desc[1], True)
                    desc = resume(sm_id, 0)
                else:               # EXIT
                    self._serve_exit(sm, desc[1], desc[2])
                    desc = resume(sm_id, 0)
                if desc[0] == 0:
                    results[sm_id] = core.summary(sm_id)
                    break
                cycle = desc[1]
                held[sm_id] = desc
                if heap:
                    head = heap[0]
                    if head[0] < cycle or (head[0] == cycle
                                           and head[1] < sm_id):
                        heappush(heap, (cycle, sm_id))
                        break

        # ---- reconciliation: identical to run_vectorized's ----
        last = -1
        for summary in results:
            if summary[2] > last:
                last = summary[2]
        busy = [summary for summary in results if summary[0]]
        if not busy:
            now_final = last + 1
            timed_out = False
        elif last + 1 >= max_cycles:
            now_final = last + 1
            timed_out = True
        else:
            wake = min(summary[1] for summary in busy)
            if wake >= FOREVER:
                gpu._raise_deadlock(last + 1)
            now_final = wake
            timed_out = True

        for sm, summary in zip(sms, results):
            (was_busy, __, last_i, n_issue,
             seg_start, seg_active, seg_warps) = summary
            # Final state export: _flush_deferred_stats reads warp.pos of
            # unfinished warps on a timeout, and post-run introspection
            # (tests, debug_accounting) sees live state on every backend.
            self._writeback_sm(sm)
            stats = sm.stats
            cta_sum, warp_sum, max_res = core.levels(sm.sm_id)
            # The closed segments were accumulated in C as exact integer
            # sums; one float add of each total is bit-identical to the
            # dense per-segment float adds (every partial sum < 2**53).
            if cta_sum:
                stats.active_cta_cycles += cta_sum
            if warp_sum:
                stats.active_warp_cycles += warp_sum
            if max_res > stats.max_resident_ctas:
                stats.max_resident_ctas = max_res
            stalls = core.take_stalls(sm.sm_id)
            if stalls:
                stats.stall_latencies.extend(stalls)
            dt = now_final - seg_start
            if dt and (seg_active or seg_warps):
                stats.accumulate(dt, seg_active, 0, seg_warps)
            if was_busy:
                stats.idle_cycles += now_final - n_issue
            elif last_i >= 0:
                stats.idle_cycles += last_i - (n_issue - 1)
        return gpu._finish_run(now_final, timed_out)
