"""Fig 2: performance impact of scaling scheduling resources and on-chip
memory by 1.5x / 2x, for Type-S and Type-R workloads.

The paper finds Type-S apps gain ~27-28% from more scheduling resources but
little from memory, Type-R apps the opposite (~30-44%), and both gain most
(~46-99%) when both are scaled.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.common import (
    ALL_APPS,
    TYPE_R_APPS,
    TYPE_S_APPS,
    ExperimentResult,
)
from repro.experiments.parallel import RunRequest
from repro.experiments.report import geomean
from repro.experiments.runner import ExperimentRunner

VARIANTS = (
    ("Sched x1.5", 1.5, 1.0),
    ("Sched x2", 2.0, 1.0),
    ("Mem x1.5", 1.0, 1.5),
    ("Mem x2", 1.0, 2.0),
    ("Sched+Mem x1.5", 1.5, 1.5),
    ("Sched+Mem x2", 2.0, 2.0),
)


def run(runner: ExperimentRunner,
        apps: Sequence[str] = ALL_APPS) -> ExperimentResult:
    speedups: Dict[str, Dict[str, float]] = {}
    for app in apps:
        base = runner.run(app, "baseline")
        speedups[app] = {}
        for label, sched, mem in VARIANTS:
            config = runner.base_config
            if sched != 1.0:
                config = config.with_scheduling_scale(sched)
            if mem != 1.0:
                config = config.with_memory_scale(mem)
            result = runner.run(app, "baseline", config=config)
            speedups[app][label] = result.ipc / base.ipc

    headers = ["app", "type"] + [label for label, __, __ in VARIANTS]
    rows = []
    for app in apps:
        wtype = "S" if app in TYPE_S_APPS else "R"
        rows.append([app, wtype]
                    + [speedups[app][label] for label, __, __ in VARIANTS])

    summary = {}
    for label, __, __ in VARIANTS:
        for group, members in (("type_s", TYPE_S_APPS), ("type_r",
                                                         TYPE_R_APPS)):
            values = [speedups[a][label] for a in apps if a in members]
            if values:
                key = f"{group}_{label.replace(' ', '_').lower()}"
                summary[key] = geomean(values)

    return ExperimentResult(
        experiment="fig02",
        title="Speedup from scaling scheduling resources and on-chip memory",
        headers=headers,
        rows=rows,
        summary=summary,
        notes=("Paper: Type-S +27.1%/+28.4% from Sched x1.5/x2, Type-R "
               "+29.5%/+43.6% from Mem x1.5/x2; both scaled: +45.5%/+98.6%."),
    )


def plan(runner: ExperimentRunner,
         apps: Sequence[str] = ALL_APPS):
    """Full run-set for up-front pool dispatch."""
    requests = []
    for app in apps:
        requests.append(RunRequest.make(app, "baseline"))
        for __, sched, mem in VARIANTS:
            config = runner.base_config
            if sched != 1.0:
                config = config.with_scheduling_scale(sched)
            if mem != 1.0:
                config = config.with_memory_scale(mem)
            requests.append(RunRequest.make(app, "baseline", config=config))
    return requests


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
