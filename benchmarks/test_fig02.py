"""Bench: regenerate paper Fig 2 (scheduling vs memory resource scaling)."""

from conftest import regenerate
from repro.experiments import fig02_resources


def test_fig02_resource_scaling(benchmark, runner):
    result = regenerate(benchmark, fig02_resources.run, runner)
    # Shape: Type-S apps respond to scheduling resources, Type-R to memory.
    assert result.summary["type_s_sched_x2"] \
        > result.summary["type_s_mem_x2"] - 0.02
    assert result.summary["type_r_mem_x2"] \
        > result.summary["type_r_sched_x2"] - 0.02
    # Scaling both dominates scaling either alone.
    assert result.summary["type_s_sched+mem_x2"] \
        >= result.summary["type_s_sched_x2"] - 0.02
    assert result.summary["type_r_sched+mem_x2"] \
        >= result.summary["type_r_mem_x2"] - 0.02
