"""Unit tests for the concurrent-kernel launch layer (repro.sim.launch).

Covers the partitioned id spaces ``build_launches`` hands out, label
deduplication, the identity-preserving ``trace_for`` rebase, the GridView
facade the engine loops drain, the DispatchArbiter's two policies, and the
combined-liveness / shared-address-model constructors concurrent GPUs are
assembled from.
"""

from __future__ import annotations

from collections import deque

import pytest

from repro.config import TINY, default_config
from repro.sim.launch import (
    ARBITRATION_POLICIES,
    DispatchArbiter,
    GridView,
    KernelLaunch,
    LaunchSpec,
    build_launches,
    combined_liveness,
    shared_address_model,
)
from repro.workloads.generator import build_workload
from repro.workloads.suite import get_spec

CONFIG = default_config(TINY)


@pytest.fixture(scope="module")
def km():
    return build_workload(get_spec("KM"), CONFIG, TINY)


@pytest.fixture(scope="module")
def lb():
    return build_workload(get_spec("LB"), CONFIG, TINY)


def specs_for(*instances, **kwargs):
    return [LaunchSpec.from_workload(inst, stream=i, **kwargs)
            for i, inst in enumerate(instances)]


# ----------------------------------------------------------------------
# build_launches: id-space partitioning and labels
# ----------------------------------------------------------------------
class TestBuildLaunches:
    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            build_launches([])

    def test_single_launch_keeps_base_zero(self, km):
        (launch,) = build_launches(specs_for(km))
        assert (launch.cta_base, launch.warp_base, launch.index_base) \
            == (0, 0, 0)
        assert launch.grid_ctas == km.kernel.geometry.grid_ctas

    def test_bases_are_contiguous_blocks(self, km, lb):
        first, second = build_launches(specs_for(km, lb))
        assert first.cta_base == 0
        assert second.cta_base == first.grid_ctas
        assert second.warp_base == first.grid_ctas * first.warps_per_cta
        assert second.index_base == first.num_instructions

    def test_grids_enumerate_partitioned_cta_ids(self, km, lb):
        first, second = build_launches(specs_for(km, lb))
        assert list(first.grid) == list(range(first.grid_ctas))
        assert list(second.grid) == list(
            range(second.cta_base, second.cta_base + second.grid_ctas))

    def test_owns_cta_partitions_exactly(self, km, lb):
        first, second = build_launches(specs_for(km, lb))
        total = first.grid_ctas + second.grid_ctas
        for cta_id in range(total):
            owners = [l for l in (first, second) if l.owns_cta(cta_id)]
            assert len(owners) == 1
        assert not first.owns_cta(total)
        assert not second.owns_cta(-1)

    def test_default_labels_carry_stream_and_kernel(self, km, lb):
        first, second = build_launches(specs_for(km, lb))
        assert first.label == f"s0:{km.kernel.name}"
        assert second.label == f"s1:{lb.kernel.name}"

    def test_duplicate_labels_deduplicated(self, km):
        # Same kernel on the same stream id twice: identical default
        # labels must not collide in per-kernel attribution.
        specs = [LaunchSpec.from_workload(km), LaunchSpec.from_workload(km)]
        first, second = build_launches(specs)
        assert first.label != second.label
        assert second.label.endswith("#1")

    def test_explicit_label_respected(self, km):
        (launch,) = build_launches(
            [LaunchSpec.from_workload(km, label="hot-stream")])
        assert launch.label == "hot-stream"


# ----------------------------------------------------------------------
# KernelLaunch: CTA queue and trace rebase
# ----------------------------------------------------------------------
class TestKernelLaunch:
    def test_pop_cta_drains_in_order(self, km):
        (launch,) = build_launches(specs_for(km))
        popped = [launch.pop_cta() for __ in range(launch.grid_ctas)]
        assert popped == list(range(launch.grid_ctas))
        assert launch.pop_cta() is None
        assert launch.remaining == 0

    def test_base0_trace_identity_preserved(self, km):
        # The vectorized backend keys trace tables by list identity; the
        # base-0 launch must return the provider's memoized object as-is.
        (launch,) = build_launches(specs_for(km))
        assert launch.trace_for(0, 0) is km.trace_provider.trace_for(0, 0)

    def test_rebased_trace_offsets_every_index(self, km, lb):
        __, second = build_launches(specs_for(km, lb))
        raw = lb.trace_provider.trace_for(0, 0)
        rebased = second.trace_for(0, 0)
        assert list(rebased) == [i + second.index_base for i in raw]

    def test_rebased_trace_memoized(self, km, lb):
        __, second = build_launches(specs_for(km, lb))
        assert second.trace_for(0, 0) is second.trace_for(0, 0)


# ----------------------------------------------------------------------
# GridView
# ----------------------------------------------------------------------
class TestGridView:
    def _view(self, km, lb):
        launches = build_launches(specs_for(km, lb))
        return launches, GridView(launches)

    def test_len_sums_all_queues(self, km, lb):
        launches, view = self._view(km, lb)
        assert len(view) == sum(l.grid_ctas for l in launches)

    def test_truthiness_tracks_drain(self, km, lb):
        launches, view = self._view(km, lb)
        assert view
        for launch in launches:
            launch.grid.clear()
        assert not view
        assert len(view) == 0

    def test_popleft_services_index_order(self, km, lb):
        launches, view = self._view(km, lb)
        drained = [view.popleft() for __ in range(len(view))]
        # launch 0 drains fully before launch 1 is touched
        expected = [cta for launch in launches for cta in
                    range(launch.cta_base, launch.cta_base + launch.grid_ctas)]
        assert drained == expected

    def test_popleft_empty_raises(self, km, lb):
        launches, view = self._view(km, lb)
        for launch in launches:
            launch.grid.clear()
        with pytest.raises(IndexError):
            view.popleft()


# ----------------------------------------------------------------------
# DispatchArbiter
# ----------------------------------------------------------------------
def make_launch(index, stream=0, priority=0, ctas=4):
    """A minimal stand-in launch: the arbiter only reads index/stream/
    priority/grid, so a bare object with those attributes suffices."""
    class _L:
        pass
    launch = _L()
    launch.index = index
    launch.stream = stream
    launch.priority = priority
    launch.grid = deque(range(ctas))
    return launch


class TestDispatchArbiter:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="round_robin"):
            DispatchArbiter([make_launch(0)], policy="fifo")

    def test_policies_registry_matches_ctor(self):
        for policy in ARBITRATION_POLICIES:
            DispatchArbiter([make_launch(0)], policy=policy)

    def test_priority_order_highest_first(self):
        low = make_launch(0, priority=0)
        high = make_launch(1, priority=2)
        arb = DispatchArbiter([low, high], policy="priority")
        assert arb.dispatch_order() == [high, low]

    def test_priority_ties_break_by_stream_then_index(self):
        a = make_launch(1, stream=1)
        b = make_launch(0, stream=2)
        c = make_launch(2, stream=1)
        arb = DispatchArbiter([a, b, c], policy="priority")
        assert arb.dispatch_order() == [a, c, b]

    def test_priority_order_static_across_dispatches(self):
        low, high = make_launch(0), make_launch(1, priority=1)
        arb = DispatchArbiter([low, high], policy="priority")
        arb.note_dispatched(high)
        assert arb.dispatch_order() == [high, low]

    def test_round_robin_rotates_after_dispatch(self):
        a, b = make_launch(0), make_launch(1)
        arb = DispatchArbiter([a, b], policy="round_robin")
        assert arb.dispatch_order()[0] is a
        arb.note_dispatched(a)
        assert arb.dispatch_order()[0] is b
        arb.note_dispatched(b)
        assert arb.dispatch_order()[0] is a

    def test_next_fitting_skips_drained(self):
        a, b = make_launch(0), make_launch(1)
        a.grid.clear()
        arb = DispatchArbiter([a, b], policy="priority")
        assert arb.next_fitting(lambda l: True) is b

    def test_next_fitting_honors_fit_predicate(self):
        a, b = make_launch(0, priority=1), make_launch(1)
        arb = DispatchArbiter([a, b], policy="priority")
        assert arb.next_fitting(lambda l: l is b) is b
        assert arb.next_fitting(lambda l: False) is None


# ----------------------------------------------------------------------
# combined_liveness / shared_address_model
# ----------------------------------------------------------------------
class TestCombiners:
    def test_single_launch_liveness_passthrough(self, km):
        (launch,) = build_launches(specs_for(km))
        assert combined_liveness([launch]) is launch.liveness

    def test_combined_liveness_concatenates_vectors(self, km, lb):
        launches = build_launches(specs_for(km, lb))
        table = combined_liveness(launches)
        assert len(table.vectors) == sum(
            len(l.liveness.vectors) for l in launches)
        assert table.num_registers == max(
            l.liveness.num_registers for l in launches)

    def test_shared_address_model_returns_first(self, km, lb):
        first = specs_for(km)[0]
        # build_app-style sharing: every stream reuses the first model.
        partner = LaunchSpec(kernel=lb.kernel,
                             trace_provider=lb.trace_provider,
                             address_model=first.address_model)
        assert shared_address_model([first, partner]) \
            is first.address_model

    def test_shared_address_model_rejects_type_mismatch(self, km):
        spec = specs_for(km)[0]
        alien = LaunchSpec(kernel=km.kernel,
                           trace_provider=km.trace_provider,
                           address_model=object())
        with pytest.raises(ValueError, match="address-model type"):
            shared_address_model([spec, alien])
