"""Stall-taxonomy attribution on hand-computable micro-workloads.

These pin the exact values of the three stall counters
(``idle_cycles`` / ``rf_depletion_cycles`` / ``srp_stall_cycles``) on
kernels small enough to reason about by hand with the Table-I latencies.
The simulator is deterministic, so exact equality is the right assertion:
any drift in issue timing, stall attribution, or switch accounting shows
up here as a changed constant rather than a vague ratio.
"""

from __future__ import annotations

import dataclasses

from repro.config import GPUConfig
from repro.isa.cfg import ControlFlowGraph, EdgeKind
from repro.isa.instructions import AccessPattern, Instruction, Opcode
from repro.isa.kernel import Kernel, LaunchGeometry
from repro.policies.baseline import BaselinePolicy
from repro.policies.finereg import FineRegPolicy
from repro.sim.gpu import GPU
from repro.workloads.traces import AddressModel, TraceProvider

#: Table-I ALU latency the derivations below assume.
ALU = GPUConfig().alu_latency
assert ALU == 6, "derived constants below assume the Table-I ALU latency"


def chain_cfg() -> ControlFlowGraph:
    """Three chained IALUs + EXIT: every issue waits out the full ALU
    latency of its predecessor."""
    cfg = ControlFlowGraph()
    cfg.add_block([
        Instruction(Opcode.IALU, 1, (0,)),
        Instruction(Opcode.IALU, 2, (1,)),
        Instruction(Opcode.IALU, 3, (2,)),
    ], EdgeKind.FALLTHROUGH, successors=(1,))
    cfg.add_block([Instruction(Opcode.EXIT)], EdgeKind.EXIT)
    return cfg.freeze()


def live_load_cfg() -> ControlFlowGraph:
    """Six registers written before a global load and all consumed after
    it: they are live across the long-latency block, so a FineReg
    switch-out must spill at least six warp-registers."""
    cfg = ControlFlowGraph()
    cfg.add_block([
        Instruction(Opcode.IALU, 1, ()),
        Instruction(Opcode.IALU, 2, ()),
        Instruction(Opcode.IALU, 3, ()),
        Instruction(Opcode.IALU, 4, ()),
        Instruction(Opcode.IALU, 5, ()),
        Instruction(Opcode.IALU, 6, ()),
        Instruction(Opcode.LDG, 7, (0,), AccessPattern.STREAM),
        Instruction(Opcode.IALU, 0, (1, 2, 3, 4, 5, 6, 7)),
    ], EdgeKind.FALLTHROUGH, successors=(1,))
    cfg.add_block([Instruction(Opcode.EXIT)], EdgeKind.EXIT)
    return cfg.freeze()


def run(cfg, policy, config, grid=2, regs=8):
    kernel = Kernel("unit", cfg,
                    LaunchGeometry(threads_per_cta=32, grid_ctas=grid),
                    regs_per_thread=regs)
    gpu = GPU(config, kernel, policy, TraceProvider(cfg, seed=1),
              AddressModel())
    return gpu.run(max_cycles=500_000)


class TestDependentChain:
    """Both CTAs fit in the RF: idle time is pure ALU-latency gaps."""

    def check(self, policy):
        config = GPUConfig().with_num_sms(1)
        result = run(chain_cfg(), policy, config)
        # Each warp issues its chain at cycles 0 / L / 2L (each issue
        # waits out the predecessor's L-cycle latency) and EXIT at 2L+1;
        # the run ends one cycle later at 2L+2.  The two 1-warp CTAs fit
        # concurrently and execute in lockstep on separate schedulers, so
        # the SM-wide issue/idle pattern is that of a single chain:
        #   cycles = 2L + 2 = 14
        #   idle   = 2 (L - 1) = 10   (the two latency gaps)
        assert result.cycles == 2 * ALU + 2
        assert result.idle_cycles == 2 * (ALU - 1)
        assert result.rf_depletion_cycles == 0
        assert result.srp_stall_cycles == 0
        assert result.cta_switch_events == 0
        assert result.completed_ctas == 2
        return result

    def test_baseline_exact(self):
        self.check(BaselinePolicy)

    def test_finereg_exact(self):
        result = self.check(FineRegPolicy)
        assert result.switch_overhead_cycles == 0

    def test_finereg_serializes_when_acrf_holds_one_cta(self):
        # Shrink the RF to 2 KiB with a 1 KiB PCRF carve-out: the ACRF
        # (1 KiB = 8 warp-registers) holds exactly one 8-entry CTA, so
        # FineReg runs the two CTAs back to back.  Each CTA contributes
        # its own two latency gaps; no idle cycle is attributed to RF
        # depletion because the second CTA was never switched out -- it
        # simply had not launched yet (launch throttling, not depletion).
        config = dataclasses.replace(GPUConfig().with_num_sms(1),
                                     register_file_bytes=2048,
                                     pcrf_bytes=1024)
        result = run(chain_cfg(), FineRegPolicy, config)
        assert result.completed_ctas == 2
        assert result.cta_switch_events == 0
        assert result.idle_cycles == 2 * 2 * (ALU - 1)
        assert result.rf_depletion_cycles == 0
        assert result.srp_stall_cycles == 0
        # Serialized: strictly slower than the concurrent run above.
        assert result.cycles == 27


class TestRFDepletionAttribution:
    """A switch-out that cannot spill marks subsequent idle as RF
    depletion -- the Fig-14 attribution path."""

    #: ACRF = 2 KiB - 256 B = 14 entries: one 8-entry CTA fits, two don't.
    #: PCRF = 256 B = 2 entries: cannot absorb the >= 6 live registers a
    #: switch-out of `live_load_cfg` must spill, so every switch attempt
    #: fails and the policy reports itself blocked on RF space.
    CONFIG = dataclasses.replace(GPUConfig().with_num_sms(1),
                                 register_file_bytes=2048,
                                 pcrf_bytes=256)

    def test_finereg_attributes_blocked_idle_to_rf(self):
        result = run(live_load_cfg(), FineRegPolicy, self.CONFIG)
        assert result.completed_ctas == 2
        # The spill never fits, so no switch ever completes ...
        assert result.cta_switch_events == 0
        assert result.switch_overhead_cycles == 0
        # ... and from the first failed attempt to the end of the run the
        # policy is blocked on RF space: every idle cycle is attributed.
        assert result.idle_cycles == result.rf_depletion_cycles
        assert result.srp_stall_cycles == 0
        # Exact pinned taxonomy for this deterministic workload: the two
        # serialized CTAs wait out their DRAM loads (600 cycles each)
        # plus ALU gaps; 17 of the 1851 cycles issue instructions.
        assert result.cycles == 1851
        assert result.idle_cycles == 1834

    def test_baseline_same_workload_has_no_rf_stalls(self):
        # The baseline never switches CTAs, so nothing is ever blocked on
        # spill space; its idle time is attributed to 'other' (memory
        # latency), never 'rf'.  Both CTAs fit its undivided 16-entry RF
        # and run concurrently, overlapping their DRAM waits.
        result = run(live_load_cfg(), BaselinePolicy, self.CONFIG)
        assert result.completed_ctas == 2
        assert result.rf_depletion_cycles == 0
        assert result.srp_stall_cycles == 0
        assert result.cta_switch_events == 0
        assert result.cycles == 933
        assert result.idle_cycles == 922
