"""Tests for the 64-bit live-register bit vectors."""

import pytest

from repro.config import MAX_REGS_PER_THREAD
from repro.core.bitvector import (
    BITVECTOR_STORAGE_BYTES,
    EMPTY,
    LiveBitVector,
)


class TestConstruction:
    def test_from_registers(self):
        vec = LiveBitVector.from_registers([0, 3, 63])
        assert vec.is_live(0) and vec.is_live(3) and vec.is_live(63)
        assert not vec.is_live(1)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            LiveBitVector.from_registers([64])
        with pytest.raises(ValueError):
            LiveBitVector(1 << 64)

    def test_empty_is_falsy(self):
        assert not EMPTY
        assert LiveBitVector.from_registers([5])

    def test_storage_constant_matches_paper(self):
        # 4-byte PC + 64-bit vector = 12 bytes per static instruction (V-F).
        assert BITVECTOR_STORAGE_BYTES == 12


class TestQueries:
    def test_registers_sorted(self):
        vec = LiveBitVector.from_registers([9, 2, 40])
        assert vec.registers() == (2, 9, 40)

    def test_count_is_popcount(self):
        assert LiveBitVector.from_registers(range(10)).count() == 10
        assert EMPTY.count() == 0

    def test_iteration(self):
        assert list(LiveBitVector.from_registers([1, 2])) == [1, 2]

    def test_is_live_range_checked(self):
        with pytest.raises(ValueError):
            EMPTY.is_live(MAX_REGS_PER_THREAD)


class TestAlgebra:
    def test_union(self):
        a = LiveBitVector.from_registers([1, 2])
        b = LiveBitVector.from_registers([2, 3])
        assert (a | b).registers() == (1, 2, 3)

    def test_intersect(self):
        a = LiveBitVector.from_registers([1, 2])
        b = LiveBitVector.from_registers([2, 3])
        assert (a & b).registers() == (2,)

    def test_minus(self):
        a = LiveBitVector.from_registers([1, 2, 3])
        b = LiveBitVector.from_registers([2])
        assert (a - b).registers() == (1, 3)

    def test_with_register(self):
        assert EMPTY.with_register(7).registers() == (7,)

    def test_without_register(self):
        vec = LiveBitVector.from_registers([7, 8])
        assert vec.without_register(7).registers() == (8,)

    def test_without_absent_register_is_noop(self):
        vec = LiveBitVector.from_registers([7])
        assert vec.without_register(8) == vec

    def test_immutability(self):
        vec = LiveBitVector.from_registers([1])
        vec.with_register(2)
        assert vec.registers() == (1,)
