"""Golden-trace regression tests: the corpus must replay exactly.

Trace generation is a pure function of the workload spec seed, so the
checked-in JSON under ``tests/goldens/`` pins both the full SimResult and
the complete CTA event timeline of each (config, workload, policy) triple.
Any drift here is a behaviour change -- review it, then regenerate with
``python -m repro validate --record``.
"""

import json

import pytest

from repro.validate.golden import (
    CORPUS,
    check_golden_payload,
    GoldenCase,
    case_payload,
    default_goldens_dir,
    diff_payload,
    record_goldens,
    run_case,
    validate_goldens,
)


def test_corpus_spans_the_policy_space():
    policies = {case.policy for case in CORPUS}
    assert {"baseline", "finereg", "finereg_adaptive", "virtual_thread",
            "reg_dram"} <= policies
    assert len({case.name for case in CORPUS}) == len(CORPUS)


def test_corpus_pins_concurrent_kernels():
    """At least three concurrent cases, spanning both arbitration modes
    and a priority skew (the shared-budget surface of this PR)."""
    concurrent = [case for case in CORPUS if case.launches]
    assert len(concurrent) >= 3
    assert {case.arbitration for case in concurrent} \
        == {"priority", "round_robin"}
    assert any(len({prio for __, __, prio in case.launches}) > 1
               for case in concurrent), "no priority-skewed golden"
    for case in concurrent:
        assert len(case.launches) >= 2


def test_golden_files_are_checked_in():
    directory = default_goldens_dir()
    for case in CORPUS:
        assert (directory / case.filename).exists(), (
            f"missing golden {case.filename}; run "
            f"`python -m repro validate --record`")


@pytest.mark.parametrize("case", CORPUS, ids=lambda c: c.name)
def test_golden_replays_exactly(case):
    report = validate_goldens(cases=[case])[0]
    assert report.violations == 0, (
        f"{report.violations} sanitizer violation(s) replaying {case.name}")
    assert report.ok, (
        f"{case.name} drifted from its golden:\n"
        + "\n".join(report.diff) + (f"\n{report.error}" if report.error
                                    else ""))


class TestDiffing:
    def payload(self):
        return {
            "result": {"cycles": 100, "instructions": 500, "ipc": 1.25},
            "events": [{"cycle": 1, "sm": 0, "kind": "launch", "cta": 0},
                       {"cycle": 9, "sm": 0, "kind": "retire", "cta": 0}],
            "dropped_events": 0,
        }

    def test_identical_payloads_have_empty_diff(self):
        assert diff_payload(self.payload(), self.payload()) == []

    def test_result_field_drift_is_named(self):
        current = self.payload()
        current["result"]["cycles"] = 101
        lines = diff_payload(self.payload(), current)
        assert any("result.cycles: golden=100 current=101" in line
                   for line in lines)

    def test_first_diverging_event_is_shown(self):
        current = self.payload()
        current["events"][1] = dict(current["events"][1], cycle=12)
        lines = diff_payload(self.payload(), current)
        assert any(line.startswith("events[1]:") for line in lines)

    def test_event_count_drift_is_shown(self):
        current = self.payload()
        current["events"].append({"cycle": 20, "sm": 0, "kind": "launch",
                                  "cta": 1})
        lines = diff_payload(self.payload(), current)
        assert any("golden has 2" in line and "current has 3" in line
                   for line in lines)

    def test_dropped_event_drift_is_shown(self):
        current = self.payload()
        current["dropped_events"] = 7
        lines = diff_payload(self.payload(), current)
        assert any("dropped_events" in line for line in lines)

    def test_long_diffs_truncate(self):
        golden = {"result": {f"field_{i}": i for i in range(20)},
                  "events": [], "dropped_events": 0}
        current = {"result": {f"field_{i}": i + 1 for i in range(20)},
                   "events": [], "dropped_events": 0}
        lines = diff_payload(golden, current, limit=5)
        assert len(lines) == 6
        assert "more differing fields" in lines[-1]


class TestCorpusOperations:
    def test_missing_file_mentions_record(self, tmp_path):
        report = validate_goldens(tmp_path, cases=[CORPUS[0]])[0]
        assert not report.ok
        assert "--record" in report.error

    def test_record_round_trips(self, tmp_path):
        case = CORPUS[0]
        written = record_goldens(tmp_path, cases=[case])
        assert written == [tmp_path / case.filename]
        payload = json.loads(written[0].read_text())
        assert payload["name"] == case.name
        assert payload["events"], "golden must embed the event timeline"
        report = validate_goldens(tmp_path, cases=[case])[0]
        assert report.ok, "\n".join(report.diff)

    def test_payload_is_json_stable(self):
        case = GoldenCase("scratch-km-baseline", "KM", "baseline")
        result, gpu, sanitizer = run_case(case)
        assert sanitizer.total_violations == 0
        payload = case_payload(case, result, gpu)
        assert payload == json.loads(json.dumps(payload))
        assert payload["dropped_events"] == 0


class TestSchemaValidation:
    """Truncated or hand-edited goldens must fail with a named field, not a
    KeyError inside the diff machinery."""

    def golden(self):
        return json.loads(
            (default_goldens_dir() / CORPUS[0].filename).read_text())

    def test_checked_in_goldens_pass_the_schema(self):
        for case in CORPUS:
            payload = json.loads(
                (default_goldens_dir() / case.filename).read_text())
            assert check_golden_payload(payload) == [], case.name

    def test_non_object_payload(self):
        problems = check_golden_payload([1, 2, 3])
        assert problems and "JSON object" in problems[0]

    def test_missing_key_is_named(self):
        payload = self.golden()
        del payload["events"]
        problems = check_golden_payload(payload)
        assert any("missing required key 'events'" in p for p in problems)

    def test_mistyped_key_is_named(self):
        payload = self.golden()
        payload["result"] = "oops"
        problems = check_golden_payload(payload)
        assert any("'result' must be dict" in p for p in problems)

    def test_schema_version_drift(self):
        payload = self.golden()
        payload["schema"] = 99
        problems = check_golden_payload(payload)
        assert any("re-record" in p for p in problems)

    def test_undeserializable_result_block(self):
        payload = self.golden()
        payload["result"] = {"cycles": 10}
        problems = check_golden_payload(payload)
        assert any("result block does not deserialize" in p
                   for p in problems)

    def test_broken_event_is_located(self):
        payload = self.golden()
        payload["events"][1] = {"cycle": "late", "sm": 0, "kind": "x"}
        problems = check_golden_payload(payload)
        assert any("events[1]" in p and "cycle" in p for p in problems)

    def test_event_problem_flood_is_capped(self):
        payload = self.golden()
        payload["events"] = [{}] * 50
        problems = check_golden_payload(payload)
        assert problems[-1].startswith("...")
        assert len(problems) <= 6

    def test_truncated_file_fails_with_json_message(self, tmp_path):
        case = CORPUS[0]
        text = (default_goldens_dir() / case.filename).read_text()
        (tmp_path / case.filename).write_text(text[:len(text) // 2])
        report = validate_goldens(tmp_path, cases=[case])[0]
        assert not report.ok
        assert "not valid JSON" in report.error
        assert "--record" in report.error

    def test_hand_edited_file_fails_schema_not_keyerror(self, tmp_path):
        case = CORPUS[0]
        payload = self.golden()
        del payload["result"]
        (tmp_path / case.filename).write_text(json.dumps(payload))
        report = validate_goldens(tmp_path, cases=[case])[0]
        assert not report.ok
        assert "fails schema validation" in report.error
        assert "missing required key 'result'" in report.error

    def test_missing_launches_key_is_named(self):
        payload = self.golden()
        del payload["launches"]
        problems = check_golden_payload(payload)
        assert any("missing required key 'launches'" in p for p in problems)

    def test_malformed_launch_entry_is_located(self):
        payload = self.golden()
        for bad in ([1.0, "ST", 0],        # wrong field order/types
                    ["ST", 1.0],            # wrong arity
                    "ST",                   # not a list at all
                    ["ST", 1.0, 0.5]):      # float priority
            payload["launches"] = [["ST", 1.0, 0], bad]
            problems = check_golden_payload(payload)
            assert any("launches[1]" in p and
                       "[abbrev, weight, priority]" in p
                       for p in problems), bad

    def test_mistyped_arbitration_is_named(self):
        payload = self.golden()
        payload["arbitration"] = 7
        problems = check_golden_payload(payload)
        assert any("'arbitration' must be str" in p and "got int" in p
                   for p in problems)
