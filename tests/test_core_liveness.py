"""Tests for the compile-time liveness analysis (paper V-A, Figs 7 and 9)."""

import pytest

from conftest import build_branch_cfg, build_loop_cfg, liveness_for
from repro.core.liveness import LivenessAnalysis
from repro.isa.cfg import ControlFlowGraph, EdgeKind
from repro.isa.instructions import AccessPattern, Instruction, Opcode


def straightline_cfg():
    """Mirrors the paper's Fig 7 example structure:

    0x00: FALU R1 <- R0       (R0 live-in, dies here as source... )
    0x04: IALU R2 <- R1
    0x08: FALU R3 <- R2, R1
    0x0c: STG  (R3, R0)
    0x10: EXIT
    """
    cfg = ControlFlowGraph()
    cfg.add_block([
        Instruction(Opcode.FALU, 1, (0,)),
        Instruction(Opcode.IALU, 2, (1,)),
        Instruction(Opcode.FALU, 3, (2, 1)),
    ], EdgeKind.FALLTHROUGH, successors=(1,))
    cfg.add_block([
        Instruction(Opcode.STG, None, (3, 0), AccessPattern.STREAM),
        Instruction(Opcode.EXIT),
    ], EdgeKind.EXIT)
    return cfg.freeze()


class TestStraightLine:
    def test_live_at_entry(self):
        table = liveness_for(straightline_cfg())
        # At pc 0: R0 is read now and again by the store -> live.
        # R1, R2, R3 are defined before use -> dead.
        assert table.live_at_pc(0).registers() == (0,)

    def test_live_before_store(self):
        table = liveness_for(straightline_cfg())
        # At the STG (index 3): its sources R3 and R0 are live.
        assert table.live_at_index(3).registers() == (0, 3)

    def test_dest_kills_liveness(self):
        table = liveness_for(straightline_cfg())
        # At index 1 (IALU R2 <- R1): R1 live (src now and at index 2),
        # R0 live (store), R2 dead (being written), R3 dead.
        assert table.live_at_index(1).registers() == (0, 1)

    def test_exit_has_no_live_registers_beyond_uses(self):
        table = liveness_for(straightline_cfg())
        assert table.live_at_index(4).count() == 0


class TestFig7Rule:
    """"A register is alive if used as a source of any following instruction
    until used again as a destination."""

    def test_redefinition_ends_live_range(self):
        cfg = ControlFlowGraph()
        cfg.add_block([
            Instruction(Opcode.IALU, 1, (0,)),   # uses R0
            Instruction(Opcode.IALU, 0, (1,)),   # redefines R0
            Instruction(Opcode.IALU, 2, (0,)),   # uses new R0
        ], EdgeKind.FALLTHROUGH, successors=(1,))
        cfg.add_block([Instruction(Opcode.EXIT)], EdgeKind.EXIT)
        table = liveness_for(cfg.freeze())
        # At index 1: R0 about to be overwritten -> only R1 live.
        assert table.live_at_index(1).registers() == (1,)
        # At index 0: old R0 is read by instruction 0 itself -> live.
        assert 0 in table.live_at_index(0).registers()


class TestBranches:
    def test_branch_merges_both_paths(self):
        cfg = ControlFlowGraph()
        cfg.add_block([
            Instruction(Opcode.IALU, 0, ()),
            Instruction(Opcode.BRA, None, (0,)),
        ], EdgeKind.BRANCH, successors=(1, 2))
        cfg.add_block([
            Instruction(Opcode.FALU, 3, (1,)),   # left arm reads R1
        ], EdgeKind.FALLTHROUGH, successors=(3,))
        cfg.add_block([
            Instruction(Opcode.FALU, 3, (2,)),   # right arm reads R2
        ], EdgeKind.FALLTHROUGH, successors=(3,))
        cfg.add_block([
            Instruction(Opcode.STG, None, (3, 0), AccessPattern.STREAM),
            Instruction(Opcode.EXIT),
        ], EdgeKind.EXIT)
        table = liveness_for(cfg.freeze())
        # At the branch (index 1) both arms' reads are may-live.
        live = set(table.live_at_index(1).registers())
        assert {1, 2}.issubset(live)

    def test_arm_only_sees_its_own_path(self):
        cfg = build_branch_cfg()
        table = liveness_for(cfg)
        # Inside arm 1 (reads R0, defines R1): R2 (other arm's def src) is
        # not live because the reconvergence block only reads R0.
        arm1_index = cfg.first_index(1)
        assert 2 not in table.live_at_index(arm1_index).registers()


class TestLoops:
    def test_loop_carried_liveness(self):
        cfg = build_loop_cfg()
        table = liveness_for(cfg)
        # R0 (the loop base pointer loaded in the prologue) is read every
        # iteration and by the epilogue store -> live throughout the body.
        body_first = cfg.first_index(1)
        assert 0 in table.live_at_index(body_first).registers()

    def test_fixpoint_terminates_and_is_consistent(self):
        cfg = build_loop_cfg()
        table_a = liveness_for(cfg)
        table_b = liveness_for(cfg)
        assert table_a.vectors == table_b.vectors


class TestTableProperties:
    def test_storage_bytes(self):
        cfg = straightline_cfg()
        table = liveness_for(cfg)
        assert table.storage_bytes == 12 * cfg.num_instructions

    def test_mean_live_fraction_bounds(self, km_workload):
        table = km_workload.liveness
        assert 0.0 < table.mean_live_fraction() < 1.0

    def test_live_at_pc_rejects_bad_pc(self):
        table = liveness_for(straightline_cfg())
        with pytest.raises(ValueError):
            table.live_at_pc(3)

    def test_blocks_visited_counts(self):
        cfg = build_branch_cfg()
        analysis = LivenessAnalysis(cfg)
        # From the branch head every block is reachable.
        assert analysis.blocks_visited_from(0) == 4
        # From one arm: the arm itself plus the reconvergence tail.
        assert analysis.blocks_visited_from(1) == 2

    def test_loop_visited_once(self):
        cfg = build_loop_cfg()
        analysis = LivenessAnalysis(cfg)
        # Body + exit from the body; the back edge adds no revisits (Fig 9b).
        assert analysis.blocks_visited_from(1) == 2
