"""Tests for the runtime invariant sanitizer (repro.validate)."""

import pytest

from conftest import build_linear_cfg
from repro.config import GPUConfig
from repro.isa.kernel import Kernel, LaunchGeometry
from repro.policies.baseline import BaselinePolicy
from repro.policies.finereg import FineRegPolicy
from repro.sim.gpu import GPU
from repro.sim.tracing import EventKind, attach_tracer
from repro.validate.sanitizer import (
    InvariantViolation,
    Sanitizer,
    SanitizerError,
    attach_sanitizer,
    sanitize_enabled,
)
from repro.workloads.traces import AddressModel, TraceProvider


def build_gpu(policy=BaselinePolicy, grid_ctas=4, threads=64, regs=8):
    cfg = build_linear_cfg()
    kernel = Kernel("unit", cfg,
                    LaunchGeometry(threads_per_cta=threads,
                                   grid_ctas=grid_ctas),
                    regs_per_thread=regs)
    return GPU(GPUConfig().with_num_sms(1), kernel, policy,
               TraceProvider(cfg, seed=1), AddressModel())


class TestEnableKnob:
    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("ON", True), (" yes ", True),
        ("", False), ("0", False), ("off", False), ("no", False),
    ])
    def test_truthiness(self, value, expected):
        assert sanitize_enabled(value) is expected

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled()
        monkeypatch.delenv("REPRO_SANITIZE")
        assert not sanitize_enabled()


class TestAttach:
    def test_attaches_tracer_when_absent(self):
        gpu = build_gpu()
        assert gpu.tracer is None
        sanitizer = attach_sanitizer(gpu)
        assert gpu.tracer is not None
        assert gpu.sanitizer is sanitizer

    def test_idempotent(self):
        gpu = build_gpu()
        first = attach_sanitizer(gpu)
        assert attach_sanitizer(gpu) is first

    def test_chains_existing_listener(self):
        gpu = build_gpu()
        tracer = attach_tracer(gpu)
        seen = []
        tracer.listener = lambda cycle, sm, kind, cta: seen.append(cta)
        attach_sanitizer(gpu)
        gpu.run(max_cycles=500_000)
        # The pre-existing listener still fires alongside the sanitizer's.
        assert len(seen) == len(tracer.events)


class TestCleanRuns:
    @pytest.mark.parametrize("policy", [BaselinePolicy, FineRegPolicy])
    def test_zero_violations(self, policy):
        gpu = build_gpu(policy=policy, grid_ctas=6)
        sanitizer = attach_sanitizer(gpu)
        result = gpu.run(max_cycles=500_000)
        assert not result.timed_out
        assert result.completed_ctas == 6
        assert sanitizer.total_violations == 0
        assert sanitizer.checks_run > 0
        assert "0 violations" in sanitizer.summary()

    @pytest.mark.parametrize("policy_name", ["virtual_thread", "reg_dram"])
    def test_partial_cta_swap_respects_warp_limit(self, policy_name):
        # Regression: swapping a partially-retired CTA (fewer unfinished
        # warps) for a full pending one used to overshoot the Table-I
        # 64-warp limit on BF.  The sanitizer found this; keep it found.
        from repro.config import SCALES, default_config
        from repro.experiments.runner import POLICIES
        from repro.workloads.generator import build_workload
        from repro.workloads.suite import get_spec

        scale = SCALES["tiny"]
        config = default_config(scale)
        instance = build_workload(get_spec("BF"), config, scale)
        gpu = GPU(config, instance.kernel, POLICIES[policy_name](),
                  instance.trace_provider, instance.address_model,
                  liveness=instance.liveness)
        sanitizer = attach_sanitizer(gpu)
        result = gpu.run(max_cycles=scale.max_cycles)
        assert not result.timed_out
        assert sanitizer.total_violations == 0

    def test_check_interval_reduces_sweeps(self):
        dense_gpu = build_gpu()
        dense = attach_sanitizer(dense_gpu)
        dense_gpu.run(max_cycles=500_000)
        sparse_gpu = build_gpu()
        sparse = attach_sanitizer(sparse_gpu, check_interval=16)
        sparse_gpu.run(max_cycles=500_000)
        assert sparse.checks_run < dense.checks_run
        assert sparse.total_violations == 0


class TestCollectMode:
    def corrupted_gpu(self):
        """A GPU whose instruction counter rolls back every step."""
        from repro.validate.mutations import MUTATIONS

        mutation = next(m for m in MUTATIONS if m.name == "stat_rollback")
        gpu = build_gpu()
        mutation.apply(gpu)
        return gpu

    def test_raise_mode_raises(self):
        gpu = self.corrupted_gpu()
        attach_sanitizer(gpu)
        with pytest.raises(SanitizerError) as excinfo:
            gpu.run(max_cycles=500_000)
        assert excinfo.value.violations
        assert "monotonic-stats" in str(excinfo.value)

    def test_collect_mode_accumulates(self):
        gpu = self.corrupted_gpu()
        sanitizer = attach_sanitizer(gpu, raise_on_violation=False)
        gpu.run(max_cycles=500_000)  # must not raise
        assert sanitizer.total_violations > 0
        assert sanitizer.violations
        assert "monotonic-stats" in sanitizer.summary()

    def test_max_violations_caps_storage(self):
        gpu = self.corrupted_gpu()
        sanitizer = attach_sanitizer(gpu, raise_on_violation=False,
                                     max_violations=3)
        gpu.run(max_cycles=500_000)
        assert len(sanitizer.violations) == 3
        assert sanitizer.total_violations > 3


class TestRendering:
    def test_violation_str(self):
        violation = InvariantViolation(42, 1, "scoreboard", "too early")
        text = str(violation)
        assert "SM1" in text and "scoreboard" in text and "42" in text

    def test_gpu_scoped_violation_str(self):
        violation = InvariantViolation(7, None, "completion", "lost CTA")
        assert "GPU" in str(violation)

    def test_error_message_truncates(self):
        batch = [InvariantViolation(i, 0, "warp-accounting", f"v{i}")
                 for i in range(11)]
        message = str(SanitizerError(batch))
        assert "11 finding(s)" in message
        assert "... and 3 more" in message

    def test_error_survives_pickling(self):
        # Pool workers ship SanitizerError back pickled; the violations
        # must survive the round trip (not be re-split into characters).
        import pickle

        batch = [InvariantViolation(42, 1, "scoreboard", "too early")]
        err = pickle.loads(pickle.dumps(SanitizerError(batch)))
        assert err.violations == batch
        assert "1 finding(s)" in str(err)


class TestLifecycleMachine:
    def make_sanitizer(self):
        gpu = build_gpu()
        return attach_sanitizer(gpu, raise_on_violation=False)

    def test_retire_before_launch_is_illegal(self):
        sanitizer = self.make_sanitizer()
        sanitizer.on_event(10, 0, EventKind.RETIRE, 99)
        assert sanitizer.total_violations == 1
        assert sanitizer.violations[0].invariant == "lifecycle"

    def test_double_launch_is_illegal(self):
        sanitizer = self.make_sanitizer()
        sanitizer.on_event(1, 0, EventKind.LAUNCH, 5)
        sanitizer.on_event(2, 0, EventKind.LAUNCH, 5)
        assert sanitizer.total_violations == 1

    def test_migration_across_sms_is_illegal(self):
        sanitizer = self.make_sanitizer()
        sanitizer.on_event(1, 0, EventKind.LAUNCH, 5)
        sanitizer.on_event(2, 3, EventKind.RETIRE, 5)
        assert any("SM" in v.message for v in sanitizer.violations)

    def test_time_travel_is_illegal(self):
        sanitizer = self.make_sanitizer()
        sanitizer.on_event(10, 0, EventKind.LAUNCH, 5)
        sanitizer.on_event(4, 0, EventKind.RETIRE, 5)
        assert any("precedes" in v.message for v in sanitizer.violations)

    def test_legal_round_trip_is_silent(self):
        sanitizer = self.make_sanitizer()
        sanitizer.on_event(1, 0, EventKind.LAUNCH, 5)
        sanitizer.on_event(2, 0, EventKind.SWITCH_OUT, 5)
        sanitizer.on_event(3, 0, EventKind.SWITCH_IN, 5)
        sanitizer.on_event(4, 0, EventKind.RETIRE, 5)
        assert sanitizer.total_violations == 0
