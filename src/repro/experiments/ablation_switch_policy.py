"""Ablation: CTA-switching design knobs.

Two of FineReg's design choices that DESIGN.md calls out get their own
sensitivity sweeps here:

* ``min_park_cycles`` -- how long a stall must be before parking pays.  Too
  low and short bubbles churn through the PCRF; too high and long stalls go
  unhidden.
* the warp scheduler -- Table I fixes GTO; this quantifies what LRR would
  change (GTO's stall clustering is what makes whole-CTA switching viable).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.experiments.common import ExperimentResult
from repro.experiments.parallel import RunRequest
from repro.experiments.report import geomean
from repro.experiments.runner import ExperimentRunner

PARK_THRESHOLDS = (40, 120, 160, 320, 640)
DEFAULT_APPS = ("KM", "CS", "LB")


def run(runner: ExperimentRunner,
        apps: Sequence[str] = DEFAULT_APPS,
        thresholds: Sequence[int] = PARK_THRESHOLDS) -> ExperimentResult:
    rows = []
    summary = {}
    for threshold in thresholds:
        config = dataclasses.replace(runner.base_config,
                                     min_park_cycles=threshold)
        speedups = []
        switches = []
        for app in apps:
            base = runner.run(app, "baseline")
            fine = runner.run(app, "finereg", config=config)
            speedups.append(fine.ipc / base.ipc)
            switches.append(fine.cta_switch_events)
        speedup = geomean(speedups)
        mean_switches = sum(switches) / len(switches)
        rows.append([f"park>={threshold}", speedup, mean_switches])
        summary[f"speedup_park_{threshold}"] = speedup

    # Scheduler comparison at the default threshold.
    for kind in ("gto", "lrr"):
        config = dataclasses.replace(runner.base_config,
                                     warp_scheduling=kind)
        speedups = []
        for app in apps:
            base = runner.run(app, "baseline", config=config)
            fine = runner.run(app, "finereg", config=config)
            speedups.append(fine.ipc / base.ipc)
        speedup = geomean(speedups)
        rows.append([f"scheduler={kind}", speedup, 0.0])
        summary[f"speedup_{kind}"] = speedup

    return ExperimentResult(
        experiment="ablation_switching",
        title="Park-threshold and warp-scheduler sensitivity of FineReg",
        headers=["variant", "finereg_speedup", "mean_switches"],
        rows=rows,
        summary=summary,
        notes=("Switching pays only for stalls longer than the PCRF round "
               "trip; GTO's greedy execution clusters a CTA's stalls, which "
               "is what makes whole-CTA parking effective."),
    )


def plan(runner: ExperimentRunner,
         apps: Sequence[str] = DEFAULT_APPS,
         thresholds: Sequence[int] = PARK_THRESHOLDS):
    requests = [RunRequest.make(app, "baseline") for app in apps]
    for threshold in thresholds:
        config = dataclasses.replace(runner.base_config,
                                     min_park_cycles=threshold)
        requests += [RunRequest.make(app, "finereg", config=config)
                     for app in apps]
    for kind in ("gto", "lrr"):
        config = dataclasses.replace(runner.base_config,
                                     warp_scheduling=kind)
        for app in apps:
            requests += [RunRequest.make(app, "baseline", config=config),
                         RunRequest.make(app, "finereg", config=config)]
    return requests


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
