"""Simulator self-profiling: wall-clock per phase, cycles per second.

This is the ONE module in the tree allowed to read the host clock: it
measures the *simulator*, never simulated time, so determinism of simulated
results is untouched.  Every clock read carries a ``lint: allow[wall-clock]``
tag and a test asserts the shipped module stays lint-clean while an
untagged copy is flagged -- the exemption is audited, not assumed.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional


class PhaseProfile:
    """Wall-clock record of one named phase."""

    __slots__ = ("name", "wall_s", "sim_cycles")

    def __init__(self, name: str, wall_s: float,
                 sim_cycles: Optional[int] = None) -> None:
        self.name = name
        self.wall_s = wall_s
        self.sim_cycles = sim_cycles

    @property
    def cycles_per_second(self) -> Optional[float]:
        if self.sim_cycles is None or self.wall_s <= 0:
            return None
        return self.sim_cycles / self.wall_s

    def as_dict(self) -> Dict:
        out: Dict[str, object] = {"name": self.name,
                                  "wall_s": round(self.wall_s, 6)}
        if self.sim_cycles is not None:
            out["sim_cycles"] = self.sim_cycles
            cps = self.cycles_per_second
            out["cycles_per_second"] = round(cps, 1) if cps else None
        return out


class SelfProfiler:
    """Accumulates named phases; use :meth:`phase` as a context manager."""

    def __init__(self) -> None:
        self.phases: List[PhaseProfile] = []

    def phase(self, name: str) -> "_PhaseTimer":
        return _PhaseTimer(self, name)

    def add(self, name: str, wall_s: float,
            sim_cycles: Optional[int] = None) -> None:
        self.phases.append(PhaseProfile(name, wall_s, sim_cycles))

    @property
    def total_wall_s(self) -> float:
        return sum(p.wall_s for p in self.phases)

    def as_payload(self) -> Dict:
        return {
            "total_wall_s": round(self.total_wall_s, 6),
            "phases": [p.as_dict() for p in self.phases],
        }


class _PhaseTimer:
    """``with profiler.phase("simulate") as t: ...; t.sim_cycles = n``"""

    def __init__(self, profiler: SelfProfiler, name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = 0.0
        self.sim_cycles: Optional[int] = None

    def __enter__(self) -> "_PhaseTimer":
        self._start = time.perf_counter()  # lint: allow[wall-clock]
        return self

    def __exit__(self, *exc) -> None:
        wall = time.perf_counter() - self._start  # lint: allow[wall-clock]
        self._profiler.add(self._name, wall, self.sim_cycles)
