"""Runtime validation layer for the simulator.

``repro.validate`` is the sanitizer + differential-validation subsystem:

* :mod:`repro.validate.sanitizer` -- an opt-in runtime invariant checker
  that hooks the GPU step loop (``REPRO_SANITIZE=1`` or
  :func:`attach_sanitizer`) and asserts cycle-level conservation laws:
  register/shmem/CTA-slot accounting, ACRF/PCRF occupancy, scoreboard
  discipline, scheduler sleep soundness, barrier balance, monotonic stats,
  and CTA lifecycle legality.
* :mod:`repro.validate.golden` -- the golden-trace corpus: small
  deterministic (config, workload, policy) runs with recorded stats and
  event timelines, replayed under the sanitizer to pin simulator behaviour.
* :mod:`repro.validate.mutations` -- the mutation self-test: deliberately
  corrupt one invariant per run and assert the sanitizer catches it, so the
  checker itself is proven to check something.
* :mod:`repro.validate.findings` -- the Finding/Severity/FindingReport
  vocabulary shared with the *static* checker, :mod:`repro.analyze`, which
  gates kernels and simulator sources before cycle 0 (division of labor:
  docs/ANALYZE.md).

Only the sanitizer symbols are exported eagerly; ``golden`` and
``mutations`` pull in the experiment harness and are imported on demand
(``python -m repro validate`` or the test suite).
"""

from repro.validate.findings import (  # noqa: F401
    Finding,
    FindingReport,
    Severity,
)
from repro.validate.sanitizer import (  # noqa: F401
    InvariantViolation,
    Sanitizer,
    SanitizerError,
    attach_sanitizer,
    sanitize_enabled,
)

__all__ = [
    "Finding",
    "FindingReport",
    "InvariantViolation",
    "Sanitizer",
    "SanitizerError",
    "Severity",
    "attach_sanitizer",
    "sanitize_enabled",
]
