"""Instruction-set and kernel model for the simulated GPU."""

from repro.isa.instructions import (
    AccessPattern,
    Instruction,
    Opcode,
    is_long_latency,
    is_memory,
)
from repro.isa.cfg import BasicBlock, ControlFlowGraph, EdgeKind
from repro.isa.kernel import Kernel, LaunchGeometry
from repro.isa.assembler import AssemblyError, assemble

__all__ = [
    "AccessPattern",
    "AssemblyError",
    "BasicBlock",
    "ControlFlowGraph",
    "EdgeKind",
    "Instruction",
    "Kernel",
    "LaunchGeometry",
    "Opcode",
    "assemble",
    "is_long_latency",
    "is_memory",
]
