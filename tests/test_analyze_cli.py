"""`python -m repro analyze`: modes, exit codes, and output formats."""

import json

from repro.analyze.cli import run_analyze
from repro.cli import main


class TestExitCodes:
    def test_suite_is_green(self, capsys):
        assert run_analyze(suite=True) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out

    def test_named_apps(self, capsys):
        assert run_analyze(apps=["km", "LB"]) == 0
        out = capsys.readouterr().out
        assert "KM" in out and "LB" in out

    def test_self_test_is_green(self, capsys):
        assert run_analyze(self_test=True) == 0
        out = capsys.readouterr().out
        assert "DETECTED" in out and "MISSED" not in out

    def test_lint_over_repo_is_green(self, capsys):
        assert run_analyze(lint=True) == 0

    def test_lint_error_fails(self, tmp_path, capsys):
        probe = tmp_path / "probe.py"
        probe.write_text("import random\nx = random.random()\n")
        assert run_analyze(lint=True, lint_roots=[str(probe)]) == 1
        assert "unseeded-random" in capsys.readouterr().out

    def test_strict_escalates_warnings(self, tmp_path, capsys):
        probe = tmp_path / "probe.py"
        probe.write_text("_CACHE = {}\n\n"
                         "def put(k, v):\n"
                         "    _CACHE[k] = v\n")
        assert run_analyze(lint=True, lint_roots=[str(probe)]) == 0
        assert run_analyze(lint=True, lint_roots=[str(probe)],
                           strict=True) == 1
        capsys.readouterr()

    def test_bare_invocation_runs_suite_and_lint(self, capsys):
        assert run_analyze() == 0
        out = capsys.readouterr().out
        assert "static kernel verifier" in out
        assert "determinism lint" in out


class TestJsonOutput:
    def test_json_document_shape(self, capsys):
        assert run_analyze(self_test=True, as_json=True) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        kinds = {section["kind"] for section in payload["sections"]}
        assert kinds == {"self-test", "effects-self-test"}

    def test_json_reports_failures(self, tmp_path, capsys):
        probe = tmp_path / "probe.py"
        probe.write_text("from random import choice\n")
        assert run_analyze(lint=True, lint_roots=[str(probe)],
                           as_json=True) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        (section,) = payload["sections"]
        assert section["findings"][0]["tag"] == "unseeded-random"


class TestArgparseWiring:
    def test_main_dispatches_analyze(self, capsys):
        assert main(["analyze", "--self-test"]) == 0
        assert "DETECTED" in capsys.readouterr().out

    def test_main_analyze_suite_subset(self, capsys):
        assert main(["analyze", "km"]) == 0
        assert "KM" in capsys.readouterr().out

    def test_figure_mode_verifies_plan_kernels(self, capsys):
        assert run_analyze(figure="fig13") == 0
        out = capsys.readouterr().out
        assert "static kernel verifier" in out and "FAIL" not in out
