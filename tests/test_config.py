"""Tests for the Table-I GPU configuration and scale presets."""

import dataclasses

import pytest

from repro.config import (
    GPUConfig,
    PAPER,
    SCALES,
    SMALL,
    TINY,
    WARP_REGISTER_BYTES,
    default_config,
)


class TestTableIDefaults:
    """The defaults must be the paper's Table I verbatim."""

    def test_sm_count(self):
        assert GPUConfig().num_sms == 16

    def test_clock(self):
        assert GPUConfig().clock_mhz == 1126

    def test_simd_width(self):
        assert GPUConfig().simd_width == 32

    def test_warp_limits(self):
        config = GPUConfig()
        assert config.max_warps_per_sm == 64
        assert config.max_threads_per_sm == 2048
        assert config.max_ctas_per_sm == 32

    def test_schedulers(self):
        assert GPUConfig().num_warp_schedulers == 4

    def test_memory_sizes(self):
        config = GPUConfig()
        assert config.register_file_bytes == 256 * 1024
        assert config.shared_memory_bytes == 96 * 1024
        assert config.l1_size_bytes == 48 * 1024
        assert config.l2_size_bytes == 2048 * 1024

    def test_dram_bandwidth(self):
        assert GPUConfig().dram_bandwidth_gbps == pytest.approx(352.5)


class TestDerivedCapacities:
    def test_rf_warp_registers(self):
        assert GPUConfig().rf_warp_registers == 2048

    def test_pcrf_entries_matches_paper(self):
        # 128 KB PCRF = 1,024 registers (paper V-F: 21 bits x 1,024 tags).
        assert GPUConfig().pcrf_entries == 1024

    def test_acrf_plus_pcrf_is_whole_rf(self):
        config = GPUConfig()
        assert config.acrf_entries + config.pcrf_entries \
            == config.rf_warp_registers

    def test_dram_bytes_per_cycle(self):
        config = GPUConfig()
        expected = 352.5e9 / (1126e6)
        assert config.dram_bytes_per_cycle == pytest.approx(expected)


class TestValidation:
    def test_rejects_zero_sms(self):
        with pytest.raises(ValueError):
            GPUConfig(num_sms=0)

    def test_rejects_unaligned_rf(self):
        with pytest.raises(ValueError):
            GPUConfig(register_file_bytes=100)

    def test_rejects_pcrf_as_large_as_rf(self):
        with pytest.raises(ValueError):
            GPUConfig(pcrf_bytes=256 * 1024)

    def test_rejects_warp_thread_mismatch(self):
        with pytest.raises(ValueError):
            GPUConfig(max_warps_per_sm=128, max_threads_per_sm=2048)


class TestVariants:
    def test_scheduling_scale(self):
        config = GPUConfig().with_scheduling_scale(2.0)
        assert config.max_ctas_per_sm == 64
        assert config.max_warps_per_sm == 128
        assert config.max_threads_per_sm == 4096
        # Memory untouched.
        assert config.register_file_bytes == 256 * 1024

    def test_memory_scale(self):
        config = GPUConfig().with_memory_scale(1.5)
        assert config.register_file_bytes == 384 * 1024
        assert config.shared_memory_bytes == 144 * 1024
        assert config.max_ctas_per_sm == 32

    def test_memory_scale_keeps_alignment(self):
        config = GPUConfig().with_memory_scale(1.3)
        assert config.register_file_bytes % WARP_REGISTER_BYTES == 0

    def test_rf_split(self):
        config = GPUConfig().with_rf_split(160, 96)
        assert config.pcrf_bytes == 96 * 1024
        assert config.acrf_entries == 160 * 1024 // WARP_REGISTER_BYTES

    def test_rf_split_must_sum_to_rf(self):
        with pytest.raises(ValueError):
            GPUConfig().with_rf_split(128, 96)

    def test_num_sms_scales_bandwidth(self):
        config = GPUConfig().with_num_sms(4)
        assert config.num_sms == 4
        assert config.dram_bandwidth_gbps == pytest.approx(352.5 / 4)

    def test_variants_are_fresh_instances(self):
        base = GPUConfig()
        assert base.with_num_sms(2) is not base
        assert dataclasses.asdict(base) == dataclasses.asdict(GPUConfig())


class TestScales:
    def test_presets_registered(self):
        assert set(SCALES) == {"tiny", "small", "paper"}

    def test_scale_ordering(self):
        assert TINY.trace_scale < SMALL.trace_scale < PAPER.trace_scale
        assert TINY.num_sms <= SMALL.num_sms <= PAPER.num_sms

    def test_grid_size(self):
        assert SMALL.grid_size(2) == SMALL.grid_ctas_per_sm * 2

    def test_default_config_uses_scale_sms(self):
        assert default_config(TINY).num_sms == TINY.num_sms
        assert default_config(SMALL).num_sms == SMALL.num_sms
