"""Fig 13: normalized IPC of the four compared configurations.

The paper's headline result: FineReg improves throughput by 32.8% over the
baseline on average, outperforming Virtual Thread, Reg+DRAM, and
VT+RegMutex (by 18.5%, 12.8%, and 7.1% respectively).  More CTAs do not
always mean more performance: memory-bound apps (BF, KM) gain less per CTA.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    ALL_APPS,
    TYPE_R_APPS,
    TYPE_S_APPS,
    ExperimentResult,
    main_config_results,
    plan_main_configs,
)
from repro.experiments.report import geomean
from repro.experiments.runner import ExperimentRunner

CONFIGS = ("baseline", "virtual_thread", "reg_dram", "vt_regmutex",
           "finereg")

#: Full run-set for up-front pool dispatch (shared with Figs 12/16).
plan = plan_main_configs


def run(runner: ExperimentRunner,
        apps: Sequence[str] = ALL_APPS) -> ExperimentResult:
    rows = []
    speedups = {config: [] for config in CONFIGS if config != "baseline"}
    finereg_by_type = {"S": [], "R": []}
    for app in apps:
        results = main_config_results(runner, app)
        base_ipc = results["baseline"].ipc
        row = [app] + [results[c].ipc / base_ipc for c in CONFIGS]
        rows.append(row)
        for config in speedups:
            speedups[config].append(results[config].ipc / base_ipc)
        wtype = "S" if app in TYPE_S_APPS else "R"
        finereg_by_type[wtype].append(results["finereg"].ipc / base_ipc)

    summary = {f"{config}_speedup": geomean(values)
               for config, values in speedups.items()}
    summary["finereg_vs_vt"] = (summary["finereg_speedup"]
                                / summary["virtual_thread_speedup"])
    summary["finereg_vs_reg_dram"] = (summary["finereg_speedup"]
                                      / summary["reg_dram_speedup"])
    summary["finereg_vs_regmutex"] = (summary["finereg_speedup"]
                                      / summary["vt_regmutex_speedup"])
    for wtype, values in finereg_by_type.items():
        if values:
            summary[f"finereg_type_{wtype.lower()}"] = geomean(values)
    return ExperimentResult(
        experiment="fig13",
        title="Normalized IPC across configurations",
        headers=["app"] + list(CONFIGS),
        rows=rows,
        summary=summary,
        notes=("Paper: FineReg +32.8% vs baseline; +18.5%/+12.8%/+7.1% over "
               "VT/Reg+DRAM/VT+RegMutex. Reproduction targets the ordering "
               "and relative gaps, not absolute magnitudes."),
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run(ExperimentRunner()).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
