"""Static instruction model.

Instructions are SASS-like: an opcode class, one optional destination
register, up to three source registers, and (for memory operations) an access
pattern describing the synthetic address stream the trace generator will
attach.  Register numbers are per-thread architectural registers in
``[0, MAX_REGS_PER_THREAD)``; the timing model treats each as one
warp-register (128 B across the 32 lanes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.config import MAX_REGS_PER_THREAD


class Opcode(enum.Enum):
    """Instruction classes with distinct timing behaviour."""

    IALU = "ialu"       # integer ALU
    FALU = "falu"       # single-precision FP
    SFU = "sfu"         # special function (rsqrt, sin, ...)
    LDG = "ldg"         # load from global memory
    STG = "stg"         # store to global memory
    LDS = "lds"         # load from shared memory
    STS = "sts"         # store to shared memory
    BAR = "bar"         # CTA-wide barrier
    BRA = "bra"         # (potentially diverging) branch
    EXIT = "exit"       # end of thread


class AccessPattern(enum.Enum):
    """Synthetic locality class of a global-memory instruction.

    STREAM touches a fresh coalesced line each execution (cold misses),
    REUSE cycles over a small per-CTA working set (mostly L1 hits), and
    SHARED_WS cycles over a working set shared across CTAs (L2 hits).
    """

    STREAM = "stream"
    REUSE = "reuse"
    SHARED_WS = "shared_ws"


_MEMORY_OPS = frozenset({Opcode.LDG, Opcode.STG, Opcode.LDS, Opcode.STS})
_LONG_LATENCY_OPS = frozenset({Opcode.LDG, Opcode.STG})
_WRITING_OPS = frozenset(
    {Opcode.IALU, Opcode.FALU, Opcode.SFU, Opcode.LDG, Opcode.LDS}
)


def is_memory(opcode: Opcode) -> bool:
    """True for any shared or global memory operation."""
    return opcode in _MEMORY_OPS


def is_long_latency(opcode: Opcode) -> bool:
    """True for operations that go through the L1/L2/DRAM hierarchy."""
    return opcode in _LONG_LATENCY_OPS


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    ``pc`` is assigned when the instruction is placed into a kernel's linear
    instruction array (4-byte spacing, like the PC addresses in paper Fig 7).
    """

    opcode: Opcode
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    pattern: Optional[AccessPattern] = None
    pc: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        regs = self.srcs if self.dest is None else self.srcs + (self.dest,)
        for reg in regs:
            if not 0 <= reg < MAX_REGS_PER_THREAD:
                raise ValueError(f"register R{reg} out of range [0, 64)")
        if self.dest is not None and self.opcode not in _WRITING_OPS:
            raise ValueError(f"{self.opcode.value} cannot write a register")
        if self.opcode in _WRITING_OPS and self.dest is None:
            raise ValueError(f"{self.opcode.value} requires a destination")
        if is_memory(self.opcode):
            if self.opcode in _LONG_LATENCY_OPS and self.pattern is None:
                raise ValueError("global memory ops need an access pattern")
        elif self.pattern is not None:
            raise ValueError("only memory instructions carry access patterns")

    @property
    def registers(self) -> Tuple[int, ...]:
        """All architectural registers this instruction names."""
        if self.dest is None:
            return self.srcs
        return self.srcs + (self.dest,)

    def reads(self, reg: int) -> bool:
        return reg in self.srcs

    def writes(self, reg: int) -> bool:
        return self.dest == reg

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        dst = f"R{self.dest}" if self.dest is not None else "-"
        srcs = ", ".join(f"R{r}" for r in self.srcs) or "-"
        return f"0x{self.pc:04x}: {self.opcode.value.upper()} {dst} <- {srcs}"


def alu(dest: int, *srcs: int, fp: bool = False) -> Instruction:
    """Convenience constructor for an ALU instruction."""
    return Instruction(Opcode.FALU if fp else Opcode.IALU, dest, tuple(srcs))


def load(dest: int, addr_reg: int,
         pattern: AccessPattern = AccessPattern.STREAM) -> Instruction:
    """Convenience constructor for a global load."""
    return Instruction(Opcode.LDG, dest, (addr_reg,), pattern)


def store(src: int, addr_reg: int,
          pattern: AccessPattern = AccessPattern.STREAM) -> Instruction:
    """Convenience constructor for a global store."""
    return Instruction(Opcode.STG, None, (src, addr_reg), pattern)
