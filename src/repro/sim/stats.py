"""Simulation statistics.

``SMStats`` accumulates per-SM counters during the run (time-weighted where
the quantity is a level, e.g. resident CTAs).  ``SimResult`` is the frozen
whole-GPU summary the experiment harness consumes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

#: Bump whenever the :class:`SimResult` field set changes; serialized
#: payloads carry it so stale cache entries are rejected, not misparsed.
#: v2: added switch_out_overhead_cycles / switch_in_overhead_cycles.
#: v3: added per_kernel (concurrent-kernel attribution; None single-kernel).
RESULT_SCHEMA_VERSION = 3


@dataclass
class KernelStats:
    """Mutable per-kernel (per-launch) counters for concurrent runs.

    One instance per :class:`~repro.sim.launch.KernelLaunch` per SM; the GPU
    sums them across SMs into ``SimResult.per_kernel``.  Single-kernel runs
    never allocate these (the whole-SM :class:`SMStats` already are the
    per-kernel view), keeping the hot path untouched.
    """

    instructions: int = 0
    cta_launches: int = 0
    cta_switch_events: int = 0
    stall_events: int = 0
    stall_cycles: int = 0
    # Time-weighted integrals (same buffered-span flushing as SMStats).
    active_cta_cycles: float = 0.0
    active_warp_cycles: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return asdict(self)


@dataclass
class SMStats:
    """Mutable per-SM counters."""

    instructions: int = 0
    # Time-weighted integrals (divide by elapsed cycles for averages).
    active_cta_cycles: float = 0.0
    pending_cta_cycles: float = 0.0
    active_warp_cycles: float = 0.0
    # Peak concurrency.
    max_resident_ctas: int = 0
    # Stall taxonomy: cycles where the SM issued nothing, attributed.
    idle_cycles: int = 0
    rf_depletion_cycles: int = 0     # schedulable CTA exists, RF space doesn't
    srp_stall_cycles: int = 0        # RegMutex: warps waiting on SRP
    # Switching activity.
    cta_switch_events: int = 0
    cta_launches: int = 0
    # Table-IV switch phases: overhead cycles each direction spends moving
    # register state (spill to PCRF / restore to ACRF).
    switch_out_overhead_cycles: int = 0
    switch_in_overhead_cycles: int = 0
    # Register-file event counts (energy model inputs).
    rf_reads: int = 0
    rf_writes: int = 0
    rf_bank_conflicts: int = 0
    pcrf_reads: int = 0
    pcrf_writes: int = 0
    shmem_accesses: int = 0
    # Table III: per-CTA cycles from first issue to complete stall.
    stall_latencies: List[int] = field(default_factory=list)
    # Fig 5: per-window register usage fractions (optional sampling).
    window_usage: List[float] = field(default_factory=list)

    def accumulate(self, dt: float, active_ctas: int, pending_ctas: int,
                   active_warps: int) -> None:
        self.active_cta_cycles += dt * active_ctas
        self.pending_cta_cycles += dt * pending_ctas
        self.active_warp_cycles += dt * active_warps
        resident = active_ctas + pending_ctas
        if resident > self.max_resident_ctas:
            self.max_resident_ctas = resident


@dataclass(frozen=True)
class SimResult:
    """Immutable outcome of one kernel launch simulation."""

    policy: str
    workload: str
    cycles: int
    instructions: int
    num_sms: int
    # Concurrency.
    avg_active_ctas_per_sm: float
    avg_pending_ctas_per_sm: float
    max_resident_ctas: int
    avg_active_threads_per_sm: float
    # Memory.
    dram_traffic_bytes: int
    dram_traffic_by_class: Dict[str, int]
    l1_hit_rate: float
    l2_hit_rate: float
    # Stalls and switching.
    idle_cycles: int
    rf_depletion_cycles: int
    srp_stall_cycles: int
    cta_switch_events: int
    # Energy-model event counts.
    rf_reads: int
    rf_writes: int
    pcrf_reads: int
    pcrf_writes: int
    shmem_accesses: int
    l1_accesses: int
    l2_accesses: int
    # Characterization extras.
    mean_stall_latency: Optional[float]
    window_usage_bounds: Optional[Tuple[float, float, float]]
    bitvector_hit_rate: Optional[float]
    completed_ctas: int
    timed_out: bool
    # Telemetry summary (schema v2): Table-IV switch-phase overhead cycles
    # summed over all SMs.  Trailing defaults keep older positional
    # constructions valid.
    switch_out_overhead_cycles: int = 0
    switch_in_overhead_cycles: int = 0
    # Concurrent-kernel attribution (schema v3): label -> summed KernelStats
    # fields plus ``completed_ctas``/``grid_ctas``.  None for single-kernel
    # runs, so their payloads differ from v2 only by the schema tag.
    per_kernel: Optional[Dict[str, Dict[str, float]]] = None

    @property
    def ipc(self) -> float:
        """Whole-GPU instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def ipc_per_sm(self) -> float:
        return self.ipc / self.num_sms

    @property
    def avg_resident_ctas_per_sm(self) -> float:
        return self.avg_active_ctas_per_sm + self.avg_pending_ctas_per_sm

    @property
    def rf_depletion_fraction(self) -> float:
        """Fraction of execution time stalled on register-file depletion
        (paper Fig 14b)."""
        return self.rf_depletion_cycles / self.cycles if self.cycles else 0.0

    @property
    def switch_overhead_cycles(self) -> int:
        """Total Table-IV context-switch overhead (both directions)."""
        return (self.switch_out_overhead_cycles
                + self.switch_in_overhead_cycles)

    @property
    def stall_fraction(self) -> float:
        """Fraction of execution time the GPU issued nothing at all."""
        total = self.cycles * self.num_sms
        return self.idle_cycles / total if total else 0.0

    # ------------------------------------------------------------------
    # Serialization (persistent result cache, parallel campaign workers)
    # ------------------------------------------------------------------
    def to_json(self) -> Dict:
        """A JSON-serializable dict that round-trips via :meth:`from_json`."""
        payload = asdict(self)
        bounds = payload["window_usage_bounds"]
        if bounds is not None:
            payload["window_usage_bounds"] = list(bounds)
        payload["_schema"] = RESULT_SCHEMA_VERSION
        return payload

    @classmethod
    def from_json(cls, payload: Dict) -> "SimResult":
        """Rebuild a result from :meth:`to_json` output (exact round-trip)."""
        data = dict(payload)
        schema = data.pop("_schema", RESULT_SCHEMA_VERSION)
        if schema != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"SimResult schema {schema} != {RESULT_SCHEMA_VERSION}")
        bounds = data.get("window_usage_bounds")
        if bounds is not None:
            data["window_usage_bounds"] = tuple(bounds)
        return cls(**data)

    def speedup_over(self, baseline: "SimResult") -> float:
        if baseline.ipc == 0:
            raise ZeroDivisionError("baseline IPC is zero")
        return self.ipc / baseline.ipc

    def traffic_ratio_over(self, baseline: "SimResult") -> float:
        if baseline.dram_traffic_bytes == 0:
            return 1.0
        return self.dram_traffic_bytes / baseline.dram_traffic_bytes
