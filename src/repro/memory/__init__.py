"""Memory hierarchy substrate: set-associative caches, DRAM, and the
per-GPU hierarchy tying L1s to a shared L2 and off-chip DRAM."""

from repro.memory.cache import Cache, CacheStats
from repro.memory.dram import DRAM, DRAMStats
from repro.memory.hierarchy import MemoryHierarchy

__all__ = ["Cache", "CacheStats", "DRAM", "DRAMStats", "MemoryHierarchy"]
