"""CTA status monitor (paper V-B, Table IV).

Two arrays of 2-bit values -- one per resident-CTA slot -- track where each
CTA's *pipeline context* and *registers* currently live.  A CTA is active
only when both fields read 2 (pipeline / ACRF); every other combination is a
flavour of pending.  The monitor also implements the paper's switching
priority: prefer a candidate whose context is already backed up in shared
memory but whose registers still sit in the ACRF (context=1, register=2),
then fall back to fully backed-up CTAs (context=1, register=1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


class ContextLocation(enum.IntEnum):
    """Where a CTA's pipeline context resides (Table IV, 2-bit encoding)."""

    NOT_LAUNCHED = 0
    SHARED_MEMORY = 1
    PIPELINE = 2


class RegisterLocation(enum.IntEnum):
    """Where a CTA's registers reside (Table IV, 2-bit encoding)."""

    NOT_LAUNCHED = 0
    PCRF = 1
    ACRF = 2


@dataclass(frozen=True)
class CTAStatus:
    """Combined 2x2-bit status of one resident CTA."""

    context: ContextLocation
    registers: RegisterLocation

    @property
    def is_active(self) -> bool:
        """Active iff both fields are 2 (paper: context and register = 0b10)."""
        return (self.context is ContextLocation.PIPELINE
                and self.registers is RegisterLocation.ACRF)

    @property
    def is_pending(self) -> bool:
        launched = self.context is not ContextLocation.NOT_LAUNCHED
        return launched and not self.is_active


class CTAStatusMonitor:
    """Tracks context/register location for up to ``max_ctas`` resident CTAs.

    Storage cost matches V-F: 2 bits x max_ctas per field (256 bits each for
    128 CTAs).
    """

    def __init__(self, max_ctas: int = 128) -> None:
        if max_ctas <= 0:
            raise ValueError("monitor needs at least one CTA slot")
        self._max_ctas = max_ctas
        self._context: Dict[int, ContextLocation] = {}
        self._registers: Dict[int, RegisterLocation] = {}

    # ------------------------------------------------------------------
    @property
    def max_ctas(self) -> int:
        return self._max_ctas

    @property
    def resident_count(self) -> int:
        return len(self._context)

    def tracked(self) -> Tuple[int, ...]:
        return tuple(self._context)

    # ------------------------------------------------------------------
    def launch(self, cta_id: int) -> None:
        """A CTA enters the pipeline with registers in the ACRF."""
        if cta_id in self._context:
            raise KeyError(f"CTA {cta_id} already tracked")
        if len(self._context) >= self._max_ctas:
            raise MemoryError("CTA status monitor is full")
        self._context[cta_id] = ContextLocation.PIPELINE
        self._registers[cta_id] = RegisterLocation.ACRF

    def retire(self, cta_id: int) -> None:
        """A CTA finished; its slot is recycled."""
        self._require(cta_id)
        del self._context[cta_id]
        del self._registers[cta_id]

    def set_context(self, cta_id: int, location: ContextLocation) -> None:
        self._require(cta_id)
        if location is ContextLocation.NOT_LAUNCHED:
            raise ValueError("use retire() to drop a CTA")
        self._context[cta_id] = location

    def set_registers(self, cta_id: int, location: RegisterLocation) -> None:
        self._require(cta_id)
        if location is RegisterLocation.NOT_LAUNCHED:
            raise ValueError("use retire() to drop a CTA")
        self._registers[cta_id] = location

    def status_of(self, cta_id: int) -> CTAStatus:
        if cta_id not in self._context:
            return CTAStatus(ContextLocation.NOT_LAUNCHED,
                             RegisterLocation.NOT_LAUNCHED)
        return CTAStatus(self._context[cta_id], self._registers[cta_id])

    def is_active(self, cta_id: int) -> bool:
        return self.status_of(cta_id).is_active

    def active_ctas(self) -> Tuple[int, ...]:
        return tuple(cta for cta in self._context if self.is_active(cta))

    def pending_ctas(self) -> Tuple[int, ...]:
        return tuple(cta for cta in self._context if not self.is_active(cta))

    # ------------------------------------------------------------------
    def select_switch_candidate(
            self, ready: Iterable[int]) -> Optional[int]:
        """Pick the pending CTA to activate, per the paper's priority.

        ``ready`` enumerates pending CTAs whose stall condition has cleared.
        First preference: context in shared memory but registers still in the
        ACRF (cheapest to reactivate).  Second: context and registers both
        backed up (shared memory + PCRF).  Ties break by lowest CTA id
        (oldest, since ids are assigned in launch order).
        """
        first_choice: List[int] = []
        second_choice: List[int] = []
        for cta_id in ready:
            status = self.status_of(cta_id)
            if (status.context is ContextLocation.SHARED_MEMORY
                    and status.registers is RegisterLocation.ACRF):
                first_choice.append(cta_id)
            elif (status.context is ContextLocation.SHARED_MEMORY
                    and status.registers is RegisterLocation.PCRF):
                second_choice.append(cta_id)
        if first_choice:
            return min(first_choice)
        if second_choice:
            return min(second_choice)
        return None

    # ------------------------------------------------------------------
    @property
    def storage_bits(self) -> int:
        """SRAM cost: two 2-bit fields per CTA slot (512 bits at 128 CTAs)."""
        return 2 * 2 * self._max_ctas

    def _require(self, cta_id: int) -> None:
        if cta_id not in self._context:
            raise KeyError(f"CTA {cta_id} is not tracked")
