"""Greedy-then-oldest (GTO) warp scheduler.

Each SM has four schedulers (Table I); warps of active CTAs are distributed
round-robin across them.  A scheduler keeps issuing from its current warp
("greedy") until that warp blocks, then falls back to the oldest runnable
warp it owns (warp lists are kept in launch order, so a linear scan finds the
oldest).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sim.warp import WarpSim

#: The issue callback: (warp, now) -> True if the warp issued an instruction.
IssueFn = Callable[[WarpSim, int], bool]


class GTOScheduler:
    """One of the SM's warp schedulers."""

    __slots__ = ("scheduler_id", "warps", "_current")

    def __init__(self, scheduler_id: int) -> None:
        self.scheduler_id = scheduler_id
        self.warps: List[WarpSim] = []
        self._current: Optional[WarpSim] = None

    # ------------------------------------------------------------------
    def add_warp(self, warp: WarpSim) -> None:
        self.warps.append(warp)

    def remove_warp(self, warp: WarpSim) -> None:
        self.warps.remove(warp)
        if self._current is warp:
            self._current = None

    def remove_cta(self, cta_id: int) -> None:
        """Drop all warps belonging to a CTA (it went pending or finished)."""
        self.warps = [w for w in self.warps if w.cta.cta_id != cta_id]
        if self._current is not None and self._current.cta.cta_id == cta_id:
            self._current = None

    @property
    def occupancy(self) -> int:
        return len(self.warps)

    # ------------------------------------------------------------------
    def issue(self, now: int, try_issue: IssueFn) -> bool:
        """Attempt to issue one instruction this cycle.

        Greedy: retry the current warp first.  Then oldest-first over the
        remaining runnable warps.  ``try_issue`` may refuse (dependency not
        ready), in which case it must have set the warp's ``blocked_until``
        so the warp is skipped cheaply for the rest of the stall.
        """
        current = self._current
        if current is not None:
            if current.finished:
                self._current = None
            elif current.is_runnable(now) and try_issue(current, now):
                return True

        for warp in self.warps:
            if warp is current:
                continue
            if warp.is_runnable(now) and try_issue(warp, now):
                self._current = warp
                return True
        return False

    def has_runnable(self, now: int) -> bool:
        return any(warp.is_runnable(now) for warp in self.warps)


class LRRScheduler(GTOScheduler):
    """Loose round-robin: rotate through warps instead of running one
    greedily.  Included for the scheduler ablation (Table I uses GTO)."""

    __slots__ = ("_next",)

    def __init__(self, scheduler_id: int) -> None:
        super().__init__(scheduler_id)
        self._next = 0

    def issue(self, now: int, try_issue: IssueFn) -> bool:
        warps = self.warps
        count = len(warps)
        for offset in range(count):
            warp = warps[(self._next + offset) % count]
            if warp.is_runnable(now) and try_issue(warp, now):
                self._next = (self._next + offset + 1) % count
                self._current = warp
                return True
        return False


SCHEDULER_KINDS = {
    "gto": GTOScheduler,
    "lrr": LRRScheduler,
}
