"""Set-associative cache with LRU replacement.

Used for both the per-SM L1 and the shared L2.  The model is tag-only: it
decides hit/miss and tracks traffic; data values are never simulated.
Write policy is write-through/no-write-allocate for stores (GPU L1s for
global stores behave this way), configurable for the L2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass
class CacheStats:
    """Access counters for one cache instance."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    dirty_evictions: int = 0

    @property
    def accesses(self) -> int:
        return (self.read_hits + self.read_misses
                + self.write_hits + self.write_misses)

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """Tag-array cache model with true-LRU sets."""

    def __init__(self, name: str, size_bytes: int, assoc: int,
                 line_bytes: int = 128, allocate_on_write: bool = False
                 ) -> None:
        if size_bytes <= 0 or size_bytes % (assoc * line_bytes):
            raise ValueError(
                f"{name}: size must be a multiple of assoc * line size"
            )
        self.name = name
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.num_sets = size_bytes // (assoc * line_bytes)
        self.allocate_on_write = allocate_on_write
        # Per set: list of tags in LRU order (front = most recent).
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self._dirty: set = set()
        #: True when the most recent access evicted a dirty line
        #: (write-back caches owe a memory write for it).
        self.last_evicted_dirty = False
        self.stats = CacheStats()

    @property
    def size_bytes(self) -> int:
        return self.num_sets * self.assoc * self.line_bytes

    def _locate(self, address: int) -> tuple:
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, address: int, is_write: bool = False) -> bool:
        """Probe (and update) the cache; returns True on hit.

        ``last_evicted_dirty`` is set when the allocation this access
        performed pushed out a dirty line (the caller owes a write-back).
        """
        return self.access_line(address // self.line_bytes, is_write)

    def access_line(self, line: int, is_write: bool = False) -> bool:
        """:meth:`access` keyed by line index (callers that already divided
        the address by the line size skip redoing it)."""
        self.last_evicted_dirty = False
        set_index = line % self.num_sets
        tag = line // self.num_sets
        ways = self._sets[set_index]
        if tag in ways:
            if ways[0] != tag:  # already-MRU hits skip the list shuffle
                ways.remove(tag)
                ways.insert(0, tag)
            if is_write:
                self.stats.write_hits += 1
                self._dirty.add((set_index, tag))
            else:
                self.stats.read_hits += 1
            return True
        if is_write:
            self.stats.write_misses += 1
            if not self.allocate_on_write:
                return False
        else:
            self.stats.read_misses += 1
        # Miss allocation path (reads, and writes on allocate-on-write).
        ways.insert(0, tag)
        if is_write:
            self._dirty.add((set_index, tag))
        if len(ways) > self.assoc:
            victim = ways.pop()
            key = (set_index, victim)
            if key in self._dirty:
                self._dirty.remove(key)
                self.last_evicted_dirty = True
                self.stats.dirty_evictions += 1
        return False

    def probe(self, address: int) -> bool:
        """Non-updating, non-counting lookup."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self._dirty.clear()

    def resize(self, size_bytes: int) -> None:
        """Change capacity (used by the unified-memory model, Fig 19)."""
        if size_bytes <= 0 or size_bytes % (self.assoc * self.line_bytes):
            raise ValueError("new size must be a multiple of assoc * line")
        self.num_sets = size_bytes // (self.assoc * self.line_bytes)
        self.flush()

    def occupancy(self) -> Dict[str, int]:
        lines = sum(len(ways) for ways in self._sets)
        return {"lines": lines, "capacity": self.num_sets * self.assoc}
