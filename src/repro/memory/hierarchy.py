"""The L1 -> L2 -> DRAM hierarchy shared by all SMs of a simulated GPU.

Each SM owns an L1; the L2 and DRAM channel are shared.  ``load``/``store``
return the absolute completion cycle of the access, charging L1/L2 hit
latencies or the DRAM round trip (including bandwidth queueing).  A small
per-SM merge table approximates MSHR behaviour: accesses from the same SM to
the same line within the lifetime of an outstanding miss complete with the
original miss rather than issuing new DRAM traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.config import GPUConfig
from repro.memory.cache import Cache
from repro.memory.dram import DRAM


@dataclass
class HierarchyStats:
    """Aggregated access counts (per-level stats live on the caches)."""

    loads: int = 0
    stores: int = 0
    merged_misses: int = 0


class MemoryHierarchy:
    """Timing model for global-memory accesses of every SM."""

    def __init__(self, config: GPUConfig) -> None:
        self._config = config
        line = config.cache_line_bytes
        self.l1s: List[Cache] = [
            Cache(f"L1[{sm}]", config.l1_size_bytes, config.l1_assoc, line)
            for sm in range(config.num_sms)
        ]
        self.l2 = Cache("L2", config.l2_size_bytes, config.l2_assoc, line,
                        allocate_on_write=True)
        self.dram = DRAM(config.dram_bytes_per_cycle, config.dram_latency)
        # Config scalars hoisted for the per-access hot path.
        self._line_bytes = line
        self._l1_hit_lat = config.l1_hit_latency
        self._l2_hit_lat = config.l2_hit_latency
        self.stats = HierarchyStats()
        #: MetricsRegistry installed by repro.telemetry (None = off).
        self.telemetry = None
        # Per-SM outstanding-miss table: line address -> completion cycle.
        self._outstanding: List[Dict[int, int]] = [
            {} for _ in range(config.num_sms)
        ]

    # ------------------------------------------------------------------
    def load(self, sm_id: int, address: int, now: int) -> int:
        """A warp-level coalesced load; returns the data-ready cycle."""
        self.stats.loads += 1
        done = self._access(sm_id, address, now, is_write=False)
        if self.telemetry is not None:
            self.telemetry.inc("mem.loads")
            self.telemetry.observe("mem.load_cycles", done - now)
        return done

    def store(self, sm_id: int, address: int, now: int) -> int:
        """A warp-level coalesced store; returns the retire cycle.

        Stores are write-through at L1; they complete from the warp's view
        quickly but still consume DRAM bandwidth on an L2 miss.
        """
        self.stats.stores += 1
        if self.telemetry is not None:
            self.telemetry.inc("mem.stores")
        self._access(sm_id, address, now, is_write=True)
        # Stores retire once handed to the memory pipeline.
        return now + self._l1_hit_lat

    # ------------------------------------------------------------------
    def _access(self, sm_id: int, address: int, now: int,
                is_write: bool) -> int:
        line_bytes = self._line_bytes
        line = address // line_bytes
        line_addr = line * line_bytes

        # A miss to this line may still be in flight: later accesses (from
        # this SM) complete with it instead of hitting the freshly-allocated
        # tag before the data has actually arrived.
        outstanding = self._outstanding[sm_id]
        l1 = self.l1s[sm_id]
        pending = outstanding.get(line_addr)
        if pending is not None:
            if pending > now:
                self.stats.merged_misses += 1
                l1.access_line(line, is_write)  # keep LRU honest
                return pending
            del outstanding[line_addr]

        # L1 probe open-coded from Cache.access_line (write-through /
        # no-write-allocate; ``last_evicted_dirty`` is left stale — the
        # hierarchy only consults the L2's flag).
        num_sets = l1.num_sets
        set_index = line % num_sets
        tag = line // num_sets
        ways = l1._sets[set_index]
        l1_stats = l1.stats
        if tag in ways:
            if ways[0] != tag:
                ways.remove(tag)
                ways.insert(0, tag)
            if is_write:
                l1_stats.write_hits += 1
                l1._dirty.add((set_index, tag))
            else:
                l1_stats.read_hits += 1
            return now + self._l1_hit_lat
        if is_write:
            l1_stats.write_misses += 1
        else:
            l1_stats.read_misses += 1
            ways.insert(0, tag)
            if len(ways) > l1.assoc:
                victim = ways.pop()
                key = (set_index, victim)
                dirty = l1._dirty
                if key in dirty:
                    dirty.remove(key)
                    l1_stats.dirty_evictions += 1

        # L2 probe open-coded from Cache.access_line (allocate-on-write,
        # write-back; ``evicted_dirty`` stands in for last_evicted_dirty).
        l2 = self.l2
        num_sets = l2.num_sets
        set_index = line % num_sets
        tag = line // num_sets
        ways = l2._sets[set_index]
        l2_stats = l2.stats
        evicted_dirty = False
        if tag in ways:
            if ways[0] != tag:
                ways.remove(tag)
                ways.insert(0, tag)
            if is_write:
                l2_stats.write_hits += 1
                l2._dirty.add((set_index, tag))
            else:
                l2_stats.read_hits += 1
            done = now + self._l2_hit_lat
        else:
            dirty = l2._dirty
            if is_write:
                # Write-back L2: the store allocates on-chip; DRAM is only
                # charged when a dirty line is eventually evicted (below).
                l2_stats.write_misses += 1
                done = now + self._l2_hit_lat
            else:
                l2_stats.read_misses += 1
                done = self.dram.request(now, line_bytes, "demand_read")
                done += self._l2_hit_lat - self._l1_hit_lat
            ways.insert(0, tag)
            if is_write:
                dirty.add((set_index, tag))
            if len(ways) > l2.assoc:
                victim = ways.pop()
                key = (set_index, victim)
                if key in dirty:
                    dirty.remove(key)
                    evicted_dirty = True
                    l2_stats.dirty_evictions += 1
        if evicted_dirty:
            self.dram.request(now, line_bytes, "demand_write")
        if not is_write:
            outstanding[line_addr] = done
            if len(outstanding) > 256:  # bound the merge-table size
                expired = [a for a, t in outstanding.items() if t <= now]
                for addr in expired:
                    del outstanding[addr]
        return done

    # ------------------------------------------------------------------
    # Bulk transfers (context switching to DRAM, bit-vector fetches)
    # ------------------------------------------------------------------
    def bulk_transfer(self, now: int, nbytes: int, traffic_class: str) -> int:
        """Move ``nbytes`` to/from DRAM (Zorua-style context, bit vectors)."""
        return self.dram.request(now, nbytes, traffic_class)

    @property
    def dram_traffic_bytes(self) -> int:
        return self.dram.stats.total_bytes

    def traffic_by_class(self) -> Dict[str, int]:
        return dict(self.dram.stats.bytes_by_class)
