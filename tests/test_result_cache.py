"""Result serialization, cache keys, and the persistent on-disk cache."""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TINY, GPUConfig, default_config
from repro.experiments.cache import ResultCache, run_key
from repro.experiments.runner import ExperimentRunner
from repro.workloads.suite import get_spec

# ----------------------------------------------------------------------
# SimResult JSON round-trip
# ----------------------------------------------------------------------
from repro.sim.stats import RESULT_SCHEMA_VERSION, SimResult

_counts = st.integers(min_value=0, max_value=10**12)
_fracs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_floats = st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
                    allow_infinity=False)


@st.composite
def sim_results(draw):
    bounds = draw(st.one_of(
        st.none(),
        st.tuples(_fracs, _fracs, _fracs),
    ))
    return SimResult(
        policy=draw(st.sampled_from(["baseline", "finereg", "vt_regmutex"])),
        workload=draw(st.text(min_size=1, max_size=8)),
        cycles=draw(st.integers(min_value=1, max_value=10**9)),
        instructions=draw(_counts),
        num_sms=draw(st.integers(min_value=1, max_value=64)),
        avg_active_ctas_per_sm=draw(_floats),
        avg_pending_ctas_per_sm=draw(_floats),
        max_resident_ctas=draw(st.integers(min_value=0, max_value=512)),
        avg_active_threads_per_sm=draw(_floats),
        dram_traffic_bytes=draw(_counts),
        dram_traffic_by_class=draw(st.dictionaries(
            st.sampled_from(["demand_read", "demand_write", "reg_spill",
                             "reg_fill"]),
            _counts, max_size=4)),
        l1_hit_rate=draw(_fracs),
        l2_hit_rate=draw(_fracs),
        idle_cycles=draw(_counts),
        rf_depletion_cycles=draw(_counts),
        srp_stall_cycles=draw(_counts),
        cta_switch_events=draw(_counts),
        rf_reads=draw(_counts),
        rf_writes=draw(_counts),
        pcrf_reads=draw(_counts),
        pcrf_writes=draw(_counts),
        shmem_accesses=draw(_counts),
        l1_accesses=draw(_counts),
        l2_accesses=draw(_counts),
        mean_stall_latency=draw(st.one_of(st.none(), _floats)),
        window_usage_bounds=bounds,
        bitvector_hit_rate=draw(st.one_of(st.none(), _fracs)),
        completed_ctas=draw(st.integers(min_value=0, max_value=10**6)),
        timed_out=draw(st.booleans()),
    )


def make_result(**overrides) -> SimResult:
    """A fixed, fully-populated SimResult for non-property tests."""
    values = dict(
        policy="baseline", workload="KM", cycles=1000, instructions=1700,
        num_sms=2, avg_active_ctas_per_sm=3.5, avg_pending_ctas_per_sm=1.25,
        max_resident_ctas=9, avg_active_threads_per_sm=871.0,
        dram_traffic_bytes=4096,
        dram_traffic_by_class={"demand_read": 3072, "reg_spill": 1024},
        l1_hit_rate=0.75, l2_hit_rate=0.5, idle_cycles=120,
        rf_depletion_cycles=30, srp_stall_cycles=0, cta_switch_events=4,
        rf_reads=5000, rf_writes=1800, pcrf_reads=40, pcrf_writes=60,
        shmem_accesses=7, l1_accesses=900, l2_accesses=250,
        mean_stall_latency=81.5, window_usage_bounds=(0.2, 0.5, 0.9),
        bitvector_hit_rate=0.97, completed_ctas=24, timed_out=False,
    )
    values.update(overrides)
    return SimResult(**values)


class TestSimResultRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(result=sim_results())
    def test_exact_round_trip_through_json_text(self, result):
        # Through an actual JSON encode/decode, as the disk cache does.
        payload = json.loads(json.dumps(result.to_json()))
        assert SimResult.from_json(payload) == result

    def test_payload_is_tagged_with_schema(self):
        assert make_result().to_json()["_schema"] == RESULT_SCHEMA_VERSION

    @settings(max_examples=10, deadline=None)
    @given(result=sim_results())
    def test_schema_mismatch_rejected(self, result):
        payload = result.to_json()
        payload["_schema"] = RESULT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            SimResult.from_json(payload)

    def test_none_fields_survive(self):
        result = make_result(mean_stall_latency=None,
                             window_usage_bounds=None,
                             bitvector_hit_rate=None)
        back = SimResult.from_json(json.loads(json.dumps(result.to_json())))
        assert back.mean_stall_latency is None
        assert back.window_usage_bounds is None
        assert back == result

    def test_bounds_restored_as_tuple(self):
        result = make_result(window_usage_bounds=(0.25, 0.5, 0.75))
        back = SimResult.from_json(json.loads(json.dumps(result.to_json())))
        assert back.window_usage_bounds == (0.25, 0.5, 0.75)
        assert isinstance(back.window_usage_bounds, tuple)

    def test_per_kernel_attribution_round_trips(self):
        per_kernel = {
            "s0:st": {"instructions": 900, "cta_launches": 12,
                      "cta_switch_events": 3, "stall_events": 5,
                      "stall_cycles": 40, "active_cta_cycles": 2100.0,
                      "active_warp_cycles": 8400.0, "completed_ctas": 12,
                      "grid_ctas": 12, "avg_active_ctas_per_sm": 1.05,
                      "avg_active_warps_per_sm": 4.2},
            "s1:km": {"instructions": 800, "cta_launches": 12,
                      "cta_switch_events": 1, "stall_events": 2,
                      "stall_cycles": 10, "active_cta_cycles": 1900.0,
                      "active_warp_cycles": 7600.0, "completed_ctas": 12,
                      "grid_ctas": 12, "avg_active_ctas_per_sm": 0.95,
                      "avg_active_warps_per_sm": 3.8},
        }
        result = make_result(workload="st+km", per_kernel=per_kernel)
        back = SimResult.from_json(json.loads(json.dumps(result.to_json())))
        assert back.per_kernel == per_kernel
        assert back == result

    def test_per_kernel_defaults_to_none(self):
        back = SimResult.from_json(
            json.loads(json.dumps(make_result().to_json())))
        assert back.per_kernel is None


# ----------------------------------------------------------------------
# Memo-key collision regression (PR-1 satellite)
# ----------------------------------------------------------------------
class TestConfigKeyCoversEveryField:
    """The old memo key hashed a hand-picked field subset; configs differing
    only in the omitted knobs (warp scheduling, switch threshold, RF
    banking, latencies) aliased to one cached result."""

    @pytest.mark.parametrize("change", [
        {"warp_scheduling": "lrr"},
        {"cta_switch_threshold": 7},
        {"model_rf_banks": True},
        {"alu_latency": 9},
        {"dram_latency": 1234},
        {"min_park_cycles": 3},
        {"pcrf_access_latency": 11},
    ])
    def test_distinct_configs_get_distinct_keys(self, change):
        base = default_config(TINY)
        variant = dataclasses.replace(base, **change)
        assert ExperimentRunner._config_key(base) \
            != ExperimentRunner._config_key(variant)

    def test_key_covers_every_declared_field(self):
        # astuple has one entry per dataclass field by construction; guard
        # against someone replacing it with a subset again.
        key = ExperimentRunner._config_key(default_config(TINY))
        assert len(key) == len(dataclasses.fields(GPUConfig))

    def test_runner_memo_distinguishes_scheduling(self):
        runner = ExperimentRunner(scale=TINY)
        gto = runner.run("KM", "baseline")
        lrr = runner.run("KM", "baseline", config=dataclasses.replace(
            runner.base_config, warp_scheduling="lrr"))
        # Two memo entries, and LRR actually ran (not the GTO result).
        assert len(runner._results) == 2
        assert gto is not lrr


# ----------------------------------------------------------------------
# Persistent key sensitivity
# ----------------------------------------------------------------------
class TestRunKey:
    def _key(self, **overrides):
        config = default_config(TINY)
        params = dict(scale=TINY, reference=config, config=config,
                      spec=get_spec("KM"), policy="baseline",
                      policy_kwargs={}, sample_usage=False,
                      unified_memory=False)
        params.update(overrides)
        return run_key(**params)

    def test_stable(self):
        assert self._key() == self._key()

    def test_sensitive_to_each_component(self):
        base = self._key()
        config = default_config(TINY)
        variants = [
            self._key(policy="finereg"),
            self._key(spec=get_spec("LB")),
            self._key(policy_kwargs={"srp_ratio": 0.2}),
            self._key(sample_usage=True),
            self._key(unified_memory=True),
            self._key(config=dataclasses.replace(config, alu_latency=7)),
            self._key(reference=config.with_num_sms(4)),
        ]
        assert len({base, *variants}) == len(variants) + 1

    def test_kwarg_order_irrelevant(self):
        a = self._key(policy_kwargs={"a": 1, "b": 2})
        b = self._key(policy_kwargs={"b": 2, "a": 1})
        assert a == b


# ----------------------------------------------------------------------
# On-disk cache behavior
# ----------------------------------------------------------------------
class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=True)
        result = make_result()
        cache.put("ab" + "0" * 62, result)
        assert len(cache) == 1
        assert cache.get("ab" + "0" * 62) == result

    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=True)
        assert cache.get("ff" + "0" * 62) is None
        assert cache.misses == 1

    def test_disabled_cache_is_inert(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=False)
        cache.put("ab" + "0" * 62, make_result())
        assert len(cache) == 0
        assert cache.get("ab" + "0" * 62) is None

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=True)
        key = "cd" + "0" * 62
        cache.put(key, make_result())
        path = cache._path(key)
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_stale_schema_entry_degrades_to_miss(self, tmp_path):
        # PR-4 bumped RESULT_SCHEMA_VERSION (SimResult grew the switch
        # overhead split).  Entries persisted by the previous version must
        # be rejected cleanly -- a miss and a re-run, never a SimResult
        # missing the new fields.
        cache = ResultCache(root=tmp_path, enabled=True)
        key = "ce" + "0" * 62
        cache.put(key, make_result())
        path = cache._path(key)
        payload = json.loads(path.read_text())
        payload["result"]["_schema"] = 1
        for field in ("switch_out_overhead_cycles",
                      "switch_in_overhead_cycles"):
            payload["result"].pop(field, None)
        path.write_text(json.dumps(payload))
        assert cache.get(key) is None
        assert cache.misses == 1
        # The stale entry can be overwritten and served again.
        cache.put(key, make_result())
        assert cache.get(key) == make_result()

    def test_v2_schema_entry_degrades_to_miss(self, tmp_path):
        # This PR bumped RESULT_SCHEMA_VERSION to 3 (SimResult grew the
        # per_kernel concurrent attribution).  A v2 payload — no
        # per_kernel field, old tag — must be a clean miss, never a
        # SimResult silently missing the attribution.
        cache = ResultCache(root=tmp_path, enabled=True)
        key = "cf" + "0" * 62
        cache.put(key, make_result())
        path = cache._path(key)
        payload = json.loads(path.read_text())
        payload["result"]["_schema"] = 2
        payload["result"].pop("per_kernel", None)
        path.write_text(json.dumps(payload))
        assert cache.get(key) is None
        assert cache.misses == 1
        cache.put(key, make_result())
        assert cache.get(key) == make_result()

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=True)
        for i in range(3):
            cache.put(f"{i:02x}" + "0" * 62, make_result())
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_runner_round_trips_through_disk(self, tmp_path):
        warm = ExperimentRunner(
            scale=TINY, cache=ResultCache(root=tmp_path, enabled=True))
        first = warm.run("KM", "baseline")
        assert warm.cache.hits == 0
        # A fresh runner (cold memo) must be served from disk, identically.
        cold = ExperimentRunner(
            scale=TINY, cache=ResultCache(root=tmp_path, enabled=True))
        assert cold.run("KM", "baseline") == first
        assert cold.cache.hits == 1
