"""``repro obs`` -- inspect campaign observability artifacts.

Actions:

* ``summarize <log>``: cache hit-rate, worker utilization, per-phase
  wall-clock breakdown and reconciliation status of a campaign JSONL log;
* ``tail <log>``: the last N events, one line each, with invalid lines
  marked rather than crashing (a live log may be mid-write);
* ``perfetto <log> --out trace.json``: export the span tree to
  Chrome-trace/Perfetto JSON (validated before writing);
* ``perf-trajectory``: analyze ``BENCH_history.jsonl`` for throughput
  regressions across commits beyond the CI smoke threshold.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.obs.events import ObsLogError, events_of, load_log
from repro.obs.export import spans_from_events, write_campaign_perfetto
from repro.obs.schema import check_obs_event
from repro.obs.spans import Span, reconcile_spans
from repro.obs.trajectory import (DEFAULT_HISTORY, DEFAULT_THRESHOLD,
                                  detect_regressions, load_history,
                                  trajectory_report)


def _span_objects(span_dicts: Sequence[Dict]) -> List[Span]:
    spans: List[Span] = []
    for entry in span_dicts:
        span = Span(int(entry["span"]), entry.get("parent"),
                    str(entry["name"]), str(entry["kind"]),
                    float(entry["t_start"]), worker=entry.get("worker"))
        if entry.get("dur_s") is not None:
            span.t_end = span.t_start + float(entry["dur_s"])
        spans.append(span)
    return spans


def summarize_events(events: Sequence[Dict]) -> Dict:
    """Campaign summary computed purely from a validated event stream."""
    events = list(events)
    starts = events_of(events, "campaign_start")
    ends = events_of(events, "campaign_end")
    lookups = events_of(events, "cache_lookup")
    stores = events_of(events, "cache_store")
    runs = events_of(events, "run_complete")
    stalls = events_of(events, "stall")
    hits = sum(1 for event in lookups if event["hit"])

    span_dicts = spans_from_events(events)
    spans = _span_objects(span_dicts)
    kind_of = {span.span_id: span.kind for span in spans}
    campaign_span = next((s for s in spans if s.kind == "campaign"), None)
    if campaign_span is not None:
        wall = campaign_span.duration
    elif events:
        wall = float(events[-1]["t"]) - float(events[0]["t"])
    else:
        wall = 0.0

    phases: List[Dict] = []
    for span in spans:
        if span.kind != "phase":
            continue
        if span.parent_id is not None \
                and kind_of.get(span.parent_id) == "request":
            continue
        phases.append({"phase": span.name,
                       "wall_s": round(span.duration, 6)})

    workers: Dict[str, int] = {}
    busy = 0.0
    for event in runs:
        worker = event.get("worker")
        if worker is not None:
            workers[str(worker)] = workers.get(str(worker), 0) + 1
        busy += float(event["dur_s"])
    jobs = int(starts[0]["jobs"]) if starts else 1
    utilization = round(busy / (jobs * wall), 6) if wall > 0 else None

    return {
        "campaign": {
            "label": starts[0]["label"] if starts else None,
            "total": int(starts[0]["total"]) if starts else None,
            "jobs": jobs,
            "completed": (int(ends[-1]["completed"]) if ends
                          else len(runs)),
            "wall_s": round(wall, 6),
        },
        "cache": {
            "lookups": len(lookups),
            "hits": hits,
            "misses": len(lookups) - hits,
            "hit_rate": (round(hits / len(lookups), 6)
                         if lookups else None),
            "stores": len(stores),
            "stored_bytes": sum(int(e["bytes"]) for e in stores),
        },
        "runs": {
            "completed": len(runs),
            "busy_s": round(busy, 6),
            "mean_s": round(busy / len(runs), 6) if runs else None,
        },
        "workers": {
            "seen": len(workers),
            "runs_by_worker": {w: workers[w] for w in sorted(workers)},
            "utilization": utilization,
            "stall_events": len(stalls),
        },
        "phases": phases,
        "reconcile": reconcile_spans(spans),
    }


def format_summary(summary: Dict) -> str:
    campaign = summary["campaign"]
    cache = summary["cache"]
    workers = summary["workers"]
    lines = [
        f"campaign: {campaign['label'] or '-'} "
        f"({campaign['completed']}/{campaign['total'] or '?'} runs, "
        f"jobs={campaign['jobs']}, wall {campaign['wall_s']:.3f}s)",
        f"cache: {cache['lookups']} lookups, {cache['hits']} hits, "
        f"{cache['misses']} misses"
        + (f" (hit rate {cache['hit_rate']:.1%})"
           if cache['hit_rate'] is not None else "")
        + f"; {cache['stores']} stores "
          f"({cache['stored_bytes']:,} bytes)",
        f"workers: {workers['seen']} seen"
        + (f", utilization {workers['utilization']:.1%}"
           if workers['utilization'] is not None else "")
        + f", {workers['stall_events']} stall events",
    ]
    for worker, count in workers["runs_by_worker"].items():
        lines.append(f"  worker {worker}: {count} runs")
    if summary["phases"]:
        lines.append("phases:")
        for row in summary["phases"]:
            lines.append(f"  {row['phase']}: {row['wall_s']:.3f}s")
    problems = summary["reconcile"]
    lines.append("spans reconcile: "
                 + ("ok" if not problems
                    else f"{len(problems)} problems"))
    for problem in problems:
        lines.append(f"  {problem}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
def _tail(path: str, last: int) -> int:
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    shown = [line for line in lines if line.strip()][-max(1, last):]
    for line in shown:
        try:
            event = json.loads(line)
            problems = check_obs_event(event)
        except ValueError:
            problems = ["not valid JSON"]
        if problems:
            print(f"[invalid: {problems[0]}] {line}")
            continue
        t = event["t"]
        extras = {k: v for k, v in event.items()
                  if k not in ("v", "t", "ev")}
        detail = " ".join(f"{k}={v}" for k, v in extras.items())
        print(f"t={t:10.3f}  {event['ev']:<14} {detail}")
    return 0


def run_obs(action: str, log: Optional[str] = None,
            out: Optional[str] = None, last: int = 20,
            history: Optional[str] = None, bench: Optional[str] = None,
            threshold: float = DEFAULT_THRESHOLD, strict: bool = False,
            as_json: bool = False) -> int:
    """Entry point behind ``repro obs`` (also directly testable)."""
    if action == "perf-trajectory":
        path = history if history is not None else DEFAULT_HISTORY
        if not Path(path).exists():
            print(f"no history at {path} (run tools/profile_sim.py to "
                  f"record entries)")
            return 1
        try:
            entries = load_history(path)
        except ValueError as exc:
            print(f"error: {exc}")
            return 1
        regressions = detect_regressions(entries, threshold)
        if as_json:
            print(json.dumps({"entries": len(entries),
                              "threshold": threshold,
                              "regressions": regressions},
                             indent=1, sort_keys=True))
        else:
            for line in trajectory_report(entries, threshold):
                print(line)
        return 1 if (strict and regressions) else 0

    if log is None:
        print(f"error: obs {action} requires a campaign log path")
        return 2
    if action == "tail":
        return _tail(log, last)

    try:
        events = load_log(log)
    except OSError as exc:
        print(f"error: {exc}")
        return 1
    except ObsLogError as exc:
        print(f"error: {exc}")
        for problem in exc.problems[:10]:
            print(f"  {problem}")
        return 1

    if action == "summarize":
        summary = summarize_events(events)
        if as_json:
            print(json.dumps(summary, indent=1, sort_keys=True))
        else:
            print(format_summary(summary))
        return 1 if (strict and summary["reconcile"]) else 0

    if action == "perfetto":
        target = out if out is not None else str(
            Path(log).with_suffix(".perfetto.json"))
        from repro.telemetry.schema import check_trace_payload
        payload = write_campaign_perfetto(target, events)
        problems = check_trace_payload(payload)
        if problems:
            print(f"error: exported trace fails validation: "
                  f"{problems[:3]}")
            return 1
        print(f"wrote {target} ({len(payload['traceEvents'])} events; "
              f"open in ui.perfetto.dev)")
        return 0

    print(f"error: unknown obs action {action!r}")
    return 2
