"""Low-overhead metrics registry (counters, gauges, histograms).

Publishers hold a reference that is ``None`` when telemetry is off -- the
single ``is not None`` test is the entire disabled-path cost.  When enabled,
counters are plain dict increments; histograms store fixed summary moments
(count / sum / min / max) plus a small reservoir for percentile estimates so
memory stays bounded no matter how many observations arrive.

Everything here is deterministic: the reservoir is strided, not sampled
randomly, so two identical runs publish identical snapshots.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

#: Histogram reservoirs keep every 2^k-th observation so they stay under
#: this many points while remaining deterministic.
RESERVOIR_CAP = 512


class _Histogram:
    """Bounded deterministic histogram."""

    __slots__ = ("count", "total", "min", "max", "_stride", "_reservoir")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._stride = 1
        self._reservoir: List[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if (self.count - 1) % self._stride == 0:
            self._reservoir.append(value)
            if len(self._reservoir) >= RESERVOIR_CAP:
                # Decimate: keep every other point, double the stride.
                self._reservoir = self._reservoir[::2]
                self._stride *= 2

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained reservoir."""
        if not self._reservoir:
            return 0.0
        points = sorted(self._reservoir)
        rank = min(len(points) - 1, int(q / 100.0 * len(points)))
        return points[rank]

    def snapshot(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.total / self.count,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class MetricsRegistry:
    """One registry per simulation run; shared by every publisher."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = defaultdict(int)
        self.gauges: Dict[str, float] = {}
        #: Per-opcode issue counts; the SM's hot loop writes this mapping
        #: directly (``registry.issue_counts[op] += 1``) to keep the
        #: enabled-path cost to one dict increment.
        self.issue_counts: Dict[str, int] = defaultdict(int)
        self._histograms: Dict[str, _Histogram] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] += n

    def gauge_set(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = _Histogram()
        hist.observe(value)

    # ------------------------------------------------------------------
    def histogram(self, name: str) -> _Histogram:
        """The named histogram (created empty if it never observed)."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = _Histogram()
        return hist

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-ready view: stable key order for byte-stable artifacts."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "issue_counts": {k: self.issue_counts[k]
                             for k in sorted(self.issue_counts)},
            "histograms": {k: self._histograms[k].snapshot()
                           for k in sorted(self._histograms)},
        }
