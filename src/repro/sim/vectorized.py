"""Vectorized backend: decoupled per-SM runners over a shared-op merge.

The event engine (``GPU._run_event``) still orchestrates every SM from one
global cycle loop: per executed cycle it dispatches steps, maintains wake
caches, folds idle/level accounting, and recomputes the next event.  For a
*decoupled* run none of that global work is needed: each SM's issue timing
is a function of its own warps plus a small set of shared interactions.
This backend runs each SM to completion as an independent generator (a
"runner") and only synchronizes where the simulation is genuinely coupled:

* **Shared memory hierarchy** -- L2/DRAM state (and the write-through L1
  path) is mutated by every access, so accesses must happen in the dense
  engine's global order: by (cycle, sm_id, program order).
* **Grid pulls** -- ``GPU.next_cta`` pops a shared deque; launches must
  observe the same global order.
* **Run end** -- final cycle count, timeout flag and deadlock detection
  are global reductions over the per-runner summaries.

Each runner ``yield``s its current cycle immediately before any shared
operation; a k-way merge serves the minimum ``(cycle, sm_id)`` runner,
which then performs the operation synchronously and runs privately until
its next yield.  Runner cycles are nondecreasing, so the merge reproduces
the exact dense interleaving (all of SM *i*'s cycle-*c* operations before
SM *j*'s for ``i < j``).  One yield before ``_finish_warp`` covers the
whole EXIT -> retire -> ``on_cta_finished`` -> ``fill`` chain, because one
SM's same-cycle shared operations are consecutive in dense order anyway;
the chain runs through the *real* SM/policy methods, so instance-level
wrappers (mutation tests) stay honored and grid races revalidate naturally
(``launch_new_cta`` returns None when another runner drained the deque).

Eligibility is conservative and run-level: no tracer/sanitizer/telemetry
surface anywhere, every SM passes ``fast_step_eligible``, and every policy
is *inert* -- byte-for-byte the base :class:`RegisterFilePolicy` behaviour
(see ``policy_inert``).  Inert policies never create pending/transit CTAs,
never act on idle/tick, and classify every idle span as "other", which is
what makes the per-SM accounting closed-form:

* **Executed-cycle set**: a runner visits exactly the cycles the dense
  engine would step its SM with a chance to act; the global clock rule
  (+1 on any issue, else jump to the min next event) never skips a cycle
  in which any SM can act, so per-SM issue cycles are independent of the
  global visit set.
* **Cycles/timeout**: with ``L`` the global last issue and runners never
  executing a cycle ``>= max_cycles``: all drained -> ``L + 1``, no
  timeout; ``L + 1 >= max_cycles`` -> ``L + 1``, timeout; otherwise the
  min busy-runner wake ``W`` (each ``>= max_cycles`` by construction,
  with runners that stopped on a ``wake <= now`` cycle contributing
  ``max_cycles`` -- the dense clamp marches the clock there one cycle at
  a time), or a deadlock at ``L + 1`` when ``W`` is FOREVER.
* **Idle cycles**: busy spans minus issue cycles -- ``now_final -
  n_issue`` for a busy-at-end runner, ``last_issue - (n_issue - 1)`` for
  a drained one (its busy span is ``[0, last_issue)`` plus the drain
  cycle itself, which the dense engine sees already-retired).
* **Level integrals**: piecewise-constant; the runner flushes the open
  segment at the end of every visited cycle whose mutations set
  ``_lvl_dirty`` (matching the dense buffered-flush boundaries, operand
  for operand, so the float sums are bit-identical), and the final
  segment is closed at reconciliation.

numpy's role is deliberately narrow: per-trace-position metadata tables
(``WarpSim.wmeta``) are gathered once per *unique* trace with an object
``take`` over the static ``_meta`` table, turning the hot loop's
``meta[trace[pos]]`` double index into a single ``wmeta[pos]``.  A full
per-cycle SoA step (ready masks over warp x reg arrays) was prototyped
and measured slower at this machine's scheduler widths (<= 64 warps/SM):
numpy's per-op dispatch overhead exceeds the scalar loop it replaces.
docs/PERFORMANCE.md records the measurements and the resulting scalar
fallback boundaries.
"""

from __future__ import annotations

from bisect import insort
from heapq import heapify, heappop, heappush

from repro.policies.base import RegisterFilePolicy
from repro.sim.warp import FOREVER, WarpState
from repro.workloads.traces import AddressModel

_RUNNABLE = WarpState.RUNNABLE
_FINISHED = WarpState.FINISHED
_SHARED_BASE = AddressModel.SHARED_BASE

#: Policy surface that must be byte-for-byte the base implementation for a
#: run to decouple.  State-changing hooks (fill / on_cta_*) because a real
#: implementation could park or activate CTAs (transit machinery the
#: runners do not model); bookkeeping hooks (classify_idle / next_event /
#: wake_time / on_tick / on_idle) because the closed-form accounting
#: replaces their call sites outright.  The list is machine-checked: the
#: effect auditor (``repro.analyze.effects``, ``make analyze-effects``)
#: derives the engine-reachable base-policy surface from the source and
#: fails CI if a reachable hook is missing here or an entry goes stale.
_INERT_POLICY_ATTRS = (
    "fill", "can_launch", "register_space_for_launch", "note_launched",
    "on_cta_stalled", "on_cta_finished", "on_tick", "on_idle",
    "_act_on_idle", "classify_idle", "next_event", "wake_time",
    "on_issue", "extras",
    "can_launch_for", "_launch_regs", "register_space_for",
    "_pop_ready_swap", "_pop_ready_fitting", "_new_cta_feasible",
    "stalled_active_ctas",
)

#: SM methods the runners bypass (vs. call dynamically): an instance-level
#: wrapper on any of these would be silently skipped, so its presence
#: routes the run back to the fused engine.
_BYPASSED_SM_ATTRS = ("accumulate", "next_event", "next_event_fast",
                      "_step_fast")


def instance_overrides(obj, names):
    """Names from ``names`` shadowed in ``obj``'s instance dict.

    An instance-level attribute shadows the class-level method the engine
    would otherwise resolve, so any hit disqualifies the fast path.  Shared
    by ``policy_inert`` / ``run_eligible`` and imported by the effect
    auditor (``repro.analyze.effects``) so the bypass scan has one
    implementation.
    """
    instance_dict = getattr(obj, "__dict__", None)
    if not instance_dict:
        return ()
    return tuple(name for name in names if name in instance_dict)


def policy_inert(policy) -> bool:
    """True when ``policy`` is observably the base no-op policy."""
    cls = type(policy)
    for name in _INERT_POLICY_ATTRS:
        if getattr(cls, name) is not getattr(RegisterFilePolicy, name):
            return False
    if instance_overrides(policy, _INERT_POLICY_ATTRS):
        return False
    return not policy.needs_issue_hook and not policy._blocked_on_rf


def run_eligible(gpu) -> bool:
    """True when the whole run can use the decoupled runners.

    Stricter than per-SM ``fast_step_eligible``: the CTA-level tracer
    records launch/retire events in global order (which the runners would
    scramble), and any non-inert policy could create pending/transit CTAs
    or observable idle/tick behaviour the closed-form accounting omits.
    """
    if (gpu.sanitizer is not None or gpu.telemetry is not None
            or gpu.tracer is not None or gpu.warp_tracer is not None):
        return False
    if len(gpu.launches) > 1:
        # Concurrent kernels: the decoupled runners assume one grid with
        # uniform CTA footprints; route to the (arbiter-aware) event
        # engine, which keeps engine_used == "fused".
        return False
    for sm in gpu.sms:
        if not sm.fast_step_eligible():
            return False
        if instance_overrides(sm, _BYPASSED_SM_ATTRS):
            return False
        if not policy_inert(sm._policy):
            return False
    return True


class TraceTables:
    """Per-trace-position metadata, gathered once per unique trace.

    ``warp.wmeta[pos]`` replaces ``meta[warp.trace[pos]]`` in the issue
    loop.  Entries are memoized by trace identity -- safe because each
    entry keeps a strong reference to its trace (provider cache evictions
    cannot recycle the id) and traces are immutable after generation.
    """

    def __init__(self, meta) -> None:
        import numpy
        table = numpy.empty(len(meta), dtype=object)
        for index, entry in enumerate(meta):
            table[index] = entry
        self._table = table
        self._memo = {}

    def install(self, cta) -> None:
        memo = self._memo
        for warp in cta.warps:
            trace = warp.trace
            entry = memo.get(id(trace))
            if entry is None:
                entry = (self._table.take(trace).tolist(), trace)
                memo[id(trace)] = entry
            warp.wmeta = entry[0]


def _sm_runner(gpu, sm, tables, max_cycles,
               _RUNNABLE=_RUNNABLE, _FINISHED=_FINISHED,
               heappush=heappush, heappop=heappop, insort=insort,
               FOREVER=FOREVER, _SHARED_BASE=_SHARED_BASE):
    """One SM simulated to completion; yields before every shared op.

    The issue body is a line-for-line copy of ``_step_fast``'s two
    try-issue copies (greedy retry + oldest-first scan) with three edits:
    ``warp.wmeta[pos]`` replaces the double index, ``yield now`` precedes
    every hierarchy access and every ``_finish_warp`` (grid pulls), and
    the per-cycle clock/accounting moves into the runner (end-of-cycle
    level flush, +1 after issue, private jump to the min scheduler sleep
    otherwise).

    Returns ``(busy, wake, last_issue, n_issue, seg_start, seg_active,
    seg_warps)``: whether CTAs remain at stop, the earliest cycle the SM
    could act again (only consulted when the run times out before
    ``last_issue + 1``), the issue counters for the closed-form idle
    accounting, and the open level segment for reconciliation to close.
    """
    (__, thresh, hier, sm_id,
     reuse_spatial, reuse_lines, shared_lines,
     schedulers) = sm._fast_consts
    hier_stats = hier.stats
    access = hier._access
    stats = sm.stats
    accumulate = stats.accumulate
    active_ctas = sm.active_ctas
    finish_warp = sm._finish_warp
    on_long_block = sm._on_long_block
    wake_schedulers = sm._wake_schedulers
    install = tables.install

    seg_start = 0
    seg_active = 0
    seg_warps = 0
    last_issue = -1
    n_issue = 0

    if not active_ctas:
        return (False, FOREVER, -1, 0, 0, 0, 0)
    if max_cycles <= 0:
        return (True, FOREVER, -1, 0, 0, 0, 0)

    now = 0
    while True:
        issued = 0
        for sched in schedulers:
            if now < sched._sleep_until:
                continue
            current = sched._current
            if current is not None:
                if current.state is _FINISHED:
                    sched._current = None
                    current = None
                elif (current.blocked_until <= now
                        and current.state is _RUNNABLE):
                    # ---- greedy retry of the current warp ----
                    warp = current
                    pos = warp.pos
                    meta = warp.wmeta[pos]
                    srcs = meta[0]
                    rdy = 0
                    if srcs and warp.peak_ready > now:
                        if warp.chk_pos == pos:
                            rdy = warp.chk_ready
                        else:
                            ra = warp.ready_at
                            nsrc = meta[6]
                            if nsrc == 1:
                                rdy = ra[srcs[0]]
                            elif nsrc == 2:
                                rdy = ra[srcs[0]]
                                t = ra[srcs[1]]
                                if t > rdy:
                                    rdy = t
                            else:
                                for reg in srcs:
                                    t = ra[reg]
                                    if t > rdy:
                                        rdy = t
                    if rdy <= now:
                        cta = warp.cta
                        if cta.first_issue_cycle is None:
                            cta.first_issue_cycle = now
                        warp.pos = pos + 1
                        fk = meta[8]
                        if fk == 0:       # ALU / SFU / LDS
                            t = now + meta[9]
                            warp.ready_at[meta[1]] = t
                            if t > warp.peak_ready:
                                warp.peak_ready = t
                        elif fk <= 2:     # LDG / STG
                            pat = meta[7]
                            if pat == 0:      # STREAM
                                c = warp.stream_counter + 1
                                warp.stream_counter = c
                                address = warp.stream_base + c * 128
                            elif pat == 1:    # REUSE
                                c = warp.reuse_counter
                                warp.reuse_counter = c + 1
                                address = warp.reuse_base + (
                                    (c // reuse_spatial)
                                    % reuse_lines) * 128
                            else:             # SHARED_WS
                                c = warp.shared_counter + 1
                                warp.shared_counter = c
                                address = _SHARED_BASE + (
                                    (c * 7 + warp.global_warp_id * 13)
                                    % shared_lines) * 128
                            yield now
                            if fk == 1:
                                hier_stats.loads += 1
                                done = access(sm_id, address, now, False)
                                warp.ready_at[meta[1]] = done
                                if done > warp.peak_ready:
                                    warp.peak_ready = done
                            else:
                                hier_stats.stores += 1
                                access(sm_id, address, now, True)
                        elif fk == 3:     # BAR
                            if cta.arrive_at_barrier(warp, now):
                                wake_schedulers()
                            elif warp.blocked_until == FOREVER:
                                on_long_block(warp, now)
                        elif fk == 4:     # EXIT
                            yield now
                            finish_warp(warp, now)
                            for launched in active_ctas:
                                if launched.warps[0].wmeta is None:
                                    install(launched)
                        # fk == 5: BRA / STS — no timing effect
                        issued += 1
                        continue
                    warp.blocked_until = rdy
                    warp.chk_pos = pos
                    warp.chk_ready = rdy
                    if rdy - now >= thresh:
                        on_long_block(warp, now)
                    # Blocked greedy warp: fall through to the ready scan.
            # ---- oldest-first scan of the ready bucket ----
            if sched._dirty:
                sched._rebuild(now)
                ready = sched._ready
                blocked = sched._blocked
            else:
                ready = sched._ready
                blocked = sched._blocked
                if blocked and blocked[0][0] <= now:
                    e = heappop(blocked)
                    first = (e[1], e[2])
                    if blocked and blocked[0][0] <= now:
                        ready.append(first)
                        while blocked and blocked[0][0] <= now:
                            e = heappop(blocked)
                            ready.append((e[1], e[2]))
                        ready.sort()
                    elif ready:
                        insort(ready, first)
                    else:
                        ready.append(first)
            i = 0
            n = len(ready)
            while i < n:
                entry = ready[i]
                warp = entry[1]
                if warp is current:
                    i += 1
                    continue
                b = warp.blocked_until
                if b > now:
                    heappush(blocked, (b, entry[0], warp))
                    del ready[i]
                    n -= 1
                    continue
                if warp.state is not _RUNNABLE:
                    i += 1
                    continue
                pos = warp.pos
                meta = warp.wmeta[pos]
                srcs = meta[0]
                rdy = 0
                if srcs and warp.peak_ready > now:
                    if warp.chk_pos == pos:
                        rdy = warp.chk_ready
                    else:
                        ra = warp.ready_at
                        nsrc = meta[6]
                        if nsrc == 1:
                            rdy = ra[srcs[0]]
                        elif nsrc == 2:
                            rdy = ra[srcs[0]]
                            t = ra[srcs[1]]
                            if t > rdy:
                                rdy = t
                        else:
                            for reg in srcs:
                                t = ra[reg]
                                if t > rdy:
                                    rdy = t
                if rdy > now:
                    warp.blocked_until = rdy
                    warp.chk_pos = pos
                    warp.chk_ready = rdy
                    if rdy - now >= thresh:
                        on_long_block(warp, now)
                    heappush(blocked, (rdy, entry[0], warp))
                    del ready[i]
                    n -= 1
                    continue
                cta = warp.cta
                if cta.first_issue_cycle is None:
                    cta.first_issue_cycle = now
                warp.pos = pos + 1
                fk = meta[8]
                if fk == 0:       # ALU / SFU / LDS
                    t = now + meta[9]
                    warp.ready_at[meta[1]] = t
                    if t > warp.peak_ready:
                        warp.peak_ready = t
                elif fk <= 2:     # LDG / STG
                    pat = meta[7]
                    if pat == 0:      # STREAM
                        c = warp.stream_counter + 1
                        warp.stream_counter = c
                        address = warp.stream_base + c * 128
                    elif pat == 1:    # REUSE
                        c = warp.reuse_counter
                        warp.reuse_counter = c + 1
                        address = warp.reuse_base + (
                            (c // reuse_spatial)
                            % reuse_lines) * 128
                    else:             # SHARED_WS
                        c = warp.shared_counter + 1
                        warp.shared_counter = c
                        address = _SHARED_BASE + (
                            (c * 7 + warp.global_warp_id * 13)
                            % shared_lines) * 128
                    yield now
                    if fk == 1:
                        hier_stats.loads += 1
                        done = access(sm_id, address, now, False)
                        warp.ready_at[meta[1]] = done
                        if done > warp.peak_ready:
                            warp.peak_ready = done
                    else:
                        hier_stats.stores += 1
                        access(sm_id, address, now, True)
                elif fk == 3:     # BAR
                    if cta.arrive_at_barrier(warp, now):
                        wake_schedulers()
                    elif warp.blocked_until == FOREVER:
                        on_long_block(warp, now)
                elif fk == 4:     # EXIT
                    yield now
                    finish_warp(warp, now)
                    for launched in active_ctas:
                        if launched.warps[0].wmeta is None:
                            install(launched)
                # fk == 5: BRA / STS — no timing effect
                sched._current = warp
                issued += 1
                break
            else:
                # No warp could issue: the telemetry-free _note_sleep fold.
                earliest = blocked[0][0] if blocked else FOREVER
                stay = False
                for e in ready:
                    b = e[1].blocked_until
                    if b <= now:
                        stay = True
                        break
                    if b < earliest:
                        earliest = b
                if not stay:
                    sched._sleep_until = earliest

        # ---- end of cycle: level-segment flush at dense boundaries ----
        if sm._lvl_dirty:
            dt = now - seg_start
            if dt:
                accumulate(dt, seg_active, 0, seg_warps)
            seg_active = len(active_ctas)
            seg_warps = sm._active_warps
            seg_start = now
            if seg_active > stats.max_resident_ctas:
                stats.max_resident_ctas = seg_active
            sm._lvl_dirty = False

        if issued:
            n_issue += 1
            last_issue = now
            now += 1
            if now >= max_cycles:
                return (bool(active_ctas), FOREVER, last_issue, n_issue,
                        seg_start, seg_active, seg_warps)
            continue
        wake = FOREVER
        for sched in schedulers:
            s = sched._sleep_until
            if s < wake:
                wake = s
        if wake <= now:
            # A scheduler stayed awake (stale zero sleep after a wake or a
            # ready warp that refused): the dense next-event clamp forces
            # the global clock through every such cycle, so march +1.
            now += 1
            if now >= max_cycles:
                # Could have acted at max_cycles; the dense clamp lands the
                # final clock exactly there, never beyond.
                return (bool(active_ctas), max_cycles, last_issue, n_issue,
                        seg_start, seg_active, seg_warps)
            continue
        if not active_ctas:
            return (False, FOREVER, last_issue, n_issue,
                    seg_start, seg_active, seg_warps)
        if wake >= max_cycles:
            return (True, wake, last_issue, n_issue,
                    seg_start, seg_active, seg_warps)
        now = wake


def run_vectorized(gpu, max_cycles):
    """Drive one run on the decoupled runners (fused fallback if not
    eligible); bit-identical to the dense oracle by construction."""
    if not run_eligible(gpu):
        return gpu._run_event(max_cycles)
    gpu.engine_used = "vectorized"
    sms = gpu.sms
    for sm in sms:
        sm._bind_fast_path()
    tables = TraceTables(sms[0]._meta)

    # Initial fill in SM order (exactly the dense prologue), then install
    # the gathered trace tables on the freshly launched warps.
    for sm in sms:
        sm.policy.fill(0)
    for sm in sms:
        for cta in sm.active_ctas:
            tables.install(cta)

    results = [None] * len(sms)
    heap = []
    for sm in sms:
        runner = _sm_runner(gpu, sm, tables, max_cycles)
        try:
            cycle = next(runner)
        except StopIteration as stop:
            results[sm.sm_id] = stop.value
        else:
            heap.append((cycle, sm.sm_id, runner))
    heapify(heap)

    # K-way merge on (cycle, sm_id).  Runner cycles are nondecreasing and
    # each runner has exactly one outstanding yield, so serving the heap
    # minimum reproduces the dense global order of shared operations.  The
    # inner loop keeps serving the same runner while it remains the
    # minimum (bursts of same-cycle accesses skip the heap round trip).
    while heap:
        cycle, sm_id, runner = heappop(heap)
        while True:
            try:
                cycle = next(runner)
            except StopIteration as stop:
                results[sm_id] = stop.value
                break
            if heap:
                head = heap[0]
                if head[0] < cycle or (head[0] == cycle
                                       and head[1] < sm_id):
                    heappush(heap, (cycle, sm_id, runner))
                    break

    # ---- reconciliation: global clock, timeout, deadlock, idle/levels ----
    last = -1
    for summary in results:
        if summary[2] > last:
            last = summary[2]
    busy = [summary for summary in results if summary[0]]
    if not busy:
        now_final = last + 1
        timed_out = False
    elif last + 1 >= max_cycles:
        now_final = last + 1
        timed_out = True
    else:
        wake = min(summary[1] for summary in busy)
        if wake >= FOREVER:
            gpu._raise_deadlock(last + 1)
        now_final = wake
        timed_out = True

    for sm, summary in zip(sms, results):
        (was_busy, __, last_i, n_issue,
         seg_start, seg_active, seg_warps) = summary
        dt = now_final - seg_start
        if dt and (seg_active or seg_warps):
            sm.stats.accumulate(dt, seg_active, 0, seg_warps)
        if was_busy:
            sm.stats.idle_cycles += now_final - n_issue
        elif last_i >= 0:
            sm.stats.idle_cycles += last_i - (n_issue - 1)
    return gpu._finish_run(now_final, timed_out)
