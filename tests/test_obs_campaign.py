"""Differential campaign tests: observability must be observation-only.

The same six-request campaign runs with and without an attached
ObsSession (and serially vs. pooled); the SimResults and the on-disk
cache entries must be byte-identical, while the obs run additionally
produces a schema-valid event log whose spans and metrics reconcile.
"""

import json

from repro.config import TINY
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import RunRequest
from repro.experiments.runner import ExperimentRunner
from repro.obs.cli import summarize_events
from repro.obs.events import events_of, load_log
from repro.obs.schema import check_obs_event
from repro.obs.session import ObsSession
from repro.obs.spans import reconcile_spans

#: Six requests across apps/policies; the last mirrors request 2 under a
#: pinned engine -- ``engine`` is not part of the memo key, so the
#: campaign dedupes to five actual simulations.
REQUESTS = [
    ("KM", "baseline", None),
    ("KM", "finereg", None),
    ("LB", "finereg_adaptive", None),
    ("ST", "virtual_thread", None),
    ("HS", "reg_dram", None),
    ("KM", "finereg", "reference"),
]


def make_requests():
    return [RunRequest.make(app, policy, engine=engine)
            for app, policy, engine in REQUESTS]


def run_campaign(tmp_path, tag, jobs, with_obs, log_name=None):
    """One campaign against a fresh cache; returns (results, session)."""
    cache = ResultCache(root=tmp_path / f"cache-{tag}", enabled=True)
    runner = ExperimentRunner(scale=TINY, cache=cache)
    session = None
    if with_obs:
        log_path = str(tmp_path / (log_name or f"{tag}.jsonl"))
        session = ObsSession(log_path=log_path)
        runner.attach_obs(session)
        session.campaign_begin(total=len(REQUESTS), jobs=jobs,
                               label=f"diff:{tag}")
    results = runner.run_many(make_requests(), jobs=jobs)
    if session is not None:
        session.campaign_end()
        session.close()
    return results, session, cache


def result_bytes(results):
    return [json.dumps(r.to_json(), sort_keys=True) for r in results]


def cache_bytes(cache):
    return {path.name: path.read_bytes() for path in cache.entries()}


class TestObservationOnly:
    def test_obs_on_campaign_is_byte_identical_serial(self, tmp_path):
        off, __, cache_off = run_campaign(tmp_path, "off", 1, False)
        on, session, cache_on = run_campaign(tmp_path, "on", 1, True)
        assert result_bytes(on) == result_bytes(off)
        assert cache_bytes(cache_on) == cache_bytes(cache_off)
        assert session.completed == 5, "6 requests dedupe to 5 runs"

    def test_obs_on_campaign_is_byte_identical_pooled(self, tmp_path):
        off, __, cache_off = run_campaign(tmp_path, "off", 3, False)
        on, __, cache_on = run_campaign(tmp_path, "on", 3, True)
        assert result_bytes(on) == result_bytes(off)
        assert cache_bytes(cache_on) == cache_bytes(cache_off)

    def test_pooled_equals_serial_under_obs(self, tmp_path):
        serial, __, __ = run_campaign(tmp_path, "s", 1, True)
        pooled, __, __ = run_campaign(tmp_path, "p", 3, True)
        assert result_bytes(serial) == result_bytes(pooled)


class TestCampaignLog:
    def test_log_is_schema_valid_and_reconciles(self, tmp_path):
        __, session, __ = run_campaign(tmp_path, "log", 3, True,
                                       log_name="obs.jsonl")
        events = load_log(str(tmp_path / "obs.jsonl"))
        for event in events:
            assert check_obs_event(event) == []
        # Span tree: phase children sum within parents, requests exempt.
        assert reconcile_spans(session.recorder.spans) == []
        # Metrics: hits + misses == lookups, pooled + serial == completed.
        assert session.metrics.reconcile() == []
        # Every cold run stored; lookups cover the deduped requests.
        lookups = events_of(events, "cache_lookup")
        stores = events_of(events, "cache_store")
        assert len(lookups) == 5
        assert all(not e["hit"] for e in lookups)
        assert len(stores) == 5

    def test_summarize_shows_hit_rate_and_utilization(self, tmp_path):
        run_campaign(tmp_path, "sum", 3, True, log_name="obs.jsonl")
        summary = summarize_events(load_log(str(tmp_path / "obs.jsonl")))
        assert summary["campaign"]["completed"] == 5
        assert summary["cache"]["hit_rate"] == 0.0, "cold campaign"
        assert summary["workers"]["seen"] >= 1
        assert 0.0 < summary["workers"]["utilization"] <= 1.0
        assert summary["reconcile"] == []
        phases = {row["phase"] for row in summary["phases"]}
        assert {"cache-lookup", "pool-run", "store"} <= phases

    def test_warm_rerun_hits_every_lookup(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache", enabled=True)
        cold = ExperimentRunner(scale=TINY, cache=cache)
        cold_results = cold.run_many(make_requests(), jobs=1)

        warm_cache = ResultCache(root=tmp_path / "cache", enabled=True)
        warm = ExperimentRunner(scale=TINY, cache=warm_cache)
        session = ObsSession()
        warm.attach_obs(session)
        session.campaign_begin(total=len(REQUESTS), jobs=1, label="warm")
        warm_results = warm.run_many(make_requests(), jobs=1)
        session.campaign_end()

        assert result_bytes(warm_results) == result_bytes(cold_results)
        assert session.metrics.hit_rate() == 1.0
        assert session.completed == 0, "warm campaign simulates nothing"
        assert session.summary()["cache_hit_rate"] == 1.0
        session.close()

    def test_serial_run_scope_instruments_single_runs(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache", enabled=True)
        runner = ExperimentRunner(scale=TINY, cache=cache)
        session = ObsSession()
        runner.attach_obs(session)
        session.campaign_begin(total=1, jobs=1, label="single")
        result = runner.run("KM", "baseline")
        session.campaign_end()
        assert result.cycles > 0
        names = {s.name for s in session.recorder.spans}
        assert "req:KM/baseline" in names
        assert "workload-build" in names
        assert "engine-run" in names
        assert reconcile_spans(session.recorder.spans) == []
        session.close()

    def test_summary_matches_log_derived_summary(self, tmp_path):
        """The in-process summary and the log-file summary agree on the
        headline numbers (they are computed independently)."""
        __, session, __ = run_campaign(tmp_path, "agree", 3, True,
                                       log_name="obs.jsonl")
        live = session.summary()
        from_log = summarize_events(load_log(str(tmp_path / "obs.jsonl")))
        assert live["campaign"]["completed"] == \
            from_log["campaign"]["completed"]
        assert live["cache_hit_rate"] == from_log["cache"]["hit_rate"]
        assert live["stall_events"] == from_log["workers"]["stall_events"]
        live_phases = {(p["phase"], p["wall_s"]) for p in live["phases"]}
        log_phases = {(p["phase"], p["wall_s"])
                      for p in from_log["phases"]}
        assert live_phases == log_phases
