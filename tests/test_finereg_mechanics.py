"""White-box tests of FineReg's switching mechanics (paper V-B/V-E).

These build a GPU by hand (no runner) so the policy object is reachable,
then drive scenarios the result-level tests cannot pin down: the PCRF-full
swap path with its eviction-credit rule, status-monitor bookkeeping across
a spill/restore cycle, and ACRF conservation under churn.
"""

import dataclasses

import pytest

from repro.config import GPUConfig, TINY
from repro.core.status_monitor import ContextLocation, RegisterLocation
from repro.policies.finereg import FineRegPolicy
from repro.sim.cta import CTAState
from repro.sim.gpu import GPU
from repro.workloads.generator import build_workload
from repro.workloads.suite import get_spec


def build_gpu(app="LI", pcrf_kb=128, num_sms=1):
    config = GPUConfig().with_num_sms(num_sms)
    config = config.with_rf_split(256 - pcrf_kb, pcrf_kb)
    instance = build_workload(get_spec(app), config, TINY)
    gpu = GPU(config, instance.kernel, FineRegPolicy,
              instance.trace_provider, instance.address_model,
              liveness=instance.liveness)
    return gpu


class TestSpillRestoreCycle:
    def test_full_run_conserves_acrf(self):
        gpu = build_gpu()
        gpu.run(max_cycles=TINY.max_cycles)
        policy = gpu.sms[0].policy
        assert policy.acrf.used == 0
        assert policy.acrf.free == policy.acrf.capacity
        assert policy.pcrf.used_entries == 0
        assert policy.monitor.resident_count == 0

    def test_spills_eventually_restore(self):
        gpu = build_gpu()
        gpu.run(max_cycles=TINY.max_cycles)
        rmu = gpu.sms[0].policy.rmu
        assert rmu.stats.spills == rmu.stats.restores
        assert rmu.stats.spilled_registers == rmu.stats.restored_registers

    def test_live_spills_are_smaller_than_full_context(self):
        """The point of the paper: pending CTAs cost only their live set."""
        gpu = build_gpu()
        gpu.run(max_cycles=TINY.max_cycles)
        policy = gpu.sms[0].policy
        if policy.rmu.stats.spills == 0:
            pytest.skip("no switching occurred at this scale")
        mean_spill = (policy.rmu.stats.spilled_registers
                      / policy.rmu.stats.spills)
        full = policy._cta_regs
        assert mean_spill < 0.75 * full


class TestPCRFFullSwapPath:
    def test_small_pcrf_forces_swaps_or_rejections(self):
        """With a 64 KB PCRF the eviction-credit path (V-E) must engage:
        either paired swaps happen or spills get rejected -- never an
        overflow crash."""
        gpu = build_gpu(app="LI", pcrf_kb=64)
        result = gpu.run(max_cycles=TINY.max_cycles)
        policy = gpu.sms[0].policy
        assert not result.timed_out
        # The run completes correctly regardless of PCRF pressure.
        assert result.completed_ctas == gpu.kernel.geometry.grid_ctas
        if policy.rmu.stats.spills:
            assert policy.pcrf.capacity == 64 * 1024 // 128

    def test_monitor_tracks_locations(self):
        gpu = build_gpu()
        sm = gpu.sms[0]
        policy = sm.policy
        policy.fill(0)
        assert policy.monitor.resident_count == len(sm.active_ctas)
        cta = sm.active_ctas[0]
        status = policy.monitor.status_of(cta.cta_id)
        assert status.context is ContextLocation.PIPELINE
        assert status.registers is RegisterLocation.ACRF

    def test_manual_spill_updates_all_structures(self):
        gpu = build_gpu()
        sm = gpu.sms[0]
        policy = sm.policy
        policy.fill(0)
        cta = sm.active_ctas[0]
        warp_pcs = [(w.warp_id, w.trace[w.pos] * 4) for w in cta.warps]
        acrf_before = policy.acrf.used
        policy._spill(cta, warp_pcs, now=0)
        # ACRF freed, PCRF holds the live set, monitor flipped to pending.
        assert policy.acrf.used == acrf_before - policy._cta_regs
        assert policy.pcrf.holds(cta.cta_id)
        status = policy.monitor.status_of(cta.cta_id)
        assert status.context is ContextLocation.SHARED_MEMORY
        assert status.registers is RegisterLocation.PCRF
        assert cta.state is CTAState.TRANSIT

    def test_manual_restore_reverses_spill(self):
        gpu = build_gpu()
        sm = gpu.sms[0]
        policy = sm.policy
        policy.fill(0)
        cta = sm.active_ctas[0]
        warp_pcs = [(w.warp_id, w.trace[w.pos] * 4) for w in cta.warps]
        policy._spill(cta, warp_pcs, now=0)
        cta.settle_transit(10 ** 9)
        sm.pending_ctas.append(cta)
        policy._restore(cta, now=10 ** 9)
        assert not policy.pcrf.holds(cta.cta_id)
        assert policy.acrf.holds(cta.cta_id)
        assert policy.monitor.status_of(cta.cta_id).is_active


class TestResidencyCap:
    def test_cap_respects_monitor_limit(self):
        gpu = build_gpu()
        policy = gpu.sms[0].policy
        assert policy._resident_cap <= gpu.config.max_resident_ctas

    def test_bus_throttle_threshold_positive(self):
        gpu = build_gpu()
        assert gpu.sms[0].policy.bus_backlog_threshold > 0
