"""Row-level invariants of the experiment modules and the public API."""

import pytest

from repro import quick_run
from repro.config import TINY
from repro.experiments import fig13_performance, fig16_energy
from repro.experiments.common import (
    ALL_APPS,
    MEMORY_INTENSIVE_APPS,
    TRAFFIC_APPS,
    TYPE_R_APPS,
    TYPE_S_APPS,
)


class TestAppGroupDefinitions:
    def test_groups_partition_the_suite(self):
        assert len(ALL_APPS) == 18
        assert set(TYPE_S_APPS) | set(TYPE_R_APPS) == set(ALL_APPS)
        assert not set(TYPE_S_APPS) & set(TYPE_R_APPS)

    def test_named_subsets_are_valid(self):
        assert set(MEMORY_INTENSIVE_APPS) <= set(ALL_APPS)
        assert set(TRAFFIC_APPS) <= set(ALL_APPS)
        # Paper VI-D names KM, SY2, BF; VI-E names FD, NW, ST.
        assert set(MEMORY_INTENSIVE_APPS) == {"KM", "SY2", "BF"}
        assert set(TRAFFIC_APPS) == {"FD", "NW", "ST"}


class TestRowInvariants:
    def test_fig13_baseline_column_is_unity(self, tiny_runner):
        res = fig13_performance.run(tiny_runner, apps=("KM",))
        for row in res.rows:
            assert row[1] == pytest.approx(1.0)
            # All speedup cells are positive.
            assert all(cell > 0 for cell in row[1:])

    def test_fig16_baseline_column_is_unity(self, tiny_runner):
        res = fig16_energy.run(tiny_runner, apps=("KM",))
        for row in res.rows:
            assert row[1] == pytest.approx(1.0)

    def test_fig16_breakdown_components_sum_to_ratio(self, tiny_runner):
        res = fig16_energy.run(tiny_runner, apps=("KM",))
        components = [res.summary[f"baseline_{c.lower()}"]
                      for c in ("DRAM_Dyn", "RF_Dyn", "Others_Dyn",
                                "Leakage", "FineReg", "CTA_Switching")]
        assert sum(components) == pytest.approx(1.0, abs=1e-6)


class TestPublicAPI:
    def test_quick_run_defaults(self):
        result = quick_run("NW", scale=TINY)
        assert result.policy == "finereg"
        assert result.workload == "NW"

    def test_quick_run_policy_choice(self):
        result = quick_run("NW", "baseline", TINY)
        assert result.policy == "baseline"

    def test_package_exports(self):
        import repro
        for name in repro.__all__:
            assert hasattr(repro, name), name
