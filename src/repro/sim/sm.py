"""Streaming multiprocessor: issue loop, resource tracking, policy hooks.

The SM owns four GTO warp schedulers, the lists of active/pending/in-transit
CTAs, and the per-SM L1 (via the shared :class:`MemoryHierarchy`).  All
register-file management decisions are delegated to the attached
:class:`~repro.policies.base.RegisterFilePolicy`; the SM provides the
mechanics (launching CTAs, moving warps in and out of schedulers, timing).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.config import GPUConfig
from repro.isa.cfg import EdgeKind
from repro.isa.instructions import Opcode
from repro.isa.kernel import Kernel
from repro.policies.base import RegisterFilePolicy
from repro.sim.cta import CTASim, CTAState
from repro.sim.scheduler import SCHEDULER_KINDS
from repro.sim.stats import SMStats
from repro.sim.tracing import EventKind
from repro.sim.warp import FOREVER, WarpSim

#: Issued-instruction window length for Fig-5 register-usage sampling.
USAGE_WINDOW = 1000


class StreamingMultiprocessor:
    """One SM of the simulated GPU."""

    def __init__(self, sm_id: int, config: GPUConfig, kernel: Kernel,
                 gpu, sample_usage: bool = False) -> None:
        self.sm_id = sm_id
        self.config = config
        self.kernel = kernel
        self.gpu = gpu
        self._policy = None  # attached by the GPU after construction
        self._issue_hook = None
        self._needs_tick = False
        scheduler_cls = SCHEDULER_KINDS[config.warp_scheduling]
        self.schedulers = [scheduler_cls(i)
                           for i in range(config.num_warp_schedulers)]
        self.active_ctas: List[CTASim] = []
        self.pending_ctas: List[CTASim] = []
        self.transit_ctas: List[CTASim] = []
        self.stats = SMStats()
        self.shmem_used = 0
        self._active_warps = 0
        self._active_threads = 0
        self._incoming_ctas = 0
        self._last_step_issued = 0
        self._next_sched = 0
        # SM-level sleep: min of the schedulers' sleep caches, valid while
        # nothing wakes them.  Skips the whole issue stage in one test.
        self._sched_sleep = 0
        self._instrs = kernel.cfg.instructions
        # Telemetry surfaces.  ``telemetry`` is a MetricsRegistry installed
        # by repro.telemetry; ``_wt`` caches the warp-level tracer so the
        # warp-event emission sites pay one attribute test when disabled.
        self.telemetry = None
        self._wt = None
        self._div_forks: Optional[Set[int]] = None
        self._div_joins: Optional[Set[int]] = None
        self._sample_usage = sample_usage
        self._window_regs: Set[Tuple[int, int]] = set()
        self._window_count = 0
        # Latencies pulled out of config for the hot loop.
        self._alu_lat = config.alu_latency
        self._sfu_lat = config.sfu_latency
        self._shmem_lat = config.shared_mem_latency
        self._stall_threshold = config.cta_switch_threshold
        self._rf_banks = config.rf_banks if config.model_rf_banks else 0

    # ------------------------------------------------------------------
    # Policy attachment (hot-path hooks cached at assignment time)
    # ------------------------------------------------------------------
    @property
    def policy(self):
        return self._policy

    @policy.setter
    def policy(self, policy) -> None:
        self._policy = policy
        self._issue_hook = (policy.on_issue
                            if policy is not None and policy.needs_issue_hook
                            else None)
        # Only call on_tick for policies that actually override it.
        self._needs_tick = (
            policy is not None
            and type(policy).on_tick is not RegisterFilePolicy.on_tick)

    # ------------------------------------------------------------------
    # Resource queries (used by policies)
    # ------------------------------------------------------------------
    @property
    def resident_ctas(self) -> int:
        return (len(self.active_ctas) + len(self.pending_ctas)
                + len(self.transit_ctas))

    def scheduler_slots_free(self) -> bool:
        """Can one more CTA become active under the Table-I limits?

        CTAs in transit toward ACTIVE already own their slots.
        """
        kernel = self.kernel
        config = self.config
        incoming = self._incoming_ctas
        ctas = len(self.active_ctas) + incoming
        warps = self._active_warps + incoming * kernel.warps_per_cta
        threads = self._active_threads \
            + incoming * kernel.geometry.threads_per_cta
        return (ctas < config.max_ctas_per_sm
                and warps + kernel.warps_per_cta <= config.max_warps_per_sm
                and threads + kernel.geometry.threads_per_cta
                <= config.max_threads_per_sm)

    def swap_slots_free(self, outgoing: CTASim) -> bool:
        """Would one full incoming CTA fit after parking ``outgoing``?

        A swap is not automatically slot-neutral: a partially-retired CTA
        frees fewer warp/thread slots than a full incoming CTA needs, so
        swapping it out can overshoot the Table-I limits.
        """
        kernel = self.kernel
        config = self.config
        incoming = self._incoming_ctas
        out_warps = outgoing.unfinished_warps()
        ctas = len(self.active_ctas) - 1 + incoming
        warps = self._active_warps - out_warps \
            + incoming * kernel.warps_per_cta
        threads = self._active_threads - 32 * out_warps \
            + incoming * kernel.geometry.threads_per_cta
        return (ctas < config.max_ctas_per_sm
                and warps + kernel.warps_per_cta <= config.max_warps_per_sm
                and threads + kernel.geometry.threads_per_cta
                <= config.max_threads_per_sm)

    def shmem_free(self, nbytes: int) -> bool:
        return self.shmem_used + nbytes <= self.config.shared_memory_bytes

    # ------------------------------------------------------------------
    # Warp-level tracing
    # ------------------------------------------------------------------
    def enable_warp_events(self, tracer) -> None:
        """Install a warp-level tracer (called by ``attach_tracer``)."""
        self._wt = tracer
        if self._div_forks is None:
            self._build_divergence_index()

    def _build_divergence_index(self) -> None:
        """Static indices where divergence events fire.

        A warp *forks* when it issues the terminating BRA of a two-successor
        block and *joins* when it reaches the first instruction of that
        branch's PDOM reconvergence block -- the same reconvergence model the
        static verifier checks.
        """
        cfg = self.kernel.cfg
        forks: Set[int] = set()
        joins: Set[int] = set()
        for block in cfg.blocks:
            if block.edge_kind is not EdgeKind.BRANCH or not block.instructions:
                continue
            forks.add(cfg.first_index(block.block_id)
                      + len(block.instructions) - 1)
            reconv = cfg.reconvergence_block(block.block_id)
            if reconv is not None:
                joins.add(cfg.first_index(reconv))
        self._div_forks = forks
        self._div_joins = joins

    # ------------------------------------------------------------------
    # CTA lifecycle (mechanics; policies decide when)
    # ------------------------------------------------------------------
    def launch_new_cta(self, now: int) -> Optional[CTASim]:
        """Pull the next CTA off the grid and start it as active."""
        cta_id = self.gpu.next_cta()
        if cta_id is None:
            return None
        kernel = self.kernel
        warps = []
        for warp_id in range(kernel.warps_per_cta):
            trace = self.gpu.trace_provider.trace_for(cta_id, warp_id)
            global_id = cta_id * kernel.warps_per_cta + warp_id
            warps.append(WarpSim(warp_id, global_id, cta_id, trace))
        cta = CTASim(cta_id, warps, shmem_bytes=kernel.shmem_per_cta)
        for warp in warps:
            warp.cta = cta
        cta.launch_cycle = now
        self.shmem_used += cta.shmem_bytes
        self.active_ctas.append(cta)
        self._attach_warps(cta)
        self.stats.cta_launches += 1
        if self.gpu.tracer is not None:
            self.gpu.tracer.record(now, self.sm_id, EventKind.LAUNCH, cta_id)
        return cta

    def deactivate_cta(self, cta: CTASim, now: int, latency: int) -> None:
        """Move an active CTA toward PENDING (switch-out in flight)."""
        self.active_ctas.remove(cta)
        self._detach_warps(cta)
        cta.begin_transit(now + latency, CTAState.PENDING)
        self.transit_ctas.append(cta)
        self.stats.cta_switch_events += 1
        self.stats.switch_out_overhead_cycles += latency
        tracer = self.gpu.tracer
        if tracer is not None:
            tracer.record(now, self.sm_id, EventKind.SWITCH_OUT, cta.cta_id,
                          dur=latency if tracer.warp_level else 0)

    def activate_cta(self, cta: CTASim, now: int, latency: int) -> None:
        """Move a pending CTA toward ACTIVE (switch-in in flight)."""
        self.pending_ctas.remove(cta)
        cta.begin_transit(now + latency, CTAState.ACTIVE)
        self.transit_ctas.append(cta)
        self._incoming_ctas += 1
        self.stats.cta_switch_events += 1
        self.stats.switch_in_overhead_cycles += latency
        tracer = self.gpu.tracer
        if tracer is not None:
            tracer.record(now, self.sm_id, EventKind.SWITCH_IN, cta.cta_id,
                          dur=latency if tracer.warp_level else 0)

    def retire_cta(self, cta: CTASim, now: int) -> None:
        """A finished CTA releases shmem and scheduler slots."""
        cta.state = CTAState.FINISHED
        self.shmem_used -= cta.shmem_bytes
        if self.gpu.tracer is not None:
            self.gpu.tracer.record(now, self.sm_id, EventKind.RETIRE,
                                   cta.cta_id)
        if self.policy is not None:
            self.policy.on_cta_finished(cta, now)

    def _attach_warps(self, cta: CTASim) -> None:
        for warp in cta.warps:
            if warp.finished:
                continue
            self.schedulers[self._next_sched].add_warp(warp)
            self._next_sched = (self._next_sched + 1) % len(self.schedulers)
        self._sched_sleep = 0
        self._active_warps += cta.unfinished_warps()
        self._active_threads += cta.unfinished_warps() * 32

    def _detach_warps(self, cta: CTASim) -> None:
        for scheduler in self.schedulers:
            scheduler.remove_cta(cta.cta_id)
        self._active_warps -= cta.unfinished_warps()
        self._active_threads -= cta.unfinished_warps() * 32

    # ------------------------------------------------------------------
    # Simulation step
    # ------------------------------------------------------------------
    def step(self, now: int) -> int:
        """Advance one cycle; returns the number of instructions issued."""
        if self.transit_ctas:
            self._settle_transits(now)
        if self._needs_tick:
            self._policy.on_tick(now)
        if now < self._sched_sleep:
            # Every scheduler would refuse instantly; skip the calls.
            self._last_step_issued = 0
            return 0
        issued = 0
        try_issue = self._try_issue
        for scheduler in self.schedulers:
            if scheduler.issue(now, try_issue):
                issued += 1
        if not issued:
            # All schedulers just (re)computed their sleep time; cache the
            # min.  A scheduler that refused without sleeping left its own
            # _sleep_until <= now, keeping the SM awake too.
            self._sched_sleep = min(
                s._sleep_until for s in self.schedulers)
        self._last_step_issued = issued
        return issued

    def _settle_transits(self, now: int) -> None:
        remaining = []
        for cta in self.transit_ctas:
            if cta.settle_transit(now):
                if cta.state is CTAState.ACTIVE:
                    self._incoming_ctas -= 1
                    self.active_ctas.append(cta)
                    self._attach_warps(cta)
                else:
                    self.pending_ctas.append(cta)
            else:
                remaining.append(cta)
        self.transit_ctas = remaining

    # ------------------------------------------------------------------
    # Instruction issue (the hot path)
    # ------------------------------------------------------------------
    def _try_issue(self, warp: WarpSim, now: int) -> bool:
        static_index = warp.trace[warp.pos]
        instr = self._instrs[static_index]
        srcs = instr.srcs
        if srcs:
            ready = warp.operands_ready_at(srcs)
            if ready > now:
                warp.blocked_until = ready
                if ready - now >= self._stall_threshold:
                    self._on_long_block(warp, now)
                return False
        if self._issue_hook is not None:
            if not self._issue_hook(warp, static_index, now):
                return False

        cta = warp.cta
        if cta.first_issue_cycle is None:
            cta.first_issue_cycle = now
        warp.pos += 1
        stats = self.stats
        stats.instructions += 1
        stats.rf_reads += len(srcs)
        if instr.dest is not None:
            stats.rf_writes += 1
        if self.telemetry is not None:
            self.telemetry.issue_counts[instr.opcode.value] += 1
        wt = self._wt
        if wt is not None:
            if static_index in self._div_forks:
                wt.record(now, self.sm_id, EventKind.DIVERGE_FORK,
                          cta.cta_id, warp=warp.warp_id)
            elif static_index in self._div_joins:
                wt.record(now, self.sm_id, EventKind.DIVERGE_JOIN,
                          cta.cta_id, warp=warp.warp_id)

        bank_penalty = 0
        if self._rf_banks and len(srcs) > 1:
            # Operand-collector serialization: sources mapping to the same
            # bank are read over extra cycles.
            banks = {reg % self._rf_banks for reg in srcs}
            bank_penalty = len(srcs) - len(banks)
            if bank_penalty:
                stats.rf_bank_conflicts += bank_penalty
        if self._sample_usage:
            self._sample_window(warp, instr)

        op = instr.opcode
        if op is Opcode.IALU or op is Opcode.FALU:
            warp.ready_at[instr.dest] = now + self._alu_lat + bank_penalty
        elif op is Opcode.LDG:
            address = self.gpu.address_model.address_for(warp, instr)
            done = self.gpu.hierarchy.load(self.sm_id, address, now)
            warp.ready_at[instr.dest] = done
        elif op is Opcode.STG:
            address = self.gpu.address_model.address_for(warp, instr)
            self.gpu.hierarchy.store(self.sm_id, address, now)
        elif op is Opcode.LDS:
            warp.ready_at[instr.dest] = now + self._shmem_lat
            stats.shmem_accesses += 1
        elif op is Opcode.STS:
            stats.shmem_accesses += 1
        elif op is Opcode.SFU:
            warp.ready_at[instr.dest] = now + self._sfu_lat
        elif op is Opcode.BAR:
            released = cta.arrive_at_barrier(warp, now)
            if wt is not None:
                wt.record(now, self.sm_id, EventKind.BARRIER_ARRIVE,
                          cta.cta_id, warp=warp.warp_id)
                if released:
                    wt.record(now, self.sm_id, EventKind.BARRIER_RELEASE,
                              cta.cta_id)
            if released:
                # Barrier released: warps (possibly on sleeping sibling
                # schedulers) just became runnable.
                self._wake_schedulers()
            elif warp.blocked_until == FOREVER:
                self._on_long_block(warp, now)
        elif op is Opcode.BRA:
            pass  # path already resolved in the trace
        elif op is Opcode.EXIT:
            self._finish_warp(warp, now)
        return True

    def _finish_warp(self, warp: WarpSim, now: int) -> None:
        warp.finish()
        self._active_warps -= 1
        self._active_threads -= 32
        for scheduler in self.schedulers:
            if warp in scheduler.warps:
                scheduler.remove_warp(warp)
                break
        cta = warp.cta
        if cta.maybe_release_barrier(now):
            if self._wt is not None:
                self._wt.record(now, self.sm_id, EventKind.BARRIER_RELEASE,
                                cta.cta_id)
            self._wake_schedulers()
        if cta.finished:
            self.active_ctas.remove(cta)
            self.retire_cta(cta, now)

    def _wake_schedulers(self) -> None:
        self._sched_sleep = 0
        for scheduler in self.schedulers:
            scheduler.wake()

    def _on_long_block(self, warp: WarpSim, now: int) -> None:
        """A warp just blocked for a while; check for a complete CTA stall."""
        cta = warp.cta
        if cta.state is not CTAState.ACTIVE:
            return
        if not cta.fully_stalled(now, min_remaining=self._stall_threshold):
            return
        if not cta.stall_recorded and cta.first_issue_cycle is not None:
            cta.stall_recorded = True
            self.stats.stall_latencies.append(now - cta.first_issue_cycle)
        if self.policy is not None:
            self.policy.on_cta_stalled(cta, now)

    # ------------------------------------------------------------------
    # Fig-5 sampling
    # ------------------------------------------------------------------
    def _sample_window(self, warp: WarpSim, instr) -> None:
        gid = warp.global_warp_id
        for reg in instr.registers:
            self._window_regs.add((gid, reg))
        self._window_count += 1
        if self._window_count >= USAGE_WINDOW:
            allocated = sum(
                cta.unfinished_warps() * self.kernel.regs_per_thread
                for cta in self.active_ctas
            )
            if allocated:
                usage = len(self._window_regs) / allocated
                self.stats.window_usage.append(min(1.0, usage))
            self._window_regs.clear()
            self._window_count = 0

    def debug_accounting(self) -> Dict[str, object]:
        """Snapshot of the SM's resource bookkeeping (sanitizer, tests)."""
        return {
            "active": sorted(c.cta_id for c in self.active_ctas),
            "pending": sorted(c.cta_id for c in self.pending_ctas),
            "transit": sorted(c.cta_id for c in self.transit_ctas),
            "active_warps": self._active_warps,
            "active_threads": self._active_threads,
            "incoming_ctas": self._incoming_ctas,
            "shmem_used": self.shmem_used,
            "sched_sleep": self._sched_sleep,
            "scheduler_warps": [len(s.warps) for s in self.schedulers],
        }

    # ------------------------------------------------------------------
    # Bookkeeping for the global loop
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return bool(self.active_ctas or self.pending_ctas
                    or self.transit_ctas)

    def next_event(self, now: int) -> int:
        """Earliest future cycle at which this SM's state can change."""
        earliest = FOREVER
        for cta in self.active_ctas:
            t = cta.earliest_resume(now)
            if t < earliest:
                earliest = t
        for cta in self.transit_ctas:
            if cta.transit_until < earliest:
                earliest = cta.transit_until
        if self.policy is not None:
            t = self.policy.next_event(now)
            if t < earliest:
                earliest = t
        return earliest

    def accumulate(self, dt: int, idle: bool) -> None:
        self.stats.accumulate(
            dt,
            active_ctas=len(self.active_ctas),
            pending_ctas=len(self.pending_ctas) + len(self.transit_ctas),
            active_warps=self._active_warps,
        )
        idle = idle or not self._last_step_issued
        if idle and self.busy:
            self.stats.idle_cycles += dt
            if self.policy is not None:
                reason = self.policy.classify_idle(dt)
                if reason == "rf":
                    self.stats.rf_depletion_cycles += dt
                elif reason == "srp":
                    self.stats.srp_stall_cycles += dt
